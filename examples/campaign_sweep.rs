//! Campaign-engine demo: declare a multi-axis experiment campaign as TOML,
//! expand it into a run matrix, execute it on a worker pool, and print the
//! aggregated report — including proof that parallel and serial execution
//! produce byte-identical output.
//!
//! ```bash
//! cargo run --release --example campaign_sweep
//! ```

use dl2fence_campaign::{expand, CampaignReport, CampaignSpec, Executor};

const SPEC: &str = r#"
name = "sweep-demo"

[sim]
warmup_cycles = 200
sample_period = 400
samples_per_run = 2

[grid]
mesh = [8]
fir = [0.0, 0.4, 0.8]
workloads = ["uniform", "tornado", "blackscholes"]
attack_placements = 3
benign_runs = 1
seeds = [0xDAC]

[report]
group_by = ["workload", "fir"]
"#;

fn main() {
    let spec = CampaignSpec::from_toml(SPEC).expect("demo spec is valid");
    let runs = expand(&spec).expect("demo spec expands");
    println!(
        "campaign `{}` expands to {} runs ({} attacked)",
        spec.name,
        runs.len(),
        runs.iter().filter(|r| r.is_attack()).count()
    );

    let executor = Executor::with_available_parallelism();
    println!("executing on {} workers...", executor.workers());
    let started = std::time::Instant::now();
    let outcome = executor.execute(&spec).expect("campaign executes");
    let elapsed = started.elapsed();
    let report = CampaignReport::build(&outcome).expect("report builds");
    println!(
        "{} runs in {:.2}s ({:.1} runs/s)\n",
        report.total_runs,
        elapsed.as_secs_f64(),
        report.total_runs as f64 / elapsed.as_secs_f64().max(1e-9)
    );
    print!("{}", report.render());

    // The engine's core guarantee: worker count never changes a byte.
    let serial = CampaignReport::build(&Executor::new(1).execute(&spec).expect("serial run"))
        .expect("serial report");
    assert_eq!(
        serial.to_json(),
        report.to_json(),
        "parallel and serial campaigns must be byte-identical"
    );
    println!(
        "\nparallel report is byte-identical to the serial one ({} bytes of JSON)",
        report.to_json().len()
    );
}
