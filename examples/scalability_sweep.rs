//! Scalability study: how the hardware overhead of DL2Fence's two global CNN
//! accelerators and the simulator's runtime cost evolve with mesh size —
//! the argument behind Figure 5 and the paper's scalability claim.
//!
//! ```bash
//! cargo run --release --example scalability_sweep
//! ```

use hw_overhead::{AreaModel, RouterParams};
use noc_sim::{NocConfig, NodeId};
use noc_traffic::{AttackScenario, FloodingAttack, SyntheticPattern};
use std::time::Instant;

fn main() {
    let model = AreaModel::new(RouterParams::default());
    println!(
        "{:>7} {:>14} {:>12} {:>16} {:>16}",
        "mesh", "NoC gates", "overhead", "sim cycles/s", "pkt latency"
    );
    for n in [4usize, 8, 16, 32] {
        // Simulate a short attacked window to measure simulator throughput
        // and the latency regime at this scale.
        let cycles = 1_000u64;
        let mut scenario = AttackScenario::builder(NocConfig::mesh(n, n))
            .benign(SyntheticPattern::UniformRandom, 0.02)
            .attack(FloodingAttack::new(vec![NodeId(n * n - 1)], NodeId(0), 0.8))
            .seed(5)
            .build();
        let start = Instant::now();
        scenario.run(cycles);
        let elapsed = start.elapsed().as_secs_f64();
        println!(
            "{:>4}x{:<2} {:>14.0} {:>11.2}% {:>16.0} {:>16.2}",
            n,
            n,
            model.noc_gates(n),
            model.dl2fence_overhead(n) * 100.0,
            cycles as f64 / elapsed,
            scenario.network().stats().packet_latency.mean()
        );
    }
    println!();
    println!(
        "DL2Fence's accelerators are global, so their area is constant while the NoC\n\
         grows quadratically: the overhead falls by {:.1}% from 8x8 to 16x16\n\
         (paper: 76.3%).",
        model.overhead_reduction(8, 16) * 100.0
    );
}
