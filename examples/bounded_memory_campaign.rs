//! Bounded-memory campaign demo: run a sample-heavy eval campaign with a
//! deliberately tiny spill threshold, watch the accumulator's in-memory
//! sample retention stay bounded while the overflow lands in the campaign
//! directory's `samples/` store, and verify the final report is
//! byte-identical to the all-in-memory build.
//!
//! ```bash
//! cargo run --release --example bounded_memory_campaign
//! ```

use dl2fence_campaign::{
    expand, spec_fingerprint, CampaignDir, CampaignReport, CampaignSpec, Executor,
    ReportAccumulator, SampleStore,
};

/// A sample-heavy campaign: 20 runs x 4 monitoring windows = 80 labeled
/// samples flowing into one 4x4 eval pool.
const SPEC: &str = r#"
name = "bounded-memory-demo"

[sim]
warmup_cycles = 100
sample_period = 200
samples_per_run = 4
collect_samples = true

[grid]
mesh = [4]
fir = [0.4, 0.8]
workloads = ["uniform", "tornado"]
attack_placements = 2
benign_runs = 1
seeds = [0xDAC, 0xBEE]

[report]
group_by = ["workload", "class"]

[eval]
enabled = true
train_fraction = 0.6
detector_epochs = 6
localizer_epochs = 4
detection_feature = "vco"
localization_feature = "boc"
"#;

fn main() {
    let spec = CampaignSpec::from_toml(SPEC).expect("demo spec is valid");
    let executor = Executor::with_available_parallelism();
    let root = std::env::temp_dir().join(format!("dl2fence-bounded-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // Execute once; both report builds below aggregate the same runs.
    let runs = expand(&spec).expect("expansion");
    println!(
        "campaign `{}`: {} runs on {} workers",
        spec.name,
        runs.len(),
        executor.workers()
    );
    let outcome = executor.execute(&spec).expect("campaign executes");
    let total_samples: usize = outcome.runs.iter().map(|r| r.samples.len()).sum();

    // Reference: the unbounded in-memory build.
    let in_memory = CampaignReport::build_with(&outcome, &executor).expect("in-memory report");

    // Bounded build: a spill threshold an order of magnitude below the
    // campaign's sample volume. Every time the buffered samples reach the
    // threshold they move to <dir>/samples/<mesh>.jsonl and memory drops
    // back to zero.
    let threshold = (total_samples / 10).max(1);
    let dir = CampaignDir::create(&root, &spec, runs.len()).expect("campaign dir");
    let store =
        SampleStore::attach(dir.samples_path(), &spec_fingerprint(&spec)).expect("sample store");
    let mut acc = ReportAccumulator::for_spec(&spec)
        .expect("accumulator")
        .with_spill(store, threshold);
    let mut peak = 0usize;
    for run in &outcome.runs {
        acc.try_fold(run).expect("fold spills cleanly");
        peak = peak.max(acc.retained_samples());
    }
    println!(
        "collected {total_samples} labeled samples; spill threshold {threshold}: \
         peak retained {peak}, spilled {} to {}",
        acc.spilled_samples(),
        dir.samples_path().display()
    );
    assert!(peak < threshold, "retention must stay below the threshold");

    let spilled = acc.finish(&executor).expect("spilled report");
    assert_eq!(
        spilled.to_json(),
        in_memory.to_json(),
        "spilled and in-memory reports must be byte-identical"
    );
    println!(
        "spilled report is byte-identical to the in-memory build ({} bytes)",
        spilled.to_json().len()
    );

    let _ = std::fs::remove_dir_all(&root);
}
