//! Cross-machine sharding demo: split one campaign into three shards (as
//! three machines would each run one), merge the shard directories, and
//! verify the merged report is byte-identical to a single-machine run.
//!
//! ```bash
//! cargo run --release --example sharded_campaign
//! ```

use dl2fence_campaign::{
    expand, merge, run_shard, run_streaming, spec_fingerprint, CampaignSpec, Executor, ShardSlice,
};

const SPEC: &str = r#"
name = "sharding-demo"

[sim]
warmup_cycles = 100
sample_period = 300
samples_per_run = 1

[grid]
mesh = [8]
fir = [0.4, 0.8]
workloads = ["uniform", "shuffle"]
attack_placements = 3
benign_runs = 1
seeds = [0xDAC]

[report]
group_by = ["workload", "class"]
"#;

fn main() {
    let spec = CampaignSpec::from_toml(SPEC).expect("demo spec is valid");
    let executor = Executor::with_available_parallelism();
    let root = std::env::temp_dir().join(format!("dl2fence-sharding-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let total = expand(&spec).expect("expansion").len();
    const SHARDS: usize = 3;

    println!(
        "campaign `{}` (fingerprint {}): {total} runs split {SHARDS} ways",
        spec.name,
        spec_fingerprint(&spec),
    );

    // One machine per shard: each executes the strided slice of the matrix
    // it owns into an ordinary campaign directory (in production these run
    // concurrently on different hosts and the directories are rsync'd back).
    let mut shard_dirs = Vec::new();
    for index in 0..SHARDS {
        let shard = ShardSlice {
            index,
            count: SHARDS,
        };
        let dir = root.join(format!("shard-{index}"));
        let executed = run_shard(&executor, &spec, shard, &dir).expect("shard run");
        println!(
            "shard {index}/{SHARDS}: {executed} runs streamed to {}",
            dir.display()
        );
        shard_dirs.push(dir);
    }

    // Merge verifies the shared fingerprint, unions the run logs (refusing
    // gaps and conflicts) and rebuilds the report incrementally.
    let merged_dir = root.join("merged");
    let merged = merge(&executor, &shard_dirs, &merged_dir).expect("merge");
    println!("merged {SHARDS} shards into {}", merged_dir.display());

    // The proof: a single-machine run of the same spec, byte-for-byte.
    let single_dir = root.join("single");
    let single = run_streaming(&executor, &spec, &single_dir).expect("single-machine run");
    assert_eq!(
        merged.to_json(),
        single.to_json(),
        "merged report must be byte-identical to the single-machine run"
    );
    println!(
        "merged report is byte-identical to the single-machine run ({} bytes of JSON)",
        merged.to_json().len()
    );
    print!("{}", merged.render());

    std::fs::remove_dir_all(&root).expect("cleanup");
}
