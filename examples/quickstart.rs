//! Quickstart: simulate an 8×8 NoC under a flooding attack, train DL2Fence
//! on a small dataset, and detect + localize the attack.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use dl2fence::{Dl2Fence, FenceConfig};
use dl2fence_repro::quick_dataset;
use noc_monitor::dataset::{CollectionConfig, DatasetGenerator, ScenarioSpec};
use noc_sim::{NocConfig, NodeId};
use noc_traffic::{BenignWorkload, SyntheticPattern};

fn main() {
    let mesh = 8;
    println!("1. Collecting a training dataset ({mesh}x{mesh} mesh, flooding at FIR 0.8)...");
    // Enough placement diversity that the detector generalizes to attack
    // routes it has not seen (the corner attack analysed below).
    let train = quick_dataset(mesh, 14, 7);
    println!("   {} labeled monitoring windows collected", train.len());

    println!("2. Training the DL2Fence detector (VCO) and localizer (BOC)...");
    let mut fence = Dl2Fence::new(FenceConfig::new(mesh, mesh).with_epochs(60, 40));
    let report = fence.train(&train);
    println!(
        "   detector final training accuracy: {:.2}",
        report.detector.final_accuracy().unwrap_or(0.0)
    );

    println!("3. Simulating a fresh attack scenario (attacker 63 -> victim 0)...");
    let workload = BenignWorkload::Synthetic(SyntheticPattern::UniformRandom, 0.02);
    let spec = ScenarioSpec::attacked(workload, vec![NodeId(63)], NodeId(0), 0.8);
    let generator = DatasetGenerator::new(CollectionConfig::quick(NocConfig::mesh(mesh, mesh)));
    let fresh = generator.collect_run(&spec, 424_242);

    println!("4. Analysing the first monitoring window...");
    let analysis = fence.analyze(&fresh[0]);
    println!(
        "   attack detected: {} (probability {:.3})",
        analysis.detected, analysis.detection.probability
    );
    println!(
        "   localized victims (attack route): {:?}",
        analysis.victims.iter().map(|v| v.0).collect::<Vec<_>>()
    );
    println!(
        "   localized attackers: {:?} (ground truth: [63])",
        analysis.attackers.iter().map(|a| a.0).collect::<Vec<_>>()
    );
    println!(
        "   ground-truth victims: {:?}",
        fresh[0]
            .truth
            .victims
            .iter()
            .map(|v| v.0)
            .collect::<Vec<_>>()
    );
}
