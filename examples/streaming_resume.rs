//! Streaming + resume demo: run a campaign into a campaign directory (one
//! JSONL record per finished run), simulate a crash by chopping the run log
//! mid-record, resume it, and verify the resumed report is byte-identical
//! to the uninterrupted one.
//!
//! ```bash
//! cargo run --release --example streaming_resume
//! ```

use dl2fence_campaign::stream::RUNS_FILE;
use dl2fence_campaign::{resume, run_streaming, spec_fingerprint, CampaignSpec, Executor};

const SPEC: &str = r#"
name = "streaming-demo"

[sim]
warmup_cycles = 100
sample_period = 300
samples_per_run = 1

[grid]
mesh = [8]
fir = [0.4, 0.8]
workloads = ["uniform", "shuffle"]
attack_placements = 3
benign_runs = 1
seeds = [0xDAC]

[report]
group_by = ["workload", "class"]
"#;

fn main() {
    let spec = CampaignSpec::from_toml(SPEC).expect("demo spec is valid");
    let executor = Executor::with_available_parallelism();
    let root = std::env::temp_dir().join(format!("dl2fence-streaming-demo-{}", std::process::id()));
    let crashed = root.join("crashed");
    let full = root.join("full");
    let _ = std::fs::remove_dir_all(&root);

    println!(
        "campaign `{}` (fingerprint {}) on {} workers",
        spec.name,
        spec_fingerprint(&spec),
        executor.workers()
    );

    // Uninterrupted streaming run: every finished run lands in runs.jsonl
    // the moment it completes; report.json is written last.
    let reference = run_streaming(&executor, &spec, &full).expect("streaming run");
    println!(
        "uninterrupted: {} runs streamed to {}",
        reference.total_runs,
        full.display()
    );

    // Simulate a crash: keep the manifest and the first 4½ JSONL records.
    std::fs::create_dir_all(&crashed).expect("create crash dir");
    std::fs::copy(full.join("manifest.json"), crashed.join("manifest.json"))
        .expect("copy manifest");
    let log = std::fs::read_to_string(full.join(RUNS_FILE)).expect("read run log");
    let lines: Vec<&str> = log.lines().collect();
    let mut partial: String = lines[..4].iter().map(|l| format!("{l}\n")).collect();
    partial.push_str(&lines[4][..lines[4].len() / 2]); // the killed append
    std::fs::write(crashed.join(RUNS_FILE), partial).expect("write truncated log");
    println!(
        "simulated crash: 4 complete records (+1 torn) of {} survive",
        lines.len()
    );

    // Resume re-executes only the missing indices and rebuilds the report.
    let resumed = resume(&executor, &crashed, Some(&spec))
        .expect("resume")
        .expect("a whole-campaign directory resumes to a report");
    assert_eq!(
        resumed.to_json(),
        reference.to_json(),
        "resumed report must be byte-identical to the uninterrupted one"
    );
    println!(
        "resume re-executed {} runs; report is byte-identical ({} bytes of JSON)",
        lines.len() - 4,
        resumed.to_json().len()
    );
    print!("{}", resumed.render());

    std::fs::remove_dir_all(&root).expect("cleanup");
}
