//! Trains the two CNN models separately, saves their weights to JSON, reloads
//! them and runs the full detection → segmentation → fusion → TLM chain on a
//! live simulation — the workflow a downstream user of the library would
//! follow to deploy DL2Fence as a runtime monitor.
//!
//! ```bash
//! cargo run --release --example train_and_detect
//! ```

use dl2fence::{
    DosDetector, DosLocalizer, MultiFrameFusion, TableLikeMethod, VictimComplementingEnhancement,
};
use dl2fence_repro::quick_dataset;
use noc_monitor::{FeatureKind, FrameSampler};
use noc_sim::{NocConfig, NodeId};
use noc_traffic::{AttackScenario, FloodingAttack, SyntheticPattern};
use tinycnn::serialize::ModelExport;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mesh = 8;

    println!("1. Collecting training data and training both models...");
    // Enough placement diversity that the detector generalizes to the
    // unseen attack route simulated below.
    let train = quick_dataset(mesh, 14, 7);
    let mut detector = DosDetector::new(mesh, mesh, 7);
    detector.train(&train, FeatureKind::Vco, 60, 1);
    let mut localizer = DosLocalizer::new(mesh, mesh, 8);
    localizer.train(&train, FeatureKind::Boc, 40, 2);

    println!("2. Exporting trained weights to JSON and reloading them...");
    let detector_json = detector.export().to_json()?;
    let localizer_json = localizer.export().to_json()?;
    println!(
        "   detector export: {} bytes, localizer export: {} bytes",
        detector_json.len(),
        localizer_json.len()
    );
    let mut detector =
        DosDetector::from_export(mesh, mesh, ModelExport::from_json(&detector_json)?);
    let mut localizer =
        DosLocalizer::from_export(mesh, mesh, ModelExport::from_json(&localizer_json)?);

    println!("3. Running a live simulation with an attacker at node 56 flooding node 7...");
    // The benign pattern matches the training distribution (quick_dataset
    // collects under Uniform Random); detecting attacks under *unseen*
    // benign workloads needs them in the training set, as the paper's
    // benchmark groups do.
    let mut scenario = AttackScenario::builder(NocConfig::mesh(mesh, mesh))
        .benign(SyntheticPattern::UniformRandom, 0.02)
        .attack(FloodingAttack::new(vec![NodeId(56)], NodeId(7), 0.8))
        .seed(33)
        .build();
    scenario.run(1_500);

    println!("4. Sampling frames and running the full pipeline by hand...");
    let vco = FrameSampler::sample(scenario.network(), FeatureKind::Vco);
    let boc = FrameSampler::sample(scenario.network(), FeatureKind::Boc);
    let detection = detector.detect(&vco);
    println!(
        "   detector: p(attack) = {:.3} -> {}",
        detection.probability,
        if detection.detected {
            "ATTACK"
        } else {
            "clean"
        }
    );
    if detection.detected {
        let segmentations = localizer.segment_bundle(&boc);
        let fusion = MultiFrameFusion::for_mesh(mesh, mesh).fuse(&segmentations, mesh, mesh);
        let vce = VictimComplementingEnhancement::new(mesh, mesh);
        let victims = vce.complete(&fusion);
        let attackers = TableLikeMethod::new(mesh, mesh).localize(&fusion, &victims);
        println!(
            "   victims (attack route): {:?}",
            victims.iter().map(|v| v.0).collect::<Vec<_>>()
        );
        println!(
            "   attackers: {:?} (ground truth [56])",
            attackers.iter().map(|a| a.0).collect::<Vec<_>>()
        );
        println!(
            "   ground-truth route: {:?}",
            scenario
                .victim_nodes()
                .iter()
                .map(|v| v.0)
                .collect::<Vec<_>>()
        );
    }
    Ok(())
}
