//! Demonstrates the refined flooding DoS model: how the Flooding Injection
//! Rate (FIR) degrades a PARSEC-like workload's latency while normal
//! communication keeps flowing — the behaviour behind Figure 1.
//!
//! ```bash
//! cargo run --release --example attack_scenario
//! ```

use noc_monitor::{sweep_fir, FirSweepConfig};
use noc_sim::{NocConfig, NodeId};
use noc_traffic::{BenignWorkload, ParsecWorkload};

fn main() {
    let mesh = 8;
    let config = FirSweepConfig {
        noc: NocConfig::mesh(mesh, mesh).with_injection_queue_capacity(512),
        workload: BenignWorkload::Parsec(ParsecWorkload::Bodytrack),
        attackers: vec![NodeId(mesh * mesh - 1)],
        victim: NodeId(0),
        firs: vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
        cycles: 4_000,
        seed: 11,
    };
    println!(
        "Flooding attack (node {} -> node 0) overlaid on a PARSEC-like Bodytrack workload",
        mesh * mesh - 1
    );
    println!(
        "{:>5} {:>14} {:>14} {:>12} {:>12} {:>9}",
        "FIR", "pkt latency", "flit latency", "delivered", "created", "crashed"
    );
    for point in sweep_fir(&config) {
        println!(
            "{:>5.1} {:>14.2} {:>14.2} {:>12} {:>12} {:>9}",
            point.fir,
            point.packet_latency,
            point.flit_latency,
            point.packets_received,
            point.packets_created,
            if point.saturated { "yes" } else { "no" }
        );
    }
    println!();
    println!(
        "Benign traffic is never halted — it is only slowed down — until the attacker's\n\
         own injection queue saturates at FIR = 1 (the paper's 'system crashed' point)."
    );
}
