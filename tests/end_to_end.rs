//! End-to-end integration test: simulate, collect, train, detect, localize.

use dl2fence::evaluation::evaluate;
use dl2fence::{Dl2Fence, FenceConfig};
use dl2fence_repro::quick_dataset;
use noc_monitor::dataset::{CollectionConfig, DatasetGenerator, ScenarioSpec};
use noc_monitor::FeatureKind;
use noc_sim::{NocConfig, NodeId};
use noc_traffic::{BenignWorkload, SyntheticPattern};

/// Full loop: train on one set of attack placements, evaluate on *different*
/// placements, and require better-than-chance detection plus non-trivial
/// localization overlap.
#[test]
fn trained_fence_generalizes_to_unseen_attack_placements() {
    let mesh = 8;
    // A reasonably rich training set (the paper uses 18 placements per
    // benchmark): enough placement diversity for the detector's dense layer
    // to generalize to routes it has not seen.
    let train = quick_dataset(mesh, 14, 7);
    let mut fence = Dl2Fence::new(
        FenceConfig::new(mesh, mesh)
            .with_epochs(60, 40)
            .with_seed(77),
    );
    fence.train(&train);

    // Unseen placements.
    let workload = BenignWorkload::Synthetic(SyntheticPattern::UniformRandom, 0.02);
    let generator = DatasetGenerator::new(CollectionConfig::quick(NocConfig::mesh(mesh, mesh)));
    let test_specs = [
        ScenarioSpec::attacked(workload, vec![NodeId(61)], NodeId(5), 0.8),
        ScenarioSpec::attacked(workload, vec![NodeId(8)], NodeId(15), 0.8),
        ScenarioSpec::benign(workload),
        ScenarioSpec::benign(workload),
    ];
    let test: Vec<_> = test_specs
        .iter()
        .enumerate()
        .flat_map(|(i, s)| generator.collect_run(s, 9_000 + i as u64))
        .collect();

    let report = evaluate(&mut fence, &test);
    let detection = report.overall_detection();
    assert!(
        detection.accuracy() > 0.6,
        "detection accuracy too low: {}",
        detection.accuracy()
    );
    let localization = report.overall_localization();
    assert!(
        localization.accuracy() > 0.7,
        "localization accuracy too low: {}",
        localization.accuracy()
    );
}

/// The chosen feature split (VCO detection, BOC localization) must not be
/// worse for localization than using VCO for both tasks — the core claim of
/// Tables 1–3.
#[test]
fn boc_localization_is_at_least_as_good_as_vco_localization() {
    let mesh = 8;
    let train = quick_dataset(mesh, 6, 3);
    let test = {
        let workload = BenignWorkload::Synthetic(SyntheticPattern::UniformRandom, 0.02);
        let generator = DatasetGenerator::new(CollectionConfig::quick(NocConfig::mesh(mesh, mesh)));
        let specs = [
            ScenarioSpec::attacked(workload, vec![NodeId(62)], NodeId(1), 0.8),
            ScenarioSpec::attacked(workload, vec![NodeId(16)], NodeId(23), 0.8),
        ];
        specs
            .iter()
            .enumerate()
            .flat_map(|(i, s)| generator.collect_run(s, 5_000 + i as u64))
            .collect::<Vec<_>>()
    };

    let run = |localization_feature| {
        let mut config = FenceConfig::new(mesh, mesh)
            .with_epochs(30, 40)
            .with_seed(3);
        config.detection_feature = FeatureKind::Vco;
        config.localization_feature = localization_feature;
        let mut fence = Dl2Fence::new(config);
        fence.train(&train);
        evaluate(&mut fence, &test).overall_localization().f1()
    };

    let vco_f1 = run(FeatureKind::Vco);
    let boc_f1 = run(FeatureKind::Boc);
    assert!(
        boc_f1 + 0.05 >= vco_f1,
        "BOC localization ({boc_f1:.3}) should not be clearly worse than VCO ({vco_f1:.3})"
    );
}

/// Benign-only operation: a fence trained normally must not flood the report
/// with victims when analysing attack-free windows.
#[test]
fn benign_windows_do_not_produce_mass_false_localization() {
    let mesh = 8;
    let train = quick_dataset(mesh, 5, 5);
    let mut fence = Dl2Fence::new(
        FenceConfig::new(mesh, mesh)
            .with_epochs(40, 30)
            .with_seed(21),
    );
    fence.train(&train);

    let workload = BenignWorkload::Synthetic(SyntheticPattern::Tornado, 0.02);
    let generator = DatasetGenerator::new(CollectionConfig::quick(NocConfig::mesh(mesh, mesh)));
    let benign = generator.collect_run(&ScenarioSpec::benign(workload), 1234);
    let mut false_victims = 0usize;
    for sample in &benign {
        let report = fence.analyze(sample);
        false_victims += report.victims.len();
    }
    // Allow a few spurious pixels but not a large fraction of the mesh.
    assert!(
        false_victims < benign.len() * mesh * mesh / 4,
        "too many false victims on benign traffic: {false_victims}"
    );
}
