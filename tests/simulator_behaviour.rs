//! Cross-crate integration tests of the simulation substrate: the flooding
//! model, the traffic patterns and the monitor must interact the way the
//! paper's threat model describes.

use noc_monitor::{sweep_fir, FeatureKind, FirSweepConfig, FrameSampler};
use noc_sim::{NocConfig, NodeId};
use noc_traffic::{
    AttackScenario, BenignWorkload, FloodingAttack, ParsecWorkload, SyntheticPattern,
};

/// "Normal communication on all nodes must not be paused or halted, but just
/// be slowed down": benign packets still get delivered under a strong attack.
#[test]
fn benign_traffic_keeps_flowing_under_attack() {
    let mut scenario = AttackScenario::builder(NocConfig::mesh(8, 8))
        .benign(SyntheticPattern::UniformRandom, 0.02)
        .attack(FloodingAttack::new(vec![NodeId(63)], NodeId(0), 0.8))
        .seed(100)
        .build();
    scenario.run(4_000);
    let stats = scenario.network().stats();
    let benign_received = stats.packets_received - stats.malicious_packets_received;
    assert!(
        benign_received > 100,
        "benign traffic starved: only {benign_received} packets delivered"
    );
    assert!(stats.malicious_packets_received > 100);
}

/// Figure 1's monotone trend: latency at FIR 0.8 far exceeds latency at 0.1,
/// which in turn exceeds the attack-free baseline.
#[test]
fn latency_increases_monotonically_across_fir_regimes() {
    let config = FirSweepConfig {
        noc: NocConfig::mesh(8, 8).with_injection_queue_capacity(256),
        workload: BenignWorkload::Parsec(ParsecWorkload::Blackscholes),
        attackers: vec![NodeId(63)],
        victim: NodeId(0),
        firs: vec![0.0, 0.1, 0.8],
        cycles: 4_000,
        seed: 2,
    };
    let points = sweep_fir(&config);
    assert!(points[1].packet_latency >= points[0].packet_latency * 0.9);
    assert!(
        points[2].packet_latency > points[1].packet_latency,
        "FIR 0.8 latency {} should exceed FIR 0.1 latency {}",
        points[2].packet_latency,
        points[1].packet_latency
    );
}

/// The paper's feature-selection argument: under attack, the BOC frames of
/// the flooded direction dominate the frames of quiet directions.
#[test]
fn attack_route_dominates_boc_frames() {
    let mut scenario = AttackScenario::builder(NocConfig::mesh(8, 8))
        .benign(SyntheticPattern::UniformRandom, 0.01)
        .attack(FloodingAttack::new(vec![NodeId(7)], NodeId(0), 0.9))
        .seed(8)
        .build();
    scenario.run(2_000);
    let boc = FrameSampler::sample(scenario.network(), FeatureKind::Boc);
    // The flood flows westwards along row 0, so the East frame's row-0 pixels
    // carry the bundle maximum.
    let east = boc.frame(noc_sim::Direction::East);
    let max_pixel = boc.max_value();
    let row0_max = (0..7).map(|x| east.get(x, 0)).fold(0.0f32, f32::max);
    assert_eq!(
        row0_max, max_pixel,
        "the attack route must carry the hottest pixel"
    );
}

/// PARSEC-like workloads are much less traffic-intensive than the synthetic
/// patterns (the property that makes flooding easier to spot on PARSEC).
#[test]
fn parsec_is_sparser_than_stp_at_scale() {
    let run = |workload: BenignWorkload| {
        let mut scenario = AttackScenario::builder(NocConfig::mesh(8, 8))
            .workload(workload)
            .seed(3)
            .build();
        scenario.run(4_000);
        scenario.network().stats().packets_created
    };
    let parsec = run(BenignWorkload::Parsec(ParsecWorkload::X264));
    let stp = run(BenignWorkload::Synthetic(
        SyntheticPattern::UniformRandom,
        0.02,
    ));
    assert!(
        parsec * 2 < stp,
        "PARSEC-like traffic ({parsec}) should be well below STP ({stp})"
    );
}

/// All six synthetic patterns drive a deliverable workload on a 16×16 mesh
/// (the paper's evaluation scale).
#[test]
fn all_stp_patterns_run_on_16x16() {
    for pattern in SyntheticPattern::ALL {
        let mut scenario = AttackScenario::builder(NocConfig::mesh(16, 16))
            .benign(pattern, 0.01)
            .seed(4)
            .build();
        scenario.run(1_500);
        let stats = scenario.network().stats();
        assert!(
            stats.packets_received > 0,
            "{pattern} delivered no packets on 16x16"
        );
        assert!(
            stats.delivery_ratio() > 0.5,
            "{pattern} delivery ratio too low"
        );
    }
}

/// The monitoring window protocol: sampling BOC, resetting, and sampling
/// again yields fresh counts that reflect only the new window.
#[test]
fn boc_windows_are_independent_after_reset() {
    let mut scenario = AttackScenario::builder(NocConfig::mesh(8, 8))
        .benign(SyntheticPattern::Shuffle, 0.02)
        .seed(5)
        .build();
    scenario.run(1_000);
    let first = FrameSampler::sample(scenario.network(), FeatureKind::Boc).max_value();
    scenario.network_mut().reset_boc();
    let immediately_after = FrameSampler::sample(scenario.network(), FeatureKind::Boc).max_value();
    scenario.run(1_000);
    let second = FrameSampler::sample(scenario.network(), FeatureKind::Boc).max_value();
    assert!(first > 0.0);
    assert_eq!(immediately_after, 0.0);
    assert!(second > 0.0);
}
