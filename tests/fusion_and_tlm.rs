//! Integration of the simulator, monitor and the post-processing stages
//! (MFF + VCE + TLM) *without* the CNNs: an oracle segmentation built by
//! thresholding real BOC frames must let the fusion/TLM chain recover the
//! attacker exactly. This isolates the geometric reasoning of the framework
//! from model quality.

use dl2fence::{MultiFrameFusion, TableLikeMethod, VictimComplementingEnhancement};
use noc_monitor::{FeatureKind, FrameSampler};
use noc_sim::{Direction, NocConfig, NodeId};
use noc_traffic::{AttackScenario, FloodingAttack, SyntheticPattern};

/// Threshold-based oracle segmentation of the four BOC frames, relative to
/// the bundle maximum.
fn oracle_segmentation(
    frames: &noc_monitor::DirectionalFrames,
    relative_threshold: f32,
) -> [Vec<f32>; 4] {
    let max = frames.max_value().max(1.0);
    let mut out: [Vec<f32>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for dir in Direction::CARDINAL {
        out[dir.index()] = frames
            .frame(dir)
            .data()
            .iter()
            .map(|&v| {
                if v / max > relative_threshold {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
    }
    out
}

fn run_case(
    mesh: usize,
    attackers: Vec<NodeId>,
    victim: NodeId,
) -> (Vec<NodeId>, Vec<NodeId>, Vec<NodeId>, Vec<NodeId>) {
    let mut scenario = AttackScenario::builder(NocConfig::mesh(mesh, mesh))
        .benign(SyntheticPattern::UniformRandom, 0.005)
        .attack(FloodingAttack::new(attackers.clone(), victim, 0.9))
        .seed(42)
        .build();
    scenario.run(3_000);
    let boc = FrameSampler::sample(scenario.network(), FeatureKind::Boc);
    let segs = oracle_segmentation(&boc, 0.35);
    let fusion = MultiFrameFusion::for_mesh(mesh, mesh).fuse(&segs, mesh, mesh);
    let vce = VictimComplementingEnhancement::new(mesh, mesh);
    let victims = vce.complete(&fusion);
    let found_attackers = TableLikeMethod::new(mesh, mesh).localize(&fusion, &victims);
    (
        victims,
        found_attackers,
        scenario.victim_nodes(),
        scenario.attacker_nodes(),
    )
}

#[test]
fn oracle_pipeline_recovers_single_row_attacker() {
    // Attacker at the east end of row 0 flooding the west end.
    let (victims, attackers, truth_victims, truth_attackers) =
        run_case(8, vec![NodeId(7)], NodeId(0));
    assert_eq!(
        attackers, truth_attackers,
        "attacker must be pinpointed exactly"
    );
    // Every true routing-path victim must be recovered.
    for v in &truth_victims {
        assert!(victims.contains(v), "missing victim {v}");
    }
}

#[test]
fn oracle_pipeline_recovers_l_shaped_route_attacker() {
    // Attacker in the far corner flooding node 0: an L-shaped XY route.
    let (victims, attackers, truth_victims, truth_attackers) =
        run_case(8, vec![NodeId(63)], NodeId(0));
    assert_eq!(attackers, truth_attackers);
    for v in &truth_victims {
        assert!(victims.contains(v), "missing victim {v}");
    }
}

#[test]
fn oracle_pipeline_recovers_two_attackers_on_opposite_sides() {
    // Two attackers flooding the same victim from opposite row ends.
    let (victims, attackers, truth_victims, truth_attackers) =
        run_case(8, vec![NodeId(7), NodeId(0)], NodeId(3));
    assert_eq!(attackers, truth_attackers);
    for v in &truth_victims {
        assert!(victims.contains(v), "missing victim {v}");
    }
}

#[test]
fn oracle_pipeline_on_16x16_paper_example() {
    // The paper's Figure 4 single-attacker example: attacker 104, victim 0.
    let (victims, attackers, truth_victims, truth_attackers) =
        run_case(16, vec![NodeId(104)], NodeId(0));
    assert_eq!(attackers, truth_attackers);
    let recovered = truth_victims.iter().filter(|v| victims.contains(v)).count();
    assert!(
        recovered as f64 / truth_victims.len() as f64 > 0.9,
        "recovered only {recovered}/{} routing-path victims",
        truth_victims.len()
    );
}

#[test]
fn benign_traffic_produces_no_attackers_via_oracle() {
    let mesh = 8;
    let mut scenario = AttackScenario::builder(NocConfig::mesh(mesh, mesh))
        .benign(SyntheticPattern::UniformRandom, 0.01)
        .seed(9)
        .build();
    scenario.run(3_000);
    let boc = FrameSampler::sample(scenario.network(), FeatureKind::Boc);
    // Uniform benign traffic has no single dominant route, so a high relative
    // threshold flags few or no pixels.
    let segs = oracle_segmentation(&boc, 0.9);
    let fusion = MultiFrameFusion::for_mesh(mesh, mesh).fuse(&segs, mesh, mesh);
    let tlm = TableLikeMethod::new(mesh, mesh);
    let attackers = tlm.localize(&fusion, &fusion.victims);
    assert!(
        attackers.len() <= 2,
        "benign traffic should not implicate many attackers: {attackers:?}"
    );
}
