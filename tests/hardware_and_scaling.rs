//! Integration tests of the hardware-overhead story (Figure 5 / Table 4)
//! against the actual model sizes used by the framework.

use dl2fence::{DosDetector, DosLocalizer};
use hw_overhead::area::AcceleratorParams;
use hw_overhead::comparison::{our_work_entry, related_works};
use hw_overhead::{AreaModel, RouterParams};

/// The analytical accelerator parameter counts must stay consistent with the
/// actual CNN models the framework instantiates for a 16×16 mesh.
#[test]
fn accelerator_model_matches_real_parameter_counts() {
    let detector = DosDetector::new(16, 16, 0);
    let localizer = DosLocalizer::new(16, 16, 0);
    let detector_params = AcceleratorParams::detector();
    let localizer_params = AcceleratorParams::localizer();
    assert_eq!(detector_params.weight_count, detector.parameter_count());
    assert_eq!(localizer_params.weight_count, localizer.parameter_count());
}

/// The headline scaling claim, evaluated through the whole stack: the
/// overhead at 16×16 is roughly a quarter of the overhead at 8×8 (the paper
/// reports a 76.3 % reduction).
#[test]
fn overhead_reduction_from_8_to_16_is_about_three_quarters() {
    let model = AreaModel::new(RouterParams::default());
    let reduction = model.overhead_reduction(8, 16);
    assert!(
        (0.70..0.82).contains(&reduction),
        "unexpected reduction: {:.1}%",
        reduction * 100.0
    );
}

/// Table 4's qualitative ranking: on a 16×16 NoC our global scheme costs
/// less area than every distributed per-router scheme that reports a number.
#[test]
fn dl2fence_beats_distributed_schemes_on_large_meshes() {
    let model = AreaModel::new(RouterParams::default());
    let ours = our_work_entry(&model, 16, 0.95, 0.98, 0.91, 0.99);
    for work in related_works() {
        if let Some(overhead) = work.hardware_overhead {
            assert!(
                ours.hardware_overhead.unwrap() < overhead,
                "{} ({overhead}) should cost more than DL2Fence",
                work.work
            );
        }
    }
}

/// Larger localizer variants (the depth ablation) cost more accelerator area.
#[test]
fn deeper_localizers_cost_more_area() {
    let base = DosLocalizer::with_architecture(16, 16, 8, 2, 0);
    let deep = DosLocalizer::with_architecture(16, 16, 8, 4, 0);
    let base_area = AcceleratorParams {
        weight_count: base.parameter_count(),
        ..AcceleratorParams::localizer()
    }
    .gates();
    let deep_area = AcceleratorParams {
        weight_count: deep.parameter_count(),
        ..AcceleratorParams::localizer()
    }
    .gates();
    assert!(deep_area > base_area);
}
