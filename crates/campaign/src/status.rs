//! Read-only campaign progress inspection: `campaign status <dir>...`.
//!
//! [`status`] sizes up one or many campaign (or shard) directories without
//! modifying a single byte: per directory it reports the manifest identity,
//! stored/missing run counts with the exact gap list, torn-tail state, log
//! and spilled-sample sizes, and whether a report has landed. Over several
//! directories sharing one fingerprint it additionally computes the
//! **union** view — which run indices no directory has stored — which is
//! exactly the gap list a [`crate::merge::merge`] of those directories
//! would refuse on.
//!
//! Because the run-log scan tolerates a torn final record (the shape of an
//! in-flight append), `status` is safe to point at a directory whose
//! campaign is still running.

use crate::grid;
use crate::lease::{sched_status, SchedStatus};
use crate::spec::SpecError;
use crate::spill::{SampleStore, SpillStats};
use crate::stream::{CampaignDir, ShardSlice};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Everything [`status`] reports about one campaign directory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DirStatus {
    /// The directory, as given.
    pub path: String,
    /// Campaign name from the manifest.
    pub name: String,
    /// Spec fingerprint from the manifest.
    pub fingerprint: String,
    /// Size of the full expanded run matrix.
    pub total_runs: usize,
    /// The shard slice this directory executes, if it is a shard.
    pub shard: Option<ShardSlice>,
    /// The scheduler worker id, if this is a worker directory
    /// ([`crate::sched::work`]).
    pub worker: Option<String>,
    /// The scheduler lease table replayed from `sched/leases.jsonl`, when
    /// this directory has been (or is being) served by
    /// [`crate::sched::serve_sched`].
    pub sched: Option<SchedStatus>,
    /// Run indices this directory is responsible for (`total_runs` for a
    /// whole campaign, the slice size for a shard).
    pub owned_runs: usize,
    /// Whole records stored in `runs.jsonl`.
    pub completed: usize,
    /// Owned run indices with no stored record — what a resume would
    /// re-execute, in matrix order.
    pub missing: Vec<usize>,
    /// Whether the log ends in a torn (crash- or in-flight-truncated)
    /// record.
    pub truncated_tail: bool,
    /// Identical duplicate records in the log (compaction would drop them).
    pub duplicate_records: usize,
    /// Size of `runs.jsonl`, bytes.
    pub runs_bytes: u64,
    /// Whether `report.json` has been written.
    pub report_written: bool,
    /// The spilled sample store, when one exists.
    pub spill: Option<SpillStats>,
}

/// The aggregate [`status`] view over every inspected directory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusReport {
    /// Per-directory status, in argument order.
    pub dirs: Vec<DirStatus>,
    /// Whether every directory shares one spec fingerprint (the union view
    /// is only meaningful — and only present — when they do).
    pub fingerprints_agree: bool,
    /// Run indices stored by **no** directory, in matrix order — the gap
    /// list a merge of these directories would refuse on. `None` when
    /// fingerprints disagree.
    pub union_missing: Option<Vec<usize>>,
}

impl StatusReport {
    /// Serializes the status as pretty JSON (`campaign status --json`).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("status serialization cannot fail")
    }

    /// Renders the status as human-readable text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for dir in &self.dirs {
            let _ = writeln!(
                out,
                "{}: campaign `{}` (fingerprint {})",
                dir.path, dir.name, dir.fingerprint
            );
            let shard = match (&dir.shard, &dir.worker) {
                (Some(s), _) => format!(" [shard {}/{}]", s.index, s.count),
                (None, Some(w)) => format!(" [worker {w}]"),
                (None, None) => String::new(),
            };
            let _ = writeln!(
                out,
                "  runs: {}/{} stored{shard}, {} missing, log {} ({} bytes){}{}",
                dir.completed,
                dir.owned_runs,
                dir.missing.len(),
                human_bytes(dir.runs_bytes),
                dir.runs_bytes,
                if dir.truncated_tail {
                    ", torn tail"
                } else {
                    ""
                },
                if dir.duplicate_records > 0 {
                    format!(", {} duplicate records", dir.duplicate_records)
                } else {
                    String::new()
                },
            );
            if !dir.missing.is_empty() {
                let _ = writeln!(out, "  gaps: [{}]", render_truncated(&dir.missing, 20));
            }
            if let Some(spill) = &dir.spill {
                let _ = writeln!(
                    out,
                    "  spill: {} samples in {} batches across {} files, {} ({} bytes){}",
                    spill.samples,
                    spill.batches,
                    spill.files,
                    human_bytes(spill.bytes),
                    spill.bytes,
                    if spill.truncated_tail {
                        " (torn tail)"
                    } else {
                        ""
                    },
                );
            }
            if let Some(sched) = &dir.sched {
                render_sched(&mut out, sched);
            }
            let _ = writeln!(
                out,
                "  report: {}",
                if dir.report_written {
                    "written"
                } else {
                    "not written"
                }
            );
        }
        if self.dirs.len() > 1 {
            match &self.union_missing {
                Some(missing) if missing.is_empty() => {
                    let _ = writeln!(out, "union: complete — ready to merge");
                }
                Some(missing) => {
                    let _ = writeln!(
                        out,
                        "union: {} run indices stored nowhere: [{}]",
                        missing.len(),
                        render_truncated(missing, 20)
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "union: fingerprints disagree — these directories belong to \
                         different campaigns"
                    );
                }
            }
        }
        out
    }
}

/// Renders a byte count as a human-readable size (`813 B`, `4.2 KiB`,
/// `1.7 MiB`, ...). The raw count stays available in the `--json` output;
/// this is for the human render only.
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["KiB", "MiB", "GiB", "TiB", "PiB"];
    if bytes < 1024 {
        return format!("{bytes} B");
    }
    let mut value = bytes as f64 / 1024.0;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    // Values just under a unit boundary (e.g. 1 MiB − 1 byte ≈ 1023.9995 KiB)
    // round to "1024.0" at one decimal; roll them into the next unit instead.
    while format!("{value:.1}") == "1024.0" && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    format!("{value:.1} {}", UNITS[unit])
}

/// Renders a scheduler lease table (shared by `campaign status` and
/// `campaign watch`): the counters line plus one line per lease with its
/// worker, state and per-index progress.
pub(crate) fn render_sched(out: &mut String, sched: &SchedStatus) {
    let _ = writeln!(
        out,
        "  scheduler: {} lease(s) issued, {} active, {} completed, {} expired, \
         {} reissued",
        sched.issued, sched.active, sched.completed, sched.expired, sched.reissued
    );
    for lease in &sched.leases {
        let _ = writeln!(
            out,
            "    lease {:>3} -> {:<12} {:>9} {}/{} runs",
            lease.id, lease.worker, lease.state, lease.done, lease.runs
        );
    }
}

/// Renders up to `limit` indices, eliding the rest with a count.
fn render_truncated(indices: &[usize], limit: usize) -> String {
    let shown: Vec<String> = indices.iter().take(limit).map(|i| i.to_string()).collect();
    if indices.len() > limit {
        format!("{}, … {} more", shown.join(", "), indices.len() - limit)
    } else {
        shown.join(", ")
    }
}

/// Inspects every directory read-only and assembles the [`StatusReport`].
///
/// # Errors
///
/// Returns a [`SpecError`] if `paths` is empty, a path is not a campaign
/// directory, or a log/store is corrupt mid-file (a torn tail is reported,
/// not an error).
pub fn status(paths: &[PathBuf]) -> Result<StatusReport, SpecError> {
    if paths.is_empty() {
        return Err(SpecError::new(
            "status needs at least one campaign directory",
        ));
    }
    let mut dirs = Vec::with_capacity(paths.len());
    let mut union_stored: Option<Vec<bool>> = None;
    let mut fingerprints_agree = true;
    let mut first_fingerprint: Option<String> = None;
    for path in paths {
        let dir = CampaignDir::open(path)?;
        let manifest = dir.manifest()?;
        let runs = grid::expand(&manifest.spec)?;
        if runs.len() != manifest.total_runs {
            return Err(SpecError::new(format!(
                "manifest of {} records {} runs but its spec expands to {}; the \
                 campaign directory is corrupt",
                path.display(),
                manifest.total_runs,
                runs.len()
            )));
        }
        let index = dir.index_log(&runs)?;
        match &first_fingerprint {
            None => first_fingerprint = Some(manifest.fingerprint.clone()),
            Some(first) if *first != manifest.fingerprint => fingerprints_agree = false,
            Some(_) => {}
        }
        if fingerprints_agree {
            let stored = union_stored.get_or_insert_with(|| vec![false; runs.len()]);
            for (i, entry) in index.entries.iter().enumerate() {
                if entry.is_some() {
                    stored[i] = true;
                }
            }
        }
        // A scheduler worker directory owns no fixed slice — it holds
        // whatever its leases granted — so it is never "missing" anything;
        // the coordinator's union view is where gaps show up.
        let missing: Vec<usize> = if manifest.worker.is_some() {
            Vec::new()
        } else {
            match manifest.shard {
                Some(shard) => index
                    .missing_indices()
                    .into_iter()
                    .filter(|&i| shard.owns(i))
                    .collect(),
                None => index.missing_indices(),
            }
        };
        let owned_runs = if manifest.worker.is_some() {
            index.completed()
        } else {
            match manifest.shard {
                Some(shard) => shard.owned_indices(runs.len()).count(),
                None => runs.len(),
            }
        };
        let runs_bytes = std::fs::metadata(dir.runs_path())
            .map(|m| m.len())
            .unwrap_or(0);
        dirs.push(DirStatus {
            path: path.display().to_string(),
            name: manifest.name,
            fingerprint: manifest.fingerprint,
            total_runs: runs.len(),
            shard: manifest.shard,
            worker: manifest.worker.clone(),
            sched: if manifest.shard.is_none() && manifest.worker.is_none() {
                sched_status(path)?
            } else {
                None
            },
            owned_runs,
            completed: index.completed(),
            missing,
            truncated_tail: index.truncated_tail,
            duplicate_records: index.duplicate_records,
            runs_bytes,
            report_written: dir.report_path().exists(),
            spill: SampleStore::inspect(dir.samples_path())?,
        });
    }
    let union_missing = if fingerprints_agree {
        union_stored.map(|stored| {
            stored
                .iter()
                .enumerate()
                .filter_map(|(i, &s)| (!s).then_some(i))
                .collect()
        })
    } else {
        None
    };
    Ok(StatusReport {
        dirs,
        fingerprints_agree,
        union_missing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_bytes_picks_sensible_units() {
        assert_eq!(human_bytes(0), "0 B");
        assert_eq!(human_bytes(813), "813 B");
        assert_eq!(human_bytes(4 * 1024 + 205), "4.2 KiB");
        assert_eq!(human_bytes(1_782_579), "1.7 MiB");
        assert_eq!(human_bytes(3 * 1024 * 1024 * 1024), "3.0 GiB");
    }

    #[test]
    fn human_bytes_rolls_over_at_unit_boundaries() {
        // One byte short of a unit must not render as "1024.0 <unit>".
        assert_eq!(human_bytes(1024 * 1024 - 1), "1.0 MiB");
        assert_eq!(human_bytes(1024 * 1024 * 1024 - 1), "1.0 GiB");
        // Values that legitimately round below the boundary keep their unit.
        assert_eq!(human_bytes(1_048_474), "1023.9 KiB"); // 1023.9004 KiB
        assert_eq!(human_bytes(1024 * 1024), "1.0 MiB");
    }
}
