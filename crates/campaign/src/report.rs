//! Aggregated campaign reports: per-run measurements grouped by the spec's
//! `report.group_by` keys, plus the optional train/evaluate phase behind the
//! paper's table-style experiments.
//!
//! All aggregation flows through one incremental code path, the
//! [`ReportAccumulator`]: it folds [`RunResult`]s one at a time into running
//! group statistics and (when the eval phase is enabled) per-mesh sample
//! pools, never retaining the runs themselves — which is what lets the
//! streaming, resume and merge paths ([`crate::stream`], [`crate::merge`])
//! aggregate campaigns bigger than memory. The in-memory
//! [`CampaignReport::build_with`] is the same fold over an outcome's run
//! vector.
//!
//! Everything here is deterministic: groups appear in first-seen run order,
//! aggregates are accumulated in run-index order, and serialization goes
//! through the order-preserving `serde` value tree — so a report rendered
//! from a 16-worker campaign is byte-identical to the serial one.

use crate::executor::{CampaignOutcome, Executor, RunResult};
use crate::spec::{parse_feature, validate_group_by, CampaignSpec, EvalSpec, SpecError};
use crate::spill::SampleStore;
use dl2fence::evaluation::evaluate;
use dl2fence::{Dl2Fence, EvaluationReport, FenceConfig};
use dl2fence_telemetry::Recorder;
use noc_monitor::LabeledSample;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Aggregated measurements of one report group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupSummary {
    /// The group key as ordered `(axis, value)` pairs.
    pub key: Vec<(String, String)>,
    /// Runs aggregated into this group.
    pub runs: usize,
    /// How many of them contained an attack.
    pub attack_runs: usize,
    /// How many saturated an injection queue ("system crashed").
    pub saturated_runs: usize,
    /// Packets created across the group.
    pub packets_created: u64,
    /// Packets delivered across the group.
    pub packets_received: u64,
    /// Malicious packets delivered across the group.
    pub malicious_packets_received: u64,
    /// Mean of the per-run mean packet latencies, cycles.
    pub mean_packet_latency: f64,
    /// Mean of the per-run mean packet queueing latencies, cycles.
    pub mean_packet_queue_latency: f64,
    /// Mean of the per-run mean flit latencies, cycles.
    pub mean_flit_latency: f64,
    /// Mean of the per-run mean flit queueing latencies, cycles.
    pub mean_flit_queue_latency: f64,
    /// Largest per-run mean packet latency, cycles.
    pub max_packet_latency: f64,
    /// Total estimated energy, nanojoules.
    pub energy_nj: f64,
    /// Mean estimated power, milliwatts.
    pub mean_power_mw: f64,
}

/// Detection/localization quality of one evaluation group.
///
/// Following the paper's protocol, one DL2Fence instance is trained per
/// mesh size over that mesh's whole benchmark group; the embedded
/// [`EvaluationReport`] then breaks the held-out metrics down per benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalEntry {
    /// Mesh side of the group.
    pub mesh: usize,
    /// Training-set size (monitoring windows).
    pub train_samples: usize,
    /// Test-set size (monitoring windows).
    pub test_samples: usize,
    /// Per-benchmark detection and localization confusions.
    pub report: EvaluationReport,
}

/// The serialized output of a campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Campaign name from the spec.
    pub campaign: String,
    /// Total runs executed.
    pub total_runs: usize,
    /// Runs containing an attack.
    pub attack_runs: usize,
    /// The grouping keys the summaries use.
    pub group_by: Vec<String>,
    /// Aggregates per group, in first-seen run order.
    pub groups: Vec<GroupSummary>,
    /// Evaluation-phase results (empty unless `eval.enabled`).
    pub evaluations: Vec<EvalEntry>,
}

impl CampaignReport {
    /// Builds the report of a finished campaign, running the evaluation
    /// phase (on every available core) if the spec enables it.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if the eval phase is enabled but its
    /// configuration is invalid.
    pub fn build(outcome: &CampaignOutcome) -> Result<Self, SpecError> {
        Self::build_with(outcome, &Executor::with_available_parallelism())
    }

    /// [`Self::build`] with an explicit worker pool for the eval phase.
    ///
    /// This is the in-memory entry to the one shared aggregation path: it
    /// folds the outcome's runs through a [`ReportAccumulator`] in matrix
    /// order, exactly as the streaming resume and merge paths fold records
    /// replayed from a run log — so all three produce byte-identical
    /// reports from the same runs.
    ///
    /// Per-mesh-group training jobs are independent (each trains its own
    /// DL2Fence instance from its own spec-derived seed), so they fan out
    /// over `executor` and are reassembled in group order — the entries are
    /// byte-identical for any worker count, including the serial
    /// `Executor::new(1)`.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if the eval phase is enabled but its
    /// configuration is invalid.
    pub fn build_with(outcome: &CampaignOutcome, executor: &Executor) -> Result<Self, SpecError> {
        let mut acc = ReportAccumulator::for_spec(&outcome.spec)?;
        for run in &outcome.runs {
            acc.fold(run);
        }
        acc.finish(executor)
    }

    /// Builds a report (without an eval phase) directly from executed runs
    /// — the entry point for harnesses that drive the engine with an
    /// explicit run matrix instead of a full spec.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if `group_by` contains an unknown key (this
    /// path bypasses spec validation, so the keys are checked here).
    pub fn from_runs(
        campaign: impl Into<String>,
        group_by: Vec<String>,
        runs: &[RunResult],
    ) -> Result<Self, SpecError> {
        let mut acc = ReportAccumulator::new(campaign, group_by, EvalSpec::default())?;
        for run in runs {
            acc.fold(run);
        }
        acc.finish(&Executor::new(1))
    }

    /// Serializes the report as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }

    /// Parses a report back from JSON (the `campaign report` subcommand).
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] on malformed JSON.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        serde_json::from_str(text).map_err(|e| SpecError::new(e.to_string()))
    }

    /// Renders the report as a human-readable table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "campaign `{}`: {} runs ({} attacked), grouped by [{}]",
            self.campaign,
            self.total_runs,
            self.attack_runs,
            self.group_by.join(", ")
        );
        let _ = writeln!(
            out,
            "{:<40} {:>5} {:>9} {:>12} {:>12} {:>9} {:>12}",
            "group", "runs", "saturated", "pkt lat", "queue lat", "pkts/run", "energy (µJ)"
        );
        for g in &self.groups {
            let name: Vec<String> = g.key.iter().map(|(k, v)| format!("{k}={v}")).collect();
            let _ = writeln!(
                out,
                "{:<40} {:>5} {:>9} {:>12.2} {:>12.2} {:>9} {:>12.2}",
                name.join(" "),
                g.runs,
                g.saturated_runs,
                g.mean_packet_latency,
                g.mean_packet_queue_latency,
                g.packets_received / g.runs.max(1) as u64,
                g.energy_nj / 1_000.0,
            );
        }
        for e in &self.evaluations {
            let _ = writeln!(
                out,
                "\n--- eval: {}x{} mesh ({} train / {} test windows) ---",
                e.mesh, e.mesh, e.train_samples, e.test_samples
            );
            out.push_str(&e.report.render_table());
        }
        out
    }
}

/// The rendered value of one grouping axis for one run.
fn axis_value(run: &RunResult, axis: &str) -> String {
    match axis {
        "workload" => run.spec.workload.clone(),
        "fir" => format!("{}", run.spec.scenario.fir),
        "mesh" => format!("{}", run.spec.mesh),
        "topology" => {
            if run.spec.topology.is_empty() {
                // Hand-built pre-topology runs: legacy square-mesh meaning.
                format!("mesh{}", run.spec.mesh)
            } else {
                run.spec.topology.clone()
            }
        }
        "attack" => {
            if run.spec.attack.is_empty() && !run.spec.is_attack() {
                "none".to_string()
            } else if run.spec.attack.is_empty() {
                run.spec.scenario.attack.name().to_string()
            } else {
                run.spec.attack.clone()
            }
        }
        "seed" => format!("{}", run.spec.campaign_seed),
        "attackers" => format!("{}", run.spec.scenario.attackers.len()),
        "class" => if run.spec.is_attack() {
            "attack"
        } else {
            "benign"
        }
        .to_string(),
        other => unreachable!("validated group_by key `{other}`"),
    }
}

/// Running aggregates of one report group — the incremental form of a
/// [`GroupSummary`], finalized (sums divided into means) by
/// [`ReportAccumulator::finish`].
#[derive(Debug, Clone)]
struct GroupAccumulator {
    key: Vec<(String, String)>,
    runs: usize,
    attack_runs: usize,
    saturated_runs: usize,
    packets_created: u64,
    packets_received: u64,
    malicious_packets_received: u64,
    sum_packet_latency: f64,
    sum_packet_queue_latency: f64,
    sum_flit_latency: f64,
    sum_flit_queue_latency: f64,
    max_packet_latency: f64,
    energy_nj: f64,
    sum_power_mw: f64,
}

impl GroupAccumulator {
    fn new(key: Vec<(String, String)>) -> Self {
        GroupAccumulator {
            key,
            runs: 0,
            attack_runs: 0,
            saturated_runs: 0,
            packets_created: 0,
            packets_received: 0,
            malicious_packets_received: 0,
            sum_packet_latency: 0.0,
            sum_packet_queue_latency: 0.0,
            sum_flit_latency: 0.0,
            sum_flit_queue_latency: 0.0,
            max_packet_latency: 0.0,
            energy_nj: 0.0,
            sum_power_mw: 0.0,
        }
    }

    fn fold(&mut self, run: &RunResult) {
        self.runs += 1;
        self.attack_runs += usize::from(run.spec.is_attack());
        self.saturated_runs += usize::from(run.metrics.saturated);
        self.packets_created += run.metrics.packets_created;
        self.packets_received += run.metrics.packets_received;
        self.malicious_packets_received += run.metrics.malicious_packets_received;
        self.sum_packet_latency += run.metrics.packet_latency;
        self.sum_packet_queue_latency += run.metrics.packet_queue_latency;
        self.sum_flit_latency += run.metrics.flit_latency;
        self.sum_flit_queue_latency += run.metrics.flit_queue_latency;
        self.max_packet_latency = self.max_packet_latency.max(run.metrics.packet_latency);
        self.energy_nj += run.metrics.energy_nj;
        self.sum_power_mw += run.metrics.power_mw;
    }

    fn finish(self) -> GroupSummary {
        // Sums are folded in run-index order, so dividing once here yields
        // the same f64 bits as the historical batch `sum / n` computation.
        let n = self.runs.max(1) as f64;
        GroupSummary {
            key: self.key,
            runs: self.runs,
            attack_runs: self.attack_runs,
            saturated_runs: self.saturated_runs,
            packets_created: self.packets_created,
            packets_received: self.packets_received,
            malicious_packets_received: self.malicious_packets_received,
            mean_packet_latency: self.sum_packet_latency / n,
            mean_packet_queue_latency: self.sum_packet_queue_latency / n,
            mean_flit_latency: self.sum_flit_latency / n,
            mean_flit_queue_latency: self.sum_flit_queue_latency / n,
            max_packet_latency: self.max_packet_latency,
            energy_nj: self.energy_nj,
            mean_power_mw: self.sum_power_mw / n,
        }
    }
}

/// One per-mesh sample pool feeding the eval phase: the only thing the
/// accumulator retains from a run beyond scalar aggregates, and only when
/// the eval phase is enabled.
///
/// Samples are buffered as index-tagged per-run batches so a spill-mode
/// accumulator can move them to a [`SampleStore`] and later reunite disk
/// and memory in run-index order — which equals buffer order, because every
/// aggregation path folds in run-index order.
#[derive(Debug)]
struct EvalPool {
    /// Frame rows (the legacy mesh side; also the spill-store key).
    mesh: usize,
    /// Frame columns — pools are keyed by frame geometry `(mesh, cols)`, so
    /// topologies sharing a geometry (e.g. `mesh4` and `torus4`) train one
    /// detector over their combined samples, exactly as the frame-based
    /// detector sees them.
    cols: usize,
    seed: u64,
    /// In-memory `(run index, samples)` batches, in fold order.
    batches: Vec<(usize, Vec<LabeledSample>)>,
    /// Samples currently buffered in `batches`.
    retained: usize,
    /// Samples moved to the spill store so far.
    spilled: usize,
}

/// A spill-mode accumulator's disk side: the store plus the in-memory
/// sample count that triggers a spill.
#[derive(Debug)]
struct SpillState {
    store: SampleStore,
    threshold: usize,
}

/// One mesh pool with its samples reunited into a flat, fold-ordered
/// vector — what the eval phase trains on.
struct AssembledPool {
    mesh: usize,
    cols: usize,
    seed: u64,
    samples: Vec<LabeledSample>,
}

impl EvalPool {
    /// Flattens the pool for the eval phase. Without a store the in-memory
    /// batches concatenate in buffer order (the historical layout); with
    /// one, spilled and buffered batches interleave in run-index order —
    /// the same thing, since folds happen in run-index order everywhere.
    fn assemble(self, store: Option<&SampleStore>) -> Result<AssembledPool, SpecError> {
        let EvalPool {
            mesh,
            cols,
            seed,
            batches,
            ..
        } = self;
        let mut combined = batches;
        if let Some(store) = store {
            // A fresh in-memory batch wins over its spilled twin (they are
            // byte-identical — runs are deterministic); the set lookup keeps
            // reassembly linear in the number of spilled batches.
            let in_memory: std::collections::HashSet<usize> =
                combined.iter().map(|(i, _)| *i).collect();
            store.replay_pool(mesh, |batch| {
                if !in_memory.contains(&batch.index) {
                    combined.push((batch.index, batch.samples));
                }
            })?;
            combined.sort_by_key(|(i, _)| *i);
        }
        let samples = combined
            .into_iter()
            .flat_map(|(_, samples)| samples)
            .collect();
        Ok(AssembledPool {
            mesh,
            cols,
            seed,
            samples,
        })
    }
}

/// Streaming report builder: folds [`RunResult`]s one at a time, in run-
/// index order, into running group statistics and (when the eval phase is
/// enabled) per-mesh sample pools — **never retaining the runs
/// themselves**. [`Self::finish`] turns the aggregates into a
/// [`CampaignReport`].
///
/// This is the single aggregation code path shared by the in-memory
/// ([`CampaignReport::build_with`]), resume ([`crate::stream::resume`]) and
/// merge ([`crate::merge::merge`]) paths: feeding the same runs in the same
/// order produces byte-identical reports on all three, and because a folded
/// run is dropped immediately, report building works on campaigns whose
/// full result set would not fit in memory.
#[derive(Debug)]
pub struct ReportAccumulator {
    campaign: String,
    group_by: Vec<String>,
    eval: EvalSpec,
    total_runs: usize,
    attack_runs: usize,
    groups: Vec<GroupAccumulator>,
    eval_pools: Vec<EvalPool>,
    spill: Option<SpillState>,
    telemetry: Recorder,
}

impl ReportAccumulator {
    /// An accumulator aggregating exactly as a campaign run from `spec`
    /// would: the spec's grouping keys, name, and eval configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if `spec.report.group_by` holds an unknown
    /// key.
    pub fn for_spec(spec: &CampaignSpec) -> Result<Self, SpecError> {
        Self::new(
            spec.name.clone(),
            spec.report.group_by.clone(),
            spec.eval.clone(),
        )
    }

    /// An accumulator from explicit parts (harnesses that bypass specs).
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if `group_by` holds an unknown key.
    pub fn new(
        campaign: impl Into<String>,
        group_by: Vec<String>,
        eval: EvalSpec,
    ) -> Result<Self, SpecError> {
        validate_group_by(&group_by)?;
        Ok(ReportAccumulator {
            campaign: campaign.into(),
            group_by,
            eval,
            total_runs: 0,
            attack_runs: 0,
            groups: Vec::new(),
            eval_pools: Vec::new(),
            spill: None,
            telemetry: Recorder::default(),
        })
    }

    /// Attaches a telemetry recorder: spill-store appends are timed into a
    /// `spill.append` histogram.
    pub fn with_telemetry(mut self, recorder: Recorder) -> Self {
        self.telemetry = recorder;
        self
    }

    /// Puts the accumulator in spill mode: whenever the buffered eval
    /// samples reach `threshold`, every buffered batch is appended to
    /// `store` and dropped from memory, bounding [`Self::retained_samples`]
    /// regardless of campaign size. At [`Self::finish`] the spilled batches
    /// are replayed back (in run-index order, interleaved with whatever is
    /// still in memory), so the final report is byte-identical to the
    /// unspilled build.
    ///
    /// A spill-mode accumulator must be fed through [`Self::try_fold`]
    /// (spilling does I/O); pass `usize::MAX` to attach a store whose
    /// existing batches should feed the eval phase (stripped run logs)
    /// without ever spilling fresh folds.
    pub fn with_spill(mut self, store: SampleStore, threshold: usize) -> Self {
        self.spill = Some(SpillState { store, threshold });
        self
    }

    /// Folds one run into the aggregates. Call in run-index order — the
    /// fold order fixes both group ordering (first-seen) and the f64
    /// summation order, which is what the byte-identity guarantee rests on.
    ///
    /// # Panics
    ///
    /// Panics if a configured spill store fails to accept a batch — use
    /// [`Self::try_fold`] on spill-mode accumulators to handle the error.
    pub fn fold(&mut self, run: &RunResult) {
        self.try_fold(run)
            .expect("fold cannot fail without a spill store; use try_fold");
    }

    /// [`Self::fold`], surfacing spill I/O errors — the entry point every
    /// spill-mode caller uses.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if buffered samples hit the spill threshold
    /// and the store cannot accept them.
    pub fn try_fold(&mut self, run: &RunResult) -> Result<(), SpecError> {
        self.total_runs += 1;
        self.attack_runs += usize::from(run.spec.is_attack());
        let key: Vec<(String, String)> = self
            .group_by
            .iter()
            .map(|axis| (axis.clone(), axis_value(run, axis)))
            .collect();
        match self.groups.iter_mut().find(|g| g.key == key) {
            Some(group) => group.fold(run),
            None => {
                let mut group = GroupAccumulator::new(key);
                group.fold(run);
                self.groups.push(group);
            }
        }
        if self.eval.enabled {
            let cols = noc_sim::Topology::parse(&run.spec.topology)
                .map(|t| t.cols())
                .unwrap_or(run.spec.mesh);
            let pool = match self
                .eval_pools
                .iter_mut()
                .find(|p| p.mesh == run.spec.mesh && p.cols == cols)
            {
                Some(pool) => pool,
                None => {
                    self.eval_pools.push(EvalPool {
                        mesh: run.spec.mesh,
                        cols,
                        seed: run.spec.campaign_seed,
                        batches: Vec::new(),
                        retained: 0,
                        spilled: 0,
                    });
                    self.eval_pools.last_mut().expect("just pushed")
                }
            };
            if !run.samples.is_empty() {
                pool.retained += run.samples.len();
                pool.batches.push((run.spec.index, run.samples.clone()));
            }
            if let Some(spill) = &mut self.spill {
                if self.eval_pools.iter().map(|p| p.retained).sum::<usize>() >= spill.threshold {
                    // The spill store is keyed by frame rows alone; pools
                    // that share a row count but differ in columns would
                    // mix batches on replay.
                    for (i, a) in self.eval_pools.iter().enumerate() {
                        if self.eval_pools[..i].iter().any(|b| b.mesh == a.mesh) {
                            return Err(SpecError::new(format!(
                                "sample spilling cannot distinguish topologies sharing \
                                 {} frame rows; raise the spill threshold or split the \
                                 campaign per topology",
                                a.mesh
                            )));
                        }
                    }
                    let rec = &self.telemetry;
                    for pool in &mut self.eval_pools {
                        for (index, samples) in pool.batches.drain(..) {
                            pool.spilled += samples.len();
                            rec.time("spill.append", || {
                                spill.store.append_batch(pool.mesh, index, samples)
                            })?;
                        }
                        pool.retained = 0;
                    }
                }
            }
        }
        Ok(())
    }

    /// Runs folded so far.
    pub fn folded_runs(&self) -> usize {
        self.total_runs
    }

    /// How many eval-phase samples the accumulator currently buffers.
    ///
    /// This is the accumulator's entire per-run retention: zero unless the
    /// eval phase is enabled (the O(1)-retention guard in the test suite),
    /// and only the labeled samples — never the runs — when it is. In spill
    /// mode this stays below the configured threshold between folds; the
    /// overflow lives in the [`SampleStore`] (see [`Self::spilled_samples`]).
    pub fn retained_samples(&self) -> usize {
        self.eval_pools.iter().map(|p| p.retained).sum()
    }

    /// How many eval-phase samples have been moved to the spill store.
    pub fn spilled_samples(&self) -> usize {
        self.eval_pools.iter().map(|p| p.spilled).sum()
    }

    /// Finalizes the aggregates into a [`CampaignReport`], running the eval
    /// phase (fanned out over `executor`) if the spec enabled it. In spill
    /// mode each mesh pool is reassembled from its spilled and in-memory
    /// batches in run-index order first — byte-identical to the pool an
    /// unspilled accumulator would have buffered.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if the eval phase is enabled but its
    /// configuration is invalid, a mesh group has no samples, or a spilled
    /// batch cannot be read back.
    pub fn finish(self, executor: &Executor) -> Result<CampaignReport, SpecError> {
        let evaluations = if self.eval.enabled {
            let mut pools = Vec::with_capacity(self.eval_pools.len());
            for pool in self.eval_pools {
                pools.push(pool.assemble(self.spill.as_ref().map(|s| &s.store))?);
            }
            run_eval_phase(pools, &self.eval, executor)?
        } else {
            Vec::new()
        };
        Ok(CampaignReport {
            campaign: self.campaign,
            total_runs: self.total_runs,
            attack_runs: self.attack_runs,
            group_by: self.group_by,
            groups: self
                .groups
                .into_iter()
                .map(GroupAccumulator::finish)
                .collect(),
            evaluations,
        })
    }
}

/// Splits a group's samples into deterministic, interleaved train and test
/// sets — the single split policy shared by the eval phase and the bench
/// harness, so every attack placement contributes to both sides.
///
/// `train_fraction` is clamped to `[0.05, 0.95]`; both partitions are
/// non-empty whenever at least two samples exist.
pub fn split_samples(
    samples: Vec<LabeledSample>,
    train_fraction: f64,
) -> (Vec<LabeledSample>, Vec<LabeledSample>) {
    let fraction = train_fraction.clamp(0.05, 0.95);
    let mut train = Vec::new();
    let mut test = Vec::new();
    if fraction >= 0.5 {
        // Majority train: every `stride`-th sample goes to the test set.
        let stride = (1.0 / (1.0 - fraction)).round() as usize;
        for (i, s) in samples.into_iter().enumerate() {
            if i % stride == stride - 1 {
                test.push(s);
            } else {
                train.push(s);
            }
        }
    } else {
        // Minority train: every `stride`-th sample goes to the train set.
        let stride = (1.0 / fraction).round() as usize;
        for (i, s) in samples.into_iter().enumerate() {
            if i % stride == stride - 1 {
                train.push(s);
            } else {
                test.push(s);
            }
        }
    }
    (train, test)
}

/// One prepared per-mesh eval job: everything a worker needs to train and
/// score one DL2Fence instance, with no shared mutable state.
struct EvalJob {
    mesh: usize,
    cols: usize,
    seed: u64,
    train: Vec<LabeledSample>,
    test: Vec<LabeledSample>,
}

/// Splits executed runs' samples into train/test sets per benchmark (groups
/// by workload name in first-seen run order, then applies [`split_samples`]
/// within each group), so every benchmark and attack placement contributes
/// to both sides.
///
/// This is the collection half of the table-style experiments, shared by
/// the eval phase's callers and the bench harness.
pub fn split_by_benchmark(
    results: Vec<RunResult>,
    train_fraction: f64,
) -> (Vec<LabeledSample>, Vec<LabeledSample>) {
    let mut by_workload: Vec<(String, Vec<LabeledSample>)> = Vec::new();
    for result in results {
        match by_workload
            .iter_mut()
            .find(|(name, _)| *name == result.spec.workload)
        {
            Some((_, samples)) => samples.extend(result.samples),
            None => by_workload.push((result.spec.workload, result.samples)),
        }
    }
    let mut train = Vec::new();
    let mut test = Vec::new();
    for (_, samples) in by_workload {
        let (tr, te) = split_samples(samples, train_fraction);
        train.extend(tr);
        test.extend(te);
    }
    (train, test)
}

/// The evaluation phase: per mesh size, split the accumulated samples,
/// train one DL2Fence instance over the whole benchmark group (the paper's
/// protocol) and evaluate it on the held-out set, broken down per benchmark.
///
/// Pools arrive from the [`ReportAccumulator`] in first-seen mesh order
/// with samples in run-index order — identical to grouping a full in-memory
/// result set. Splits are prepared serially (cheap), then the expensive
/// train/evaluate jobs fan out over `executor`'s worker pool so the eval
/// phase no longer serializes the tail of a campaign. Jobs are independent
/// and reassembled in group order, so the entries are identical for any
/// worker count.
fn run_eval_phase(
    pools: Vec<AssembledPool>,
    eval: &EvalSpec,
    executor: &Executor,
) -> Result<Vec<EvalEntry>, SpecError> {
    let detection = parse_feature(&eval.detection_feature)?;
    let localization = parse_feature(&eval.localization_feature)?;

    let mut jobs = Vec::new();
    for pool in pools {
        let AssembledPool {
            mesh,
            cols,
            seed,
            samples,
        } = pool;
        if samples.is_empty() {
            return Err(SpecError::new(
                "eval phase found no samples; is sim.collect_samples enabled?",
            ));
        }
        let (train, test) = split_samples(samples, eval.train_fraction);
        if test.is_empty() {
            return Err(SpecError::new(format!(
                "eval group for the {mesh}x{cols} frame geometry has no test samples; \
                 lower eval.train_fraction or add runs"
            )));
        }
        jobs.push(EvalJob {
            mesh,
            cols,
            seed,
            train,
            test,
        });
    }

    let telemetry = executor.telemetry();
    Ok(executor.run_jobs(&jobs, |job| {
        let rec = telemetry.recorder();
        let mut config = FenceConfig::new(job.mesh, job.cols)
            .with_seed(job.seed)
            .with_epochs(eval.detector_epochs, eval.localizer_epochs);
        config.detection_feature = detection;
        config.localization_feature = localization;
        let mut fence = Dl2Fence::new(config);
        fence.set_telemetry(rec.clone());
        rec.time("eval.train", || fence.train(&job.train));
        EvalEntry {
            mesh: job.mesh,
            train_samples: job.train.len(),
            test_samples: job.test.len(),
            report: rec.time("eval.evaluate", || evaluate(&mut fence, &job.test)),
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use crate::spec::CampaignSpec;

    fn outcome(workers: usize) -> CampaignOutcome {
        let mut spec = CampaignSpec::quick("report-test");
        spec.grid.mesh = vec![4];
        spec.grid.fir = vec![0.4, 0.8];
        spec.grid.workloads = vec!["uniform".into()];
        spec.grid.attack_placements = 2;
        spec.grid.benign_runs = 1;
        spec.grid.seeds = vec![5];
        spec.sim.warmup_cycles = 50;
        spec.sim.sample_period = 150;
        spec.sim.samples_per_run = 1;
        spec.report.group_by = vec!["class".into(), "fir".into()];
        Executor::new(workers).execute(&spec).unwrap()
    }

    #[test]
    fn groups_follow_first_seen_order_and_sum_runs() {
        let report = CampaignReport::build(&outcome(1)).unwrap();
        assert_eq!(report.total_runs, 5);
        assert_eq!(report.attack_runs, 4);
        let total: usize = report.groups.iter().map(|g| g.runs).sum();
        assert_eq!(total, 5);
        assert_eq!(report.groups[0].key[0].1, "benign");
        assert!(report.groups.iter().all(|g| g.packets_received > 0));
    }

    #[test]
    fn from_runs_rejects_unknown_group_keys() {
        let outcome = outcome(1);
        let err = CampaignReport::from_runs("direct", vec!["FIR".into()], &outcome.runs)
            .expect_err("unknown key must be rejected, not panic");
        assert!(err.to_string().contains("unknown report.group_by key"));
        let ok = CampaignReport::from_runs("direct", vec!["fir".into()], &outcome.runs).unwrap();
        assert_eq!(ok.total_runs, outcome.runs.len());
        assert!(ok.evaluations.is_empty());
    }

    #[test]
    fn json_round_trip_preserves_the_report() {
        let report = CampaignReport::build(&outcome(2)).unwrap();
        let json = report.to_json();
        let back = CampaignReport::from_json(&json).unwrap();
        assert_eq!(report, back);
        assert!(!report.render().is_empty());
    }

    #[test]
    fn split_samples_partitions_deterministically() {
        let outcome = {
            let mut spec = CampaignSpec::quick("split");
            spec.grid.mesh = vec![4];
            spec.sim.collect_samples = true;
            spec.sim.warmup_cycles = 50;
            spec.sim.sample_period = 100;
            spec.sim.samples_per_run = 3;
            Executor::new(1).execute(&spec).unwrap()
        };
        let samples: Vec<LabeledSample> = outcome
            .runs
            .iter()
            .flat_map(|r| r.samples.iter().cloned())
            .collect();
        let (train, test) = split_samples(samples.clone(), 0.6);
        assert_eq!(train.len() + test.len(), samples.len());
        assert!(!train.is_empty() && !test.is_empty());
        assert!(train.len() > test.len());

        // Regression: minority-train fractions must not collapse the test
        // set (the old stride formula sent everything to train below ~1/3).
        let (train, test) = split_samples(samples.clone(), 0.25);
        assert_eq!(train.len() + test.len(), samples.len());
        assert!(!train.is_empty() && !test.is_empty());
        assert!(test.len() > train.len());
        let quarter = samples.len() as f64 * 0.25;
        assert!((train.len() as f64 - quarter).abs() <= 2.0);
    }
}
