//! Aggregated campaign reports: per-run measurements grouped by the spec's
//! `report.group_by` keys, plus the optional train/evaluate phase behind the
//! paper's table-style experiments.
//!
//! Everything here is deterministic: groups appear in first-seen run order,
//! aggregates are accumulated in run-index order, and serialization goes
//! through the order-preserving `serde` value tree — so a report rendered
//! from a 16-worker campaign is byte-identical to the serial one.

use crate::executor::{CampaignOutcome, Executor, RunResult};
use crate::spec::{parse_feature, SpecError};
use dl2fence::evaluation::evaluate;
use dl2fence::{Dl2Fence, EvaluationReport, FenceConfig};
use noc_monitor::LabeledSample;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Aggregated measurements of one report group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupSummary {
    /// The group key as ordered `(axis, value)` pairs.
    pub key: Vec<(String, String)>,
    /// Runs aggregated into this group.
    pub runs: usize,
    /// How many of them contained an attack.
    pub attack_runs: usize,
    /// How many saturated an injection queue ("system crashed").
    pub saturated_runs: usize,
    /// Packets created across the group.
    pub packets_created: u64,
    /// Packets delivered across the group.
    pub packets_received: u64,
    /// Malicious packets delivered across the group.
    pub malicious_packets_received: u64,
    /// Mean of the per-run mean packet latencies, cycles.
    pub mean_packet_latency: f64,
    /// Mean of the per-run mean packet queueing latencies, cycles.
    pub mean_packet_queue_latency: f64,
    /// Mean of the per-run mean flit latencies, cycles.
    pub mean_flit_latency: f64,
    /// Mean of the per-run mean flit queueing latencies, cycles.
    pub mean_flit_queue_latency: f64,
    /// Largest per-run mean packet latency, cycles.
    pub max_packet_latency: f64,
    /// Total estimated energy, nanojoules.
    pub energy_nj: f64,
    /// Mean estimated power, milliwatts.
    pub mean_power_mw: f64,
}

/// Detection/localization quality of one evaluation group.
///
/// Following the paper's protocol, one DL2Fence instance is trained per
/// mesh size over that mesh's whole benchmark group; the embedded
/// [`EvaluationReport`] then breaks the held-out metrics down per benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalEntry {
    /// Mesh side of the group.
    pub mesh: usize,
    /// Training-set size (monitoring windows).
    pub train_samples: usize,
    /// Test-set size (monitoring windows).
    pub test_samples: usize,
    /// Per-benchmark detection and localization confusions.
    pub report: EvaluationReport,
}

/// The serialized output of a campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Campaign name from the spec.
    pub campaign: String,
    /// Total runs executed.
    pub total_runs: usize,
    /// Runs containing an attack.
    pub attack_runs: usize,
    /// The grouping keys the summaries use.
    pub group_by: Vec<String>,
    /// Aggregates per group, in first-seen run order.
    pub groups: Vec<GroupSummary>,
    /// Evaluation-phase results (empty unless `eval.enabled`).
    pub evaluations: Vec<EvalEntry>,
}

impl CampaignReport {
    /// Builds the report of a finished campaign, running the evaluation
    /// phase (on every available core) if the spec enables it.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if the eval phase is enabled but its
    /// configuration is invalid.
    pub fn build(outcome: &CampaignOutcome) -> Result<Self, SpecError> {
        Self::build_with(outcome, &Executor::with_available_parallelism())
    }

    /// [`Self::build`] with an explicit worker pool for the eval phase.
    ///
    /// Per-mesh-group training jobs are independent (each trains its own
    /// DL2Fence instance from its own spec-derived seed), so they fan out
    /// over `executor` and are reassembled in group order — the entries are
    /// byte-identical for any worker count, including the serial
    /// `Executor::new(1)`.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if the eval phase is enabled but its
    /// configuration is invalid.
    pub fn build_with(outcome: &CampaignOutcome, executor: &Executor) -> Result<Self, SpecError> {
        let group_by = outcome.spec.report.group_by.clone();
        let groups = group_runs(&outcome.runs, &group_by);
        let evaluations = if outcome.spec.eval.enabled {
            run_eval_phase(outcome, executor)?
        } else {
            Vec::new()
        };
        Ok(CampaignReport {
            campaign: outcome.spec.name.clone(),
            total_runs: outcome.runs.len(),
            attack_runs: outcome.runs.iter().filter(|r| r.spec.is_attack()).count(),
            group_by,
            groups,
            evaluations,
        })
    }

    /// Builds a report (without an eval phase) directly from executed runs
    /// — the entry point for harnesses that drive the engine with an
    /// explicit run matrix instead of a full spec.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if `group_by` contains an unknown key (this
    /// path bypasses spec validation, so the keys are checked here).
    pub fn from_runs(
        campaign: impl Into<String>,
        group_by: Vec<String>,
        runs: &[RunResult],
    ) -> Result<Self, SpecError> {
        crate::spec::validate_group_by(&group_by)?;
        Ok(CampaignReport {
            campaign: campaign.into(),
            total_runs: runs.len(),
            attack_runs: runs.iter().filter(|r| r.spec.is_attack()).count(),
            groups: group_runs(runs, &group_by),
            group_by,
            evaluations: Vec::new(),
        })
    }

    /// Serializes the report as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }

    /// Parses a report back from JSON (the `campaign report` subcommand).
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] on malformed JSON.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        serde_json::from_str(text).map_err(|e| SpecError::new(e.to_string()))
    }

    /// Renders the report as a human-readable table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "campaign `{}`: {} runs ({} attacked), grouped by [{}]",
            self.campaign,
            self.total_runs,
            self.attack_runs,
            self.group_by.join(", ")
        );
        let _ = writeln!(
            out,
            "{:<40} {:>5} {:>9} {:>12} {:>12} {:>9} {:>12}",
            "group", "runs", "saturated", "pkt lat", "queue lat", "pkts/run", "energy (µJ)"
        );
        for g in &self.groups {
            let name: Vec<String> = g.key.iter().map(|(k, v)| format!("{k}={v}")).collect();
            let _ = writeln!(
                out,
                "{:<40} {:>5} {:>9} {:>12.2} {:>12.2} {:>9} {:>12.2}",
                name.join(" "),
                g.runs,
                g.saturated_runs,
                g.mean_packet_latency,
                g.mean_packet_queue_latency,
                g.packets_received / g.runs.max(1) as u64,
                g.energy_nj / 1_000.0,
            );
        }
        for e in &self.evaluations {
            let _ = writeln!(
                out,
                "\n--- eval: {}x{} mesh ({} train / {} test windows) ---",
                e.mesh, e.mesh, e.train_samples, e.test_samples
            );
            out.push_str(&e.report.render_table());
        }
        out
    }
}

/// The rendered value of one grouping axis for one run.
fn axis_value(run: &RunResult, axis: &str) -> String {
    match axis {
        "workload" => run.spec.workload.clone(),
        "fir" => format!("{}", run.spec.scenario.fir),
        "mesh" => format!("{}", run.spec.mesh),
        "seed" => format!("{}", run.spec.campaign_seed),
        "attackers" => format!("{}", run.spec.scenario.attackers.len()),
        "class" => if run.spec.is_attack() {
            "attack"
        } else {
            "benign"
        }
        .to_string(),
        other => unreachable!("validated group_by key `{other}`"),
    }
}

/// Groups runs by the rendered `group_by` key, preserving first-seen order,
/// and aggregates each group.
fn group_runs(runs: &[RunResult], group_by: &[String]) -> Vec<GroupSummary> {
    let mut order: Vec<Vec<(String, String)>> = Vec::new();
    let mut buckets: Vec<Vec<&RunResult>> = Vec::new();
    for run in runs {
        let key: Vec<(String, String)> = group_by
            .iter()
            .map(|axis| (axis.clone(), axis_value(run, axis)))
            .collect();
        match order.iter().position(|k| *k == key) {
            Some(i) => buckets[i].push(run),
            None => {
                order.push(key);
                buckets.push(vec![run]);
            }
        }
    }
    order
        .into_iter()
        .zip(buckets)
        .map(|(key, members)| summarize(key, &members))
        .collect()
}

fn summarize(key: Vec<(String, String)>, members: &[&RunResult]) -> GroupSummary {
    let n = members.len().max(1) as f64;
    let mean = |f: fn(&RunResult) -> f64| members.iter().map(|r| f(r)).sum::<f64>() / n;
    GroupSummary {
        key,
        runs: members.len(),
        attack_runs: members.iter().filter(|r| r.spec.is_attack()).count(),
        saturated_runs: members.iter().filter(|r| r.metrics.saturated).count(),
        packets_created: members.iter().map(|r| r.metrics.packets_created).sum(),
        packets_received: members.iter().map(|r| r.metrics.packets_received).sum(),
        malicious_packets_received: members
            .iter()
            .map(|r| r.metrics.malicious_packets_received)
            .sum(),
        mean_packet_latency: mean(|r| r.metrics.packet_latency),
        mean_packet_queue_latency: mean(|r| r.metrics.packet_queue_latency),
        mean_flit_latency: mean(|r| r.metrics.flit_latency),
        mean_flit_queue_latency: mean(|r| r.metrics.flit_queue_latency),
        max_packet_latency: members
            .iter()
            .map(|r| r.metrics.packet_latency)
            .fold(0.0, f64::max),
        energy_nj: members.iter().map(|r| r.metrics.energy_nj).sum(),
        mean_power_mw: mean(|r| r.metrics.power_mw),
    }
}

/// Splits a group's samples into deterministic, interleaved train and test
/// sets — the single split policy shared by the eval phase and the bench
/// harness, so every attack placement contributes to both sides.
///
/// `train_fraction` is clamped to `[0.05, 0.95]`; both partitions are
/// non-empty whenever at least two samples exist.
pub fn split_samples(
    samples: Vec<LabeledSample>,
    train_fraction: f64,
) -> (Vec<LabeledSample>, Vec<LabeledSample>) {
    let fraction = train_fraction.clamp(0.05, 0.95);
    let mut train = Vec::new();
    let mut test = Vec::new();
    if fraction >= 0.5 {
        // Majority train: every `stride`-th sample goes to the test set.
        let stride = (1.0 / (1.0 - fraction)).round() as usize;
        for (i, s) in samples.into_iter().enumerate() {
            if i % stride == stride - 1 {
                test.push(s);
            } else {
                train.push(s);
            }
        }
    } else {
        // Minority train: every `stride`-th sample goes to the train set.
        let stride = (1.0 / fraction).round() as usize;
        for (i, s) in samples.into_iter().enumerate() {
            if i % stride == stride - 1 {
                train.push(s);
            } else {
                test.push(s);
            }
        }
    }
    (train, test)
}

/// One prepared per-mesh eval job: everything a worker needs to train and
/// score one DL2Fence instance, with no shared mutable state.
struct EvalJob {
    mesh: usize,
    seed: u64,
    train: Vec<LabeledSample>,
    test: Vec<LabeledSample>,
}

/// Splits executed runs' samples into train/test sets per benchmark (groups
/// by workload name in first-seen run order, then applies [`split_samples`]
/// within each group), so every benchmark and attack placement contributes
/// to both sides.
///
/// This is the collection half of the table-style experiments, shared by
/// the eval phase's callers and the bench harness.
pub fn split_by_benchmark(
    results: Vec<RunResult>,
    train_fraction: f64,
) -> (Vec<LabeledSample>, Vec<LabeledSample>) {
    let mut by_workload: Vec<(String, Vec<LabeledSample>)> = Vec::new();
    for result in results {
        match by_workload
            .iter_mut()
            .find(|(name, _)| *name == result.spec.workload)
        {
            Some((_, samples)) => samples.extend(result.samples),
            None => by_workload.push((result.spec.workload, result.samples)),
        }
    }
    let mut train = Vec::new();
    let mut test = Vec::new();
    for (_, samples) in by_workload {
        let (tr, te) = split_samples(samples, train_fraction);
        train.extend(tr);
        test.extend(te);
    }
    (train, test)
}

/// The evaluation phase: per mesh size, split the collected samples, train
/// one DL2Fence instance over the whole benchmark group (the paper's
/// protocol) and evaluate it on the held-out set, broken down per benchmark.
///
/// Groups are prepared serially (cheap), then the expensive train/evaluate
/// jobs fan out over `executor`'s worker pool so the eval phase no longer
/// serializes the tail of a campaign. Jobs are independent and reassembled
/// in group order, so the entries are identical for any worker count.
fn run_eval_phase(
    outcome: &CampaignOutcome,
    executor: &Executor,
) -> Result<Vec<EvalEntry>, SpecError> {
    let eval = &outcome.spec.eval;
    let detection = parse_feature(&eval.detection_feature)?;
    let localization = parse_feature(&eval.localization_feature)?;

    // Group runs by mesh in first-seen order.
    let mut order: Vec<usize> = Vec::new();
    let mut buckets: Vec<Vec<&RunResult>> = Vec::new();
    for run in &outcome.runs {
        match order.iter().position(|&m| m == run.spec.mesh) {
            Some(i) => buckets[i].push(run),
            None => {
                order.push(run.spec.mesh);
                buckets.push(vec![run]);
            }
        }
    }

    let mut jobs = Vec::new();
    for (mesh, members) in order.into_iter().zip(buckets) {
        let samples: Vec<LabeledSample> = members
            .iter()
            .flat_map(|r| r.samples.iter().cloned())
            .collect();
        if samples.is_empty() {
            return Err(SpecError::new(
                "eval phase found no samples; is sim.collect_samples enabled?",
            ));
        }
        let (train, test) = split_samples(samples, eval.train_fraction);
        if test.is_empty() {
            return Err(SpecError::new(format!(
                "eval group for the {mesh}x{mesh} mesh has no test samples; \
                 lower eval.train_fraction or add runs"
            )));
        }
        jobs.push(EvalJob {
            mesh,
            seed: members[0].spec.campaign_seed,
            train,
            test,
        });
    }

    Ok(executor.run_jobs(&jobs, |job| {
        let mut config = FenceConfig::new(job.mesh, job.mesh)
            .with_seed(job.seed)
            .with_epochs(eval.detector_epochs, eval.localizer_epochs);
        config.detection_feature = detection;
        config.localization_feature = localization;
        let mut fence = Dl2Fence::new(config);
        fence.train(&job.train);
        EvalEntry {
            mesh: job.mesh,
            train_samples: job.train.len(),
            test_samples: job.test.len(),
            report: evaluate(&mut fence, &job.test),
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use crate::spec::CampaignSpec;

    fn outcome(workers: usize) -> CampaignOutcome {
        let mut spec = CampaignSpec::quick("report-test");
        spec.grid.mesh = vec![4];
        spec.grid.fir = vec![0.4, 0.8];
        spec.grid.workloads = vec!["uniform".into()];
        spec.grid.attack_placements = 2;
        spec.grid.benign_runs = 1;
        spec.grid.seeds = vec![5];
        spec.sim.warmup_cycles = 50;
        spec.sim.sample_period = 150;
        spec.sim.samples_per_run = 1;
        spec.report.group_by = vec!["class".into(), "fir".into()];
        Executor::new(workers).execute(&spec).unwrap()
    }

    #[test]
    fn groups_follow_first_seen_order_and_sum_runs() {
        let report = CampaignReport::build(&outcome(1)).unwrap();
        assert_eq!(report.total_runs, 5);
        assert_eq!(report.attack_runs, 4);
        let total: usize = report.groups.iter().map(|g| g.runs).sum();
        assert_eq!(total, 5);
        assert_eq!(report.groups[0].key[0].1, "benign");
        assert!(report.groups.iter().all(|g| g.packets_received > 0));
    }

    #[test]
    fn from_runs_rejects_unknown_group_keys() {
        let outcome = outcome(1);
        let err = CampaignReport::from_runs("direct", vec!["FIR".into()], &outcome.runs)
            .expect_err("unknown key must be rejected, not panic");
        assert!(err.to_string().contains("unknown report.group_by key"));
        let ok = CampaignReport::from_runs("direct", vec!["fir".into()], &outcome.runs).unwrap();
        assert_eq!(ok.total_runs, outcome.runs.len());
        assert!(ok.evaluations.is_empty());
    }

    #[test]
    fn json_round_trip_preserves_the_report() {
        let report = CampaignReport::build(&outcome(2)).unwrap();
        let json = report.to_json();
        let back = CampaignReport::from_json(&json).unwrap();
        assert_eq!(report, back);
        assert!(!report.render().is_empty());
    }

    #[test]
    fn split_samples_partitions_deterministically() {
        let outcome = {
            let mut spec = CampaignSpec::quick("split");
            spec.grid.mesh = vec![4];
            spec.sim.collect_samples = true;
            spec.sim.warmup_cycles = 50;
            spec.sim.sample_period = 100;
            spec.sim.samples_per_run = 3;
            Executor::new(1).execute(&spec).unwrap()
        };
        let samples: Vec<LabeledSample> = outcome
            .runs
            .iter()
            .flat_map(|r| r.samples.iter().cloned())
            .collect();
        let (train, test) = split_samples(samples.clone(), 0.6);
        assert_eq!(train.len() + test.len(), samples.len());
        assert!(!train.is_empty() && !test.is_empty());
        assert!(train.len() > test.len());

        // Regression: minority-train fractions must not collapse the test
        // set (the old stride formula sent everything to train below ~1/3).
        let (train, test) = split_samples(samples.clone(), 0.25);
        assert_eq!(train.len() + test.len(), samples.len());
        assert!(!train.is_empty() && !test.is_empty());
        assert!(test.len() > train.len());
        let quarter = samples.len() as f64 * 0.25;
        assert!((train.len() as f64 - quarter).abs() <= 2.0);
    }
}
