//! The `campaign` CLI: expand, run and inspect declarative scenario
//! campaigns.
//!
//! ```text
//! campaign expand <spec.toml|spec.json>
//! campaign run    <spec.toml|spec.json> [--workers N] [--out report.json] [--quiet]
//! campaign report <report.json>
//! ```

use dl2fence_campaign::{expand, CampaignReport, CampaignSpec, Executor};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "\
usage:
  campaign expand <spec.toml|spec.json>
      Print the expanded run matrix as JSON (one run per line).
  campaign run <spec.toml|spec.json> [--workers N] [--out FILE] [--quiet]
      Execute the campaign and print (or write) the aggregated JSON report.
      --workers defaults to the machine's available parallelism.
  campaign report <report.json>
      Render a saved report as a human-readable table.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("expand") => cmd_expand(args.get(1).ok_or("expand needs a spec path")?),
        Some("run") => cmd_run(&args[1..]),
        Some("report") => cmd_report(args.get(1).ok_or("report needs a report path")?),
        Some(other) => Err(format!("unknown subcommand `{other}`")),
        None => Err("missing subcommand".to_string()),
    }
}

fn load_spec(path: &str) -> Result<CampaignSpec, String> {
    CampaignSpec::from_path(Path::new(path)).map_err(|e| e.to_string())
}

fn cmd_expand(path: &str) -> Result<(), String> {
    let spec = load_spec(path)?;
    let runs = expand(&spec).map_err(|e| e.to_string())?;
    for run in &runs {
        println!(
            "{}",
            serde_json::to_string(run).expect("run serialization cannot fail")
        );
    }
    eprintln!("{} runs expanded from campaign `{}`", runs.len(), spec.name);
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let mut spec_path: Option<&str> = None;
    let mut workers: Option<usize> = None;
    let mut out: Option<PathBuf> = None;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                workers = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("invalid worker count `{v}`"))?,
                );
            }
            "--out" => out = Some(PathBuf::from(it.next().ok_or("--out needs a path")?)),
            "--quiet" => quiet = true,
            other if !other.starts_with('-') && spec_path.is_none() => {
                spec_path = Some(other);
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let spec = load_spec(spec_path.ok_or("run needs a spec path")?)?;
    let executor = match workers {
        Some(n) => Executor::new(n),
        None => Executor::with_available_parallelism(),
    };
    let runs = expand(&spec).map_err(|e| e.to_string())?;
    if !quiet {
        eprintln!(
            "campaign `{}`: {} runs on {} workers...",
            spec.name,
            runs.len(),
            executor.workers()
        );
    }
    let started = Instant::now();
    let results = executor.execute_runs(&spec.sim, &runs);
    let outcome = dl2fence_campaign::CampaignOutcome {
        spec,
        runs: results,
    };
    let report = CampaignReport::build(&outcome).map_err(|e| e.to_string())?;
    let elapsed = started.elapsed();
    if !quiet {
        eprintln!(
            "{} runs finished in {:.2}s ({:.1} runs/s)",
            report.total_runs,
            elapsed.as_secs_f64(),
            report.total_runs as f64 / elapsed.as_secs_f64().max(1e-9)
        );
    }
    let json = report.to_json();
    match out {
        Some(path) => {
            std::fs::write(&path, &json)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            if !quiet {
                eprintln!("report written to {}", path.display());
            }
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn cmd_report(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let report = CampaignReport::from_json(&text).map_err(|e| e.to_string())?;
    print!("{}", report.render());
    Ok(())
}
