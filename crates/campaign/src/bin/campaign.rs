//! The `campaign` CLI: expand, run, resume, shard, merge, compact and
//! inspect declarative scenario campaigns.
//!
//! ```text
//! campaign expand  <spec.toml|spec.json>
//! campaign run     <spec.toml|spec.json> [--workers N] [--out DIR] [--telemetry] [--quiet]
//! campaign resume  <campaign-dir> [--spec PATH] [--workers N] [--telemetry] [--quiet]
//! campaign shard   <spec.toml|spec.json> --shards N --index I --out DIR [--telemetry]
//! campaign merge   <dir>... --out DIR [--workers N] [--reexec-gaps] [--quiet]
//! campaign serve-sched <campaign-dir> [--spec PATH] [--lease-size N] [--lease-ttl SECS]
//! campaign work    <campaign-dir> --worker ID [--patience SECS] [--fail-after N]
//! campaign compact <campaign-dir> [--strip-samples] [--quiet]
//! campaign status  <dir>... [--json]
//! campaign watch   <campaign-dir> [--interval SECS] [--json]
//! campaign report  <report.json|campaign-dir> [--timings]
//! ```

use dl2fence_campaign::stream::{run_shard_expanded, run_streaming_expanded_with};
use dl2fence_campaign::{
    compact, expand, merge_with_opts, resume_with, serve_sched, spec_fingerprint, status,
    summarize_events, work, CampaignOutcome, CampaignReport, CampaignSpec, Executor, ServeOptions,
    ShardSlice, SpillPolicy, WatchSnapshot, WorkOptions, EVENTS_FILE,
};
use dl2fence_telemetry::Telemetry;
use std::io::IsTerminal as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

const USAGE: &str = "\
usage:
  campaign expand <spec.toml|spec.json>
      Print the expanded run matrix as JSON (one run per line).
  campaign run <spec.toml|spec.json> [--workers N] [--out DIR] [--quiet]
               [--spill-threshold N | --no-spill] [--telemetry]
      Execute the campaign. Without --out the aggregated JSON report goes to
      stdout; with --out DIR every finished run is streamed to DIR/runs.jsonl
      as it completes and the report lands in DIR/report.json (a DIR ending
      in .json is treated as a plain report file instead). Eval-phase sample
      pools spill to DIR/samples/ past --spill-threshold (default 65536)
      unless --no-spill buffers them all in memory.
      --workers defaults to the machine's available parallelism.
      --telemetry (needs --out DIR) streams structured span/counter/histogram
      events to DIR/events.jsonl for `watch` and `report --timings`.
  campaign resume <campaign-dir> [--spec PATH] [--workers N] [--quiet]
                  [--spill-threshold N | --no-spill] [--telemetry]
      Resume an interrupted `run --out` or `shard` campaign: verify the
      stored spec fingerprint (and PATH's, when given), re-execute only the
      missing run indices, and — for whole-campaign directories — rebuild a
      report byte-identical to an uninterrupted run. --telemetry appends to
      DIR/events.jsonl, continuing the original run's sequence numbers.
  campaign shard <spec.toml|spec.json> --shards N --index I --out DIR
                 [--workers W] [--quiet] [--telemetry]
      Execute shard I of N: the run indices congruent to I modulo N, streamed
      to an ordinary campaign directory whose manifest records the slice.
      Run one shard per machine, collect the directories, then `merge`.
  campaign merge <dir>... --out DIR [--workers N] [--reexec-gaps] [--quiet]
                 [--spill-threshold N | --no-spill]
      Merge shard directories sharing one spec fingerprint into DIR: the
      union of their run logs (identical duplicates dedupe; gaps and
      conflicts are refused) and sample stores, plus a report.json
      byte-identical to an uninterrupted single-machine run. With
      --reexec-gaps, run indices no input holds are speculatively
      re-executed locally instead of refused — runs are deterministic, so
      the report stays byte-identical.
  campaign serve-sched <campaign-dir> [--spec PATH] [--workers N] [--quiet]
                       [--lease-size N] [--lease-ttl SECS] [--poll SECS]
                       [--spill-threshold N | --no-spill] [--telemetry]
      Coordinate a worker fleet over a shared filesystem: lease bounded
      run-index batches (default --lease-size 4) to `work` processes,
      expire and re-issue leases whose worker stops reporting progress for
      --lease-ttl seconds (default 30), and — once every run is stored —
      assemble DIR/report.json byte-identical to a single-machine run
      (re-executing any residual gap indices locally). A fresh DIR needs
      --spec; re-serving an interrupted campaign re-indexes DIR and its
      workers/ and leases only what is missing. Start the coordinator
      before the workers.
  campaign work <campaign-dir> --worker ID [--workers N] [--quiet]
                [--poll SECS] [--patience SECS] [--fail-after N]
                [--strip-samples] [--telemetry]
      Join the fleet serving DIR as worker ID: request leases, execute and
      stream their runs to DIR/workers/ID, report per-run progress (the
      lease heartbeat), and exit when the coordinator announces the matrix
      drained. Restartable under the same ID without re-executing stored
      runs. --patience (default 120) bounds coordinator silence;
      --fail-after N aborts after N runs (crash injection for tests);
      --strip-samples compacts the worker directory scalar-only on exit.
  campaign compact <campaign-dir> [--strip-samples] [--quiet]
      Atomically rewrite DIR/runs.jsonl in run-index order with duplicate
      records and any torn tail dropped. With --strip-samples, move each
      record's labeled-sample payload into DIR/samples/ first and keep the
      log scalar-only; the directory stays resumable and mergeable. Do not
      compact while the campaign is still executing (records appended
      during the rewrite would be lost) — status is the live-safe command.
  campaign status <dir>... [--json]
      Read-only progress inspection: per directory the stored/missing run
      counts, exact gap list, shard slice, torn-tail state, log and spill
      sizes; over several directories, the union gap list a merge would
      refuse on. Safe to run while a campaign is executing.
  campaign watch <campaign-dir> [--interval SECS] [--json]
      Live progress for one campaign directory: completed/missing runs with
      a progress bar, throughput and ETA, per-worker utilization and
      per-stage latency quantiles (from DIR/events.jsonl when the campaign
      runs with --telemetry). Loops every --interval seconds (default 2)
      until every run is stored; --json prints one snapshot and exits.
      Read-only and torn-tail-tolerant — safe against a live campaign.
  campaign report <report.json|campaign-dir> [--timings]
      Render a saved report as a human-readable table. With --timings,
      aggregate DIR/events.jsonl instead and print the timing summary JSON
      (per-stage histograms, worker utilization, counter totals) — the
      schema committed as BENCH_campaign.json.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("expand") => cmd_expand(args.get(1).ok_or("expand needs a spec path")?),
        Some("run") => cmd_run(&args[1..]),
        Some("resume") => cmd_resume(&args[1..]),
        Some("shard") => cmd_shard(&args[1..]),
        Some("merge") => cmd_merge(&args[1..]),
        Some("serve-sched") => cmd_serve_sched(&args[1..]),
        Some("work") => cmd_work(&args[1..]),
        Some("compact") => cmd_compact(&args[1..]),
        Some("status") => cmd_status(&args[1..]),
        Some("watch") => cmd_watch(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some(other) => Err(format!("unknown subcommand `{other}`")),
        None => Err("missing subcommand".to_string()),
    }
}

/// Shared flags of the executing subcommands (`run`/`resume`/`shard`/
/// `merge`). Positional arguments collect into `paths` (`run`, `resume` and
/// `shard` use exactly one; `merge` takes any number of input directories).
#[derive(Debug, Default)]
struct ExecFlags {
    paths: Vec<String>,
    spec: Option<String>,
    workers: Option<usize>,
    out: Option<PathBuf>,
    shards: Option<usize>,
    index: Option<usize>,
    spill_threshold: Option<usize>,
    no_spill: bool,
    telemetry: bool,
    quiet: bool,
}

impl ExecFlags {
    fn parse(
        args: &[String],
        allow_out: bool,
        allow_spec: bool,
        allow_shard: bool,
        allow_spill: bool,
    ) -> Result<Self, String> {
        let mut flags = ExecFlags::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--workers" => {
                    let v = it.next().ok_or("--workers needs a value")?;
                    flags.workers = Some(
                        v.parse::<usize>()
                            .map_err(|_| format!("invalid worker count `{v}`"))?,
                    );
                }
                "--out" if allow_out => {
                    flags.out = Some(PathBuf::from(it.next().ok_or("--out needs a path")?));
                }
                "--spec" if allow_spec => {
                    flags.spec = Some(it.next().ok_or("--spec needs a path")?.clone());
                }
                "--shards" if allow_shard => {
                    let v = it.next().ok_or("--shards needs a value")?;
                    flags.shards = Some(
                        v.parse::<usize>()
                            .map_err(|_| format!("invalid shard count `{v}`"))?,
                    );
                }
                "--index" if allow_shard => {
                    let v = it.next().ok_or("--index needs a value")?;
                    flags.index = Some(
                        v.parse::<usize>()
                            .map_err(|_| format!("invalid shard index `{v}`"))?,
                    );
                }
                "--spill-threshold" if allow_spill => {
                    let v = it.next().ok_or("--spill-threshold needs a value")?;
                    flags.spill_threshold = Some(
                        v.parse::<usize>()
                            .map_err(|_| format!("invalid spill threshold `{v}`"))?,
                    );
                }
                "--no-spill" if allow_spill => flags.no_spill = true,
                "--telemetry" => flags.telemetry = true,
                "--quiet" => flags.quiet = true,
                other if !other.starts_with('-') => {
                    flags.paths.push(other.to_string());
                }
                other => return Err(format!("unexpected argument `{other}`")),
            }
        }
        if flags.no_spill && flags.spill_threshold.is_some() {
            return Err("--no-spill and --spill-threshold are mutually exclusive".to_string());
        }
        Ok(flags)
    }

    fn spill_policy(&self) -> SpillPolicy {
        if self.no_spill {
            SpillPolicy::InMemory
        } else {
            match self.spill_threshold {
                Some(threshold) => SpillPolicy::Threshold(threshold),
                None => SpillPolicy::default(),
            }
        }
    }

    fn single_path(&self, what: &str) -> Result<&str, String> {
        match self.paths.as_slice() {
            [path] => Ok(path),
            [] => Err(format!("{what} needs a path")),
            _ => Err(format!("{what} takes exactly one path")),
        }
    }

    fn executor(&self) -> Executor {
        match self.workers {
            Some(n) => Executor::new(n),
            None => Executor::with_available_parallelism(),
        }
    }
}

fn load_spec(path: &str) -> Result<CampaignSpec, String> {
    CampaignSpec::from_path(Path::new(path)).map_err(|e| e.to_string())
}

fn cmd_expand(path: &str) -> Result<(), String> {
    let spec = load_spec(path)?;
    let runs = expand(&spec).map_err(|e| e.to_string())?;
    for run in &runs {
        println!(
            "{}",
            serde_json::to_string(run).expect("run serialization cannot fail")
        );
    }
    eprintln!("{} runs expanded from campaign `{}`", runs.len(), spec.name);
    Ok(())
}

/// Builds the telemetry handle for an executing subcommand: a JSONL sink
/// on `dir/events.jsonl`, created fresh (`run`/`shard`) or appended to
/// with continued sequence numbers (`resume`).
fn telemetry_in(dir: &Path, append: bool) -> Result<Telemetry, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let path = dir.join(EVENTS_FILE);
    let telemetry = if append {
        Telemetry::append_jsonl_file(&path)
    } else {
        Telemetry::to_jsonl_file(&path)
    };
    telemetry.map_err(|e| format!("cannot open event log {}: {e}", path.display()))
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let flags = ExecFlags::parse(args, true, false, false, true)?;
    let spec = load_spec(flags.single_path("run")?)?;
    let mut executor = flags.executor();
    let runs = expand(&spec).map_err(|e| e.to_string())?;
    if !flags.quiet {
        eprintln!(
            "campaign `{}` (fingerprint {}): {} runs on {} workers...",
            spec.name,
            spec_fingerprint(&spec),
            runs.len(),
            executor.workers()
        );
    }
    let started = Instant::now();
    let (report, written_to) = match &flags.out {
        // A .json path keeps the original single-file behaviour; anything
        // else is a campaign directory that streams runs.jsonl.
        Some(path) if path.extension().and_then(|e| e.to_str()) != Some("json") => {
            if flags.telemetry {
                executor = executor.with_telemetry(telemetry_in(path, false)?);
            }
            let report =
                run_streaming_expanded_with(&executor, &spec, &runs, path, flags.spill_policy())
                    .map_err(|e| e.to_string())?;
            (report, Some(path.join("report.json")))
        }
        _ => {
            if flags.spill_threshold.is_some() {
                return Err(
                    "--spill-threshold needs a campaign directory (run with --out DIR)".to_string(),
                );
            }
            if flags.telemetry {
                return Err(
                    "--telemetry needs a campaign directory (run with --out DIR)".to_string(),
                );
            }
            let results = executor.execute_runs(&spec.sim, &runs);
            let outcome = CampaignOutcome {
                spec,
                runs: results,
            };
            let report =
                CampaignReport::build_with(&outcome, &executor).map_err(|e| e.to_string())?;
            if let Some(path) = &flags.out {
                std::fs::write(path, report.to_json())
                    .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            }
            (report, flags.out.clone())
        }
    };
    finish(&report, started, written_to.as_deref(), flags.quiet);
    Ok(())
}

fn cmd_resume(args: &[String]) -> Result<(), String> {
    let flags = ExecFlags::parse(args, false, true, false, true)?;
    let dir = flags.single_path("resume")?;
    let expected = match &flags.spec {
        Some(path) => Some(load_spec(path)?),
        None => None,
    };
    let mut executor = flags.executor();
    if flags.telemetry {
        executor = executor.with_telemetry(telemetry_in(Path::new(dir), true)?);
    }
    if !flags.quiet {
        eprintln!(
            "resuming campaign in {dir} on {} workers...",
            executor.workers()
        );
    }
    let started = Instant::now();
    match resume_with(&executor, dir, expected.as_ref(), flags.spill_policy())
        .map_err(|e| e.to_string())?
    {
        Some(report) => finish(
            &report,
            started,
            Some(&Path::new(dir).join("report.json")),
            flags.quiet,
        ),
        // A shard directory: runs are complete, but a shard builds no
        // report — that is merge's job.
        None => {
            if !flags.quiet {
                eprintln!(
                    "shard in {dir} is complete ({:.2}s); merge the shards to build the report",
                    started.elapsed().as_secs_f64()
                );
            }
        }
    }
    Ok(())
}

fn cmd_shard(args: &[String]) -> Result<(), String> {
    let flags = ExecFlags::parse(args, true, false, true, false)?;
    let spec = load_spec(flags.single_path("shard")?)?;
    let shard = ShardSlice {
        index: flags.index.ok_or("shard needs --index I")?,
        count: flags.shards.ok_or("shard needs --shards N")?,
    };
    let out = flags.out.clone().ok_or("shard needs --out DIR")?;
    let mut executor = flags.executor();
    if flags.telemetry {
        executor = executor.with_telemetry(telemetry_in(&out, false)?);
    }
    let runs = expand(&spec).map_err(|e| e.to_string())?;
    if !flags.quiet {
        eprintln!(
            "campaign `{}` (fingerprint {}): shard {}/{} on {} workers...",
            spec.name,
            spec_fingerprint(&spec),
            shard.index,
            shard.count,
            executor.workers()
        );
    }
    let started = Instant::now();
    let executed =
        run_shard_expanded(&executor, &spec, &runs, shard, &out).map_err(|e| e.to_string())?;
    if !flags.quiet {
        eprintln!(
            "shard {}/{}: {executed} of {} runs streamed to {} in {:.2}s",
            shard.index,
            shard.count,
            runs.len(),
            out.display(),
            started.elapsed().as_secs_f64()
        );
    }
    Ok(())
}

fn cmd_merge(args: &[String]) -> Result<(), String> {
    let mut reexec_gaps = false;
    let args: Vec<String> = args
        .iter()
        .filter(|arg| {
            let hit = arg.as_str() == "--reexec-gaps";
            reexec_gaps |= hit;
            !hit
        })
        .cloned()
        .collect();
    let flags = ExecFlags::parse(&args, true, false, false, true)?;
    if flags.paths.is_empty() {
        return Err("merge needs at least one shard directory".to_string());
    }
    if flags.telemetry {
        return Err("merge does not execute runs; --telemetry applies to run/resume/shard".into());
    }
    let out = flags.out.clone().ok_or("merge needs --out DIR")?;
    let inputs: Vec<PathBuf> = flags.paths.iter().map(PathBuf::from).collect();
    let executor = flags.executor();
    if !flags.quiet {
        eprintln!(
            "merging {} campaign director{} into {}...",
            inputs.len(),
            if inputs.len() == 1 { "y" } else { "ies" },
            out.display()
        );
    }
    let started = Instant::now();
    let report = merge_with_opts(&executor, &inputs, &out, flags.spill_policy(), reexec_gaps)
        .map_err(|e| e.to_string())?;
    finish(
        &report,
        started,
        Some(&out.join("report.json")),
        flags.quiet,
    );
    Ok(())
}

/// Parses a positive seconds value (fractions allowed) for the scheduler's
/// duration flags.
fn parse_secs(flag: &str, value: &str) -> Result<Duration, String> {
    let secs = value
        .parse::<f64>()
        .ok()
        .filter(|s| s.is_finite() && *s > 0.0)
        .ok_or_else(|| format!("invalid {flag} `{value}` (need positive seconds)"))?;
    Ok(Duration::from_secs_f64(secs))
}

fn cmd_serve_sched(args: &[String]) -> Result<(), String> {
    let mut opts = ServeOptions::default();
    let mut spec_path = None;
    let mut workers = None;
    let mut spill_threshold = None;
    let mut no_spill = false;
    let mut telemetry = false;
    let mut quiet = false;
    let mut paths = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--spec" => spec_path = Some(it.next().ok_or("--spec needs a path")?.clone()),
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                workers = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("invalid worker count `{v}`"))?,
                );
            }
            "--lease-size" => {
                let v = it.next().ok_or("--lease-size needs a value")?;
                opts.lease_size = v
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n > 0)
                    .ok_or_else(|| format!("invalid lease size `{v}`"))?;
            }
            "--lease-ttl" => {
                let v = it.next().ok_or("--lease-ttl needs seconds")?;
                opts.lease_ttl = parse_secs("--lease-ttl", v)?;
            }
            "--poll" => {
                let v = it.next().ok_or("--poll needs seconds")?;
                opts.poll = parse_secs("--poll", v)?;
            }
            "--spill-threshold" => {
                let v = it.next().ok_or("--spill-threshold needs a value")?;
                spill_threshold = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("invalid spill threshold `{v}`"))?,
                );
            }
            "--no-spill" => no_spill = true,
            "--telemetry" => telemetry = true,
            "--quiet" => quiet = true,
            other if !other.starts_with('-') => paths.push(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if no_spill && spill_threshold.is_some() {
        return Err("--no-spill and --spill-threshold are mutually exclusive".to_string());
    }
    let [dir] = paths.as_slice() else {
        return Err("serve-sched takes exactly one campaign directory".to_string());
    };
    opts.spill = if no_spill {
        SpillPolicy::InMemory
    } else {
        match spill_threshold {
            Some(threshold) => SpillPolicy::Threshold(threshold),
            None => SpillPolicy::default(),
        }
    };
    let spec = match &spec_path {
        Some(path) => Some(load_spec(path)?),
        None => None,
    };
    let mut executor = match workers {
        Some(n) => Executor::new(n),
        None => Executor::with_available_parallelism(),
    };
    let dir_path = Path::new(dir);
    if telemetry {
        // A re-served campaign appends, continuing the original sequence
        // numbers — exactly like `resume`.
        let append = dir_path.join(EVENTS_FILE).exists();
        executor = executor.with_telemetry(telemetry_in(dir_path, append)?);
    }
    if !quiet {
        eprintln!(
            "serving campaign in {dir}: leases of {} run(s), ttl {:.1}s...",
            opts.lease_size,
            opts.lease_ttl.as_secs_f64()
        );
    }
    let started = Instant::now();
    let report =
        serve_sched(&executor, dir_path, spec.as_ref(), &opts).map_err(|e| e.to_string())?;
    finish(&report, started, Some(&dir_path.join("report.json")), quiet);
    Ok(())
}

fn cmd_work(args: &[String]) -> Result<(), String> {
    let mut worker_id = None;
    let mut poll = None;
    let mut patience = None;
    let mut fail_after = None;
    let mut strip_samples = false;
    let mut workers = None;
    let mut telemetry = false;
    let mut quiet = false;
    let mut paths = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--worker" => worker_id = Some(it.next().ok_or("--worker needs an id")?.clone()),
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                workers = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("invalid worker count `{v}`"))?,
                );
            }
            "--poll" => {
                let v = it.next().ok_or("--poll needs seconds")?;
                poll = Some(parse_secs("--poll", v)?);
            }
            "--patience" => {
                let v = it.next().ok_or("--patience needs seconds")?;
                patience = Some(parse_secs("--patience", v)?);
            }
            "--fail-after" => {
                let v = it.next().ok_or("--fail-after needs a run count")?;
                fail_after = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("invalid --fail-after `{v}`"))?,
                );
            }
            "--strip-samples" => strip_samples = true,
            "--telemetry" => telemetry = true,
            "--quiet" => quiet = true,
            other if !other.starts_with('-') => paths.push(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let [dir] = paths.as_slice() else {
        return Err("work takes exactly one (coordinator) campaign directory".to_string());
    };
    let mut opts = WorkOptions::named(worker_id.ok_or("work needs --worker ID")?);
    if let Some(poll) = poll {
        opts.poll = poll;
    }
    if let Some(patience) = patience {
        opts.patience = patience;
    }
    opts.fail_after = fail_after;
    opts.strip_samples = strip_samples;
    let mut executor = match workers {
        Some(n) => Executor::new(n),
        None => Executor::with_available_parallelism(),
    };
    if telemetry {
        let wdir = Path::new(dir).join("workers").join(&opts.worker);
        let append = wdir.join(EVENTS_FILE).exists();
        executor = executor.with_telemetry(telemetry_in(&wdir, append)?);
    }
    if !quiet {
        eprintln!(
            "worker `{}` joining the fleet serving {dir}...",
            opts.worker
        );
    }
    let started = Instant::now();
    let outcome = work(&executor, Path::new(dir), &opts).map_err(|e| e.to_string())?;
    if !quiet {
        eprintln!(
            "worker `{}`: {} run(s) executed over {} lease(s) in {:.2}s",
            outcome.worker,
            outcome.executed,
            outcome.leases,
            started.elapsed().as_secs_f64()
        );
    }
    Ok(())
}

fn cmd_compact(args: &[String]) -> Result<(), String> {
    let mut strip_samples = false;
    let mut quiet = false;
    let mut paths = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--strip-samples" => strip_samples = true,
            "--quiet" => quiet = true,
            other if !other.starts_with('-') => paths.push(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let [dir] = paths.as_slice() else {
        return Err("compact takes exactly one campaign directory".to_string());
    };
    let stats = compact(dir, strip_samples).map_err(|e| e.to_string())?;
    if !quiet {
        eprintln!(
            "compacted {dir}: {} records, {} duplicate(s) dropped{}{}; {} -> {} bytes",
            stats.records,
            stats.dropped_duplicates,
            if stats.healed_torn_tail {
                ", torn tail healed"
            } else {
                ""
            },
            if stats.stripped_samples > 0 {
                format!(", {} samples stripped to samples/", stats.stripped_samples)
            } else {
                String::new()
            },
            stats.bytes_before,
            stats.bytes_after,
        );
    }
    Ok(())
}

fn cmd_status(args: &[String]) -> Result<(), String> {
    let mut json = false;
    let mut paths = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            other if !other.starts_with('-') => paths.push(PathBuf::from(other)),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let report = status(&paths).map_err(|e| e.to_string())?;
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
    Ok(())
}

fn finish(report: &CampaignReport, started: Instant, written_to: Option<&Path>, quiet: bool) {
    let elapsed = started.elapsed();
    if !quiet {
        eprintln!(
            "{} runs finished in {:.2}s ({:.1} runs/s)",
            report.total_runs,
            elapsed.as_secs_f64(),
            report.total_runs as f64 / elapsed.as_secs_f64().max(1e-9)
        );
    }
    match written_to {
        Some(path) => {
            if !quiet {
                eprintln!("report written to {}", path.display());
            }
        }
        None => println!("{}", report.to_json()),
    }
}

fn cmd_watch(args: &[String]) -> Result<(), String> {
    let mut json = false;
    let mut interval = 2.0f64;
    let mut paths = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--interval" => {
                let v = it.next().ok_or("--interval needs seconds")?;
                interval = v
                    .parse::<f64>()
                    .map_err(|_| format!("invalid interval `{v}`"))?
                    .max(0.1);
            }
            other if !other.starts_with('-') => paths.push(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let [dir] = paths.as_slice() else {
        return Err("watch takes exactly one campaign directory".to_string());
    };
    let path = Path::new(dir);
    if json {
        // One machine-readable snapshot and exit — the CI entry point.
        let snapshot = WatchSnapshot::capture(path).map_err(|e| e.to_string())?;
        println!("{}", snapshot.to_json());
        return Ok(());
    }
    let clear = std::io::stdout().is_terminal();
    loop {
        let snapshot = WatchSnapshot::capture(path).map_err(|e| e.to_string())?;
        if clear {
            // Home the cursor and wipe the previous frame.
            print!("\x1b[H\x1b[2J");
        }
        print!("{}", snapshot.render());
        if snapshot.complete() {
            break;
        }
        std::thread::sleep(Duration::from_secs_f64(interval));
    }
    Ok(())
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    let mut timings = false;
    let mut paths = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--timings" => timings = true,
            other if !other.starts_with('-') => paths.push(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let [path] = paths.as_slice() else {
        return Err("report takes exactly one report path or campaign directory".to_string());
    };
    if timings {
        // Aggregate the telemetry event log instead of the run report.
        let file = if Path::new(path).is_dir() {
            Path::new(path).join(EVENTS_FILE)
        } else {
            PathBuf::from(path)
        };
        let summary = summarize_events(&file).map_err(|e| e.to_string())?;
        if summary.events == 0 {
            return Err(format!(
                "{} holds no telemetry events; run the campaign with --telemetry",
                file.display()
            ));
        }
        println!("{}", summary.to_json());
        return Ok(());
    }
    // Accept either a report file or a campaign directory.
    let file = if Path::new(path).is_dir() {
        Path::new(path).join("report.json")
    } else {
        PathBuf::from(path)
    };
    let text = std::fs::read_to_string(&file)
        .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
    let report = CampaignReport::from_json(&text).map_err(|e| e.to_string())?;
    print!("{}", report.render());
    Ok(())
}
