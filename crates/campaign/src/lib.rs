//! # dl2fence-campaign — a declarative, parallel scenario-campaign engine
//!
//! DL2Fence's evaluation (Tables 1–3, Figures 1 and 4 of the paper) is built
//! from hundreds of independent simulate→sample→detect→localize runs across
//! mesh sizes, flooding injection rates, attack placements and benign
//! workloads. This crate turns that pattern into infrastructure:
//!
//! 1. **Declarative specs** — [`CampaignSpec`] describes a whole experiment
//!    campaign as a cartesian parameter grid, written as TOML (parsed by the
//!    built-in [`minitoml`] reader) or JSON.
//! 2. **Deterministic expansion** — [`grid::expand`] turns the grid into a
//!    dense run matrix; every run's seed derives from the spec alone via
//!    [`grid::derive_run_seed`].
//! 3. **Parallel execution** — [`Executor`] fans the matrix out over a
//!    worker pool (`std::thread::scope`) and reassembles results in matrix
//!    order, so **parallel and serial execution produce byte-identical
//!    output**.
//! 4. **Aggregated reports** — [`CampaignReport`] groups per-run
//!    measurements by declarative keys and serializes as deterministic
//!    JSON; an optional train/evaluate phase (fanned out over the same
//!    worker pool) reproduces the paper's table-style detection/
//!    localization metrics. All aggregation is incremental: the
//!    [`ReportAccumulator`] folds runs one at a time and retains none of
//!    them, so campaigns bigger than memory still aggregate.
//! 5. **Streaming & resume** — [`stream`] persists every finished run as a
//!    JSONL record in a campaign directory the moment it completes, and
//!    [`resume`] re-executes only the missing run indices after a crash,
//!    rebuilding a byte-identical report (the stored [`spec_fingerprint`]
//!    guards against mixing results from different specs).
//! 6. **Cross-machine sharding** — [`run_shard`] executes a deterministic
//!    strided slice of the run matrix into an ordinary campaign directory,
//!    and [`merge`](merge::merge) reunites shard directories (verifying
//!    fingerprints, deduplicating identical records, refusing gaps and
//!    conflicts) into a report byte-identical to a single-machine run.
//! 7. **Bounded memory end to end** — the eval phase's per-mesh sample
//!    pools (the one remaining campaign-sized buffer) spill to a
//!    [`spill::SampleStore`] inside the campaign directory past a
//!    configurable threshold ([`SpillPolicy`]), [`compact`] rewrites
//!    `runs.jsonl` atomically into index-ordered, deduplicated form
//!    (optionally stripping sample payloads into the store), and
//!    [`status`] inspects any set of campaign directories read-only.
//! 8. **Dynamic fleet scheduling** — [`sched::serve_sched`] turns a
//!    campaign directory into a coordinator that leases bounded run-index
//!    batches ([`lease::Lease`]) to any number of [`sched::work`] workers
//!    over a shared filesystem, expiring and re-issuing abandoned leases;
//!    idempotent replay plus speculative gap re-execution at assembly keep
//!    the final report byte-identical to a single-machine run even after
//!    worker crashes.
//!
//! The `campaign` binary exposes the engine on the command line
//! (`expand` / `run` / `resume` / `shard` / `merge` / `compact` /
//! `status` / `report` / `serve-sched` / `work`), and the benchmark
//! harness's table and figure binaries are built on top of it.
//!
//! ## Quick example
//!
//! ```
//! use dl2fence_campaign::{CampaignReport, CampaignSpec, Executor};
//!
//! let spec = CampaignSpec::from_toml(r#"
//!     name = "smoke"
//!     [sim]
//!     warmup_cycles = 50
//!     sample_period = 100
//!     samples_per_run = 1
//!     [grid]
//!     mesh = [4]
//!     fir = [0.8]
//!     workloads = ["uniform"]
//!     attack_placements = 2
//!     benign_runs = 1
//!     seeds = [7]
//! "#).unwrap();
//! let outcome = Executor::new(2).execute(&spec).unwrap();
//! let report = CampaignReport::build(&outcome).unwrap();
//! assert_eq!(report.total_runs, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compact;
pub mod events;
pub mod executor;
pub mod grid;
pub mod lease;
pub mod merge;
pub mod minitoml;
pub mod report;
pub mod sched;
pub mod spec;
pub mod spill;
pub mod status;
pub mod stream;
pub mod watch;

pub use compact::{compact, CompactStats};
pub use events::{
    read_events, segment_sessions, summarize, summarize_events, CounterTotal, EventLog,
    SessionSummary, StageTiming, TimingSummary, WorkerUtilization, TIMINGS_SCHEMA,
};
pub use executor::{execute_run, CampaignOutcome, Executor, JobPanic, RunMetrics, RunResult};
pub use grid::{derive_run_seed, expand, runs_from_scenarios, RunSpec};
pub use lease::{sched_status, Lease, LeaseInfo, SchedStatus};
pub use merge::{merge, merge_with, merge_with_opts};
pub use report::{split_by_benchmark, CampaignReport, EvalEntry, GroupSummary, ReportAccumulator};
pub use sched::{
    serve_sched, work, Grant, SchedConfig, SchedCounters, Scheduler, ServeOptions, WorkOptions,
    WorkOutcome,
};
pub use spec::{
    parse_feature, parse_workload, validate_group_by, CampaignSpec, EvalSpec, GridSpec, ReportSpec,
    SimParams, SpecError,
};
pub use spill::{SampleBatch, SampleStore, SpillStats};
pub use status::{human_bytes, status, DirStatus, StatusReport};
pub use stream::{
    resume, resume_with, run_shard, run_streaming, spec_fingerprint, CampaignDir, LogIndex,
    Manifest, RecordEntry, ShardSlice, SpillPolicy, DEFAULT_SPILL_THRESHOLD, EVENTS_FILE,
};
pub use watch::WatchSnapshot;
