//! Streaming, resumable, shardable campaign execution.
//!
//! A long-running campaign streams every finished run to a **campaign
//! directory** as it completes, making the campaign crash-durable: kill it
//! at any point and [`resume`] picks up where the log ends. A campaign can
//! also be split across machines with [`run_shard`] — each shard executes a
//! deterministic slice of the run matrix into an ordinary campaign
//! directory — and reunited by [`crate::merge::merge`].
//!
//! ```text
//! <dir>/manifest.json   campaign name, spec fingerprint, run count, spec,
//!                       and (for shard directories) the shard slice
//! <dir>/runs.jsonl      one JSONL record per finished run, appended as
//!                       results complete (index-tagged, any order)
//! <dir>/report.json     the final aggregated report (written last; absent
//!                       in shard directories — a shard is not a campaign)
//! ```
//!
//! Workers append each [`RunResult`] the moment it finishes — and nothing
//! retains it afterwards: report building replays the persisted log through
//! a [`ReportAccumulator`] one record at a time ([`CampaignDir::replay`]),
//! so a campaign bigger than memory streams through aggregation instead of
//! materializing its full result set. [`resume`] scans the JSONL into a
//! byte-offset [`LogIndex`], verifies the stored [`spec_fingerprint`],
//! re-executes only the missing run indices and rebuilds the report —
//! byte-identical to an uninterrupted run, because every run's seed derives
//! from the spec alone and records are replayed in matrix order either way.

use crate::executor::{execute_run, Executor, RunResult};
use crate::grid::{self, RunSpec};
use crate::report::{CampaignReport, ReportAccumulator};
use crate::spec::{CampaignSpec, SpecError};
use crate::spill::SampleStore;
use dl2fence_telemetry::schema::MANIFEST_SCHEMA;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{BufRead as _, BufReader, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

/// File name of the campaign manifest inside a campaign directory.
pub const MANIFEST_FILE: &str = "manifest.json";
/// File name of the streamed per-run JSONL log.
pub const RUNS_FILE: &str = "runs.jsonl";
/// File name of the final aggregated report.
pub const REPORT_FILE: &str = "report.json";
/// Directory name of the spilled eval sample store inside a campaign
/// directory ([`crate::spill`]).
pub const SAMPLES_DIR: &str = "samples";
/// File name of the optional telemetry event log ([`crate::events`]).
pub const EVENTS_FILE: &str = "events.jsonl";

/// Default in-memory eval sample bound of the streaming paths: once an
/// eval-enabled campaign buffers this many labeled samples, they spill to
/// the campaign directory's sample store.
pub const DEFAULT_SPILL_THRESHOLD: usize = 65_536;

/// How a report-building path bounds its eval-phase sample memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillPolicy {
    /// Buffer every eval sample in memory, exactly as the in-memory build
    /// does. (A pre-existing sample store — a stripped run log's — is still
    /// read at eval time; it is just never appended to.)
    InMemory,
    /// Spill buffered eval samples to the campaign directory's `samples/`
    /// store whenever the in-memory count reaches the threshold.
    Threshold(usize),
}

impl Default for SpillPolicy {
    /// The streaming paths spill at [`DEFAULT_SPILL_THRESHOLD`] unless told
    /// otherwise — campaign memory stays bounded by default.
    fn default() -> Self {
        SpillPolicy::Threshold(DEFAULT_SPILL_THRESHOLD)
    }
}

/// The fingerprint of a campaign spec: FNV-1a 64 over its canonical JSON
/// serialization, rendered as 16 hex digits.
///
/// Two specs share a fingerprint exactly when they serialize identically, so
/// a stored fingerprint pins the whole run matrix (grid, seeds, sim
/// parameters, report grouping and eval configuration).
pub fn spec_fingerprint(spec: &CampaignSpec) -> String {
    let canonical = serde_json::to_string(spec).expect("spec serialization cannot fail");
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in canonical.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// Which deterministic slice of the run matrix a shard directory owns.
///
/// Shard `index` of `count` owns exactly the run indices congruent to
/// `index` modulo `count` — a strided slice, so every shard samples the
/// whole grid (meshes, workloads, FIRs) instead of one machine drawing all
/// the expensive 16×16 runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSlice {
    /// This shard's position, `0 <= index < count`.
    pub index: usize,
    /// Total number of shards the campaign was split into.
    pub count: usize,
}

impl ShardSlice {
    /// Whether this slice owns run index `run_index`.
    ///
    /// # Panics
    ///
    /// Panics when `count` is zero — an invalid slice ([`run_shard`] and
    /// [`CampaignDir::manifest`] both reject it before it reaches here).
    pub fn owns(&self, run_index: usize) -> bool {
        run_index % self.count == self.index
    }

    /// The run indices this slice owns, ascending, out of `total` runs.
    ///
    /// # Panics
    ///
    /// Panics when `count` is zero, like [`Self::owns`].
    pub fn owned_indices(&self, total: usize) -> impl Iterator<Item = usize> + '_ {
        (self.index..total).step_by(self.count)
    }
}

/// The manifest stored at the root of a campaign directory: enough to
/// resume the campaign with no other input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Schema identifier ([`MANIFEST_SCHEMA`]); empty in manifests written
    /// before the tag existed, which stay loadable.
    #[serde(default)]
    pub schema: String,
    /// Campaign name (duplicated from the spec for quick inspection).
    pub name: String,
    /// [`spec_fingerprint`] of the embedded spec.
    pub fingerprint: String,
    /// Size of the full expanded run matrix (also for shard directories,
    /// which own only a [`ShardSlice`] of it).
    pub total_runs: usize,
    /// The shard slice this directory executes; `None` for a whole-campaign
    /// directory.
    #[serde(default)]
    pub shard: Option<ShardSlice>,
    /// The scheduler worker id this directory belongs to
    /// ([`crate::sched::work`]); `None` for a whole-campaign or shard
    /// directory. A worker directory owns no fixed slice — it holds
    /// whatever run indices its leases granted.
    #[serde(default)]
    pub worker: Option<String>,
    /// The full campaign spec.
    pub spec: CampaignSpec,
}

impl Default for Manifest {
    /// Deserialization fallback source for the optional `shard` field only —
    /// a default manifest never validates (empty fingerprint).
    fn default() -> Self {
        Manifest {
            schema: String::new(),
            name: String::new(),
            fingerprint: String::new(),
            total_runs: 0,
            shard: None,
            worker: None,
            spec: CampaignSpec::default(),
        }
    }
}

/// The byte location of one stored record inside `runs.jsonl`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordEntry {
    /// Byte offset of the record's line start.
    pub offset: u64,
    /// Byte length of the raw line (trailing newline excluded).
    pub len: usize,
}

/// What a streaming scan of `runs.jsonl` found: per-run byte locations
/// instead of materialized records, so indexing a log costs O(records) time
/// but O(1) retained [`RunResult`]s.
#[derive(Debug)]
pub struct LogIndex {
    /// Record locations slotted by run index (`None` where no record
    /// exists).
    pub entries: Vec<Option<RecordEntry>>,
    /// Whether the final line was an unparseable partial record (the
    /// expected shape of a crash mid-append); it is ignored and its run
    /// index re-executed.
    pub truncated_tail: bool,
    /// Byte length of the longest prefix of the log made of whole, valid
    /// records — what [`resume`] truncates the file to before appending, so
    /// a torn tail record can never merge with the next append.
    pub valid_bytes: u64,
    /// Stored records that repeated an already-indexed run index with
    /// identical bytes (what `campaign compact` drops when rewriting).
    pub duplicate_records: usize,
}

impl LogIndex {
    /// Stored run count.
    pub fn completed(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// The run indices with no stored record, in matrix order.
    pub fn missing_indices(&self) -> Vec<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.is_none().then_some(i))
            .collect()
    }
}

/// A campaign directory: the on-disk home of one streaming campaign (or one
/// shard of it).
#[derive(Debug, Clone)]
pub struct CampaignDir {
    root: PathBuf,
}

impl CampaignDir {
    /// Initializes a fresh whole-campaign directory for `spec` (whose run
    /// matrix has `total_runs` entries — the caller already expanded it),
    /// creating `root` (and parents) and writing the manifest.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if the spec fails validation, the directory
    /// already holds a campaign, or the manifest cannot be written.
    pub fn create(
        root: impl Into<PathBuf>,
        spec: &CampaignSpec,
        total_runs: usize,
    ) -> Result<Self, SpecError> {
        Self::create_with_shard(root, spec, total_runs, None)
    }

    /// [`Self::create`] for a shard directory: the manifest additionally
    /// records the [`ShardSlice`] this directory executes, which is how
    /// [`resume`] knows to re-execute only the shard's own missing indices
    /// (and to skip report building — a shard is not a whole campaign).
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if the spec fails validation, the directory
    /// already holds a campaign, or the manifest cannot be written.
    pub fn create_with_shard(
        root: impl Into<PathBuf>,
        spec: &CampaignSpec,
        total_runs: usize,
        shard: Option<ShardSlice>,
    ) -> Result<Self, SpecError> {
        Self::create_inner(root, spec, total_runs, shard, None)
    }

    /// [`Self::create`] for a scheduler worker directory
    /// ([`crate::sched::work`]): the manifest records the worker id instead
    /// of a shard slice. A worker directory owns no fixed slice of the
    /// matrix — leases decide what it executes — so [`resume`] only heals
    /// it and never re-executes anything.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if the spec fails validation, the directory
    /// already holds a campaign, or the manifest cannot be written.
    pub fn create_worker(
        root: impl Into<PathBuf>,
        spec: &CampaignSpec,
        total_runs: usize,
        worker: &str,
    ) -> Result<Self, SpecError> {
        Self::create_inner(root, spec, total_runs, None, Some(worker.to_string()))
    }

    fn create_inner(
        root: impl Into<PathBuf>,
        spec: &CampaignSpec,
        total_runs: usize,
        shard: Option<ShardSlice>,
        worker: Option<String>,
    ) -> Result<Self, SpecError> {
        spec.validate()?;
        let root = root.into();
        let manifest_path = root.join(MANIFEST_FILE);
        if manifest_path.exists() {
            return Err(SpecError::new(format!(
                "{} already contains a campaign manifest; use `campaign resume` \
                 or choose a fresh directory",
                root.display()
            )));
        }
        std::fs::create_dir_all(&root)
            .map_err(|e| SpecError::new(format!("cannot create {}: {e}", root.display())))?;
        let manifest = Manifest {
            schema: MANIFEST_SCHEMA.to_string(),
            name: spec.name.clone(),
            fingerprint: spec_fingerprint(spec),
            total_runs,
            shard,
            worker,
            spec: spec.clone(),
        };
        let text =
            serde_json::to_string_pretty(&manifest).expect("manifest serialization cannot fail");
        std::fs::write(&manifest_path, text).map_err(|e| {
            SpecError::new(format!("cannot write {}: {e}", manifest_path.display()))
        })?;
        Ok(CampaignDir { root })
    }

    /// Opens an existing campaign directory (the manifest must exist).
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if `root` holds no campaign manifest.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, SpecError> {
        let root = root.into();
        if !root.join(MANIFEST_FILE).exists() {
            return Err(SpecError::new(format!(
                "{} is not a campaign directory (no {MANIFEST_FILE})",
                root.display()
            )));
        }
        Ok(CampaignDir { root })
    }

    /// The directory's root path.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The path of the streamed JSONL run log.
    pub fn runs_path(&self) -> PathBuf {
        self.root.join(RUNS_FILE)
    }

    /// The path of the final report.
    pub fn report_path(&self) -> PathBuf {
        self.root.join(REPORT_FILE)
    }

    /// The path of the spilled eval sample store ([`crate::spill`]).
    pub fn samples_path(&self) -> PathBuf {
        self.root.join(SAMPLES_DIR)
    }

    /// The path of the optional telemetry event log (only present when the
    /// campaign ran with telemetry enabled; see [`crate::events`]).
    pub fn events_path(&self) -> PathBuf {
        self.root.join(EVENTS_FILE)
    }

    /// Reads and self-checks the manifest (the stored fingerprint must match
    /// the embedded spec — a mismatch means the manifest was edited).
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] on a missing, malformed or self-inconsistent
    /// manifest.
    pub fn manifest(&self) -> Result<Manifest, SpecError> {
        let path = self.root.join(MANIFEST_FILE);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| SpecError::new(format!("cannot read {}: {e}", path.display())))?;
        let manifest: Manifest = serde_json::from_str(&text)
            .map_err(|e| SpecError::new(format!("malformed manifest {}: {e}", path.display())))?;
        // Pre-tag manifests carry an empty schema and load fine; anything
        // else must match exactly — a future v2 is not silently readable.
        if !manifest.schema.is_empty() && manifest.schema != MANIFEST_SCHEMA {
            return Err(SpecError::new(format!(
                "{} declares schema `{}` but this build reads `{MANIFEST_SCHEMA}`",
                path.display(),
                manifest.schema
            )));
        }
        let expected = spec_fingerprint(&manifest.spec);
        if manifest.fingerprint != expected {
            return Err(SpecError::new(format!(
                "manifest fingerprint {} does not match its own spec (expected {expected}); \
                 the campaign directory is corrupt",
                manifest.fingerprint
            )));
        }
        if let Some(shard) = manifest.shard {
            if shard.count == 0 || shard.index >= shard.count {
                return Err(SpecError::new(format!(
                    "manifest records shard {}/{}, which is not a valid slice",
                    shard.index, shard.count
                )));
            }
        }
        Ok(manifest)
    }

    /// Appends one finished run to `runs.jsonl`, flushing the line so a
    /// crash after this call cannot lose it.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if the record cannot be written.
    pub fn append_result(&self, writer: &mut File, result: &RunResult) -> Result<(), SpecError> {
        let mut line = serde_json::to_string(result).expect("run serialization cannot fail");
        line.push('\n');
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.flush())
            .map_err(|e| {
                SpecError::new(format!(
                    "cannot append to {}: {e}",
                    self.runs_path().display()
                ))
            })
    }

    /// Opens `runs.jsonl` for appending (creating it if absent).
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if the file cannot be opened.
    pub fn open_runs_for_append(&self) -> Result<File, SpecError> {
        OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.runs_path())
            .map_err(|e| SpecError::new(format!("cannot open {}: {e}", self.runs_path().display())))
    }

    /// Scans `runs.jsonl` against the expanded run matrix, recording every
    /// stored record's byte location by run index — each record is parsed
    /// for validation and dropped immediately, so indexing never holds more
    /// than one [`RunResult`].
    ///
    /// A missing file means an empty index (campaign killed before its
    /// first record). An unparseable **final** line is tolerated as a
    /// crash-truncated partial record; anything unparseable earlier, an
    /// out-of-range index, or a stored record whose run spec disagrees with
    /// the matrix is an error. A duplicate index is deduplicated when its
    /// record bytes are identical to the stored one (first wins) and is an
    /// error when they conflict.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] describing the first corrupt record.
    pub fn index_log(&self, runs: &[RunSpec]) -> Result<LogIndex, SpecError> {
        let path = self.runs_path();
        let file = match File::open(&path) {
            Ok(file) => file,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(LogIndex {
                    entries: (0..runs.len()).map(|_| None).collect(),
                    truncated_tail: false,
                    valid_bytes: 0,
                    duplicate_records: 0,
                });
            }
            Err(e) => {
                return Err(SpecError::new(format!(
                    "cannot read {}: {e}",
                    path.display()
                )))
            }
        };
        let mut entries: Vec<Option<RecordEntry>> = (0..runs.len()).map(|_| None).collect();
        let mut duplicate_records = 0usize;
        let scan = scan_jsonl(file, &path, "record", |line_no, offset, line| {
            let record: RunResult = match serde_json::from_str(line) {
                Ok(record) => record,
                Err(e) => return Ok(Some(e.to_string())),
            };
            let index = record.spec.index;
            let Some(expected) = runs.get(index) else {
                return Err(SpecError::new(format!(
                    "record on line {line_no} of {} has run index {index}, but the campaign \
                     expands to {} runs",
                    path.display(),
                    runs.len()
                )));
            };
            if record.spec != *expected {
                return Err(SpecError::new(format!(
                    "record on line {line_no} of {} disagrees with the spec's run matrix at \
                     index {index}; the run log belongs to a different campaign",
                    path.display()
                )));
            }
            drop(record);
            let entry = RecordEntry {
                offset,
                len: line.len(),
            };
            match entries[index] {
                // First record for this index wins; a repeat must be
                // byte-identical (runs are deterministic) or the log mixes
                // results from different executions.
                Some(existing) => {
                    if self.read_record_line(&existing)? != line {
                        return Err(SpecError::new(format!(
                            "run index {index} appears twice in {} with conflicting \
                             payloads (line {line_no})",
                            path.display()
                        )));
                    }
                    duplicate_records += 1;
                }
                None => entries[index] = Some(entry),
            }
            Ok(None)
        })?;
        Ok(LogIndex {
            entries,
            truncated_tail: scan.truncated_tail,
            valid_bytes: scan.valid_bytes,
            duplicate_records,
        })
    }

    /// Opens `runs.jsonl` for random-access reads ([`Self::read_record_line_at`]).
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if the file cannot be opened.
    pub fn open_runs_for_read(&self) -> Result<File, SpecError> {
        File::open(self.runs_path())
            .map_err(|e| SpecError::new(format!("cannot read {}: {e}", self.runs_path().display())))
    }

    /// Reads one stored record's exact bytes (whitespace-trimmed line) back
    /// from `runs.jsonl` by its [`RecordEntry`].
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if the bytes cannot be read.
    pub fn read_record_line(&self, entry: &RecordEntry) -> Result<String, SpecError> {
        let mut file = self.open_runs_for_read()?;
        self.read_record_line_at(&mut file, entry)
    }

    /// [`Self::read_record_line`] over an already open handle
    /// ([`Self::open_runs_for_read`]) — hot loops like merge replay read
    /// thousands of records without reopening the file each time.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if the bytes cannot be read.
    pub fn read_record_line_at(
        &self,
        file: &mut File,
        entry: &RecordEntry,
    ) -> Result<String, SpecError> {
        read_line_at(file, entry, &self.runs_path())
    }

    /// Replays the indexed log in run-index order, handing each parsed
    /// [`RunResult`] to `fold` **one at a time** — the record is dropped the
    /// moment the fold returns, so replay retains O(1) runs regardless of
    /// campaign size. Indices with no stored record are skipped.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if a record cannot be re-read or re-parsed
    /// (the log changed underneath the index).
    pub fn replay(
        &self,
        index: &LogIndex,
        mut fold: impl FnMut(RunResult),
    ) -> Result<(), SpecError> {
        self.try_replay(index, |record| {
            fold(record);
            Ok(())
        })
    }

    /// [`Self::replay`] with a fallible fold — the spill-mode aggregation
    /// paths fold through this so a failed spill aborts the replay.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if a record cannot be re-read or re-parsed,
    /// or the first error `fold` returns.
    pub fn try_replay(
        &self,
        index: &LogIndex,
        mut fold: impl FnMut(RunResult) -> Result<(), SpecError>,
    ) -> Result<(), SpecError> {
        let path = self.runs_path();
        let mut file = File::open(&path)
            .map_err(|e| SpecError::new(format!("cannot read {}: {e}", path.display())))?;
        for entry in index.entries.iter().flatten() {
            let line = read_line_at(&mut file, entry, &path)?;
            let record: RunResult = serde_json::from_str(line.trim()).map_err(|e| {
                SpecError::new(format!(
                    "record at byte {} of {} changed under the index: {e}",
                    entry.offset,
                    path.display()
                ))
            })?;
            fold(record)?;
        }
        Ok(())
    }

    /// Truncates `runs.jsonl` to `valid_bytes` — called by [`resume`] when a
    /// scan found a torn tail record, so the next append starts on a fresh
    /// line instead of merging into the partial one.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if the file cannot be truncated.
    pub fn truncate_runs_to(&self, valid_bytes: u64) -> Result<(), SpecError> {
        let path = self.runs_path();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .and_then(|file| file.set_len(valid_bytes))
            .map_err(|e| SpecError::new(format!("cannot truncate {}: {e}", path.display())))
    }

    /// Writes the final report atomically (temp file + rename), so a crash
    /// can never leave a partial `report.json` masquerading as complete.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if the report cannot be written.
    pub fn write_report(&self, report: &CampaignReport) -> Result<(), SpecError> {
        let tmp = self.root.join(".report.json.tmp");
        std::fs::write(&tmp, report.to_json())
            .map_err(|e| SpecError::new(format!("cannot write {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, self.report_path()).map_err(|e| {
            SpecError::new(format!(
                "cannot finalize {}: {e}",
                self.report_path().display()
            ))
        })
    }
}

/// What a torn-tail-tolerant JSONL scan concluded about a whole file.
pub(crate) struct JsonlScan {
    /// Byte length of the longest prefix made of whole, valid records.
    pub valid_bytes: u64,
    /// Whether the file ends in a torn (crash-truncated or partially
    /// appended) record.
    pub truncated_tail: bool,
}

/// The torn-tail-tolerant JSONL scan loop shared by the run-log index
/// ([`CampaignDir::index_log`]) and the sample store
/// ([`crate::spill`]): reads whole lines, skips blanks, treats a final
/// line that fails `on_line` validation *or* lacks its trailing newline (a
/// partially applied append — writers frame record + newline in one write)
/// as torn, and promotes the same failure mid-file to a hard corruption
/// error naming `what`.
///
/// `on_line(line_no, offset_of_line_start, trimmed_line)` returns
/// `Ok(None)` to accept the record, `Ok(Some(reason))` to mark it
/// unparseable (tolerated only as the final line), or `Err` to abort.
pub(crate) fn scan_jsonl(
    file: File,
    path: &Path,
    what: &str,
    mut on_line: impl FnMut(usize, u64, &str) -> Result<Option<String>, SpecError>,
) -> Result<JsonlScan, SpecError> {
    let mut reader = BufReader::new(file);
    let mut valid_bytes = 0u64;
    let mut offset = 0u64;
    let mut line_no = 0usize;
    // A parse failure is only tolerable if nothing follows it; remember it
    // and keep scanning so a later record can prove it mid-file.
    let mut pending_error: Option<(usize, String)> = None;
    let mut segment = String::new();
    loop {
        segment.clear();
        let read = reader
            .read_line(&mut segment)
            .map_err(|e| SpecError::new(format!("cannot read {}: {e}", path.display())))?;
        if read == 0 {
            break;
        }
        line_no += 1;
        let line_start = offset;
        offset += read as u64;
        let line = segment.trim();
        if line.is_empty() {
            continue;
        }
        if let Some((bad_line, error)) = pending_error.take() {
            return Err(SpecError::new(format!(
                "corrupt {what} on line {bad_line} of {}: {error}",
                path.display()
            )));
        }
        if !segment.ends_with('\n') {
            pending_error = Some((line_no, "missing trailing newline".to_string()));
            continue;
        }
        let leading = (segment.len() - segment.trim_start().len()) as u64;
        match on_line(line_no, line_start + leading, line)? {
            None => valid_bytes = offset,
            Some(reason) => pending_error = Some((line_no, reason)),
        }
    }
    Ok(JsonlScan {
        valid_bytes,
        truncated_tail: pending_error.is_some(),
    })
}

/// Reads the raw line bytes of `entry` from an open JSONL handle — the
/// seek/read-one-record primitive shared by the run log and the spilled
/// sample store ([`crate::spill`]).
pub(crate) fn read_line_at(
    file: &mut File,
    entry: &RecordEntry,
    path: &Path,
) -> Result<String, SpecError> {
    file.seek(SeekFrom::Start(entry.offset))
        .map_err(|e| SpecError::new(format!("cannot seek in {}: {e}", path.display())))?;
    let mut bytes = vec![0u8; entry.len];
    file.read_exact(&mut bytes)
        .map_err(|e| SpecError::new(format!("cannot read {}: {e}", path.display())))?;
    String::from_utf8(bytes).map_err(|e| {
        SpecError::new(format!(
            "record at byte {} of {} is not UTF-8: {e}",
            entry.offset,
            path.display()
        ))
    })
}

/// Executes `spec` streaming into a fresh campaign directory at `root`:
/// every finished run is appended to `runs.jsonl` as it completes (and
/// dropped — no result set is retained), then the report is built by
/// replaying the log through the shared [`ReportAccumulator`] and lands in
/// `report.json`.
///
/// The returned report is byte-identical to [`Executor::execute`] +
/// [`CampaignReport::build`] on the same spec.
///
/// # Errors
///
/// Returns a [`SpecError`] on an invalid spec, an already-initialized
/// directory, or any I/O failure.
pub fn run_streaming(
    executor: &Executor,
    spec: &CampaignSpec,
    root: impl Into<PathBuf>,
) -> Result<CampaignReport, SpecError> {
    let runs = grid::expand(spec)?;
    run_streaming_expanded(executor, spec, &runs, root)
}

/// [`run_streaming`] over an already expanded run matrix (callers that
/// expanded the grid for their own bookkeeping — e.g. the CLI's progress
/// line — avoid paying for expansion twice).
///
/// # Errors
///
/// Returns a [`SpecError`] on an invalid spec, an already-initialized
/// directory, or any I/O failure.
pub fn run_streaming_expanded(
    executor: &Executor,
    spec: &CampaignSpec,
    runs: &[RunSpec],
    root: impl Into<PathBuf>,
) -> Result<CampaignReport, SpecError> {
    run_streaming_expanded_with(executor, spec, runs, root, SpillPolicy::default())
}

/// [`run_streaming_expanded`] with an explicit [`SpillPolicy`] for the
/// report-building phase.
///
/// # Errors
///
/// Returns a [`SpecError`] on an invalid spec, an already-initialized
/// directory, or any I/O failure.
pub fn run_streaming_expanded_with(
    executor: &Executor,
    spec: &CampaignSpec,
    runs: &[RunSpec],
    root: impl Into<PathBuf>,
    spill: SpillPolicy,
) -> Result<CampaignReport, SpecError> {
    let rec = executor.telemetry().recorder();
    let dir = CampaignDir::create(root, spec, runs.len())?;
    let mut writer = dir.open_runs_for_append()?;
    rec.time("campaign.execute", || {
        stream_pending(executor, spec, runs, &dir, &mut writer)
    })?;
    drop(writer);
    let index = dir.index_log(runs)?;
    rec.time("campaign.report", || {
        report_from_log(executor, &dir, spec, runs, &index, spill)
    })
}

/// Executes a shard of `spec`: the strided slice `shard` of the run matrix,
/// streamed into an ordinary campaign directory at `root` whose manifest
/// records the slice. No report is built — a shard is not a whole campaign;
/// [`crate::merge::merge`] reunites the shards and builds it.
///
/// Returns the number of runs the shard owns (all of them executed).
///
/// # Errors
///
/// Returns a [`SpecError`] on an invalid spec or slice, an
/// already-initialized directory, or any I/O failure.
pub fn run_shard(
    executor: &Executor,
    spec: &CampaignSpec,
    shard: ShardSlice,
    root: impl Into<PathBuf>,
) -> Result<usize, SpecError> {
    let runs = grid::expand(spec)?;
    run_shard_expanded(executor, spec, &runs, shard, root)
}

/// [`run_shard`] over an already expanded run matrix (callers that expanded
/// the grid for their own bookkeeping — e.g. the CLI's progress line —
/// avoid paying for expansion twice).
///
/// # Errors
///
/// Returns a [`SpecError`] on an invalid spec or slice, an
/// already-initialized directory, or any I/O failure.
pub fn run_shard_expanded(
    executor: &Executor,
    spec: &CampaignSpec,
    runs: &[RunSpec],
    shard: ShardSlice,
    root: impl Into<PathBuf>,
) -> Result<usize, SpecError> {
    if shard.count == 0 || shard.index >= shard.count {
        return Err(SpecError::new(format!(
            "shard {}/{} is not a valid slice (need 0 <= index < count)",
            shard.index, shard.count
        )));
    }
    let owned: Vec<RunSpec> = shard
        .owned_indices(runs.len())
        .map(|i| runs[i].clone())
        .collect();
    let dir = CampaignDir::create_with_shard(root, spec, runs.len(), Some(shard))?;
    let mut writer = dir.open_runs_for_append()?;
    stream_pending(executor, spec, &owned, &dir, &mut writer)?;
    Ok(owned.len())
}

/// Executes `pending` runs, appending each result the moment it completes
/// and dropping it — the pool retains no result set. A failed append aborts
/// the pool (in-flight runs finish and are discarded) so a full disk cannot
/// burn the rest of a long campaign on unpersistable work.
pub(crate) fn stream_pending(
    executor: &Executor,
    spec: &CampaignSpec,
    pending: &[RunSpec],
    dir: &CampaignDir,
    writer: &mut File,
) -> Result<(), SpecError> {
    let telemetry = executor.telemetry();
    let obs_rec = telemetry.recorder();
    let mut write_error: Option<SpecError> = None;
    let done = executor.try_run_jobs_foreach(
        pending,
        |run| {
            let rec = telemetry.recorder();
            let _span = rec.span_indexed("run", run.index as u64);
            execute_run(&spec.sim, run)
        },
        |_, result| match obs_rec.time("log.append", || dir.append_result(writer, &result)) {
            Ok(()) => true,
            Err(e) => {
                write_error = Some(e);
                false
            }
        },
    );
    match (done, write_error) {
        (Err(panic), _) => Err(SpecError::new(format!(
            "run {} panicked mid-campaign: {}; every run completed before the \
             panic is already persisted in {} — fix the cause and `campaign \
             resume` the directory to execute only the missing runs",
            pending[panic.job_index].index,
            panic.message,
            dir.root().display()
        ))),
        (Ok(Some(())), None) => Ok(()),
        (_, Some(e)) => Err(e),
        (Ok(None), None) => unreachable!("pool aborts only after a write error"),
    }
}

/// Resumes the campaign (or shard) stored at `root`: verifies the manifest
/// fingerprint (against `expected_spec` too, when given), re-executes only
/// the owned run indices with no stored JSONL record, and appends them.
///
/// For a whole-campaign directory the report is then rebuilt by replaying
/// the completed log through the shared [`ReportAccumulator`] —
/// byte-identical to an uninterrupted run — and returned. For a shard
/// directory (the manifest records a [`ShardSlice`]) no report exists to
/// build, so `Ok(None)` is returned once the shard's runs are all stored;
/// merge the shards to obtain the report.
///
/// # Errors
///
/// Returns a [`SpecError`] if the directory is missing or corrupt, or if
/// `expected_spec` fingerprints differently from the stored spec (no silent
/// partial reuse across spec changes).
pub fn resume(
    executor: &Executor,
    root: impl Into<PathBuf>,
    expected_spec: Option<&CampaignSpec>,
) -> Result<Option<CampaignReport>, SpecError> {
    resume_with(executor, root, expected_spec, SpillPolicy::default())
}

/// [`resume`] with an explicit [`SpillPolicy`] for the report-building
/// phase.
///
/// # Errors
///
/// Returns a [`SpecError`] under the same conditions as [`resume`].
pub fn resume_with(
    executor: &Executor,
    root: impl Into<PathBuf>,
    expected_spec: Option<&CampaignSpec>,
    spill: SpillPolicy,
) -> Result<Option<CampaignReport>, SpecError> {
    let dir = CampaignDir::open(root)?;
    let manifest = dir.manifest()?;
    if let Some(expected) = expected_spec {
        let given = spec_fingerprint(expected);
        if given != manifest.fingerprint {
            return Err(SpecError::new(format!(
                "spec fingerprint mismatch: the campaign directory was created from \
                 fingerprint {}, but the given spec fingerprints as {given}; refusing \
                 to mix results from different campaigns",
                manifest.fingerprint
            )));
        }
    }
    let spec = manifest.spec;
    let runs = grid::expand(&spec)?;
    if runs.len() != manifest.total_runs {
        return Err(SpecError::new(format!(
            "manifest records {} runs but the spec expands to {}; the campaign \
             directory is corrupt",
            manifest.total_runs,
            runs.len()
        )));
    }
    let index = dir.index_log(&runs)?;
    if index.truncated_tail {
        // Heal the log: drop the torn record so the next append starts a
        // fresh line — otherwise the first re-executed record merges into
        // the partial one and corrupts the log for every later resume.
        dir.truncate_runs_to(index.valid_bytes)?;
    }
    if manifest.worker.is_some() {
        // A scheduler worker directory owns no fixed slice of the matrix —
        // leases decide what it executes — so a resume heals the torn tail
        // (done above) and re-executes nothing; restart `campaign work` to
        // continue. No report exists to build either.
        return Ok(None);
    }
    let missing: Vec<usize> = match manifest.shard {
        Some(shard) => index
            .missing_indices()
            .into_iter()
            .filter(|&i| shard.owns(i))
            .collect(),
        None => index.missing_indices(),
    };
    let appended = !missing.is_empty();
    if appended {
        let pending: Vec<RunSpec> = missing.iter().map(|&i| runs[i].clone()).collect();
        let mut writer = dir.open_runs_for_append()?;
        stream_pending(executor, &spec, &pending, &dir, &mut writer)?;
    }
    if manifest.shard.is_some() {
        return Ok(None);
    }
    // Re-index only if records were appended; a clean resume of a completed
    // campaign replays the index it already has instead of parsing the
    // whole log a second time. (Healing the torn tail never invalidates the
    // index — every indexed record ends at or before `valid_bytes`.)
    let index = if appended {
        dir.index_log(&runs)?
    } else {
        index
    };
    report_from_log(executor, &dir, &spec, &runs, &index, spill).map(Some)
}

/// Builds and persists the report of a campaign directory whose `index` is
/// complete, by replaying the run log through the shared
/// [`ReportAccumulator`] — one record at a time, in run-index order, never
/// materializing the result set.
///
/// When the eval phase is enabled, `spill` bounds the sample pools: a
/// [`SpillPolicy::Threshold`] attaches the directory's sample store and
/// spills at the threshold, while [`SpillPolicy::InMemory`] buffers
/// everything — unless the directory already holds a sample store (a
/// stripped run log's), which is then attached read-mostly so the eval
/// phase can find the stripped records' samples.
pub(crate) fn report_from_log(
    executor: &Executor,
    dir: &CampaignDir,
    spec: &CampaignSpec,
    runs: &[RunSpec],
    index: &LogIndex,
    spill: SpillPolicy,
) -> Result<CampaignReport, SpecError> {
    let missing = index.missing_indices();
    if !missing.is_empty() {
        return Err(SpecError::new(format!(
            "run log {} is missing {} of {} records; resume the campaign first",
            dir.runs_path().display(),
            missing.len(),
            runs.len()
        )));
    }
    let mut acc =
        ReportAccumulator::for_spec(spec)?.with_telemetry(executor.telemetry().recorder());
    if spec.eval.enabled {
        let fingerprint = spec_fingerprint(spec);
        match spill {
            SpillPolicy::Threshold(threshold) => {
                let store = SampleStore::attach(dir.samples_path(), &fingerprint)?;
                acc = acc.with_spill(store, threshold);
            }
            SpillPolicy::InMemory => {
                // A stripped run log keeps its samples in the store; attach
                // it for reading but never spill fresh folds into it.
                if let Some(store) =
                    SampleStore::open_existing(dir.samples_path(), Some(&fingerprint))?
                {
                    acc = acc.with_spill(store, usize::MAX);
                }
            }
        }
    }
    dir.try_replay(index, |result| acc.try_fold(&result))?;
    let report = acc.finish(executor)?;
    dir.write_report(&report)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> CampaignSpec {
        let mut spec = CampaignSpec::quick("stream-tiny");
        spec.grid.mesh = vec![4];
        spec.grid.fir = vec![0.8];
        spec.grid.workloads = vec!["uniform".into()];
        spec.grid.attack_placements = 2;
        spec.grid.benign_runs = 1;
        spec.grid.seeds = vec![11];
        spec.sim.warmup_cycles = 50;
        spec.sim.sample_period = 150;
        spec.sim.samples_per_run = 1;
        spec
    }

    fn temp_root(tag: &str) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("dl2fence-stream-unit-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        root
    }

    #[test]
    fn fingerprint_is_stable_and_spec_sensitive() {
        let spec = tiny_spec();
        assert_eq!(spec_fingerprint(&spec), spec_fingerprint(&spec));
        let mut other = spec.clone();
        other.grid.seeds = vec![12];
        assert_ne!(spec_fingerprint(&spec), spec_fingerprint(&other));
    }

    #[test]
    fn shard_slices_partition_every_matrix() {
        for total in [0usize, 1, 5, 12, 97] {
            for count in 1usize..=5 {
                let mut seen = vec![false; total];
                for index in 0..count {
                    let slice = ShardSlice { index, count };
                    for i in slice.owned_indices(total) {
                        assert!(!seen[i], "index {i} owned by two slices");
                        assert!(slice.owns(i));
                        seen[i] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s), "total {total} count {count}");
            }
        }
    }

    #[test]
    fn create_refuses_an_initialized_directory() {
        let root = temp_root("create");
        let spec = tiny_spec();
        let total = grid::expand(&spec).unwrap().len();
        CampaignDir::create(&root, &spec, total).unwrap();
        let err = CampaignDir::create(&root, &spec, total).unwrap_err();
        assert!(err.to_string().contains("already contains"), "{err}");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn streaming_run_writes_every_record_and_the_report() {
        let root = temp_root("full");
        let spec = tiny_spec();
        let report = run_streaming(&Executor::new(2), &spec, &root).unwrap();
        assert_eq!(report.total_runs, 3);
        let jsonl = std::fs::read_to_string(root.join(RUNS_FILE)).unwrap();
        assert_eq!(jsonl.lines().count(), 3);
        assert_eq!(
            std::fs::read_to_string(root.join(REPORT_FILE)).unwrap(),
            report.to_json()
        );
        // A completed campaign resumes with nothing to do, byte-identically.
        let resumed = resume(&Executor::new(3), &root, Some(&spec))
            .unwrap()
            .unwrap();
        assert_eq!(resumed.to_json(), report.to_json());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn shard_run_streams_only_owned_indices_and_no_report() {
        let root = temp_root("shard");
        let spec = tiny_spec();
        let total = grid::expand(&spec).unwrap().len();
        let shard = ShardSlice { index: 1, count: 2 };
        let executed = run_shard(&Executor::new(2), &spec, shard, &root).unwrap();
        assert_eq!(executed, shard.owned_indices(total).count());
        assert!(!root.join(REPORT_FILE).exists(), "shards build no report");

        let dir = CampaignDir::open(&root).unwrap();
        let manifest = dir.manifest().unwrap();
        assert_eq!(manifest.shard, Some(shard));
        assert_eq!(manifest.total_runs, total);
        let index = dir.index_log(&grid::expand(&spec).unwrap()).unwrap();
        assert_eq!(index.completed(), executed);
        for (i, entry) in index.entries.iter().enumerate() {
            assert_eq!(entry.is_some(), shard.owns(i));
        }
        // A complete shard resumes to Ok(None) with nothing re-executed.
        let log_before = std::fs::read_to_string(dir.runs_path()).unwrap();
        assert!(resume(&Executor::new(2), &root, Some(&spec))
            .unwrap()
            .is_none());
        assert_eq!(
            std::fs::read_to_string(dir.runs_path()).unwrap(),
            log_before
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn invalid_shard_slices_are_refused() {
        let spec = tiny_spec();
        for (index, count) in [(0, 0), (2, 2), (5, 3)] {
            let err = run_shard(
                &Executor::new(1),
                &spec,
                ShardSlice { index, count },
                temp_root("badshard"),
            )
            .unwrap_err();
            assert!(err.to_string().contains("not a valid slice"), "{err}");
        }
    }

    #[test]
    fn index_tolerates_only_a_truncated_final_line() {
        let root = temp_root("scan");
        let spec = tiny_spec();
        run_streaming(&Executor::new(1), &spec, &root).unwrap();
        let dir = CampaignDir::open(&root).unwrap();
        let runs = grid::expand(&spec).unwrap();
        let full = std::fs::read_to_string(dir.runs_path()).unwrap();
        let mut lines: Vec<&str> = full.lines().collect();

        // Chop the final record mid-line: tolerated, index re-listed, and
        // valid_bytes points at the end of the last whole record.
        let tail = lines.pop().unwrap();
        let whole = format!("{}\n", lines.join("\n"));
        let truncated = format!("{whole}{}", &tail[..tail.len() / 2]);
        std::fs::write(dir.runs_path(), truncated).unwrap();
        let index = dir.index_log(&runs).unwrap();
        assert!(index.truncated_tail);
        assert_eq!(index.missing_indices(), vec![runs.len() - 1]);
        assert_eq!(index.valid_bytes, whole.len() as u64);

        // The same garbage mid-file is corruption, not a crash artifact.
        let garbled = format!("{}\n{}\n{}\n", &tail[..tail.len() / 2], lines[0], tail);
        std::fs::write(dir.runs_path(), garbled).unwrap();
        let err = dir.index_log(&runs).unwrap_err();
        assert!(err.to_string().contains("corrupt record"), "{err}");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn duplicate_records_dedupe_when_identical_and_fail_when_conflicting() {
        let root = temp_root("dup");
        let spec = tiny_spec();
        run_streaming(&Executor::new(1), &spec, &root).unwrap();
        let dir = CampaignDir::open(&root).unwrap();
        let runs = grid::expand(&spec).unwrap();
        let full = std::fs::read_to_string(dir.runs_path()).unwrap();
        let first = full.lines().next().unwrap();

        // An identical repeat dedupes cleanly (first wins).
        std::fs::write(dir.runs_path(), format!("{full}{first}\n")).unwrap();
        let index = dir.index_log(&runs).unwrap();
        assert_eq!(index.completed(), runs.len());

        // A conflicting repeat (same index, different payload) is an error.
        let tampered = tamper_metric(first);
        std::fs::write(dir.runs_path(), format!("{full}{tampered}\n")).unwrap();
        let err = dir.index_log(&runs).unwrap_err();
        assert!(err.to_string().contains("conflicting"), "{err}");
        std::fs::remove_dir_all(&root).unwrap();
    }

    /// Alters a record's `packets_created` count, keeping the JSON valid and
    /// the embedded run spec untouched — a payload conflict, not corruption.
    pub(crate) fn tamper_metric(line: &str) -> String {
        let mut record: RunResult = serde_json::from_str(line).unwrap();
        record.metrics.packets_created += 1;
        serde_json::to_string(&record).unwrap()
    }

    #[test]
    fn replay_hands_records_over_one_at_a_time_in_index_order() {
        let root = temp_root("replay");
        let spec = tiny_spec();
        run_streaming(&Executor::new(2), &spec, &root).unwrap();
        let dir = CampaignDir::open(&root).unwrap();
        let runs = grid::expand(&spec).unwrap();
        let index = dir.index_log(&runs).unwrap();

        let mut seen = Vec::new();
        let mut live = 0usize;
        let mut peak = 0usize;
        dir.replay(&index, |record| {
            live += 1;
            peak = peak.max(live);
            seen.push(record.spec.index);
            // `record` is dropped here — replay retains nothing between
            // calls, so `live` can never exceed one.
            live -= 1;
        })
        .unwrap();
        assert_eq!(seen, (0..runs.len()).collect::<Vec<_>>());
        assert_eq!(peak, 1, "replay must materialize one record at a time");
        std::fs::remove_dir_all(&root).unwrap();
    }
}
