//! Streaming, resumable campaign execution.
//!
//! A long-running campaign streams every finished run to a **campaign
//! directory** as it completes, making the campaign crash-durable: kill it
//! at any point and [`resume`] picks up where the log ends. (Report
//! building still materializes all results in memory — incremental
//! aggregation for truly bigger-than-memory campaigns is a ROADMAP item;
//! the durable, index-tagged record format here is the groundwork.)
//!
//! ```text
//! <dir>/manifest.json   campaign name, spec fingerprint, run count, spec
//! <dir>/runs.jsonl      one JSONL record per finished run, appended as
//!                       results complete (index-tagged, any order)
//! <dir>/report.json     the final aggregated report (written last)
//! ```
//!
//! Workers append each [`RunResult`] the moment it finishes, so a killed
//! campaign loses at most the runs still in flight. [`resume`] scans the
//! JSONL, verifies the stored [`spec_fingerprint`], re-executes only the
//! missing run indices and rebuilds the report — byte-identical to an
//! uninterrupted run, because every run's seed derives from the spec alone
//! and results are reassembled in matrix order either way.

use crate::executor::{CampaignOutcome, Executor, RunResult};
use crate::grid::{self, RunSpec};
use crate::report::CampaignReport;
use crate::spec::{CampaignSpec, SpecError};
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// File name of the campaign manifest inside a campaign directory.
pub const MANIFEST_FILE: &str = "manifest.json";
/// File name of the streamed per-run JSONL log.
pub const RUNS_FILE: &str = "runs.jsonl";
/// File name of the final aggregated report.
pub const REPORT_FILE: &str = "report.json";

/// The fingerprint of a campaign spec: FNV-1a 64 over its canonical JSON
/// serialization, rendered as 16 hex digits.
///
/// Two specs share a fingerprint exactly when they serialize identically, so
/// a stored fingerprint pins the whole run matrix (grid, seeds, sim
/// parameters, report grouping and eval configuration).
pub fn spec_fingerprint(spec: &CampaignSpec) -> String {
    let canonical = serde_json::to_string(spec).expect("spec serialization cannot fail");
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in canonical.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// The manifest stored at the root of a campaign directory: enough to
/// resume the campaign with no other input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Campaign name (duplicated from the spec for quick inspection).
    pub name: String,
    /// [`spec_fingerprint`] of the embedded spec.
    pub fingerprint: String,
    /// Size of the expanded run matrix.
    pub total_runs: usize,
    /// The full campaign spec.
    pub spec: CampaignSpec,
}

/// What a scan of `runs.jsonl` found.
#[derive(Debug)]
pub struct ScanOutcome {
    /// Parsed results slotted by run index (`None` where no record exists).
    pub results: Vec<Option<RunResult>>,
    /// Whether the final line was an unparseable partial record (the
    /// expected shape of a crash mid-append); it is ignored and its run
    /// index re-executed.
    pub truncated_tail: bool,
    /// Byte length of the longest prefix of the log made of whole, valid
    /// records — what [`resume`] truncates the file to before appending, so
    /// a torn tail record can never merge with the next append.
    pub valid_bytes: u64,
}

impl ScanOutcome {
    /// Finished run count.
    pub fn completed(&self) -> usize {
        self.results.iter().filter(|r| r.is_some()).count()
    }

    /// The run indices with no stored record, in matrix order.
    pub fn missing_indices(&self) -> Vec<usize> {
        self.results
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.is_none().then_some(i))
            .collect()
    }
}

/// A campaign directory: the on-disk home of one streaming campaign.
#[derive(Debug, Clone)]
pub struct CampaignDir {
    root: PathBuf,
}

impl CampaignDir {
    /// Initializes a fresh campaign directory for `spec` (whose run matrix
    /// has `total_runs` entries — the caller already expanded it), creating
    /// `root` (and parents) and writing the manifest.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if the spec fails validation, the directory
    /// already holds a campaign, or the manifest cannot be written.
    pub fn create(
        root: impl Into<PathBuf>,
        spec: &CampaignSpec,
        total_runs: usize,
    ) -> Result<Self, SpecError> {
        spec.validate()?;
        let root = root.into();
        let manifest_path = root.join(MANIFEST_FILE);
        if manifest_path.exists() {
            return Err(SpecError::new(format!(
                "{} already contains a campaign manifest; use `campaign resume` \
                 or choose a fresh directory",
                root.display()
            )));
        }
        std::fs::create_dir_all(&root)
            .map_err(|e| SpecError::new(format!("cannot create {}: {e}", root.display())))?;
        let manifest = Manifest {
            name: spec.name.clone(),
            fingerprint: spec_fingerprint(spec),
            total_runs,
            spec: spec.clone(),
        };
        let text =
            serde_json::to_string_pretty(&manifest).expect("manifest serialization cannot fail");
        std::fs::write(&manifest_path, text).map_err(|e| {
            SpecError::new(format!("cannot write {}: {e}", manifest_path.display()))
        })?;
        Ok(CampaignDir { root })
    }

    /// Opens an existing campaign directory (the manifest must exist).
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if `root` holds no campaign manifest.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, SpecError> {
        let root = root.into();
        if !root.join(MANIFEST_FILE).exists() {
            return Err(SpecError::new(format!(
                "{} is not a campaign directory (no {MANIFEST_FILE})",
                root.display()
            )));
        }
        Ok(CampaignDir { root })
    }

    /// The directory's root path.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The path of the streamed JSONL run log.
    pub fn runs_path(&self) -> PathBuf {
        self.root.join(RUNS_FILE)
    }

    /// The path of the final report.
    pub fn report_path(&self) -> PathBuf {
        self.root.join(REPORT_FILE)
    }

    /// Reads and self-checks the manifest (the stored fingerprint must match
    /// the embedded spec — a mismatch means the manifest was edited).
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] on a missing, malformed or self-inconsistent
    /// manifest.
    pub fn manifest(&self) -> Result<Manifest, SpecError> {
        let path = self.root.join(MANIFEST_FILE);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| SpecError::new(format!("cannot read {}: {e}", path.display())))?;
        let manifest: Manifest = serde_json::from_str(&text)
            .map_err(|e| SpecError::new(format!("malformed manifest {}: {e}", path.display())))?;
        let expected = spec_fingerprint(&manifest.spec);
        if manifest.fingerprint != expected {
            return Err(SpecError::new(format!(
                "manifest fingerprint {} does not match its own spec (expected {expected}); \
                 the campaign directory is corrupt",
                manifest.fingerprint
            )));
        }
        Ok(manifest)
    }

    /// Appends one finished run to `runs.jsonl`, flushing the line so a
    /// crash after this call cannot lose it.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if the record cannot be written.
    pub fn append_result(&self, writer: &mut File, result: &RunResult) -> Result<(), SpecError> {
        let mut line = serde_json::to_string(result).expect("run serialization cannot fail");
        line.push('\n');
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.flush())
            .map_err(|e| {
                SpecError::new(format!(
                    "cannot append to {}: {e}",
                    self.runs_path().display()
                ))
            })
    }

    /// Opens `runs.jsonl` for appending (creating it if absent).
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if the file cannot be opened.
    pub fn open_runs_for_append(&self) -> Result<File, SpecError> {
        OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.runs_path())
            .map_err(|e| SpecError::new(format!("cannot open {}: {e}", self.runs_path().display())))
    }

    /// Scans `runs.jsonl` against the expanded run matrix, slotting every
    /// stored record by index.
    ///
    /// A missing file means an empty scan (campaign killed before its first
    /// record). An unparseable **final** line is tolerated as a crash-
    /// truncated partial record; anything unparseable earlier, an
    /// out-of-range index, or a stored record whose run spec disagrees with
    /// the matrix is an error.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] describing the first corrupt record.
    pub fn scan(&self, runs: &[RunSpec]) -> Result<ScanOutcome, SpecError> {
        let path = self.runs_path();
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => {
                return Err(SpecError::new(format!(
                    "cannot read {}: {e}",
                    path.display()
                )))
            }
        };
        // Segments keep their trailing newline so byte offsets stay exact.
        let segments: Vec<&str> = text.split_inclusive('\n').collect();
        let last_content = segments.iter().rposition(|s| !s.trim().is_empty());
        let mut results: Vec<Option<RunResult>> = (0..runs.len()).map(|_| None).collect();
        let mut truncated_tail = false;
        let mut offset = 0u64;
        let mut valid_bytes = 0u64;
        for (n, segment) in segments.iter().enumerate() {
            offset += segment.len() as u64;
            let line = segment.trim();
            if line.is_empty() {
                continue;
            }
            let record: RunResult = match serde_json::from_str(line) {
                Ok(record) => record,
                Err(e) if Some(n) == last_content => {
                    // A crash mid-append leaves exactly one partial final
                    // line; drop it and re-execute that run.
                    let _ = e;
                    truncated_tail = true;
                    continue;
                }
                Err(e) => {
                    return Err(SpecError::new(format!(
                        "corrupt record on line {} of {}: {e}",
                        n + 1,
                        path.display()
                    )))
                }
            };
            let index = record.spec.index;
            let Some(expected) = runs.get(index) else {
                return Err(SpecError::new(format!(
                    "record on line {} of {} has run index {index}, but the campaign \
                     expands to {} runs",
                    n + 1,
                    path.display(),
                    runs.len()
                )));
            };
            if record.spec != *expected {
                return Err(SpecError::new(format!(
                    "record on line {} of {} disagrees with the spec's run matrix at \
                     index {index}; the run log belongs to a different campaign",
                    n + 1,
                    path.display()
                )));
            }
            valid_bytes = offset;
            // Duplicate indices can only hold identical payloads (runs are
            // deterministic), so first-wins is safe.
            if results[index].is_none() {
                results[index] = Some(record);
            }
        }
        Ok(ScanOutcome {
            results,
            truncated_tail,
            valid_bytes,
        })
    }

    /// Truncates `runs.jsonl` to `valid_bytes` — called by [`resume`] when a
    /// scan found a torn tail record, so the next append starts on a fresh
    /// line instead of merging into the partial one.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if the file cannot be truncated.
    pub fn truncate_runs_to(&self, valid_bytes: u64) -> Result<(), SpecError> {
        let path = self.runs_path();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .and_then(|file| file.set_len(valid_bytes))
            .map_err(|e| SpecError::new(format!("cannot truncate {}: {e}", path.display())))
    }

    /// Writes the final report atomically (temp file + rename), so a crash
    /// can never leave a partial `report.json` masquerading as complete.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if the report cannot be written.
    pub fn write_report(&self, report: &CampaignReport) -> Result<(), SpecError> {
        let tmp = self.root.join(".report.json.tmp");
        std::fs::write(&tmp, report.to_json())
            .map_err(|e| SpecError::new(format!("cannot write {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, self.report_path()).map_err(|e| {
            SpecError::new(format!(
                "cannot finalize {}: {e}",
                self.report_path().display()
            ))
        })
    }
}

/// Executes `spec` streaming into a fresh campaign directory at `root`:
/// every finished run is appended to `runs.jsonl` as it completes, and the
/// final report lands in `report.json`.
///
/// The returned report is byte-identical to [`Executor::execute`] +
/// [`CampaignReport::build`] on the same spec.
///
/// # Errors
///
/// Returns a [`SpecError`] on an invalid spec, an already-initialized
/// directory, or any I/O failure.
pub fn run_streaming(
    executor: &Executor,
    spec: &CampaignSpec,
    root: impl Into<PathBuf>,
) -> Result<CampaignReport, SpecError> {
    let runs = grid::expand(spec)?;
    run_streaming_expanded(executor, spec, &runs, root)
}

/// [`run_streaming`] over an already expanded run matrix (callers that
/// expanded the grid for their own bookkeeping — e.g. the CLI's progress
/// line — avoid paying for expansion twice).
///
/// # Errors
///
/// Returns a [`SpecError`] on an invalid spec, an already-initialized
/// directory, or any I/O failure.
pub fn run_streaming_expanded(
    executor: &Executor,
    spec: &CampaignSpec,
    runs: &[RunSpec],
    root: impl Into<PathBuf>,
) -> Result<CampaignReport, SpecError> {
    let dir = CampaignDir::create(root, spec, runs.len())?;
    let mut writer = dir.open_runs_for_append()?;
    let results = stream_missing(executor, spec, runs, &dir, &mut writer)?;
    finalize(executor, &dir, spec, results)
}

/// Executes `pending` runs, appending each result as it completes; a failed
/// append aborts the pool (in-flight runs finish and are discarded) so a
/// full disk cannot burn the rest of a long campaign on unpersistable work.
fn stream_missing(
    executor: &Executor,
    spec: &CampaignSpec,
    pending: &[RunSpec],
    dir: &CampaignDir,
    writer: &mut File,
) -> Result<Vec<RunResult>, SpecError> {
    let mut write_error: Option<SpecError> = None;
    let results = executor.try_execute_runs_with(&spec.sim, pending, |result| {
        match dir.append_result(writer, result) {
            Ok(()) => true,
            Err(e) => {
                write_error = Some(e);
                false
            }
        }
    });
    match (results, write_error) {
        (Some(results), None) => Ok(results),
        (_, Some(e)) => Err(e),
        (None, None) => unreachable!("pool aborts only after a write error"),
    }
}

/// Resumes the campaign stored at `root`: verifies the manifest fingerprint
/// (against `expected_spec` too, when given), re-executes only the run
/// indices with no stored JSONL record, appends them, and rebuilds the
/// report — byte-identical to an uninterrupted run.
///
/// # Errors
///
/// Returns a [`SpecError`] if the directory is missing or corrupt, or if
/// `expected_spec` fingerprints differently from the stored spec (no silent
/// partial reuse across spec changes).
pub fn resume(
    executor: &Executor,
    root: impl Into<PathBuf>,
    expected_spec: Option<&CampaignSpec>,
) -> Result<CampaignReport, SpecError> {
    let dir = CampaignDir::open(root)?;
    let manifest = dir.manifest()?;
    if let Some(expected) = expected_spec {
        let given = spec_fingerprint(expected);
        if given != manifest.fingerprint {
            return Err(SpecError::new(format!(
                "spec fingerprint mismatch: the campaign directory was created from \
                 fingerprint {}, but the given spec fingerprints as {given}; refusing \
                 to mix results from different campaigns",
                manifest.fingerprint
            )));
        }
    }
    let spec = manifest.spec;
    let runs = grid::expand(&spec)?;
    if runs.len() != manifest.total_runs {
        return Err(SpecError::new(format!(
            "manifest records {} runs but the spec expands to {}; the campaign \
             directory is corrupt",
            manifest.total_runs,
            runs.len()
        )));
    }
    let scan = dir.scan(&runs)?;
    let missing = scan.missing_indices();
    let mut results = scan.results;
    if !missing.is_empty() {
        if scan.truncated_tail {
            // Drop the torn record so the next append starts a fresh line
            // — otherwise the first re-executed record merges into the
            // partial one and corrupts the log for every later resume.
            dir.truncate_runs_to(scan.valid_bytes)?;
        }
        let pending: Vec<RunSpec> = missing.iter().map(|&i| runs[i].clone()).collect();
        let mut writer = dir.open_runs_for_append()?;
        let fresh = stream_missing(executor, &spec, &pending, &dir, &mut writer)?;
        for result in fresh {
            let index = result.spec.index;
            results[index] = Some(result);
        }
    }
    let results: Vec<RunResult> = results
        .into_iter()
        .map(|r| r.expect("every run index is stored or re-executed"))
        .collect();
    finalize(executor, &dir, &spec, results)
}

/// Builds the final report (eval phase on the pool) and persists it.
fn finalize(
    executor: &Executor,
    dir: &CampaignDir,
    spec: &CampaignSpec,
    results: Vec<RunResult>,
) -> Result<CampaignReport, SpecError> {
    let outcome = CampaignOutcome {
        spec: spec.clone(),
        runs: results,
    };
    let report = CampaignReport::build_with(&outcome, executor)?;
    dir.write_report(&report)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> CampaignSpec {
        let mut spec = CampaignSpec::quick("stream-tiny");
        spec.grid.mesh = vec![4];
        spec.grid.fir = vec![0.8];
        spec.grid.workloads = vec!["uniform".into()];
        spec.grid.attack_placements = 2;
        spec.grid.benign_runs = 1;
        spec.grid.seeds = vec![11];
        spec.sim.warmup_cycles = 50;
        spec.sim.sample_period = 150;
        spec.sim.samples_per_run = 1;
        spec
    }

    fn temp_root(tag: &str) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("dl2fence-stream-unit-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        root
    }

    #[test]
    fn fingerprint_is_stable_and_spec_sensitive() {
        let spec = tiny_spec();
        assert_eq!(spec_fingerprint(&spec), spec_fingerprint(&spec));
        let mut other = spec.clone();
        other.grid.seeds = vec![12];
        assert_ne!(spec_fingerprint(&spec), spec_fingerprint(&other));
    }

    #[test]
    fn create_refuses_an_initialized_directory() {
        let root = temp_root("create");
        let spec = tiny_spec();
        let total = grid::expand(&spec).unwrap().len();
        CampaignDir::create(&root, &spec, total).unwrap();
        let err = CampaignDir::create(&root, &spec, total).unwrap_err();
        assert!(err.to_string().contains("already contains"), "{err}");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn streaming_run_writes_every_record_and_the_report() {
        let root = temp_root("full");
        let spec = tiny_spec();
        let report = run_streaming(&Executor::new(2), &spec, &root).unwrap();
        assert_eq!(report.total_runs, 3);
        let jsonl = std::fs::read_to_string(root.join(RUNS_FILE)).unwrap();
        assert_eq!(jsonl.lines().count(), 3);
        assert_eq!(
            std::fs::read_to_string(root.join(REPORT_FILE)).unwrap(),
            report.to_json()
        );
        // A completed campaign resumes with nothing to do, byte-identically.
        let resumed = resume(&Executor::new(3), &root, Some(&spec)).unwrap();
        assert_eq!(resumed.to_json(), report.to_json());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn scan_tolerates_only_a_truncated_final_line() {
        let root = temp_root("scan");
        let spec = tiny_spec();
        run_streaming(&Executor::new(1), &spec, &root).unwrap();
        let dir = CampaignDir::open(&root).unwrap();
        let runs = grid::expand(&spec).unwrap();
        let full = std::fs::read_to_string(dir.runs_path()).unwrap();
        let mut lines: Vec<&str> = full.lines().collect();

        // Chop the final record mid-line: tolerated, index re-listed, and
        // valid_bytes points at the end of the last whole record.
        let tail = lines.pop().unwrap();
        let whole = format!("{}\n", lines.join("\n"));
        let truncated = format!("{whole}{}", &tail[..tail.len() / 2]);
        std::fs::write(dir.runs_path(), truncated).unwrap();
        let scan = dir.scan(&runs).unwrap();
        assert!(scan.truncated_tail);
        assert_eq!(scan.missing_indices(), vec![runs.len() - 1]);
        assert_eq!(scan.valid_bytes, whole.len() as u64);

        // The same garbage mid-file is corruption, not a crash artifact.
        let garbled = format!("{}\n{}\n{}\n", &tail[..tail.len() / 2], lines[0], tail);
        std::fs::write(dir.runs_path(), garbled).unwrap();
        let err = dir.scan(&runs).unwrap_err();
        assert!(err.to_string().contains("corrupt record"), "{err}");
        std::fs::remove_dir_all(&root).unwrap();
    }
}
