//! The campaign executor: a worker pool running independent simulations
//! concurrently with a parallel-equals-serial determinism guarantee.
//!
//! Every run's seed is derived from the spec alone
//! ([`crate::grid::derive_run_seed`]), workers pull run indices from a
//! shared atomic counter, and results are reassembled in index order before
//! aggregation — so the number of workers affects wall-clock time only,
//! never a single output byte.

use crate::grid::{self, RunSpec};
use crate::spec::{CampaignSpec, SimParams, SpecError};
use noc_monitor::{FrameSampler, GroundTruth, LabeledSample};
use noc_sim::{EnergyModel, NocConfig};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Scalar measurements of one finished run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Mean end-to-end packet latency, cycles.
    pub packet_latency: f64,
    /// Mean packet queueing latency (creation → head injection), cycles.
    pub packet_queue_latency: f64,
    /// Mean end-to-end flit latency, cycles.
    pub flit_latency: f64,
    /// Mean flit queueing latency, cycles.
    pub flit_queue_latency: f64,
    /// Packets created during the run.
    pub packets_created: u64,
    /// Packets delivered during the run.
    pub packets_received: u64,
    /// Malicious packets delivered during the run.
    pub malicious_packets_received: u64,
    /// Whether an injection queue saturated (the paper's "system crashed").
    pub saturated: bool,
    /// Estimated total dynamic + static energy, nanojoules.
    pub energy_nj: f64,
    /// Estimated average power, milliwatts.
    pub power_mw: f64,
}

/// One finished run: its spec, measurements and (optionally) the labeled
/// monitoring-window samples for the evaluation phase.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The run that was executed.
    pub spec: RunSpec,
    /// Scalar measurements.
    pub metrics: RunMetrics,
    /// Labeled VCO/BOC samples (empty unless `sim.collect_samples`).
    pub samples: Vec<LabeledSample>,
}

/// A fully executed campaign: the spec plus every run's result, in matrix
/// order.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// The spec the campaign ran from.
    pub spec: CampaignSpec,
    /// Results, ordered by run index.
    pub runs: Vec<RunResult>,
}

/// Executes one run of a campaign.
pub fn execute_run(sim: &SimParams, run: &RunSpec) -> RunResult {
    let mut noc = NocConfig::mesh(run.mesh, run.mesh);
    if sim.injection_queue_capacity > 0 {
        noc = noc.with_injection_queue_capacity(sim.injection_queue_capacity);
    }
    let mut scenario = run.scenario.build(noc, run.run_seed);
    let truth = GroundTruth::of_scenario(&scenario);
    scenario.run(sim.warmup_cycles);
    scenario.network_mut().reset_boc();
    let mut samples = Vec::new();
    for _ in 0..sim.samples_per_run {
        scenario.run(sim.sample_period);
        if sim.collect_samples {
            let (vco, boc) = FrameSampler::sample_both(scenario.network());
            samples.push(LabeledSample {
                vco,
                boc,
                truth: truth.clone(),
                benchmark: run.workload.clone(),
            });
        }
        scenario.network_mut().reset_boc();
    }
    let stats = scenario.network().stats();
    let energy = EnergyModel::new().estimate(stats, run.mesh * run.mesh);
    RunResult {
        spec: run.clone(),
        metrics: RunMetrics {
            packet_latency: stats.packet_latency.mean(),
            packet_queue_latency: stats.packet_queue_latency.mean(),
            flit_latency: stats.flit_latency.mean(),
            flit_queue_latency: stats.flit_queue_latency.mean(),
            packets_created: stats.packets_created,
            packets_received: stats.packets_received,
            malicious_packets_received: stats.malicious_packets_received,
            saturated: scenario.network().is_saturated(),
            energy_nj: energy.total_nj,
            power_mw: energy.average_mw,
        },
        samples,
    }
}

/// Runs campaigns over a pool of worker threads.
#[derive(Debug, Clone)]
pub struct Executor {
    workers: usize,
}

impl Executor {
    /// Creates an executor with `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Executor {
            workers: workers.max(1),
        }
    }

    /// An executor sized to the machine's available parallelism.
    pub fn with_available_parallelism() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Expands and executes `spec`, returning results in matrix order.
    ///
    /// The output is byte-for-byte identical for any worker count.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if the spec fails validation.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (a bug in the simulator stack).
    pub fn execute(&self, spec: &CampaignSpec) -> Result<CampaignOutcome, SpecError> {
        let runs = grid::expand(spec)?;
        let results = self.execute_runs(&spec.sim, &runs);
        Ok(CampaignOutcome {
            spec: spec.clone(),
            runs: results,
        })
    }

    /// Executes an already expanded run matrix, returning results in matrix
    /// order.
    pub fn execute_runs(&self, sim: &SimParams, runs: &[RunSpec]) -> Vec<RunResult> {
        if runs.is_empty() {
            return Vec::new();
        }
        let workers = self.workers.min(runs.len());
        if workers == 1 {
            return runs.iter().map(|r| execute_run(sim, r)).collect();
        }
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, RunResult)>();
        let mut slots: Vec<Option<RunResult>> = (0..runs.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= runs.len() {
                        break;
                    }
                    let result = execute_run(sim, &runs[i]);
                    if tx.send((i, result)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            // Streamed aggregation: slot results as they arrive instead of
            // buffering channel messages until the end.
            for (i, result) in rx {
                slots[i] = Some(result);
            }
        });
        slots
            .into_iter()
            .map(|r| r.expect("every run index is executed exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> CampaignSpec {
        let mut spec = CampaignSpec::quick("tiny");
        spec.grid.mesh = vec![4];
        spec.grid.fir = vec![0.8];
        spec.grid.workloads = vec!["uniform".into()];
        spec.grid.attack_placements = 2;
        spec.grid.benign_runs = 1;
        spec.grid.seeds = vec![3];
        spec.sim.warmup_cycles = 50;
        spec.sim.sample_period = 150;
        spec.sim.samples_per_run = 1;
        spec
    }

    #[test]
    fn attack_runs_deliver_malicious_packets() {
        let outcome = Executor::new(1).execute(&tiny_spec()).unwrap();
        assert_eq!(outcome.runs.len(), 3);
        for run in &outcome.runs {
            assert!(run.metrics.packets_received > 0, "run delivered no packets");
            assert_eq!(
                run.metrics.malicious_packets_received > 0,
                run.spec.is_attack()
            );
            assert!(run.metrics.energy_nj > 0.0);
        }
    }

    #[test]
    fn parallel_and_serial_runs_are_identical() {
        let spec = tiny_spec();
        let serial = Executor::new(1).execute(&spec).unwrap();
        let parallel = Executor::new(4).execute(&spec).unwrap();
        assert_eq!(serial.runs.len(), parallel.runs.len());
        for (s, p) in serial.runs.iter().zip(&parallel.runs) {
            assert_eq!(s.spec, p.spec);
            assert_eq!(s.metrics, p.metrics);
        }
    }

    #[test]
    fn samples_are_collected_only_on_request() {
        let mut spec = tiny_spec();
        let without = Executor::new(2).execute(&spec).unwrap();
        assert!(without.runs.iter().all(|r| r.samples.is_empty()));
        spec.sim.collect_samples = true;
        let with = Executor::new(2).execute(&spec).unwrap();
        assert!(with
            .runs
            .iter()
            .all(|r| r.samples.len() == spec.sim.samples_per_run));
        assert_eq!(
            with.runs[0].samples[0].truth.under_attack,
            with.runs[0].spec.is_attack()
        );
    }
}
