//! The campaign executor: a worker pool running independent simulations
//! concurrently with a parallel-equals-serial determinism guarantee.
//!
//! Every run's seed is derived from the spec alone
//! ([`crate::grid::derive_run_seed`]), workers pull run indices from a
//! shared atomic counter, and results are reassembled in index order before
//! aggregation — so the number of workers affects wall-clock time only,
//! never a single output byte.

use crate::grid::{self, RunSpec};
use crate::spec::{CampaignSpec, SimParams, SpecError};
use dl2fence_telemetry::Telemetry;
use noc_monitor::{FrameSampler, GroundTruth, LabeledSample};
use noc_sim::{EnergyModel, NocConfig, Topology};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

/// Scalar measurements of one finished run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Mean end-to-end packet latency, cycles.
    pub packet_latency: f64,
    /// Mean packet queueing latency (creation → head injection), cycles.
    pub packet_queue_latency: f64,
    /// Mean end-to-end flit latency, cycles.
    pub flit_latency: f64,
    /// Mean flit queueing latency, cycles.
    pub flit_queue_latency: f64,
    /// Packets created during the run.
    pub packets_created: u64,
    /// Packets delivered during the run.
    pub packets_received: u64,
    /// Malicious packets delivered during the run.
    pub malicious_packets_received: u64,
    /// Whether an injection queue saturated (the paper's "system crashed").
    pub saturated: bool,
    /// Estimated total dynamic + static energy, nanojoules.
    pub energy_nj: f64,
    /// Estimated average power, milliwatts.
    pub power_mw: f64,
}

/// One finished run: its spec, measurements and (optionally) the labeled
/// monitoring-window samples for the evaluation phase.
///
/// Serializes losslessly (floats use shortest round-trip formatting), which
/// is what lets [`crate::stream`] persist results as JSONL records and
/// rebuild a byte-identical report on resume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// The run that was executed.
    pub spec: RunSpec,
    /// Scalar measurements.
    pub metrics: RunMetrics,
    /// Labeled VCO/BOC samples (empty unless `sim.collect_samples`).
    pub samples: Vec<LabeledSample>,
}

impl RunResult {
    /// Moves the sample payload out of the record, leaving it empty — how
    /// `campaign compact --strip-samples` shrinks a stored record after its
    /// samples are safely in the directory's sample store.
    pub fn take_samples(&mut self) -> Vec<LabeledSample> {
        std::mem::take(&mut self.samples)
    }
}

/// A fully executed campaign: the spec plus every run's result, in matrix
/// order.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// The spec the campaign ran from.
    pub spec: CampaignSpec,
    /// Results, ordered by run index.
    pub runs: Vec<RunResult>,
}

/// Executes one run of a campaign.
pub fn execute_run(sim: &SimParams, run: &RunSpec) -> RunResult {
    // Empty topology strings come from hand-built runs of the pre-topology
    // era; they keep their legacy square-mesh meaning.
    let topology = if run.topology.is_empty() {
        Topology::mesh(run.mesh, run.mesh)
    } else {
        Topology::parse(&run.topology)
            .unwrap_or_else(|e| panic!("run {} has an invalid topology: {e}", run.index))
    };
    let mut noc = NocConfig::for_topology(&topology);
    if sim.injection_queue_capacity > 0 {
        noc = noc.with_injection_queue_capacity(sim.injection_queue_capacity);
    }
    let mut scenario = run.scenario.build(noc, run.run_seed);
    let truth = GroundTruth::of_scenario(&scenario);
    scenario.run(sim.warmup_cycles);
    scenario.network_mut().reset_boc();
    let mut samples = Vec::new();
    for _ in 0..sim.samples_per_run {
        scenario.run(sim.sample_period);
        if sim.collect_samples {
            let (vco, boc) = FrameSampler::sample_both(scenario.network());
            samples.push(LabeledSample {
                vco,
                boc,
                truth: truth.clone(),
                benchmark: run.workload.clone(),
            });
        }
        scenario.network_mut().reset_boc();
    }
    let stats = scenario.network().stats();
    let energy = EnergyModel::new().estimate(stats, topology.node_count());
    RunResult {
        spec: run.clone(),
        metrics: RunMetrics {
            packet_latency: stats.packet_latency.mean(),
            packet_queue_latency: stats.packet_queue_latency.mean(),
            flit_latency: stats.flit_latency.mean(),
            flit_queue_latency: stats.flit_queue_latency.mean(),
            packets_created: stats.packets_created,
            packets_received: stats.packets_received,
            malicious_packets_received: stats.malicious_packets_received,
            saturated: scenario.network().is_saturated(),
            energy_nj: energy.total_nj,
            power_mw: energy.average_mw,
        },
        samples,
    }
}

/// A worker job panicked.
///
/// The pool catches the unwind and reports the exact job index plus the
/// rendered panic payload, so campaign tooling can name the failed run
/// instead of surfacing an opaque pool panic. Every run that completed
/// before the panic has already been delivered to the observer (and, in the
/// streaming layer, persisted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// Index of the job whose closure panicked.
    pub job_index: usize,
    /// The panic payload rendered as text (`&str` / `String` payloads are
    /// kept verbatim; anything else becomes a placeholder).
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker job {} panicked: {}",
            self.job_index, self.message
        )
    }
}

impl std::error::Error for JobPanic {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs campaigns over a pool of worker threads.
#[derive(Debug, Clone)]
pub struct Executor {
    workers: usize,
    telemetry: Telemetry,
}

impl Executor {
    /// Creates an executor with `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Executor {
            workers: workers.max(1),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle. Each worker thread then records
    /// per-job queue-wait (`worker.queue_wait`) and per-worker busy time and
    /// job counts (`worker.busy_us` / `worker.jobs`, indexed by the worker's
    /// pool ordinal), and caught panics increment `executor.worker_panics`.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The executor's telemetry handle (disabled unless
    /// [`Self::with_telemetry`] was called).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// An executor sized to the machine's available parallelism.
    pub fn with_available_parallelism() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Expands and executes `spec`, returning results in matrix order.
    ///
    /// The output is byte-for-byte identical for any worker count.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if the spec fails validation.
    ///
    /// # Panics
    ///
    /// Panics if a run panics (a bug in the simulator stack), naming the
    /// failed run's job index (see [`JobPanic`]).
    pub fn execute(&self, spec: &CampaignSpec) -> Result<CampaignOutcome, SpecError> {
        let runs = grid::expand(spec)?;
        let results = self.execute_runs(&spec.sim, &runs);
        Ok(CampaignOutcome {
            spec: spec.clone(),
            runs: results,
        })
    }

    /// Executes an already expanded run matrix, returning results in matrix
    /// order.
    pub fn execute_runs(&self, sim: &SimParams, runs: &[RunSpec]) -> Vec<RunResult> {
        self.execute_runs_with(sim, runs, |_| {})
    }

    /// Executes a run matrix, invoking `observer` on the calling thread for
    /// each result **as it completes** — in completion order, not matrix
    /// order — before returning all results reassembled in matrix order.
    ///
    /// Callers that persist results and do not need them reassembled (the
    /// streaming layer, [`crate::stream`]) use [`Self::try_run_jobs_foreach`]
    /// instead, which retains nothing.
    pub fn execute_runs_with(
        &self,
        sim: &SimParams,
        runs: &[RunSpec],
        mut observer: impl FnMut(&RunResult),
    ) -> Vec<RunResult> {
        self.run_jobs_with(
            runs,
            |run| execute_run(sim, run),
            |_, result| observer(result),
        )
    }

    /// Runs arbitrary independent jobs on the worker pool, returning results
    /// in job order regardless of the worker count.
    ///
    /// This is the generic pool behind both run execution and the parallel
    /// eval phase: workers pull job indices from a shared atomic counter and
    /// results are slotted back by index.
    pub fn run_jobs<T, R>(&self, jobs: &[T], job: impl Fn(&T) -> R + Sync) -> Vec<R>
    where
        T: Sync,
        R: Send,
    {
        self.run_jobs_with(jobs, job, |_, _| {})
    }

    /// [`Self::run_jobs`] plus a completion observer invoked on the calling
    /// thread, in completion order, with each `(job index, result)` pair.
    ///
    /// # Panics
    ///
    /// Panics if a job closure panics, with a message naming the job index
    /// (see [`JobPanic`]).
    pub fn run_jobs_with<T, R>(
        &self,
        jobs: &[T],
        job: impl Fn(&T) -> R + Sync,
        mut observer: impl FnMut(usize, &R),
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
    {
        self.try_run_jobs_with(jobs, job, |i, r| {
            observer(i, r);
            true
        })
        .unwrap_or_else(|p| panic!("{p}"))
        .expect("an always-continue observer cannot abort")
    }

    /// [`Self::run_jobs_with`] with an abortable observer: returning `false`
    /// stops scheduling new jobs, drains the pool (in-flight jobs finish and
    /// are discarded) and yields `Ok(None)`.
    ///
    /// # Errors
    ///
    /// Returns a [`JobPanic`] naming the failing job index if a job closure
    /// panics.
    pub fn try_run_jobs_with<T, R>(
        &self,
        jobs: &[T],
        job: impl Fn(&T) -> R + Sync,
        mut observer: impl FnMut(usize, &R) -> bool,
    ) -> Result<Option<Vec<R>>, JobPanic>
    where
        T: Sync,
        R: Send,
    {
        let mut slots: Vec<Option<R>> = (0..jobs.len()).map(|_| None).collect();
        match self.try_run_jobs_foreach(jobs, job, |i, result| {
            let keep_going = observer(i, &result);
            slots[i] = Some(result);
            keep_going
        })? {
            None => Ok(None),
            Some(()) => Ok(Some(
                slots
                    .into_iter()
                    .map(|r| r.expect("every job index is executed exactly once"))
                    .collect(),
            )),
        }
    }

    /// The streaming primitive behind the pool: runs every job, handing each
    /// `(job index, result)` pair to `observer` **by value** on the calling
    /// thread, in completion order, and retaining nothing — the observer
    /// drops (or persists) each result before the next one is delivered, so
    /// peak memory is one in-flight result per worker regardless of how many
    /// jobs the matrix holds.
    ///
    /// Returning `false` from the observer aborts: no new jobs are
    /// scheduled, in-flight jobs finish and are discarded, and the call
    /// yields `Ok(None)`. This is what lets bigger-than-memory campaigns
    /// stream every run straight to disk ([`crate::stream`]) without the
    /// pool ever collecting a `Vec` of results.
    ///
    /// # Errors
    ///
    /// A panicking job closure is caught and returned as a [`JobPanic`]
    /// naming the failing job index; no new jobs are scheduled after the
    /// panic, and results already handed to the observer stay delivered.
    pub fn try_run_jobs_foreach<T, R>(
        &self,
        jobs: &[T],
        job: impl Fn(&T) -> R + Sync,
        mut observer: impl FnMut(usize, R) -> bool,
    ) -> Result<Option<()>, JobPanic>
    where
        T: Sync,
        R: Send,
    {
        if jobs.is_empty() {
            return Ok(Some(()));
        }
        let workers = self.workers.min(jobs.len());
        if workers == 1 {
            let rec = self.telemetry.recorder();
            let enabled = rec.is_enabled();
            let mut idle_since = enabled.then(Instant::now);
            for (i, j) in jobs.iter().enumerate() {
                if let Some(at) = idle_since {
                    rec.record("worker.queue_wait", at.elapsed());
                }
                let started = enabled.then(Instant::now);
                let outcome = catch_unwind(AssertUnwindSafe(|| job(j)));
                if let Some(at) = started {
                    rec.add_indexed("worker.busy_us", 0, at.elapsed().as_micros() as u64);
                    rec.add_indexed("worker.jobs", 0, 1);
                    idle_since = Some(Instant::now());
                }
                match outcome {
                    Ok(result) => {
                        if !observer(i, result) {
                            return Ok(None);
                        }
                    }
                    Err(payload) => {
                        rec.add("executor.worker_panics", 1);
                        return Err(JobPanic {
                            job_index: i,
                            message: panic_message(payload),
                        });
                    }
                }
            }
            return Ok(Some(()));
        }
        enum WorkerMsg<R> {
            Done(usize, R),
            Panicked(usize, String),
        }
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<WorkerMsg<R>>();
        let mut aborted = false;
        let mut panicked: Option<JobPanic> = None;
        let telemetry = &self.telemetry;
        std::thread::scope(|scope| {
            for w in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let job = &job;
                scope.spawn(move || {
                    let rec = telemetry.recorder();
                    let enabled = rec.is_enabled();
                    let mut idle_since = enabled.then(Instant::now);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        if let Some(at) = idle_since {
                            rec.record("worker.queue_wait", at.elapsed());
                        }
                        let started = enabled.then(Instant::now);
                        let outcome = catch_unwind(AssertUnwindSafe(|| job(&jobs[i])));
                        if let Some(at) = started {
                            rec.add_indexed(
                                "worker.busy_us",
                                w as u64,
                                at.elapsed().as_micros() as u64,
                            );
                            rec.add_indexed("worker.jobs", w as u64, 1);
                            idle_since = Some(Instant::now());
                        }
                        match outcome {
                            Ok(result) => {
                                if tx.send(WorkerMsg::Done(i, result)).is_err() {
                                    break;
                                }
                            }
                            Err(payload) => {
                                rec.add("executor.worker_panics", 1);
                                // Stop handing out new indices; sibling
                                // workers finish their in-flight job and
                                // drain.
                                next.store(jobs.len(), Ordering::Relaxed);
                                let _ = tx.send(WorkerMsg::Panicked(i, panic_message(payload)));
                                break;
                            }
                        }
                    }
                });
            }
            drop(tx);
            // Streamed delivery: each result is observed (and dropped) as it
            // arrives instead of buffering channel messages until the end.
            for msg in rx {
                match msg {
                    WorkerMsg::Done(i, result) => {
                        if !observer(i, result) {
                            // Abort: stop handing out new job indices and
                            // drop the receiver so in-flight senders unblock
                            // and drain.
                            aborted = true;
                            next.store(jobs.len(), Ordering::Relaxed);
                            break;
                        }
                    }
                    WorkerMsg::Panicked(i, message) => {
                        panicked = Some(JobPanic {
                            job_index: i,
                            message,
                        });
                        next.store(jobs.len(), Ordering::Relaxed);
                        break;
                    }
                }
            }
        });
        if let Some(p) = panicked {
            Err(p)
        } else if aborted {
            Ok(None)
        } else {
            Ok(Some(()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> CampaignSpec {
        let mut spec = CampaignSpec::quick("tiny");
        spec.grid.mesh = vec![4];
        spec.grid.fir = vec![0.8];
        spec.grid.workloads = vec!["uniform".into()];
        spec.grid.attack_placements = 2;
        spec.grid.benign_runs = 1;
        spec.grid.seeds = vec![3];
        spec.sim.warmup_cycles = 50;
        spec.sim.sample_period = 150;
        spec.sim.samples_per_run = 1;
        spec
    }

    #[test]
    fn attack_runs_deliver_malicious_packets() {
        let outcome = Executor::new(1).execute(&tiny_spec()).unwrap();
        assert_eq!(outcome.runs.len(), 3);
        for run in &outcome.runs {
            assert!(run.metrics.packets_received > 0, "run delivered no packets");
            assert_eq!(
                run.metrics.malicious_packets_received > 0,
                run.spec.is_attack()
            );
            assert!(run.metrics.energy_nj > 0.0);
        }
    }

    #[test]
    fn parallel_and_serial_runs_are_identical() {
        let spec = tiny_spec();
        let serial = Executor::new(1).execute(&spec).unwrap();
        let parallel = Executor::new(4).execute(&spec).unwrap();
        assert_eq!(serial.runs.len(), parallel.runs.len());
        for (s, p) in serial.runs.iter().zip(&parallel.runs) {
            assert_eq!(s.spec, p.spec);
            assert_eq!(s.metrics, p.metrics);
        }
    }

    #[test]
    fn observer_sees_every_result_exactly_once() {
        let spec = tiny_spec();
        let runs = grid::expand(&spec).unwrap();
        for workers in [1, 4] {
            let mut seen = Vec::new();
            let results = Executor::new(workers).execute_runs_with(&spec.sim, &runs, |r| {
                seen.push(r.spec.index);
            });
            assert_eq!(results.len(), runs.len());
            seen.sort_unstable();
            assert_eq!(seen, (0..runs.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_jobs_returns_results_in_job_order_for_any_worker_count() {
        let jobs: Vec<u64> = (0..37).collect();
        let expected: Vec<u64> = jobs.iter().map(|j| j * j).collect();
        for workers in [1, 3, 16] {
            assert_eq!(Executor::new(workers).run_jobs(&jobs, |&j| j * j), expected);
        }
    }

    #[test]
    fn foreach_delivers_every_result_once_and_aborts_on_false() {
        let jobs: Vec<u64> = (0..25).collect();
        for workers in [1, 4] {
            let mut seen = vec![false; jobs.len()];
            let done = Executor::new(workers).try_run_jobs_foreach(
                &jobs,
                |&j| j + 1,
                |i, r| {
                    assert_eq!(r, jobs[i] + 1);
                    assert!(!seen[i], "job {i} delivered twice");
                    seen[i] = true;
                    true
                },
            );
            assert_eq!(done, Ok(Some(())));
            assert!(seen.iter().all(|&s| s));

            let mut count = 0;
            let aborted = Executor::new(workers).try_run_jobs_foreach(
                &jobs,
                |&j| j,
                |_, _| {
                    count += 1;
                    count < 3
                },
            );
            assert_eq!(aborted, Ok(None), "a false observer must abort the pool");
        }
    }

    #[test]
    fn worker_panic_is_surfaced_with_its_job_index() {
        let jobs: Vec<u64> = (0..8).collect();
        for workers in [1, 4] {
            let err = Executor::new(workers)
                .try_run_jobs_foreach(
                    &jobs,
                    |&j| {
                        if j == 5 {
                            panic!("boom on {j}");
                        }
                        j
                    },
                    |i, r| {
                        assert_eq!(r, jobs[i]);
                        true
                    },
                )
                .unwrap_err();
            assert_eq!(err.job_index, 5);
            assert!(err.message.contains("boom on 5"), "{err:?}");
            assert!(err.to_string().contains("worker job 5 panicked"));
        }
    }

    #[test]
    fn worker_panics_are_counted_in_telemetry() {
        use dl2fence_telemetry::{EventData, MemorySink, Telemetry};
        use std::sync::Arc;

        let sink = Arc::new(MemorySink::new());
        let executor = Executor::new(2).with_telemetry(Telemetry::with_sink(sink.clone()));
        let jobs: Vec<u64> = (0..6).collect();
        let err = executor
            .try_run_jobs_foreach(
                &jobs,
                |&j| {
                    if j == 2 {
                        panic!("sim bug");
                    }
                    j
                },
                |_, _| true,
            )
            .unwrap_err();
        assert_eq!(err.job_index, 2);
        let events = sink.snapshot();
        let panics: u64 = events
            .iter()
            .filter_map(|e| match &e.data {
                EventData::Counter { name, delta, .. } if name == "executor.worker_panics" => {
                    Some(*delta)
                }
                _ => None,
            })
            .sum();
        assert_eq!(panics, 1, "exactly one panic must be counted");
        assert!(
            events.iter().any(
                |e| matches!(&e.data, EventData::Counter { name, .. } if name == "worker.jobs")
            ),
            "workers must report job counts"
        );
    }

    #[test]
    fn samples_are_collected_only_on_request() {
        let mut spec = tiny_spec();
        let without = Executor::new(2).execute(&spec).unwrap();
        assert!(without.runs.iter().all(|r| r.samples.is_empty()));
        spec.sim.collect_samples = true;
        let with = Executor::new(2).execute(&spec).unwrap();
        assert!(with
            .runs
            .iter()
            .all(|r| r.samples.len() == spec.sim.samples_per_run));
        assert_eq!(
            with.runs[0].samples[0].truth.under_attack,
            with.runs[0].spec.is_attack()
        );
    }
}
