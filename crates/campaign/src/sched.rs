//! Coordinator-mode dynamic scheduling: lease run-index ranges to workers.
//!
//! Static sharding ([`crate::stream::run_shard`]) decides the split up
//! front, so heterogeneous machines finish at wildly different times and a
//! crashed shard is only discovered at merge. This module turns the
//! campaign directory into a **fleet scheduler**:
//!
//! ```text
//! campaign serve-sched <dir> --spec spec.toml     # coordinator
//! campaign work        <dir> --worker w1          # any number of workers
//! ```
//!
//! The coordinator owns the campaign directory and grants **leases** —
//! bounded run-index batches stamped with the spec fingerprint and a
//! deadline ([`crate::lease::Lease`]) — to workers as they ask for them.
//! Each worker executes its leased runs into its own ordinary campaign
//! directory under `<dir>/workers/<id>` (per-worker logs and per-worker
//! spilled sample stores, so no two machines ever append to one file) and
//! reports per-run progress; **progress is the heartbeat**, extending the
//! lease deadline. A lease whose deadline passes is expired and its
//! unfinished indices are re-leased to the next worker that asks — and
//! because every run is deterministic from spec + index, a worker that
//! crashed *after* persisting a record merely produces an identical
//! duplicate, which the merge dedupes (conflicting payloads abort, as
//! always). When the matrix drains, the coordinator assembles every worker
//! directory (speculatively re-executing any residual gap itself) into a
//! `report.json` **byte-identical** to a single-machine run.
//!
//! The wire protocol is deliberately file-first — one JSON message per
//! file, written atomically via temp + rename under `<dir>/sched/` — so a
//! shared filesystem is the only infrastructure a fleet needs. Both sides
//! speak through the [`CoordTransport`] / [`WorkerTransport`] traits, so a
//! socket front-end can replace the directory exchange without touching
//! the scheduler or the worker loop.

use crate::executor::{execute_run, Executor};
use crate::grid::{self, RunSpec};
use crate::lease::{
    append_ledger, open_ledger_for_append, read_ledger, Lease, LedgerRecord, LEDGER_COMPLETED,
    LEDGER_EXPIRED, LEDGER_ISSUED, LEDGER_PROGRESS, SCHED_DIR,
};
use crate::report::CampaignReport;
use crate::spec::{CampaignSpec, SpecError};
use crate::stream::{spec_fingerprint, CampaignDir, SpillPolicy, MANIFEST_FILE};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Directory (inside `sched/`) where workers drop messages for the
/// coordinator, one JSON file per message.
pub const INBOX_DIR: &str = "inbox";
/// Directory (inside `sched/`) where the coordinator leaves each worker's
/// latest reply, one JSON file per worker.
pub const OUTBOX_DIR: &str = "outbox";
/// Marker file (inside `sched/`) the coordinator writes once the matrix is
/// drained — workers polling for a reply treat it as a standing "drained".
pub const DONE_FILE: &str = "done.json";
/// Directory (inside the campaign directory) holding one campaign
/// directory per worker.
pub const WORKERS_DIR: &str = "workers";

/// Worker→coordinator message kind: grant me a lease.
pub const MSG_REQUEST: &str = "request";
/// Worker→coordinator message kind: one leased run index is persisted
/// (also the lease heartbeat).
pub const MSG_PROGRESS: &str = "progress";
/// Worker→coordinator message kind: every index of the lease is persisted.
pub const MSG_COMPLETE: &str = "complete";

/// Coordinator→worker reply kind: a lease (carried in [`CoordMsg::lease`]).
pub const REPLY_LEASE: &str = "lease";
/// Coordinator→worker reply kind: nothing to grant right now, ask again.
pub const REPLY_WAIT: &str = "wait";
/// Coordinator→worker reply kind: the matrix is drained, shut down.
pub const REPLY_DRAINED: &str = "drained";

/// One worker→coordinator message.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WorkerMsg {
    /// Sending worker id.
    pub worker: String,
    /// Worker-local sequence number; replies quote it in
    /// [`CoordMsg::reply_to`].
    pub seq: u64,
    /// One of [`MSG_REQUEST`] / [`MSG_PROGRESS`] / [`MSG_COMPLETE`].
    pub kind: String,
    /// The lease the message is about (progress/complete).
    #[serde(default)]
    pub lease_id: u64,
    /// The persisted run index (progress only).
    #[serde(default)]
    pub index: Option<usize>,
}

/// One coordinator→worker reply.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CoordMsg {
    /// The [`WorkerMsg::seq`] this replies to.
    pub reply_to: u64,
    /// One of [`REPLY_LEASE`] / [`REPLY_WAIT`] / [`REPLY_DRAINED`].
    pub kind: String,
    /// The granted lease ([`REPLY_LEASE`] only).
    #[serde(default)]
    pub lease: Option<Lease>,
}

/// How the coordinator slices and times leases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedConfig {
    /// Maximum run indices per lease.
    pub lease_size: usize,
    /// Lease time-to-live, µs of coordinator clock: a granted (or
    /// progressed) lease that stays silent this long is expired and its
    /// unfinished indices re-queued.
    pub lease_ttl_us: u64,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            lease_size: 4,
            lease_ttl_us: 30_000_000,
        }
    }
}

/// What [`Scheduler::grant`] decided for one asking worker.
#[derive(Debug, Clone, PartialEq)]
pub enum Grant {
    /// A lease was carved off the pending queue. `reissued_indices` counts
    /// how many of its indices had been leased before (an expiry put them
    /// back).
    Lease {
        /// The granted lease.
        lease: Lease,
        /// Indices in the lease previously covered by an expired lease.
        reissued_indices: usize,
    },
    /// Nothing pending, but other leases are still in flight — their
    /// indices may come back, so the worker should ask again.
    Wait,
    /// Nothing pending and nothing in flight: the matrix is drained.
    Drained,
}

/// Monotone lease counters, mirrored to telemetry as
/// `sched.leases_issued` / `sched.leases_expired` / `sched.leases_reissued`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedCounters {
    /// Leases granted.
    pub issued: u64,
    /// Leases expired past their deadline.
    pub expired: u64,
    /// Grants that re-covered previously leased indices.
    pub reissued: u64,
    /// Leases that completed every index.
    pub completed: u64,
}

/// The coordinator's deterministic scheduling state machine.
///
/// Pure bookkeeping: no clock (callers pass `now_us`), no I/O, no
/// transport — which is what lets the kill-and-release property test drive
/// arbitrary grant/progress/expire interleavings without threads and assert
/// the outcome exactly.
#[derive(Debug)]
pub struct Scheduler {
    config: SchedConfig,
    fingerprint: String,
    /// Run indices awaiting a lease, front = granted next.
    pending: VecDeque<usize>,
    /// Whether each run index has ever been part of a lease (reissue
    /// detection).
    ever_leased: Vec<bool>,
    /// Leases granted and neither completed nor expired.
    active: Vec<Lease>,
    next_id: u64,
    counters: SchedCounters,
}

impl Scheduler {
    /// Builds a scheduler over a run matrix: `stored[i]` marks indices that
    /// already have a persisted record (the coordinator's own log plus every
    /// worker directory) and are never leased.
    pub fn new(config: SchedConfig, fingerprint: &str, stored: &[bool]) -> Self {
        Scheduler {
            config: SchedConfig {
                lease_size: config.lease_size.max(1),
                ..config
            },
            fingerprint: fingerprint.to_string(),
            pending: stored
                .iter()
                .enumerate()
                .filter_map(|(i, &s)| (!s).then_some(i))
                .collect(),
            ever_leased: vec![false; stored.len()],
            active: Vec::new(),
            next_id: 0,
            counters: SchedCounters::default(),
        }
    }

    /// Continues lease ids past a prior coordinator session's ledger, so
    /// ids stay ledger-unique across restarts.
    pub fn with_next_id(mut self, next_id: u64) -> Self {
        self.next_id = next_id;
        self
    }

    /// Grants the next lease to `worker`, or says why there is none.
    pub fn grant(&mut self, worker: &str, now_us: u64) -> Grant {
        if self.pending.is_empty() {
            return if self.active.is_empty() {
                Grant::Drained
            } else {
                Grant::Wait
            };
        }
        let take = self.config.lease_size.min(self.pending.len());
        let indices: Vec<usize> = self.pending.drain(..take).collect();
        let reissued_indices = indices.iter().filter(|&&i| self.ever_leased[i]).count();
        for &i in &indices {
            self.ever_leased[i] = true;
        }
        let lease = Lease {
            id: self.next_id,
            worker: worker.to_string(),
            remaining: indices.clone(),
            indices,
            fingerprint: self.fingerprint.clone(),
            deadline_us: now_us.saturating_add(self.config.lease_ttl_us),
        };
        self.next_id += 1;
        self.counters.issued += 1;
        if reissued_indices > 0 {
            self.counters.reissued += 1;
        }
        self.active.push(lease.clone());
        Grant::Lease {
            lease,
            reissued_indices,
        }
    }

    /// Records that lease `id` persisted run `index`, extending the
    /// deadline to `now_us + ttl` (progress is the heartbeat). Returns the
    /// extended deadline, or `None` for an unknown/finished lease — stale
    /// progress from an expired lease is harmless and ignored.
    pub fn progress(&mut self, id: u64, index: usize, now_us: u64) -> Option<u64> {
        let lease = self.active.iter_mut().find(|l| l.id == id)?;
        lease.remaining.retain(|&i| i != index);
        lease.deadline_us = now_us.saturating_add(self.config.lease_ttl_us);
        // The record is persisted: even if this lease later expires, the
        // index must not be re-executed.
        self.pending.retain(|&i| i != index);
        Some(lease.deadline_us)
    }

    /// Completes lease `id`, returning it. Indices the worker never
    /// progressed (a worker may complete early) go back to the pending
    /// queue. `None` for an unknown/already-settled lease.
    pub fn complete(&mut self, id: u64) -> Option<Lease> {
        let at = self.active.iter().position(|l| l.id == id)?;
        let lease = self.active.remove(at);
        self.pending.extend(lease.remaining.iter().copied());
        self.counters.completed += 1;
        Some(lease)
    }

    /// Expires every active lease whose deadline lies before `now_us`,
    /// returning them; their unfinished indices rejoin the pending queue
    /// for the next grant (that grant counts as a reissue).
    pub fn expire_overdue(&mut self, now_us: u64) -> Vec<Lease> {
        let mut expired = Vec::new();
        let mut i = 0;
        while i < self.active.len() {
            if self.active[i].deadline_us < now_us {
                let lease = self.active.remove(i);
                self.pending.extend(lease.remaining.iter().copied());
                self.counters.expired += 1;
                expired.push(lease);
            } else {
                i += 1;
            }
        }
        expired
    }

    /// `true` once nothing is pending and nothing is in flight.
    pub fn drained(&self) -> bool {
        self.pending.is_empty() && self.active.is_empty()
    }

    /// The monotone lease counters so far.
    pub fn counters(&self) -> SchedCounters {
        self.counters
    }

    /// Leases currently in flight.
    pub fn active_leases(&self) -> &[Lease] {
        &self.active
    }

    /// Run indices awaiting a lease.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

/// The coordinator's side of the scheduling wire protocol.
pub trait CoordTransport {
    /// Drains every queued worker message, ordered by (worker, seq).
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] on transport failure.
    fn poll(&mut self) -> Result<Vec<WorkerMsg>, SpecError>;

    /// Delivers `msg` to `worker` (replacing any unread previous reply —
    /// a worker has at most one request outstanding).
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] on transport failure.
    fn reply(&mut self, worker: &str, msg: &CoordMsg) -> Result<(), SpecError>;

    /// Raises the standing "drained" signal every current and future worker
    /// observes, even ones the coordinator never heard from.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] on transport failure.
    fn announce_done(&mut self) -> Result<(), SpecError>;
}

/// A worker's side of the scheduling wire protocol.
pub trait WorkerTransport {
    /// Sends one message to the coordinator.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] on transport failure.
    fn send(&mut self, msg: &WorkerMsg) -> Result<(), SpecError>;

    /// Non-blocking: the coordinator's reply to `reply_to`, if it has
    /// arrived.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] on transport failure.
    fn try_recv(&mut self, reply_to: u64) -> Result<Option<CoordMsg>, SpecError>;

    /// Whether the coordinator has raised the standing "drained" signal.
    fn done(&self) -> bool;
}

fn write_atomic(path: &Path, text: &str) -> Result<(), SpecError> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, text)
        .map_err(|e| SpecError::new(format!("cannot write {}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| SpecError::new(format!("cannot finalize {}: {e}", path.display())))
}

/// [`CoordTransport`] over the shared-filesystem message directories in
/// `<campaign-dir>/sched/`.
pub struct FsCoordTransport {
    inbox: PathBuf,
    outbox: PathBuf,
    done: PathBuf,
}

impl FsCoordTransport {
    /// Attaches to (and initializes) the `sched/` exchange of the campaign
    /// directory at `root`, clearing any stale done marker from a previous
    /// serving session.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if the directories cannot be created.
    pub fn new(root: &Path) -> Result<Self, SpecError> {
        let sched = root.join(SCHED_DIR);
        let inbox = sched.join(INBOX_DIR);
        let outbox = sched.join(OUTBOX_DIR);
        for dir in [&inbox, &outbox] {
            std::fs::create_dir_all(dir)
                .map_err(|e| SpecError::new(format!("cannot create {}: {e}", dir.display())))?;
        }
        let done = sched.join(DONE_FILE);
        if done.exists() {
            std::fs::remove_file(&done)
                .map_err(|e| SpecError::new(format!("cannot clear {}: {e}", done.display())))?;
        }
        Ok(FsCoordTransport {
            inbox,
            outbox,
            done,
        })
    }
}

impl CoordTransport for FsCoordTransport {
    fn poll(&mut self) -> Result<Vec<WorkerMsg>, SpecError> {
        let entries = std::fs::read_dir(&self.inbox)
            .map_err(|e| SpecError::new(format!("cannot read {}: {e}", self.inbox.display())))?;
        let mut msgs = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| {
                SpecError::new(format!("cannot read {}: {e}", self.inbox.display()))
            })?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue; // a temp file mid-rename
            }
            let text = match std::fs::read_to_string(&path) {
                Ok(text) => text,
                // A worker cleaning up its own stale messages raced us.
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => {
                    return Err(SpecError::new(format!(
                        "cannot read {}: {e}",
                        path.display()
                    )))
                }
            };
            let msg: WorkerMsg = serde_json::from_str(&text).map_err(|e| {
                SpecError::new(format!("malformed worker message {}: {e}", path.display()))
            })?;
            std::fs::remove_file(&path)
                .map_err(|e| SpecError::new(format!("cannot consume {}: {e}", path.display())))?;
            msgs.push(msg);
        }
        msgs.sort_by(|a, b| a.worker.cmp(&b.worker).then(a.seq.cmp(&b.seq)));
        Ok(msgs)
    }

    fn reply(&mut self, worker: &str, msg: &CoordMsg) -> Result<(), SpecError> {
        let text = serde_json::to_string(msg).expect("reply serialization cannot fail");
        write_atomic(&self.outbox.join(format!("{worker}.json")), &text)
    }

    fn announce_done(&mut self) -> Result<(), SpecError> {
        write_atomic(&self.done, "{\"drained\":true}\n")
    }
}

/// [`WorkerTransport`] over the same `sched/` exchange.
pub struct FsWorkerTransport {
    worker: String,
    inbox: PathBuf,
    outbox_file: PathBuf,
    done: PathBuf,
}

impl FsWorkerTransport {
    /// Attaches worker `worker` to the exchange of the campaign directory
    /// at `root`, clearing any stale messages a previous incarnation of the
    /// same worker id left behind (so its fresh sequence numbers cannot be
    /// confused with old ones).
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if the directories cannot be created or the
    /// stale state cannot be cleared.
    pub fn new(root: &Path, worker: &str) -> Result<Self, SpecError> {
        let sched = root.join(SCHED_DIR);
        let inbox = sched.join(INBOX_DIR);
        let outbox = sched.join(OUTBOX_DIR);
        for dir in [&inbox, &outbox] {
            std::fs::create_dir_all(dir)
                .map_err(|e| SpecError::new(format!("cannot create {}: {e}", dir.display())))?;
        }
        let outbox_file = outbox.join(format!("{worker}.json"));
        if outbox_file.exists() {
            std::fs::remove_file(&outbox_file).map_err(|e| {
                SpecError::new(format!("cannot clear {}: {e}", outbox_file.display()))
            })?;
        }
        if let Ok(entries) = std::fs::read_dir(&inbox) {
            let prefix = format!("{worker}-");
            for entry in entries.flatten() {
                if entry
                    .file_name()
                    .to_str()
                    .is_some_and(|n| n.starts_with(&prefix))
                {
                    // Tolerate the coordinator consuming it concurrently.
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        Ok(FsWorkerTransport {
            worker: worker.to_string(),
            inbox,
            outbox_file,
            done: sched.join(DONE_FILE),
        })
    }
}

impl WorkerTransport for FsWorkerTransport {
    fn send(&mut self, msg: &WorkerMsg) -> Result<(), SpecError> {
        let text = serde_json::to_string(msg).expect("message serialization cannot fail");
        let path = self
            .inbox
            .join(format!("{}-{:012}.json", self.worker, msg.seq));
        write_atomic(&path, &text)
    }

    fn try_recv(&mut self, reply_to: u64) -> Result<Option<CoordMsg>, SpecError> {
        let text = match std::fs::read_to_string(&self.outbox_file) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(SpecError::new(format!(
                    "cannot read {}: {e}",
                    self.outbox_file.display()
                )))
            }
        };
        match serde_json::from_str::<CoordMsg>(&text) {
            Ok(msg) if msg.reply_to == reply_to => Ok(Some(msg)),
            // An older reply, or a reply caught mid-replacement: not ours.
            _ => Ok(None),
        }
    }

    fn done(&self) -> bool {
        self.done.exists()
    }
}

/// Coordinator knobs for [`serve_sched`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeOptions {
    /// Maximum run indices per lease.
    pub lease_size: usize,
    /// Lease time-to-live: a lease silent this long is expired and
    /// re-leased.
    pub lease_ttl: Duration,
    /// Idle poll interval of the message loop.
    pub poll: Duration,
    /// Spill policy of the final report assembly.
    pub spill: SpillPolicy,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            lease_size: 4,
            lease_ttl: Duration::from_secs(30),
            poll: Duration::from_millis(100),
            spill: SpillPolicy::default(),
        }
    }
}

/// The campaign-directory roots of every worker under `root`, sorted by
/// name for deterministic assembly order.
///
/// # Errors
///
/// Returns a [`SpecError`] if the workers directory exists but cannot be
/// read.
pub fn worker_dirs(root: &Path) -> Result<Vec<PathBuf>, SpecError> {
    let workers = root.join(WORKERS_DIR);
    let entries = match std::fs::read_dir(&workers) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => {
            return Err(SpecError::new(format!(
                "cannot read {}: {e}",
                workers.display()
            )))
        }
    };
    let mut roots: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.join(MANIFEST_FILE).exists())
        .collect();
    roots.sort();
    Ok(roots)
}

/// Serves a campaign directory as the scheduling coordinator: grants
/// leases until the run matrix drains, then assembles the coordinator's own
/// log and every worker directory (re-executing residual gaps itself) into
/// a report byte-identical to a single-machine run.
///
/// `root` may be a fresh path (then `spec` is required and a new campaign
/// directory is created) or an existing whole-campaign directory — e.g. an
/// interrupted `campaign run --out` — whose missing indices are then what
/// gets leased. Serving is resumable: a restarted coordinator re-indexes
/// its own log and every worker directory, so nothing persisted is ever
/// re-leased.
///
/// # Errors
///
/// Returns a [`SpecError`] on an invalid or mismatching spec, a shard or
/// worker directory given as `root`, a corrupt log, or any I/O failure.
pub fn serve_sched(
    executor: &Executor,
    root: impl Into<PathBuf>,
    spec: Option<&CampaignSpec>,
    opts: &ServeOptions,
) -> Result<CampaignReport, SpecError> {
    let root = root.into();
    let dir = if root.join(MANIFEST_FILE).exists() {
        CampaignDir::open(&root)?
    } else {
        let spec = spec.ok_or_else(|| {
            SpecError::new(format!(
                "{} holds no campaign; serve-sched needs --spec to initialize it",
                root.display()
            ))
        })?;
        let runs = grid::expand(spec)?;
        CampaignDir::create(&root, spec, runs.len())?
    };
    let manifest = dir.manifest()?;
    if let Some(expected) = spec {
        let given = spec_fingerprint(expected);
        if given != manifest.fingerprint {
            return Err(SpecError::new(format!(
                "spec fingerprint mismatch: the campaign directory was created from \
                 fingerprint {}, but the given spec fingerprints as {given}; refusing \
                 to schedule a different campaign into it",
                manifest.fingerprint
            )));
        }
    }
    if manifest.shard.is_some() || manifest.worker.is_some() {
        return Err(SpecError::new(
            "serve-sched needs a whole-campaign directory, not a shard or worker directory",
        ));
    }
    let spec = manifest.spec.clone();
    let runs = grid::expand(&spec)?;
    if runs.len() != manifest.total_runs {
        return Err(SpecError::new(format!(
            "manifest records {} runs but the spec expands to {}; the campaign \
             directory is corrupt",
            manifest.total_runs,
            runs.len()
        )));
    }

    // Everything already persisted — in the coordinator's own log or any
    // worker directory from a previous serving session — is never leased.
    let own = dir.index_log(&runs)?;
    if own.truncated_tail {
        dir.truncate_runs_to(own.valid_bytes)?;
    }
    let mut stored: Vec<bool> = own.entries.iter().map(|e| e.is_some()).collect();
    for wroot in worker_dirs(&root)? {
        let wdir = CampaignDir::open(&wroot)?;
        let wmanifest = wdir.manifest()?;
        if wmanifest.fingerprint != manifest.fingerprint {
            return Err(SpecError::new(format!(
                "worker directory {} holds fingerprint {}, but the campaign is {}; \
                 refusing to schedule over foreign results",
                wroot.display(),
                wmanifest.fingerprint,
                manifest.fingerprint
            )));
        }
        for (i, entry) in wdir.index_log(&runs)?.entries.iter().enumerate() {
            if entry.is_some() {
                stored[i] = true;
            }
        }
    }

    let config = SchedConfig {
        lease_size: opts.lease_size,
        lease_ttl_us: opts.lease_ttl.as_micros() as u64,
    };
    let next_id = read_ledger(&root)?
        .iter()
        .filter(|r| r.kind == LEDGER_ISSUED)
        .map(|r| r.id + 1)
        .max()
        .unwrap_or(0);
    let mut sched = Scheduler::new(config, &manifest.fingerprint, &stored).with_next_id(next_id);
    let mut ledger = open_ledger_for_append(&root)?;
    let mut transport = FsCoordTransport::new(&root)?;
    let rec = executor.telemetry().recorder();
    let started = Instant::now();

    loop {
        let now_us = started.elapsed().as_micros() as u64;
        for lease in sched.expire_overdue(now_us) {
            rec.add("sched.leases_expired", 1);
            append_ledger(
                &mut ledger,
                &LedgerRecord {
                    kind: LEDGER_EXPIRED.to_string(),
                    id: lease.id,
                    indices: lease.remaining.clone(),
                    ..LedgerRecord::default()
                },
            )?;
        }
        let msgs = transport.poll()?;
        let idle = msgs.is_empty();
        for msg in msgs {
            let now_us = started.elapsed().as_micros() as u64;
            match msg.kind.as_str() {
                MSG_REQUEST => {
                    let reply = match sched.grant(&msg.worker, now_us) {
                        Grant::Lease {
                            lease,
                            reissued_indices,
                        } => {
                            rec.add("sched.leases_issued", 1);
                            if reissued_indices > 0 {
                                rec.add("sched.leases_reissued", 1);
                            }
                            append_ledger(
                                &mut ledger,
                                &LedgerRecord {
                                    kind: LEDGER_ISSUED.to_string(),
                                    id: lease.id,
                                    worker: lease.worker.clone(),
                                    indices: lease.indices.clone(),
                                    fingerprint: lease.fingerprint.clone(),
                                    deadline_us: lease.deadline_us,
                                    index: None,
                                    reissued_indices,
                                },
                            )?;
                            CoordMsg {
                                reply_to: msg.seq,
                                kind: REPLY_LEASE.to_string(),
                                lease: Some(lease),
                            }
                        }
                        Grant::Wait => CoordMsg {
                            reply_to: msg.seq,
                            kind: REPLY_WAIT.to_string(),
                            lease: None,
                        },
                        Grant::Drained => CoordMsg {
                            reply_to: msg.seq,
                            kind: REPLY_DRAINED.to_string(),
                            lease: None,
                        },
                    };
                    transport.reply(&msg.worker, &reply)?;
                }
                MSG_PROGRESS => {
                    if let Some(index) = msg.index {
                        if let Some(deadline_us) = sched.progress(msg.lease_id, index, now_us) {
                            append_ledger(
                                &mut ledger,
                                &LedgerRecord {
                                    kind: LEDGER_PROGRESS.to_string(),
                                    id: msg.lease_id,
                                    index: Some(index),
                                    deadline_us,
                                    ..LedgerRecord::default()
                                },
                            )?;
                        }
                    }
                }
                MSG_COMPLETE if sched.complete(msg.lease_id).is_some() => {
                    append_ledger(
                        &mut ledger,
                        &LedgerRecord {
                            kind: LEDGER_COMPLETED.to_string(),
                            id: msg.lease_id,
                            ..LedgerRecord::default()
                        },
                    )?;
                }
                _ => {}
            }
        }
        if sched.drained() {
            break;
        }
        if idle {
            std::thread::sleep(opts.poll);
        }
    }
    drop(ledger);

    // Unblock every worker — including ones mid-wait the final batch never
    // heard from — before the (potentially long) assembly.
    transport.announce_done()?;
    let workers = worker_dirs(&root)?;
    crate::merge::merge_into_existing(executor, &root, &workers, opts.spill, true)
}

/// Worker knobs for [`work`].
#[derive(Debug, Clone, PartialEq)]
pub struct WorkOptions {
    /// Worker id: names the worker directory and the message files.
    pub worker: String,
    /// Poll interval while waiting for a coordinator reply.
    pub poll: Duration,
    /// How long to wait for a coordinator reply before giving up.
    pub patience: Duration,
    /// Abort the worker (no lease completion, no clean shutdown) after
    /// this many executed runs — the deterministic mid-lease crash the
    /// kill-and-release tests and the CI smoke job inject.
    pub fail_after: Option<usize>,
    /// Compact the worker directory with sample stripping on shutdown, so
    /// each worker carries its own sharded sample store.
    pub strip_samples: bool,
}

impl WorkOptions {
    /// Defaults for worker `worker`.
    pub fn named(worker: impl Into<String>) -> Self {
        WorkOptions {
            worker: worker.into(),
            poll: Duration::from_millis(100),
            patience: Duration::from_secs(120),
            fail_after: None,
            strip_samples: false,
        }
    }
}

/// What a worker did over its lifetime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkOutcome {
    /// The worker id.
    pub worker: String,
    /// Runs executed and persisted.
    pub executed: usize,
    /// Leases accepted.
    pub leases: u64,
}

/// Runs the worker loop against the coordinator serving the campaign
/// directory at `coordinator`: request a lease, execute and persist its
/// runs into `<dir>/workers/<id>` (reporting per-run progress — the
/// heartbeat), complete it, repeat until the coordinator says drained.
///
/// A worker is restartable under the same id: its directory is healed and
/// indexed on startup, and leased indices it already persisted are
/// acknowledged without re-execution.
///
/// # Errors
///
/// Returns a [`SpecError`] on a corrupt or foreign directory, a lease
/// whose fingerprint disagrees with the manifest, coordinator silence past
/// `patience`, the injected [`WorkOptions::fail_after`] abort, or any I/O
/// failure.
pub fn work(
    executor: &Executor,
    coordinator: impl Into<PathBuf>,
    opts: &WorkOptions,
) -> Result<WorkOutcome, SpecError> {
    let root = coordinator.into();
    if opts.worker.is_empty()
        || !opts
            .worker
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    {
        return Err(SpecError::new(format!(
            "worker id `{}` is invalid (use ASCII letters, digits, `-`, `_`)",
            opts.worker
        )));
    }
    let coord = CampaignDir::open(&root)?;
    let manifest = coord.manifest()?;
    if manifest.shard.is_some() || manifest.worker.is_some() {
        return Err(SpecError::new(
            "work needs the coordinator's whole-campaign directory, not a shard \
             or worker directory",
        ));
    }
    let spec = manifest.spec.clone();
    let runs = grid::expand(&spec)?;

    let wroot = root.join(WORKERS_DIR).join(&opts.worker);
    let wdir = if wroot.join(MANIFEST_FILE).exists() {
        let wdir = CampaignDir::open(&wroot)?;
        let wmanifest = wdir.manifest()?;
        if wmanifest.fingerprint != manifest.fingerprint {
            return Err(SpecError::new(format!(
                "worker directory {} belongs to fingerprint {}, but the coordinator \
                 serves {}; refusing to mix campaigns",
                wroot.display(),
                wmanifest.fingerprint,
                manifest.fingerprint
            )));
        }
        wdir
    } else {
        CampaignDir::create_worker(&wroot, &spec, runs.len(), &opts.worker)?
    };
    let index = wdir.index_log(&runs)?;
    if index.truncated_tail {
        wdir.truncate_runs_to(index.valid_bytes)?;
    }
    let mut stored: Vec<bool> = index.entries.iter().map(|e| e.is_some()).collect();

    let mut transport = FsWorkerTransport::new(&root, &opts.worker)?;
    let telemetry = executor.telemetry();
    let mut seq = 0u64;
    let mut executed = 0usize;
    let mut leases = 0u64;
    let mut writer = wdir.open_runs_for_append()?;
    'serve: loop {
        seq += 1;
        let request_seq = seq;
        transport.send(&WorkerMsg {
            worker: opts.worker.clone(),
            seq: request_seq,
            kind: MSG_REQUEST.to_string(),
            lease_id: 0,
            index: None,
        })?;
        let mut waited = Duration::ZERO;
        let reply = loop {
            if let Some(reply) = transport.try_recv(request_seq)? {
                break reply;
            }
            if transport.done() {
                break 'serve;
            }
            if waited >= opts.patience {
                return Err(SpecError::new(format!(
                    "no coordinator reply in {}; is `campaign serve-sched` running on {}?",
                    format_args!("{:.1}s", opts.patience.as_secs_f64()),
                    root.display()
                )));
            }
            std::thread::sleep(opts.poll);
            waited += opts.poll;
        };
        match reply.kind.as_str() {
            REPLY_DRAINED => break 'serve,
            REPLY_WAIT => {
                std::thread::sleep(opts.poll);
                continue;
            }
            REPLY_LEASE => {
                let lease = reply
                    .lease
                    .ok_or_else(|| SpecError::new("lease reply carried no lease"))?;
                if lease.fingerprint != manifest.fingerprint {
                    return Err(SpecError::new(format!(
                        "lease {} carries fingerprint {}, but the campaign directory \
                         holds {}; refusing to execute a different campaign",
                        lease.id, lease.fingerprint, manifest.fingerprint
                    )));
                }
                leases += 1;
                // Indices a previous incarnation already persisted are
                // acknowledged, not re-executed — replay stays idempotent.
                let mut pending: Vec<RunSpec> = Vec::new();
                for &i in &lease.indices {
                    if i >= runs.len() {
                        return Err(SpecError::new(format!(
                            "lease {} grants run index {i}, but the campaign expands \
                             to {} runs",
                            lease.id,
                            runs.len()
                        )));
                    }
                    if stored[i] {
                        seq += 1;
                        transport.send(&WorkerMsg {
                            worker: opts.worker.clone(),
                            seq,
                            kind: MSG_PROGRESS.to_string(),
                            lease_id: lease.id,
                            index: Some(i),
                        })?;
                    } else {
                        pending.push(runs[i].clone());
                    }
                }
                let mut write_error: Option<SpecError> = None;
                let mut injected_abort = false;
                let done = executor.try_run_jobs_foreach(
                    &pending,
                    |run| {
                        let rec = telemetry.recorder();
                        let _span = rec.span_indexed("run", run.index as u64);
                        execute_run(&spec.sim, run)
                    },
                    |_, result| {
                        let run_index = result.spec.index;
                        if let Err(e) = wdir.append_result(&mut writer, &result) {
                            write_error = Some(e);
                            return false;
                        }
                        stored[run_index] = true;
                        executed += 1;
                        seq += 1;
                        if let Err(e) = transport.send(&WorkerMsg {
                            worker: opts.worker.clone(),
                            seq,
                            kind: MSG_PROGRESS.to_string(),
                            lease_id: lease.id,
                            index: Some(run_index),
                        }) {
                            write_error = Some(e);
                            return false;
                        }
                        if opts.fail_after.is_some_and(|limit| executed >= limit) {
                            injected_abort = true;
                            return false;
                        }
                        true
                    },
                );
                match (done, write_error, injected_abort) {
                    (Err(panic), _, _) => {
                        return Err(SpecError::new(format!(
                            "run {} panicked mid-lease: {}; completed runs are \
                             persisted in {} — restart the worker to continue",
                            pending[panic.job_index].index,
                            panic.message,
                            wroot.display()
                        )))
                    }
                    (_, Some(e), _) => return Err(e),
                    (Ok(None), None, true) => {
                        // The injected crash: persisted work stays, the lease
                        // is never completed — the coordinator must expire
                        // and re-lease the rest.
                        return Err(SpecError::new(format!(
                            "worker {} aborted after {executed} run(s) (--fail-after); \
                             lease {} left incomplete",
                            opts.worker, lease.id
                        )));
                    }
                    (Ok(Some(())), None, _) => {
                        seq += 1;
                        transport.send(&WorkerMsg {
                            worker: opts.worker.clone(),
                            seq,
                            kind: MSG_COMPLETE.to_string(),
                            lease_id: lease.id,
                            index: None,
                        })?;
                    }
                    (Ok(None), None, false) => {
                        unreachable!("the pool aborts only on a write error or injected abort")
                    }
                }
            }
            other => {
                return Err(SpecError::new(format!(
                    "coordinator sent unknown reply kind `{other}`"
                )))
            }
        }
    }
    drop(writer);
    if opts.strip_samples {
        crate::compact::compact(&wroot, true)?;
    }
    Ok(WorkOutcome {
        worker: opts.worker.clone(),
        executed,
        leases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(total: usize, lease_size: usize) -> Scheduler {
        Scheduler::new(
            SchedConfig {
                lease_size,
                lease_ttl_us: 1_000,
            },
            "cafe",
            &vec![false; total],
        )
    }

    fn lease_of(grant: Grant) -> Lease {
        match grant {
            Grant::Lease { lease, .. } => lease,
            other => panic!("expected a lease, got {other:?}"),
        }
    }

    #[test]
    fn grants_cover_the_matrix_in_bounded_batches() {
        let mut s = sched(10, 4);
        let a = lease_of(s.grant("w1", 0));
        assert_eq!(a.indices, vec![0, 1, 2, 3]);
        assert_eq!(a.fingerprint, "cafe");
        assert_eq!(a.deadline_us, 1_000);
        let b = lease_of(s.grant("w2", 0));
        assert_eq!(b.indices, vec![4, 5, 6, 7]);
        let c = lease_of(s.grant("w1", 0));
        assert_eq!(c.indices, vec![8, 9]);
        assert!(matches!(s.grant("w2", 0), Grant::Wait));
        for lease in [a, b, c] {
            for i in &lease.indices {
                s.progress(lease.id, *i, 0);
            }
            s.complete(lease.id);
        }
        assert!(s.drained());
        assert!(matches!(s.grant("w2", 0), Grant::Drained));
        assert_eq!(s.counters().issued, 3);
        assert_eq!(s.counters().completed, 3);
        assert_eq!(s.counters().expired, 0);
    }

    #[test]
    fn stored_indices_are_never_leased() {
        let mut stored = vec![false; 6];
        stored[1] = true;
        stored[4] = true;
        let mut s = Scheduler::new(SchedConfig::default(), "cafe", &stored);
        let lease = lease_of(s.grant("w1", 0));
        assert_eq!(lease.indices, vec![0, 2, 3, 5]);
    }

    #[test]
    fn expiry_requeues_unfinished_indices_and_marks_the_regrant_a_reissue() {
        let mut s = sched(4, 4);
        let lease = lease_of(s.grant("w1", 0));
        assert!(s.progress(lease.id, 0, 100).is_some());
        // Deadline extended by the heartbeat: not yet expired at 1_000.
        assert!(s.expire_overdue(1_000).is_empty());
        let expired = s.expire_overdue(2_000);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].remaining, vec![1, 2, 3]);
        assert_eq!(s.counters().expired, 1);
        // Index 0 was persisted before the expiry: never re-leased.
        let regrant = s.grant("w2", 2_000);
        let Grant::Lease {
            lease: relase,
            reissued_indices,
        } = regrant
        else {
            panic!("expected a reissued lease");
        };
        assert_eq!(relase.indices, vec![1, 2, 3]);
        assert_eq!(reissued_indices, 3);
        assert_eq!(s.counters().reissued, 1);
        for i in [1, 2, 3] {
            s.progress(relase.id, i, 2_000);
        }
        s.complete(relase.id);
        assert!(s.drained());
    }

    #[test]
    fn stale_progress_and_double_completion_are_ignored() {
        let mut s = sched(2, 2);
        let lease = lease_of(s.grant("w1", 0));
        assert!(s.expire_overdue(5_000).len() == 1);
        // The lease is gone: progress and completion are stale no-ops.
        assert!(s.progress(lease.id, 0, 5_000).is_none());
        assert!(s.complete(lease.id).is_none());
        assert!(!s.drained(), "the indices went back to pending");
        assert_eq!(s.pending_len(), 2);
    }

    #[test]
    fn early_completion_returns_unfinished_indices_to_the_queue() {
        let mut s = sched(3, 3);
        let lease = lease_of(s.grant("w1", 0));
        s.progress(lease.id, 0, 0);
        let finished = s.complete(lease.id).expect("active lease completes");
        assert_eq!(finished.remaining, vec![1, 2]);
        assert_eq!(s.pending_len(), 2);
        let regrant = lease_of(s.grant("w2", 0));
        assert_eq!(regrant.indices, vec![1, 2]);
    }

    #[test]
    fn fs_transport_round_trips_messages_in_worker_seq_order() {
        let root =
            std::env::temp_dir().join(format!("dl2fence-sched-transport-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        let mut coord = FsCoordTransport::new(&root).unwrap();
        let mut w1 = FsWorkerTransport::new(&root, "w1").unwrap();
        let mut w2 = FsWorkerTransport::new(&root, "w2").unwrap();

        let msg = |worker: &str, seq: u64, kind: &str| WorkerMsg {
            worker: worker.to_string(),
            seq,
            kind: kind.to_string(),
            lease_id: 7,
            index: Some(3),
        };
        w2.send(&msg("w2", 1, MSG_REQUEST)).unwrap();
        w1.send(&msg("w1", 2, MSG_PROGRESS)).unwrap();
        w1.send(&msg("w1", 1, MSG_REQUEST)).unwrap();
        let polled = coord.poll().unwrap();
        let order: Vec<(String, u64)> = polled.iter().map(|m| (m.worker.clone(), m.seq)).collect();
        assert_eq!(
            order,
            vec![
                ("w1".to_string(), 1),
                ("w1".to_string(), 2),
                ("w2".to_string(), 1)
            ]
        );
        assert_eq!(polled[1].index, Some(3));
        assert!(coord.poll().unwrap().is_empty(), "messages are consumed");

        coord
            .reply(
                "w1",
                &CoordMsg {
                    reply_to: 1,
                    kind: REPLY_WAIT.to_string(),
                    lease: None,
                },
            )
            .unwrap();
        assert!(w1.try_recv(2).unwrap().is_none(), "stale reply_to ignored");
        let got = w1.try_recv(1).unwrap().expect("reply arrived");
        assert_eq!(got.kind, REPLY_WAIT);
        assert!(w2.try_recv(1).unwrap().is_none(), "not w2's outbox");

        assert!(!w1.done());
        coord.announce_done().unwrap();
        assert!(w1.done() && w2.done());
        std::fs::remove_dir_all(&root).unwrap();
    }
}
