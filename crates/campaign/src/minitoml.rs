//! A minimal TOML-subset parser producing [`serde::Value`] trees.
//!
//! The build environment has no crates.io access, so campaign specs are
//! parsed by this hand-rolled reader instead of the `toml` crate. The
//! supported subset is exactly what [`crate::CampaignSpec`] files need:
//!
//! * `#` comments and blank lines,
//! * `[table]` and `[table.subtable]` headers,
//! * `key = value` with string, integer, float, boolean and (possibly
//!   multi-line) array values,
//! * basic `"..."` strings with the common escapes.
//!
//! Unsupported TOML (arrays of tables, inline tables, dotted keys, dates)
//! produces a descriptive [`TomlError`].

use serde::Value;
use std::fmt;

/// A TOML parse error with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TomlError {
    /// 1-based line the error was found on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl TomlError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        TomlError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TOML error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TomlError {}

/// Parses a TOML document into an object [`Value`].
///
/// # Errors
///
/// Returns a [`TomlError`] on the first unsupported or malformed construct.
pub fn parse(input: &str) -> Result<Value, TomlError> {
    let mut root: Vec<(String, Value)> = Vec::new();
    // Path of the table currently being filled; empty means the root table.
    let mut current_path: Vec<String> = Vec::new();

    let mut lines = input.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let header = header
                .strip_suffix(']')
                .ok_or_else(|| TomlError::new(line_no, "unterminated table header"))?;
            if header.starts_with('[') {
                return Err(TomlError::new(
                    line_no,
                    "arrays of tables ([[...]]) are not supported by the mini-TOML parser",
                ));
            }
            current_path = header
                .split('.')
                .map(|part| {
                    let part = part.trim();
                    if part.is_empty() {
                        Err(TomlError::new(line_no, "empty table name component"))
                    } else {
                        Ok(part.to_string())
                    }
                })
                .collect::<Result<_, _>>()?;
            // Materialise the table so empty sections still deserialize.
            ensure_table(&mut root, &current_path, line_no)?;
            continue;
        }
        let (key, rest) = line
            .split_once('=')
            .ok_or_else(|| TomlError::new(line_no, "expected `key = value`"))?;
        let key = key.trim();
        if key.is_empty() || key.contains('.') || key.contains('"') {
            return Err(TomlError::new(
                line_no,
                format!("unsupported key `{key}` (bare, undotted keys only)"),
            ));
        }
        let mut value_text = rest.trim().to_string();
        // Multi-line arrays: keep consuming lines until brackets balance.
        while !brackets_balanced(&value_text) {
            let (_, next) = lines
                .next()
                .ok_or_else(|| TomlError::new(line_no, "unterminated array value"))?;
            value_text.push(' ');
            value_text.push_str(strip_comment(next).trim());
        }
        let value = parse_value(&value_text, line_no)?;
        let table = ensure_table(&mut root, &current_path, line_no)?;
        if table.iter().any(|(k, _)| k == key) {
            return Err(TomlError::new(line_no, format!("duplicate key `{key}`")));
        }
        table.push((key.to_string(), value));
    }
    Ok(Value::Object(root))
}

/// Removes a `#` comment, respecting `"..."` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn brackets_balanced(text: &str) -> bool {
    let mut depth = 0i64;
    let mut in_string = false;
    let mut escaped = false;
    for c in text.chars() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '[' if !in_string => depth += 1,
            ']' if !in_string => depth -= 1,
            _ => {}
        }
        escaped = false;
    }
    depth <= 0
}

/// Walks (creating as needed) the nested object at `path` and returns its
/// field list.
fn ensure_table<'a>(
    root: &'a mut Vec<(String, Value)>,
    path: &[String],
    line: usize,
) -> Result<&'a mut Vec<(String, Value)>, TomlError> {
    let mut table = root;
    for part in path {
        if !table.iter().any(|(k, _)| k == part) {
            table.push((part.clone(), Value::Object(Vec::new())));
        }
        let entry = table
            .iter_mut()
            .find(|(k, _)| k == part)
            .expect("just ensured the entry exists");
        table = match &mut entry.1 {
            Value::Object(fields) => fields,
            _ => {
                return Err(TomlError::new(
                    line,
                    format!("`{part}` is both a value and a table"),
                ))
            }
        };
    }
    Ok(table)
}

fn parse_value(text: &str, line: usize) -> Result<Value, TomlError> {
    let text = text.trim();
    if text.is_empty() {
        return Err(TomlError::new(line, "missing value"));
    }
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if text.starts_with('"') {
        return parse_string(text, line);
    }
    if text.starts_with('[') {
        return parse_array(text, line);
    }
    if text.starts_with('{') {
        return Err(TomlError::new(line, "inline tables are not supported"));
    }
    parse_number(text, line)
}

fn parse_string(text: &str, line: usize) -> Result<Value, TomlError> {
    let inner = text
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or_else(|| TomlError::new(line, "unterminated string"))?;
    let mut out = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '"' {
            return Err(TomlError::new(line, "unescaped quote inside string"));
        }
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some(other) => {
                return Err(TomlError::new(
                    line,
                    format!("unsupported escape `\\{other}`"),
                ))
            }
            None => return Err(TomlError::new(line, "dangling escape")),
        }
    }
    Ok(Value::Str(out))
}

fn parse_array(text: &str, line: usize) -> Result<Value, TomlError> {
    let inner = text
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| TomlError::new(line, "unterminated array"))?;
    let mut items = Vec::new();
    for element in split_top_level(inner) {
        let element = element.trim();
        if element.is_empty() {
            continue; // Trailing comma.
        }
        items.push(parse_value(element, line)?);
    }
    Ok(Value::Array(items))
}

/// Splits on commas that are outside strings and nested brackets.
fn split_top_level(text: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0i64;
    let mut in_string = false;
    let mut escaped = false;
    let mut start = 0;
    for (i, c) in text.char_indices() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '[' if !in_string => depth += 1,
            ']' if !in_string => depth -= 1,
            ',' if !in_string && depth == 0 => {
                parts.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        escaped = false;
    }
    parts.push(&text[start..]);
    parts
}

fn parse_number(text: &str, line: usize) -> Result<Value, TomlError> {
    let clean: String = text.chars().filter(|&c| c != '_').collect();
    // Hex first: digits like `0x5EED` must not be mistaken for exponents.
    if let Some(hex) = clean.strip_prefix("0x") {
        return u64::from_str_radix(hex, 16)
            .map(Value::UInt)
            .map_err(|_| TomlError::new(line, format!("invalid hex integer `{text}`")));
    }
    if clean.contains('.') || clean.contains('e') || clean.contains('E') {
        clean
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| TomlError::new(line, format!("invalid float `{text}`")))
    } else if clean.starts_with('-') {
        clean
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| TomlError::new(line, format!("invalid integer `{text}`")))
    } else {
        clean
            .parse::<u64>()
            .map(Value::UInt)
            .map_err(|_| TomlError::new(line, format!("invalid value `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_keys_and_arrays() {
        let doc = r#"
            # A campaign.
            name = "sweep"   # trailing comment
            [grid]
            mesh = [4, 8]
            fir = [
                0.2,  # low
                0.8,
            ]
            [sim]
            warmup_cycles = 200
            enabled = true
            label = "a \"b\" c"
            offset = -3
            seed = 0xDAC
        "#;
        let v = parse(doc).unwrap();
        assert_eq!(v.field("name").unwrap(), &Value::Str("sweep".into()));
        let grid = v.field("grid").unwrap();
        assert_eq!(
            grid.field("mesh").unwrap(),
            &Value::Array(vec![Value::UInt(4), Value::UInt(8)])
        );
        assert_eq!(
            grid.field("fir").unwrap(),
            &Value::Array(vec![Value::Float(0.2), Value::Float(0.8)])
        );
        let sim = v.field("sim").unwrap();
        assert_eq!(sim.field("warmup_cycles").unwrap(), &Value::UInt(200));
        assert_eq!(sim.field("enabled").unwrap(), &Value::Bool(true));
        assert_eq!(sim.field("label").unwrap(), &Value::Str("a \"b\" c".into()));
        assert_eq!(sim.field("offset").unwrap(), &Value::Int(-3));
        assert_eq!(sim.field("seed").unwrap(), &Value::UInt(0xDAC));
    }

    #[test]
    fn nested_table_headers_create_paths() {
        let doc = "[a.b]\nx = 1\n";
        let v = parse(doc).unwrap();
        assert_eq!(
            v.field("a")
                .unwrap()
                .field("b")
                .unwrap()
                .field("x")
                .unwrap(),
            &Value::UInt(1)
        );
    }

    #[test]
    fn rejects_unsupported_constructs() {
        assert!(parse("[[points]]\nx = 1\n").is_err());
        assert!(parse("key = {a = 1}\n").is_err());
        assert!(parse("a.b = 1\n").is_err());
        assert!(parse("broken\n").is_err());
        assert!(parse("x = [1, 2\n").is_err());
        assert!(parse("x = 1\nx = 2\n").is_err());
    }

    #[test]
    fn string_arrays_and_empty_tables_work() {
        let doc = "workloads = [\"uniform\", \"x264\"]\n[eval]\n";
        let v = parse(doc).unwrap();
        assert_eq!(
            v.field("workloads").unwrap(),
            &Value::Array(vec![
                Value::Str("uniform".into()),
                Value::Str("x264".into())
            ])
        );
        assert_eq!(v.field("eval").unwrap(), &Value::Object(vec![]));
    }
}
