//! Live campaign progress: `campaign watch <dir>`.
//!
//! [`WatchSnapshot::capture`] combines the read-only directory inspection
//! of [`crate::status`] with the telemetry event log ([`crate::events`])
//! into one moment-in-time progress view: completed/missing runs,
//! throughput and ETA (derived from the telemetry wall clock), per-worker
//! utilization and per-stage latency quantiles. Everything is read-only
//! and torn-tail-tolerant, so watching a campaign mid-execution is safe —
//! the same guarantee `campaign status` gives, plus the live numbers.

use crate::events::{summarize_events, TimingSummary};
use crate::spec::SpecError;
use crate::status::{human_bytes, status, DirStatus};
use crate::stream::EVENTS_FILE;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::path::Path;

/// One moment-in-time view of a running (or finished) campaign directory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WatchSnapshot {
    /// The directory's stored/missing state (see [`crate::status`]).
    pub dir: DirStatus,
    /// Completed fraction of the owned runs, always finite and in
    /// `[0, 1]`. A spec that expands to zero runs (an empty grid) is
    /// complete by definition, so it reports `1.0` — never `NaN`.
    pub progress: f64,
    /// Aggregated telemetry, when the campaign runs with `--telemetry`.
    /// `None` means no event log exists — progress still works, rates
    /// don't.
    pub timings: Option<TimingSummary>,
    /// Completed runs per second, measured over the **current recording
    /// session's** window — dead time between sessions (a resume, a
    /// scheduler worker joining late) would otherwise deflate the rate and
    /// inflate the ETA. Falls back to completed-runs over whole-log wall
    /// time when the current session carries no timed runs. `None` without
    /// telemetry, and `None` while the log is still warming up — events
    /// exist but no run has both completed and advanced the telemetry
    /// wall clock (`wall_us == 0`), where a naive division would report
    /// `inf` runs/s and a `0.0s` ETA.
    pub runs_per_sec: Option<f64>,
    /// Estimated seconds until the missing runs complete at the observed
    /// rate. `None` whenever [`Self::runs_per_sec`] is.
    pub eta_secs: Option<f64>,
}

impl WatchSnapshot {
    /// Captures one snapshot of the campaign directory at `path`.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if `path` is not a campaign directory or a
    /// log is corrupt mid-file (torn tails are tolerated).
    pub fn capture(path: &Path) -> Result<Self, SpecError> {
        let mut report = status(&[path.to_path_buf()])?;
        let dir = report.dirs.remove(0);
        let timings = {
            let summary = summarize_events(&path.join(EVENTS_FILE))?;
            (summary.events > 0).then_some(summary)
        };
        // `0/0` runs is a complete (if vacuous) campaign, not NaN.
        let progress = if dir.owned_runs > 0 {
            (dir.completed as f64 / dir.owned_runs as f64).clamp(0.0, 1.0)
        } else {
            1.0
        };
        // A zero wall clock means the log exists but no flushed event has
        // advanced time yet (first batch in flight): dividing would yield
        // `inf` runs/s and a 0.0s ETA, so stay in the warming-up state.
        let runs_per_sec = timings.as_ref().and_then(|t| {
            // Rate over the *current* session's window: a resume-appended
            // log carries dead time between sessions that is not execution
            // time. A current session with no timed runs (counter-only
            // telemetry) falls back to the whole-log rate.
            match t.sessions.last() {
                Some(s) if s.runs > 0 && s.wall_us > 0 => {
                    Some(s.runs as f64 / (s.wall_us as f64 / 1e6))
                }
                _ => (t.wall_us > 0 && dir.completed > 0)
                    .then(|| dir.completed as f64 / (t.wall_us as f64 / 1e6)),
            }
        });
        let eta_secs = runs_per_sec
            .filter(|rps| *rps > 0.0)
            .map(|rps| dir.missing.len() as f64 / rps);
        Ok(WatchSnapshot {
            dir,
            progress,
            timings,
            runs_per_sec,
            eta_secs,
        })
    }

    /// `true` once every owned run is stored — the watch loop's exit
    /// condition.
    pub fn complete(&self) -> bool {
        self.dir.missing.is_empty()
    }

    /// Serializes the snapshot as pretty JSON (`campaign watch --json`).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serialization cannot fail")
    }

    /// Renders the snapshot as a human-readable progress screen.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}: campaign `{}`{}",
            self.dir.path,
            self.dir.name,
            match self.dir.shard {
                Some(s) => format!(" [shard {}/{}]", s.index, s.count),
                None => String::new(),
            }
        );
        let _ = writeln!(
            out,
            "  [{}] {}/{} runs ({:.0}%){}{}",
            progress_bar(self.progress, 30),
            self.dir.completed,
            self.dir.owned_runs,
            self.progress * 100.0,
            if self.dir.truncated_tail {
                ", appending"
            } else {
                ""
            },
            if self.dir.report_written {
                ", report written"
            } else {
                ""
            },
        );
        if self.dir.owned_runs == 0 {
            let _ = writeln!(out, "  (spec expands to zero runs — nothing to execute)");
        }
        let _ = writeln!(out, "  log: {}", human_bytes(self.dir.runs_bytes));
        match (self.runs_per_sec, self.eta_secs) {
            (Some(rps), Some(eta)) if !self.complete() => {
                let _ = writeln!(out, "  throughput: {rps:.2} runs/s, ETA {eta:.1}s");
            }
            (Some(rps), _) => {
                let _ = writeln!(out, "  throughput: {rps:.2} runs/s");
            }
            (None, _) if self.timings.is_some() && !self.complete() => {
                let _ = writeln!(out, "  throughput: warming up (no timed runs yet)");
            }
            _ => {}
        }
        if let Some(t) = &self.timings {
            if t.sessions.len() > 1 {
                let _ = writeln!(
                    out,
                    "  sessions: {} (rates measured over the current one)",
                    t.sessions.len()
                );
            }
        }
        if let Some(sched) = &self.dir.sched {
            crate::status::render_sched(&mut out, sched);
        }
        if let Some(t) = &self.timings {
            if !t.workers.is_empty() {
                let line: Vec<String> = t
                    .workers
                    .iter()
                    .map(|w| {
                        format!(
                            "w{} {:.0}% ({} jobs)",
                            w.worker,
                            w.utilization * 100.0,
                            w.jobs
                        )
                    })
                    .collect();
                let _ = writeln!(out, "  workers: {}", line.join(", "));
            }
            let panics = t.counter("executor.worker_panics");
            if panics > 0 {
                let _ = writeln!(out, "  PANICS: {panics} worker job(s) panicked");
            }
            if !t.stages.is_empty() {
                let _ = writeln!(
                    out,
                    "  {:<28} {:>8} {:>10} {:>10} {:>10} {:>10}",
                    "stage", "count", "mean µs", "p50 µs", "p99 µs", "max µs"
                );
                for s in &t.stages {
                    let _ = writeln!(
                        out,
                        "  {:<28} {:>8} {:>10} {:>10} {:>10} {:>10}",
                        s.name, s.count, s.mean_us, s.p50_us, s.p99_us, s.max_us
                    );
                }
            }
        } else {
            let _ = writeln!(
                out,
                "  (no events.jsonl — run the campaign with --telemetry for rates \
                 and stage timings)"
            );
        }
        out
    }
}

fn progress_bar(fraction: f64, width: usize) -> String {
    let clamped = fraction.clamp(0.0, 1.0);
    // Fill with floor, not round: 29.5/30 must render one cell short — a
    // full bar before the campaign completes reads as "done". The bar only
    // fills completely at fraction >= 1.0.
    let filled = if clamped >= 1.0 {
        width
    } else {
        ((clamped * width as f64).floor() as usize).min(width.saturating_sub(1))
    };
    let mut bar = String::with_capacity(width);
    for _ in 0..filled {
        bar.push('#');
    }
    for _ in filled..width {
        bar.push('.');
    }
    bar
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_bar_fills_proportionally() {
        assert_eq!(progress_bar(0.0, 10), "..........");
        assert_eq!(progress_bar(0.5, 10), "#####.....");
        assert_eq!(progress_bar(1.0, 10), "##########");
        assert_eq!(progress_bar(7.5, 10), "##########"); // clamped
    }

    #[test]
    fn progress_bar_never_fills_before_completion() {
        // 29.5/30 used to round up to a full bar — it must stay one short.
        assert_eq!(progress_bar(29.5 / 30.0, 30).matches('#').count(), 29);
        assert_eq!(progress_bar(0.99, 10), "#########.");
        assert_eq!(progress_bar(0.049, 10), "..........");
        // Anything short of 1.0 leaves at least one empty cell, even when
        // floating-point puts the product within rounding of the width.
        assert_eq!(progress_bar(1.0 - 1e-12, 10).matches('#').count(), 9);
        assert_eq!(progress_bar(1.0, 1), "#");
        assert_eq!(progress_bar(0.9, 1), ".");
    }
}
