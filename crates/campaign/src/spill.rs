//! Disk-spilled evaluation sample pools.
//!
//! When a campaign enables the train/evaluate phase, the
//! [`crate::ReportAccumulator`] has to keep every labeled monitoring-window
//! sample around until the eval phase trains on them — the one per-run
//! buffer that grows with campaign size. A [`SampleStore`] bounds it: once
//! the accumulator's in-memory pools reach a configured threshold, each
//! buffered batch is appended to `samples/<mesh>.jsonl` inside the campaign
//! directory and dropped from memory, and the eval phase replays the files
//! through the same seek/read-one-record machinery the run log uses
//! ([`crate::stream::LogIndex`]).
//!
//! ```text
//! <dir>/samples/manifest.json   the owning spec's fingerprint
//! <dir>/samples/<mesh>.jsonl    one JSONL record per (run, mesh) sample
//!                               batch: {"index": run_index, "mesh": mesh,
//!                               "samples": [...]}, appended in spill order
//! ```
//!
//! Batches are **index-tagged**, so file order never matters: reads sort by
//! run index, which is exactly the order an in-memory accumulator would
//! have buffered the samples in (folds happen in run-index order on every
//! code path) — the spilled eval phase is therefore byte-identical to the
//! in-memory one. Index tagging is also what makes stores mergeable
//! ([`crate::merge::merge`] unions shard stores batch by batch) and what
//! lets `campaign compact --strip-samples` move sample payloads out of
//! `runs.jsonl` entirely: a stripped record's samples live here, found by
//! run index, regardless of which execution produced them.
//!
//! The store tolerates exactly the failure shapes the run log does: a torn
//! final line (a crash mid-append) is healed away on attach, an identical
//! duplicate batch dedupes (runs are deterministic), and a conflicting
//! duplicate or a foreign fingerprint aborts.

use crate::spec::SpecError;
use crate::stream::{read_line_at, scan_jsonl, RecordEntry};
use noc_monitor::LabeledSample;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// File name of the store manifest inside a samples directory.
pub const SAMPLES_MANIFEST_FILE: &str = "manifest.json";

/// One spilled record: all labeled samples one run contributed to one
/// mesh's eval pool, tagged with the run's matrix index so reads can
/// restore fold order no matter when (or by whom) the batch was written.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleBatch {
    /// Run index of the run the samples came from.
    pub index: usize,
    /// Mesh side of the run (duplicated from the file name so a record is
    /// self-describing).
    pub mesh: usize,
    /// The labeled samples, in collection order.
    pub samples: Vec<LabeledSample>,
}

/// The manifest stored at the root of a samples directory: pins the store
/// to one campaign spec so samples can never silently mix across specs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleManifest {
    /// [`crate::stream::spec_fingerprint`] of the owning campaign.
    pub fingerprint: String,
}

/// Size and health of one samples directory, as reported by
/// [`SampleStore::inspect`] (the read-only path behind `campaign status`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpillStats {
    /// Per-mesh sample files found.
    pub files: usize,
    /// Whole batches stored across all files.
    pub batches: usize,
    /// Labeled samples stored across all batches.
    pub samples: usize,
    /// Total bytes of the sample files.
    pub bytes: u64,
    /// Whether any file ends in a torn (crash-truncated) record.
    pub truncated_tail: bool,
}

/// One per-mesh sample file with its scanned batch locations.
#[derive(Debug)]
struct SamplePool {
    mesh: usize,
    path: PathBuf,
    /// `(run index, byte location)` per stored batch, in file order (the
    /// order [`SampleStore::for_each_raw`] copies in).
    entries: Vec<(usize, RecordEntry)>,
    /// Run index → byte location, for O(1) duplicate checks — big spilled
    /// campaigns append and reattach in linear, not quadratic, time.
    by_index: HashMap<usize, RecordEntry>,
    /// Length of the longest whole-record prefix of the file.
    valid_bytes: u64,
    writer: Option<File>,
}

impl SamplePool {
    fn entry_for(&self, index: usize) -> Option<RecordEntry> {
        self.by_index.get(&index).copied()
    }
}

/// A disk-backed eval sample store rooted at a `samples/` directory.
///
/// Attach with [`SampleStore::attach`] (creating the directory and manifest
/// if absent) to append, or open an existing store read-only with
/// [`SampleStore::open_existing`] (merge reads shard stores this way).
#[derive(Debug)]
pub struct SampleStore {
    root: PathBuf,
    pools: Vec<SamplePool>,
    /// Whether this store may append: true for [`SampleStore::attach`]
    /// (which healed any torn tail, so appends land on a record boundary),
    /// false for [`SampleStore::open_existing`] (whose files may still end
    /// in a tolerated torn record that an append would merge into).
    writable: bool,
}

impl SampleStore {
    /// Attaches the store at `root` for reading and appending, creating the
    /// directory and manifest on first use. Pre-existing sample files are
    /// scanned (each batch parsed for validation and dropped) and a torn
    /// final record is healed away, exactly like the run-log scan.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if the directory holds a store written by a
    /// different spec fingerprint, a file is corrupt mid-stream, or any I/O
    /// fails.
    pub fn attach(root: impl Into<PathBuf>, fingerprint: &str) -> Result<Self, SpecError> {
        let root = root.into();
        let manifest_path = root.join(SAMPLES_MANIFEST_FILE);
        if manifest_path.exists() {
            let manifest = read_manifest(&manifest_path)?;
            if manifest.fingerprint != fingerprint {
                return Err(SpecError::new(format!(
                    "sample store {} was written by a campaign with fingerprint {}, \
                     not {fingerprint}; refusing to mix samples across campaigns",
                    root.display(),
                    manifest.fingerprint
                )));
            }
        } else {
            std::fs::create_dir_all(&root)
                .map_err(|e| SpecError::new(format!("cannot create {}: {e}", root.display())))?;
            let manifest = SampleManifest {
                fingerprint: fingerprint.to_string(),
            };
            let text = serde_json::to_string_pretty(&manifest)
                .expect("sample manifest serialization cannot fail");
            std::fs::write(&manifest_path, text).map_err(|e| {
                SpecError::new(format!("cannot write {}: {e}", manifest_path.display()))
            })?;
        }
        let mut store = SampleStore {
            root,
            pools: Vec::new(),
            writable: true,
        };
        store.scan_existing(true)?;
        Ok(store)
    }

    /// Opens the store at `root` read-only, returning `Ok(None)` when no
    /// store exists there. Nothing is created or healed — a torn tail is
    /// tolerated in place (its batch treated as not stored), which is what
    /// lets merge read shard stores without modifying its inputs.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] on a corrupt store or (when `fingerprint` is
    /// given) a store written by a different campaign.
    pub fn open_existing(
        root: impl Into<PathBuf>,
        fingerprint: Option<&str>,
    ) -> Result<Option<Self>, SpecError> {
        let root = root.into();
        let manifest_path = root.join(SAMPLES_MANIFEST_FILE);
        if !manifest_path.exists() {
            return Ok(None);
        }
        let manifest = read_manifest(&manifest_path)?;
        if let Some(expected) = fingerprint {
            if manifest.fingerprint != expected {
                return Err(SpecError::new(format!(
                    "sample store {} was written by a campaign with fingerprint {}, \
                     not {expected}; refusing to mix samples across campaigns",
                    root.display(),
                    manifest.fingerprint
                )));
            }
        }
        let mut store = SampleStore {
            root,
            pools: Vec::new(),
            writable: false,
        };
        store.scan_existing(false)?;
        Ok(Some(store))
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The mesh sides with at least one stored batch, in ascending order.
    pub fn meshes(&self) -> Vec<usize> {
        let mut meshes: Vec<usize> = self
            .pools
            .iter()
            .filter(|p| !p.entries.is_empty())
            .map(|p| p.mesh)
            .collect();
        meshes.sort_unstable();
        meshes
    }

    /// Total batches stored across all meshes.
    pub fn batches(&self) -> usize {
        self.pools.iter().map(|p| p.entries.len()).sum()
    }

    /// The run indices with a stored batch for `mesh`, ascending.
    pub fn indices(&self, mesh: usize) -> Vec<usize> {
        let mut indices: Vec<usize> = match self.pools.iter().find(|p| p.mesh == mesh) {
            Some(pool) => pool.entries.iter().map(|(i, _)| *i).collect(),
            None => Vec::new(),
        };
        indices.sort_unstable();
        indices
    }

    /// Appends one run's sample batch for `mesh`, flushing the line so a
    /// crash after this call cannot lose it. An identical batch already
    /// stored for the same run index dedupes (returns `Ok(false)`).
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if a conflicting batch is already stored for
    /// the index, or the record cannot be written.
    pub fn append_batch(
        &mut self,
        mesh: usize,
        index: usize,
        samples: Vec<LabeledSample>,
    ) -> Result<bool, SpecError> {
        let batch = SampleBatch {
            index,
            mesh,
            samples,
        };
        let line = serde_json::to_string(&batch).expect("sample batch serialization cannot fail");
        self.append_line(mesh, index, &line)
    }

    /// [`Self::append_batch`] over an already serialized record line — the
    /// merge path copies batches between stores without re-encoding them.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] on a conflicting duplicate or I/O failure.
    pub fn append_line(
        &mut self,
        mesh: usize,
        index: usize,
        line: &str,
    ) -> Result<bool, SpecError> {
        if !self.writable {
            // An open_existing store may still end in a tolerated torn
            // record; appending would merge into it and corrupt the file.
            return Err(SpecError::new(format!(
                "sample store {} was opened read-only; attach it to append",
                self.root.display()
            )));
        }
        let pool_path = self.root.join(format!("{mesh}.jsonl"));
        let pool = match self.pools.iter_mut().find(|p| p.mesh == mesh) {
            Some(pool) => pool,
            None => {
                self.pools.push(SamplePool {
                    mesh,
                    path: pool_path,
                    entries: Vec::new(),
                    by_index: HashMap::new(),
                    valid_bytes: 0,
                    writer: None,
                });
                self.pools.last_mut().expect("just pushed")
            }
        };
        if let Some(existing) = pool.entry_for(index) {
            // Runs are deterministic: a repeat spill of the same run's batch
            // is byte-identical. Anything else mixes campaigns.
            let mut file = File::open(&pool.path)
                .map_err(|e| SpecError::new(format!("cannot read {}: {e}", pool.path.display())))?;
            let stored = read_line_at(&mut file, &existing, &pool.path)?;
            if stored == line {
                return Ok(false);
            }
            return Err(SpecError::new(format!(
                "sample batch for run index {index} already stored in {} with a \
                 conflicting payload",
                pool.path.display()
            )));
        }
        if pool.writer.is_none() {
            pool.writer = Some(
                OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&pool.path)
                    .map_err(|e| {
                        SpecError::new(format!("cannot open {}: {e}", pool.path.display()))
                    })?,
            );
        }
        let writer = pool.writer.as_mut().expect("just opened");
        // One write_all for record + newline (matching the run-log append):
        // a crash can only ever leave a *partial* final line, which the next
        // scan heals as a torn tail — never a whole line missing its
        // newline for a later append to merge into.
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        writer
            .write_all(framed.as_bytes())
            .and_then(|()| writer.flush())
            .map_err(|e| {
                SpecError::new(format!("cannot append to {}: {e}", pool.path.display()))
            })?;
        let entry = RecordEntry {
            offset: pool.valid_bytes,
            len: line.len(),
        };
        pool.entries.push((index, entry));
        pool.by_index.insert(index, entry);
        pool.valid_bytes += line.len() as u64 + 1;
        Ok(true)
    }

    /// Flushes every sample file this store has appended to down to stable
    /// storage (`fsync` on each open writer, then on the directory entry) —
    /// `campaign compact --strip-samples` calls this before swapping the
    /// stripped run log in, so a power loss can never leave scalar-only
    /// records whose samples exist nowhere.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if a sync fails.
    pub fn sync_all(&mut self) -> Result<(), SpecError> {
        let mut synced_any = false;
        for pool in &mut self.pools {
            if let Some(writer) = &mut pool.writer {
                writer.sync_all().map_err(|e| {
                    SpecError::new(format!("cannot sync {}: {e}", pool.path.display()))
                })?;
                synced_any = true;
            }
        }
        if synced_any {
            File::open(&self.root)
                .and_then(|dir| dir.sync_all())
                .map_err(|e| SpecError::new(format!("cannot sync {}: {e}", self.root.display())))?;
        }
        Ok(())
    }

    /// Replays every stored batch for `mesh` in **run-index order**, handing
    /// each parsed [`SampleBatch`] to `fold` one at a time (the batch is
    /// dropped when the fold returns) — the same seek/read-one-record
    /// discipline as the run-log replay.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if a batch cannot be re-read or re-parsed.
    pub fn replay_pool(
        &self,
        mesh: usize,
        mut fold: impl FnMut(SampleBatch),
    ) -> Result<(), SpecError> {
        let Some(pool) = self.pools.iter().find(|p| p.mesh == mesh) else {
            return Ok(());
        };
        if pool.entries.is_empty() {
            return Ok(());
        }
        let mut ordered = pool.entries.clone();
        ordered.sort_unstable_by_key(|(i, _)| *i);
        let mut file = File::open(&pool.path)
            .map_err(|e| SpecError::new(format!("cannot read {}: {e}", pool.path.display())))?;
        for (_, entry) in ordered {
            let line = read_line_at(&mut file, &entry, &pool.path)?;
            let batch: SampleBatch = serde_json::from_str(line.trim()).map_err(|e| {
                SpecError::new(format!(
                    "sample batch at byte {} of {} changed under the index: {e}",
                    entry.offset,
                    pool.path.display()
                ))
            })?;
            fold(batch);
        }
        Ok(())
    }

    /// Replays every stored batch for `mesh` as raw record lines, in file
    /// order — the merge path copies shard stores with this.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if a line cannot be re-read.
    pub fn for_each_raw(
        &self,
        mesh: usize,
        mut visit: impl FnMut(usize, &str) -> Result<(), SpecError>,
    ) -> Result<(), SpecError> {
        let Some(pool) = self.pools.iter().find(|p| p.mesh == mesh) else {
            return Ok(());
        };
        if pool.entries.is_empty() {
            return Ok(());
        }
        let mut file = File::open(&pool.path)
            .map_err(|e| SpecError::new(format!("cannot read {}: {e}", pool.path.display())))?;
        for (index, entry) in &pool.entries {
            let line = read_line_at(&mut file, entry, &pool.path)?;
            visit(*index, line.trim())?;
        }
        Ok(())
    }

    /// Sizes up the samples directory at `root` without touching it:
    /// `Ok(None)` when no store exists. The read-only path behind
    /// `campaign status`.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] on a corrupt (mid-stream) sample file.
    pub fn inspect(root: impl AsRef<Path>) -> Result<Option<SpillStats>, SpecError> {
        let root = root.as_ref();
        if !root.join(SAMPLES_MANIFEST_FILE).exists() {
            return Ok(None);
        }
        let mut stats = SpillStats {
            files: 0,
            batches: 0,
            samples: 0,
            bytes: 0,
            truncated_tail: false,
        };
        for path in sample_files(root)? {
            let (_, scan) = scan_sample_file(&path)?;
            stats.files += 1;
            stats.batches += scan.entries.len();
            stats.samples += scan.samples;
            stats.bytes += std::fs::metadata(&path)
                .map(|m| m.len())
                .map_err(|e| SpecError::new(format!("cannot stat {}: {e}", path.display())))?;
            stats.truncated_tail |= scan.truncated_tail;
        }
        Ok(Some(stats))
    }

    /// Scans the pre-existing sample files under the root into pools,
    /// healing torn tails when `heal` is set (the writable attach path).
    fn scan_existing(&mut self, heal: bool) -> Result<(), SpecError> {
        for path in sample_files(&self.root)? {
            let (mesh, scan) = scan_sample_file(&path)?;
            if scan.truncated_tail && heal {
                OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .and_then(|f| f.set_len(scan.valid_bytes))
                    .map_err(|e| {
                        SpecError::new(format!("cannot truncate {}: {e}", path.display()))
                    })?;
            }
            let by_index = scan.entries.iter().copied().collect();
            self.pools.push(SamplePool {
                mesh,
                path,
                entries: scan.entries,
                by_index,
                valid_bytes: scan.valid_bytes,
                writer: None,
            });
        }
        Ok(())
    }
}

/// What one pass over a sample file found.
struct SampleScan {
    entries: Vec<(usize, RecordEntry)>,
    samples: usize,
    valid_bytes: u64,
    truncated_tail: bool,
}

/// Lists the `<mesh>.jsonl` files under a samples directory, sorted by mesh
/// so scan order (and thus pool discovery order) is deterministic.
fn sample_files(root: &Path) -> Result<Vec<PathBuf>, SpecError> {
    let mut meshes: Vec<usize> = Vec::new();
    let listing = std::fs::read_dir(root)
        .map_err(|e| SpecError::new(format!("cannot list {}: {e}", root.display())))?;
    for entry in listing {
        let entry =
            entry.map_err(|e| SpecError::new(format!("cannot list {}: {e}", root.display())))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name == SAMPLES_MANIFEST_FILE {
            continue;
        }
        let Some(stem) = name.strip_suffix(".jsonl") else {
            return Err(SpecError::new(format!(
                "unexpected file {name} in sample store {}; expected <mesh>.jsonl",
                root.display()
            )));
        };
        let mesh: usize = stem.parse().map_err(|_| {
            SpecError::new(format!(
                "unexpected file {name} in sample store {}; expected <mesh>.jsonl",
                root.display()
            ))
        })?;
        meshes.push(mesh);
    }
    meshes.sort_unstable();
    Ok(meshes
        .into_iter()
        .map(|m| root.join(format!("{m}.jsonl")))
        .collect())
}

/// Scans one `<mesh>.jsonl` file: every batch parsed for validation (and
/// dropped), duplicate indices deduped when byte-identical, a torn final
/// record tolerated — the same shared scan loop as the run-log index
/// ([`scan_jsonl`]), with sample-batch validation plugged in.
fn scan_sample_file(path: &Path) -> Result<(usize, SampleScan), SpecError> {
    let mesh: usize = path
        .file_stem()
        .and_then(|s| s.to_str())
        .and_then(|s| s.parse().ok())
        .expect("sample_files only yields <mesh>.jsonl paths");
    let file = File::open(path)
        .map_err(|e| SpecError::new(format!("cannot read {}: {e}", path.display())))?;
    let mut scan = SampleScan {
        entries: Vec::new(),
        samples: 0,
        valid_bytes: 0,
        truncated_tail: false,
    };
    let mut seen: HashMap<usize, RecordEntry> = HashMap::new();
    let outcome = scan_jsonl(file, path, "sample batch", |line_no, offset, line| {
        let batch: SampleBatch = match serde_json::from_str(line) {
            Ok(batch) => batch,
            Err(e) => return Ok(Some(e.to_string())),
        };
        if batch.mesh != mesh {
            return Err(SpecError::new(format!(
                "sample batch on line {line_no} of {} is for mesh {}, not {mesh}",
                path.display(),
                batch.mesh
            )));
        }
        let sample_count = batch.samples.len();
        let index = batch.index;
        drop(batch);
        let entry = RecordEntry {
            offset,
            len: line.len(),
        };
        match seen.get(&index) {
            Some(existing) => {
                let mut file = File::open(path)
                    .map_err(|e| SpecError::new(format!("cannot read {}: {e}", path.display())))?;
                if read_line_at(&mut file, existing, path)? != line {
                    return Err(SpecError::new(format!(
                        "sample batch for run index {index} appears twice in {} with \
                         conflicting payloads (line {line_no})",
                        path.display()
                    )));
                }
            }
            None => {
                seen.insert(index, entry);
                scan.entries.push((index, entry));
                scan.samples += sample_count;
            }
        }
        Ok(None)
    })?;
    scan.valid_bytes = outcome.valid_bytes;
    scan.truncated_tail = outcome.truncated_tail;
    Ok((mesh, scan))
}

/// Reads and parses a sample-store manifest.
fn read_manifest(path: &Path) -> Result<SampleManifest, SpecError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| SpecError::new(format!("cannot read {}: {e}", path.display())))?;
    serde_json::from_str(&text)
        .map_err(|e| SpecError::new(format!("malformed sample manifest {}: {e}", path.display())))
}
