//! Lease records and the coordinator's append-only lease ledger.
//!
//! A **lease** is the unit of dynamic scheduling ([`crate::sched`]): a
//! bounded set of run indices granted to one worker, stamped with the spec
//! fingerprint it belongs to and a deadline after which the coordinator may
//! take the unfinished indices back. Every lease transition the coordinator
//! performs — issue, per-run progress, completion, expiry — is appended to
//! a JSONL **ledger** at `<dir>/sched/leases.jsonl` before the reply leaves
//! the coordinator, so `campaign status`/`watch` can render the lease table
//! of a live (or crashed) scheduling session read-only, exactly the way the
//! run log lets them render run progress.
//!
//! The ledger is observability, not the source of truth: the run records a
//! worker persisted in its own campaign directory are what the final
//! assembly merges, and a coordinator restart rebuilds its scheduling state
//! by re-indexing those directories ([`crate::sched::serve_sched`]). A torn
//! final ledger line (coordinator killed mid-append) is therefore tolerated
//! exactly like a torn run record.

use crate::spec::SpecError;
use crate::stream::scan_jsonl;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Directory (inside a campaign directory) holding every scheduler artifact:
/// the lease ledger, the message inbox/outbox, and the done marker.
pub const SCHED_DIR: &str = "sched";
/// File name of the lease ledger inside [`SCHED_DIR`].
pub const LEDGER_FILE: &str = "leases.jsonl";

/// The ledger path of a campaign directory rooted at `root`.
pub fn ledger_path(root: &Path) -> PathBuf {
    root.join(SCHED_DIR).join(LEDGER_FILE)
}

/// One granted lease: a bounded set of run indices one worker executes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lease {
    /// Ledger-unique lease id, ascending in issue order.
    pub id: u64,
    /// The worker the lease was granted to.
    pub worker: String,
    /// Run indices granted, in execution order.
    pub indices: Vec<usize>,
    /// Indices not yet reported done ([`crate::sched::Scheduler::progress`]).
    pub remaining: Vec<usize>,
    /// [`crate::stream::spec_fingerprint`] of the campaign the indices
    /// belong to — a worker refuses a lease whose fingerprint disagrees
    /// with the manifest it opened.
    pub fingerprint: String,
    /// Coordinator-clock deadline (µs since the coordinator started) after
    /// which the lease counts as abandoned. Every progress report pushes it
    /// forward — progress is the heartbeat.
    pub deadline_us: u64,
}

/// Ledger record kind: a lease was granted.
pub const LEDGER_ISSUED: &str = "issued";
/// Ledger record kind: one run index of a lease completed (heartbeat).
pub const LEDGER_PROGRESS: &str = "progress";
/// Ledger record kind: a lease finished every index it held.
pub const LEDGER_COMPLETED: &str = "completed";
/// Ledger record kind: a lease missed its deadline; its unfinished indices
/// returned to the pending queue.
pub const LEDGER_EXPIRED: &str = "expired";

/// One appended lease transition. A flat record (tagged by [`Self::kind`])
/// rather than an enum, so every line carries the same schema and partial
/// readers stay trivial.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LedgerRecord {
    /// One of [`LEDGER_ISSUED`] / [`LEDGER_PROGRESS`] / [`LEDGER_COMPLETED`]
    /// / [`LEDGER_EXPIRED`].
    pub kind: String,
    /// The lease the transition applies to.
    pub id: u64,
    /// Granting worker ([`LEDGER_ISSUED`] only).
    #[serde(default)]
    pub worker: String,
    /// Indices granted ([`LEDGER_ISSUED`]) or returned ([`LEDGER_EXPIRED`]).
    #[serde(default)]
    pub indices: Vec<usize>,
    /// Spec fingerprint ([`LEDGER_ISSUED`] only).
    #[serde(default)]
    pub fingerprint: String,
    /// Lease deadline, coordinator-clock µs ([`LEDGER_ISSUED`]; progress
    /// records carry the *extended* deadline here).
    #[serde(default)]
    pub deadline_us: u64,
    /// The completed run index ([`LEDGER_PROGRESS`] only).
    #[serde(default)]
    pub index: Option<usize>,
    /// How many of the issued indices had been leased before (a reissue
    /// after an expiry); `0` for a first-time grant.
    #[serde(default)]
    pub reissued_indices: usize,
}

/// Appends one record to an open ledger handle, flushed like a run record —
/// a crash after this call cannot lose the transition.
///
/// # Errors
///
/// Returns a [`SpecError`] if the record cannot be written.
pub fn append_ledger(writer: &mut File, record: &LedgerRecord) -> Result<(), SpecError> {
    let mut line = serde_json::to_string(record).expect("ledger serialization cannot fail");
    line.push('\n');
    writer
        .write_all(line.as_bytes())
        .and_then(|()| writer.flush())
        .map_err(|e| SpecError::new(format!("cannot append to lease ledger: {e}")))
}

/// Opens the ledger of the campaign directory at `root` for appending,
/// creating `sched/` and the file as needed.
///
/// # Errors
///
/// Returns a [`SpecError`] if the directory or file cannot be created.
pub fn open_ledger_for_append(root: &Path) -> Result<File, SpecError> {
    let path = ledger_path(root);
    let dir = path.parent().expect("ledger path always has a parent");
    std::fs::create_dir_all(dir)
        .map_err(|e| SpecError::new(format!("cannot create {}: {e}", dir.display())))?;
    OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .map_err(|e| SpecError::new(format!("cannot open {}: {e}", path.display())))
}

/// Reads the ledger at `root` back, torn-tail-tolerantly. A missing ledger
/// yields an empty list (the directory was never scheduled) — not an error.
///
/// # Errors
///
/// Returns a [`SpecError`] on mid-file garbage or I/O failure.
pub fn read_ledger(root: &Path) -> Result<Vec<LedgerRecord>, SpecError> {
    let path = ledger_path(root);
    let file = match File::open(&path) {
        Ok(file) => file,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => {
            return Err(SpecError::new(format!(
                "cannot open {}: {e}",
                path.display()
            )))
        }
    };
    let mut records = Vec::new();
    let _ = scan_jsonl(
        file,
        &path,
        "lease record",
        |_, _, line| match serde_json::from_str::<LedgerRecord>(line) {
            Ok(record) => {
                records.push(record);
                Ok(None)
            }
            Err(e) => Ok(Some(e.to_string())),
        },
    )?;
    Ok(records)
}

/// One lease's ledger-derived state, for `campaign status`/`watch`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeaseInfo {
    /// Lease id.
    pub id: u64,
    /// The worker it was granted to.
    pub worker: String,
    /// Indices granted.
    pub runs: usize,
    /// Indices reported done via progress records.
    pub done: usize,
    /// `"active"`, `"completed"` or `"expired"`.
    pub state: String,
    /// Last recorded deadline, coordinator-clock µs.
    pub deadline_us: u64,
}

/// The lease-table view of a scheduled campaign directory, rebuilt from the
/// ledger read-only.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedStatus {
    /// Every lease ever issued, ascending by id.
    pub leases: Vec<LeaseInfo>,
    /// Leases issued in total.
    pub issued: u64,
    /// Leases that missed a deadline.
    pub expired: u64,
    /// Grants that re-covered previously leased indices (after an expiry).
    pub reissued: u64,
    /// Leases that completed every index.
    pub completed: u64,
    /// Leases still active (issued, neither completed nor expired).
    pub active: u64,
}

/// Rebuilds the [`SchedStatus`] lease table of the campaign directory at
/// `root` from its ledger. `Ok(None)` when no ledger exists — the directory
/// was never driven by a coordinator.
///
/// # Errors
///
/// Returns a [`SpecError`] on a corrupt ledger.
pub fn sched_status(root: &Path) -> Result<Option<SchedStatus>, SpecError> {
    let records = read_ledger(root)?;
    if records.is_empty() && !ledger_path(root).exists() {
        return Ok(None);
    }
    let mut leases: Vec<LeaseInfo> = Vec::new();
    let mut status = SchedStatus {
        leases: Vec::new(),
        issued: 0,
        expired: 0,
        reissued: 0,
        completed: 0,
        active: 0,
    };
    for record in &records {
        match record.kind.as_str() {
            LEDGER_ISSUED => {
                status.issued += 1;
                if record.reissued_indices > 0 {
                    status.reissued += 1;
                }
                leases.push(LeaseInfo {
                    id: record.id,
                    worker: record.worker.clone(),
                    runs: record.indices.len(),
                    done: 0,
                    state: "active".to_string(),
                    deadline_us: record.deadline_us,
                });
            }
            LEDGER_PROGRESS => {
                if let Some(info) = leases.iter_mut().find(|l| l.id == record.id) {
                    info.done += 1;
                    info.deadline_us = record.deadline_us;
                }
            }
            LEDGER_COMPLETED => {
                status.completed += 1;
                if let Some(info) = leases.iter_mut().find(|l| l.id == record.id) {
                    info.state = "completed".to_string();
                }
            }
            LEDGER_EXPIRED => {
                status.expired += 1;
                if let Some(info) = leases.iter_mut().find(|l| l.id == record.id) {
                    info.state = "expired".to_string();
                }
            }
            _ => {} // Forward compatibility: unknown transitions are skipped.
        }
    }
    leases.sort_by_key(|l| l.id);
    status.active = leases.iter().filter(|l| l.state == "active").count() as u64;
    status.leases = leases;
    Ok(Some(status))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("dl2fence-lease-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        root
    }

    fn issued(id: u64, worker: &str, indices: Vec<usize>, reissued: usize) -> LedgerRecord {
        LedgerRecord {
            kind: LEDGER_ISSUED.to_string(),
            id,
            worker: worker.to_string(),
            indices,
            fingerprint: "f00d".to_string(),
            deadline_us: 1_000,
            index: None,
            reissued_indices: reissued,
        }
    }

    #[test]
    fn ledger_round_trips_and_builds_the_lease_table() {
        let root = temp_root("table");
        let mut writer = open_ledger_for_append(&root).unwrap();
        append_ledger(&mut writer, &issued(0, "w1", vec![0, 1], 0)).unwrap();
        append_ledger(&mut writer, &issued(1, "w2", vec![2, 3], 0)).unwrap();
        append_ledger(
            &mut writer,
            &LedgerRecord {
                kind: LEDGER_PROGRESS.to_string(),
                id: 0,
                index: Some(0),
                deadline_us: 2_000,
                ..LedgerRecord::default()
            },
        )
        .unwrap();
        append_ledger(
            &mut writer,
            &LedgerRecord {
                kind: LEDGER_EXPIRED.to_string(),
                id: 1,
                indices: vec![2, 3],
                ..LedgerRecord::default()
            },
        )
        .unwrap();
        append_ledger(&mut writer, &issued(2, "w1", vec![2, 3], 2)).unwrap();
        append_ledger(
            &mut writer,
            &LedgerRecord {
                kind: LEDGER_COMPLETED.to_string(),
                id: 0,
                ..LedgerRecord::default()
            },
        )
        .unwrap();
        drop(writer);

        let status = sched_status(&root).unwrap().expect("ledger exists");
        assert_eq!(status.issued, 3);
        assert_eq!(status.expired, 1);
        assert_eq!(status.reissued, 1);
        assert_eq!(status.completed, 1);
        assert_eq!(status.active, 1);
        assert_eq!(status.leases.len(), 3);
        assert_eq!(status.leases[0].state, "completed");
        assert_eq!(status.leases[0].done, 1);
        assert_eq!(status.leases[0].deadline_us, 2_000);
        assert_eq!(status.leases[1].state, "expired");
        assert_eq!(status.leases[2].state, "active");
        assert_eq!(status.leases[2].worker, "w1");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn missing_ledger_is_none_and_torn_tail_is_tolerated() {
        let root = temp_root("torn");
        assert!(sched_status(&root).unwrap().is_none());

        let mut writer = open_ledger_for_append(&root).unwrap();
        append_ledger(&mut writer, &issued(0, "w1", vec![0], 0)).unwrap();
        drop(writer);
        // A torn final line (coordinator killed mid-append) is not an error.
        let path = ledger_path(&root);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"kind\":\"iss");
        std::fs::write(&path, text).unwrap();
        let status = sched_status(&root).unwrap().expect("ledger exists");
        assert_eq!(status.issued, 1);
        std::fs::remove_dir_all(&root).unwrap();
    }
}
