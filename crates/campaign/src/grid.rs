//! Cartesian grid expansion: a [`CampaignSpec`] becomes a concrete,
//! deterministically ordered and seeded run matrix.
//!
//! The expansion order is part of the engine's contract: run indices (and
//! therefore derived per-run seeds) depend only on the spec, never on thread
//! scheduling, which is what makes parallel and serial campaign execution
//! bit-identical.

use crate::spec::{AttackAxis, CampaignSpec, SpecError};
use noc_monitor::dataset::{attack_catalog, distributed_catalog};
use noc_monitor::ScenarioSpec;
use serde::{Deserialize, Serialize};

/// One fully resolved run of a campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSpec {
    /// Position in the expanded matrix (also the seed-derivation input).
    pub index: usize,
    /// The campaign master seed this run replicates.
    pub campaign_seed: u64,
    /// The derived per-run seed (see [`derive_run_seed`]).
    pub run_seed: u64,
    /// Row count of the topology (the legacy mesh side — square topologies
    /// keep `mesh × mesh` nodes, and frame geometry derives from it).
    pub mesh: usize,
    /// Canonical topology axis name (`"mesh8"`, `"torus4"`, `"ring2x8"`).
    pub topology: String,
    /// Attack-family axis name (`"fdos"`, `"ddos2"`, `"stealth"`; `"none"`
    /// for attack-free runs).
    pub attack: String,
    /// Benchmark name of the benign workload.
    pub workload: String,
    /// The scenario to simulate (workload, attackers, victim, FIR).
    pub scenario: ScenarioSpec,
}

impl RunSpec {
    /// Whether this run contains an attack.
    pub fn is_attack(&self) -> bool {
        self.scenario.is_attack()
    }
}

/// Derives the master seed of run `index` from the campaign seed.
///
/// splitmix64 over the campaign seed plus the golden-ratio-scaled index:
/// statistically independent streams per run, reproducible from the spec
/// alone, and independent of which worker thread executes the run.
pub fn derive_run_seed(campaign_seed: u64, index: usize) -> u64 {
    let mut z = campaign_seed.wrapping_add((index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Expands a spec into its run matrix.
///
/// For every `(seed, topology, workload)` combination the matrix contains
/// `grid.benign_runs` attack-free runs followed, for every FIR value and
/// every attack family, by `grid.attack_placements` attacked runs whose
/// placements come from the shared deterministic [`attack_catalog`] (fdos,
/// stealth) or [`distributed_catalog`] (ddos). A legacy single-family
/// mesh-only spec therefore expands to exactly the sequence it always did.
///
/// # Errors
///
/// Returns a [`SpecError`] if the spec fails validation.
pub fn expand(spec: &CampaignSpec) -> Result<Vec<RunSpec>, SpecError> {
    spec.validate()?;
    let workloads = spec.workloads()?;
    let topologies = spec.resolved_topologies()?;
    let attacks = spec.resolved_attacks()?;
    let mut runs = Vec::new();
    for &campaign_seed in &spec.grid.seeds {
        for topology in &topologies {
            let (name, rows, cols) = (topology.name(), topology.rows(), topology.cols());
            for workload in &workloads {
                for _ in 0..spec.grid.benign_runs {
                    push_run(
                        &mut runs,
                        campaign_seed,
                        rows,
                        name.clone(),
                        "none".to_string(),
                        ScenarioSpec::benign(*workload),
                    );
                }
                for &fir in &spec.grid.fir {
                    if fir == 0.0 {
                        // FIR 0 is an attack-free point (Figure-1 style
                        // sweeps include it); one run, no placements.
                        push_run(
                            &mut runs,
                            campaign_seed,
                            rows,
                            name.clone(),
                            "none".to_string(),
                            ScenarioSpec::benign(*workload),
                        );
                        continue;
                    }
                    for axis in &attacks {
                        let placements = match axis {
                            AttackAxis::Ddos { sources } => distributed_catalog(
                                rows,
                                cols,
                                spec.grid.attack_placements,
                                *sources,
                                fir,
                            ),
                            AttackAxis::Fdos | AttackAxis::Stealth => {
                                attack_catalog(rows, cols, spec.grid.attack_placements, fir)
                            }
                        };
                        for (attackers, victim, fir) in placements {
                            push_run(
                                &mut runs,
                                campaign_seed,
                                rows,
                                name.clone(),
                                axis.name(),
                                ScenarioSpec::attacked(*workload, attackers, victim, fir)
                                    .with_attack(axis.kind()),
                            );
                        }
                    }
                }
            }
        }
    }
    Ok(runs)
}

/// Builds a run matrix directly from explicit scenarios (all on the same
/// `mesh × mesh` NoC), with the engine's index order and seed derivation.
///
/// This is the low-level entry point for harnesses that already know their
/// exact scenario list (e.g. the paper's fixed attacker placements) and only
/// want the engine's parallel execution and determinism guarantees.
pub fn runs_from_scenarios(
    campaign_seed: u64,
    mesh: usize,
    scenarios: impl IntoIterator<Item = ScenarioSpec>,
) -> Vec<RunSpec> {
    let mut runs = Vec::new();
    for scenario in scenarios {
        let attack = if scenario.is_attack() {
            scenario.attack.name().to_string()
        } else {
            "none".to_string()
        };
        push_run(
            &mut runs,
            campaign_seed,
            mesh,
            format!("mesh{mesh}"),
            attack,
            scenario,
        );
    }
    runs
}

fn push_run(
    runs: &mut Vec<RunSpec>,
    campaign_seed: u64,
    mesh: usize,
    topology: String,
    attack: String,
    scenario: ScenarioSpec,
) {
    let index = runs.len();
    runs.push(RunSpec {
        index,
        campaign_seed,
        run_seed: derive_run_seed(campaign_seed, index),
        mesh,
        topology,
        attack,
        workload: scenario.workload.name(),
        scenario,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_matches_the_grid_arithmetic() {
        let mut spec = CampaignSpec::quick("count");
        spec.grid.mesh = vec![4, 8];
        spec.grid.fir = vec![0.4, 0.8];
        spec.grid.workloads = vec!["uniform".into(), "tornado".into()];
        spec.grid.attack_placements = 3;
        spec.grid.benign_runs = 2;
        spec.grid.seeds = vec![7, 8];
        let runs = expand(&spec).unwrap();
        // seeds × mesh × workloads × (benign + firs × placements)
        assert_eq!(runs.len(), 2 * 2 * 2 * (2 + 2 * 3));
        assert_eq!(
            runs.iter().filter(|r| !r.is_attack()).count(),
            2 * 2 * 2 * 2
        );
        // Indices are dense and in order.
        for (i, run) in runs.iter().enumerate() {
            assert_eq!(run.index, i);
            assert_eq!(run.run_seed, derive_run_seed(run.campaign_seed, i));
        }
    }

    #[test]
    fn fir_zero_expands_to_a_single_benign_point() {
        let mut spec = CampaignSpec::quick("fir0");
        spec.grid.fir = vec![0.0, 0.5];
        spec.grid.attack_placements = 4;
        spec.grid.benign_runs = 0;
        let runs = expand(&spec).unwrap();
        assert_eq!(runs.len(), 1 + 4);
        assert_eq!(runs.iter().filter(|r| r.is_attack()).count(), 4);
    }

    #[test]
    fn expansion_is_deterministic() {
        let spec = CampaignSpec::quick("det");
        assert_eq!(expand(&spec).unwrap(), expand(&spec).unwrap());
    }

    #[test]
    fn derived_seeds_are_distinct_across_runs_and_seeds() {
        let mut seen = std::collections::HashSet::new();
        for campaign_seed in [0u64, 1, 0xDAC] {
            for index in 0..100 {
                assert!(seen.insert(derive_run_seed(campaign_seed, index)));
            }
        }
    }

    #[test]
    fn invalid_spec_fails_expansion() {
        // Setting both the deprecated mesh axis and the topology axis is
        // ambiguous and must be refused.
        let mut spec = CampaignSpec::quick("bad");
        spec.grid.mesh = vec![4];
        spec.grid.topology = vec!["torus4".into()];
        assert!(expand(&spec).is_err());
    }

    #[test]
    fn legacy_mesh_axis_expands_identically_to_its_topology_rewrite() {
        let mut legacy = CampaignSpec::quick("compat");
        legacy.grid.mesh = vec![4, 8];
        legacy.grid.fir = vec![0.4, 0.8];
        legacy.grid.attack_placements = 3;
        let mut rewrite = legacy.clone();
        rewrite.grid.mesh = vec![];
        rewrite.grid.topology = vec!["mesh4".into(), "mesh8".into()];
        assert_eq!(expand(&legacy).unwrap(), expand(&rewrite).unwrap());
    }

    #[test]
    fn topology_and_attack_axes_multiply_the_matrix() {
        let mut spec = CampaignSpec::quick("axes");
        spec.grid.topology = vec!["mesh4".into(), "torus4".into(), "ring2x8".into()];
        spec.grid.attack = vec!["fdos".into(), "ddos2".into(), "stealth".into()];
        spec.grid.fir = vec![0.8];
        spec.grid.attack_placements = 2;
        spec.grid.benign_runs = 1;
        let runs = expand(&spec).unwrap();
        // topologies × (benign + firs × attacks × placements)
        assert_eq!(runs.len(), 3 * (1 + 3 * 2));
        for run in &runs {
            assert!(["mesh4", "torus4", "ring2x8"].contains(&run.topology.as_str()));
            if run.is_attack() {
                assert!(["fdos", "ddos2", "stealth"].contains(&run.attack.as_str()));
            } else {
                assert_eq!(run.attack, "none");
            }
        }
        let ddos: Vec<_> = runs.iter().filter(|r| r.attack == "ddos2").collect();
        assert_eq!(ddos.len(), 3 * 2);
        for run in ddos {
            assert_eq!(run.scenario.attackers.len(), 2, "ddos2 places 2 sources");
            assert_eq!(run.scenario.attack, noc_traffic::AttackKind::Ddos);
        }
        assert!(runs
            .iter()
            .filter(|r| r.attack == "stealth")
            .all(|r| r.scenario.attack == noc_traffic::AttackKind::Stealth));
    }

    #[test]
    fn ring_runs_record_non_square_geometry() {
        let mut spec = CampaignSpec::quick("ring");
        spec.grid.topology = vec!["ring2x8".into()];
        let runs = expand(&spec).unwrap();
        assert!(!runs.is_empty());
        for run in &runs {
            assert_eq!(run.topology, "ring2x8");
            assert_eq!(run.mesh, 2, "mesh records the row count");
        }
    }
}
