//! Declarative campaign specifications.
//!
//! A [`CampaignSpec`] describes a whole batch of simulate→sample→detect→
//! localize experiments as a cartesian parameter grid: mesh sizes, flooding
//! injection rates, benign workloads, attack placements and replicate seeds.
//! Specs are plain data — they can be written as TOML (parsed by
//! [`crate::minitoml`]) or JSON, round-trip through `serde`, and expand into
//! a concrete run matrix via [`crate::grid::expand`].

use crate::minitoml;
use noc_sim::Topology;
use noc_traffic::{AttackKind, BenignWorkload, ParsecWorkload, SyntheticPattern};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors produced while loading or validating a campaign spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    message: String,
}

impl SpecError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        SpecError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "campaign spec error: {}", self.message)
    }
}

impl std::error::Error for SpecError {}

/// Simulation parameters shared by every run of a campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct SimParams {
    /// Cycles simulated before the first sampling window.
    pub warmup_cycles: u64,
    /// Length of each sampling window in cycles.
    pub sample_period: u64,
    /// Sampling windows per run.
    pub samples_per_run: usize,
    /// Whether runs keep their labeled VCO/BOC samples (needed by the eval
    /// phase; costs memory on large campaigns).
    pub collect_samples: bool,
    /// Per-node injection queue capacity; `0` keeps the simulator default.
    pub injection_queue_capacity: usize,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            warmup_cycles: 200,
            sample_period: 400,
            samples_per_run: 2,
            collect_samples: false,
            injection_queue_capacity: 0,
        }
    }
}

/// The cartesian parameter grid of a campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct GridSpec {
    /// Topology axis names to sweep (`"mesh8"`, `"torus4"`, `"ring2x8"`,
    /// `"mesh4x8"` — see [`Topology::parse`]). Empty means `["mesh8"]`
    /// unless the deprecated `mesh` axis is set.
    pub topology: Vec<String>,
    /// **Deprecated** alias for `topology`: mesh sides to sweep (`8` means
    /// `"mesh8"`). Mutually exclusive with `topology`; spec files using it
    /// are rewritten to the `topology` axis at load time.
    pub mesh: Vec<usize>,
    /// Attack-family axis: `"fdos"` (flooding), `"ddos<k>"` (distributed,
    /// `k` round-robin sources, e.g. `"ddos2"`) and `"stealth"`
    /// (duty-cycled ramp-up). Empty means `["fdos"]`.
    pub attack: Vec<String>,
    /// Flooding injection rates of the attack runs.
    pub fir: Vec<f64>,
    /// Benign workload names (see [`parse_workload`]); aliases `"stp"`,
    /// `"parsec"` and `"all"` expand to the paper's benchmark groups.
    pub workloads: Vec<String>,
    /// Attack placements per (seed, mesh, workload, FIR) combination.
    pub attack_placements: usize,
    /// Attack-free runs per (seed, mesh, workload) combination.
    pub benign_runs: usize,
    /// Campaign master seeds; each replicates the whole grid.
    pub seeds: Vec<u64>,
    /// Benign injection rate used by synthetic workloads.
    pub injection_rate: f64,
}

impl Default for GridSpec {
    fn default() -> Self {
        GridSpec {
            topology: Vec::new(),
            mesh: Vec::new(),
            attack: Vec::new(),
            fir: vec![0.8],
            workloads: vec!["uniform".to_string()],
            attack_placements: 2,
            benign_runs: 1,
            seeds: vec![0xDAC],
            injection_rate: 0.02,
        }
    }
}

/// How the per-run results are grouped in the final report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct ReportSpec {
    /// Grouping keys, applied in order. Valid keys: `workload`, `fir`,
    /// `mesh`, `topology`, `attack`, `seed`, `attackers`, `class`.
    pub group_by: Vec<String>,
}

impl Default for ReportSpec {
    fn default() -> Self {
        ReportSpec {
            group_by: vec!["workload".to_string(), "fir".to_string()],
        }
    }
}

/// The optional train/evaluate phase appended to a campaign (used by the
/// paper's table-style experiments). Requires `sim.collect_samples`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct EvalSpec {
    /// Whether the phase runs at all.
    pub enabled: bool,
    /// Fraction of samples used for training; the rest is the test set.
    pub train_fraction: f64,
    /// Detector training epochs.
    pub detector_epochs: usize,
    /// Localizer training epochs.
    pub localizer_epochs: usize,
    /// Feature driving detection: `"vco"` or `"boc"`.
    pub detection_feature: String,
    /// Feature driving localization: `"vco"` or `"boc"`.
    pub localization_feature: String,
}

impl Default for EvalSpec {
    fn default() -> Self {
        EvalSpec {
            enabled: false,
            train_fraction: 0.6,
            detector_epochs: 40,
            localizer_epochs: 40,
            detection_feature: "vco".to_string(),
            localization_feature: "boc".to_string(),
        }
    }
}

/// A complete declarative campaign: grid, simulation parameters, report
/// grouping and the optional evaluation phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct CampaignSpec {
    /// Human-readable campaign name (appears in reports).
    pub name: String,
    /// Simulation parameters.
    pub sim: SimParams,
    /// The parameter grid.
    pub grid: GridSpec,
    /// Report grouping.
    pub report: ReportSpec,
    /// Optional train/evaluate phase.
    pub eval: EvalSpec,
}

impl Default for CampaignSpec {
    /// The defaults behind every optional spec section. The empty name is a
    /// deserialization fallback source only — `validate` rejects it.
    fn default() -> Self {
        CampaignSpec {
            name: String::new(),
            sim: SimParams::default(),
            grid: GridSpec::default(),
            report: ReportSpec::default(),
            eval: EvalSpec::default(),
        }
    }
}

impl CampaignSpec {
    /// A small ready-to-run campaign used by examples and tests.
    pub fn quick(name: impl Into<String>) -> Self {
        CampaignSpec {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Parses a TOML campaign spec.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] on malformed TOML, an unknown workload name,
    /// or an invalid parameter combination.
    pub fn from_toml(text: &str) -> Result<Self, SpecError> {
        let value = minitoml::parse(text).map_err(|e| SpecError::new(e.to_string()))?;
        let mut spec: CampaignSpec =
            Deserialize::from_value(&value).map_err(|e| SpecError::new(e.to_string()))?;
        spec.normalize();
        spec.validate()?;
        Ok(spec)
    }

    /// Parses a JSON campaign spec.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] on malformed JSON, an unknown workload name,
    /// or an invalid parameter combination.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        let mut spec: CampaignSpec =
            serde_json::from_str(text).map_err(|e| SpecError::new(e.to_string()))?;
        spec.normalize();
        spec.validate()?;
        Ok(spec)
    }

    /// Rewrites the deprecated `grid.mesh` axis into the equivalent
    /// `grid.topology` axis (`8` → `"mesh8"`), emitting a one-line
    /// deprecation note. Called on every spec loaded from a file, so a
    /// legacy spec and its `topology` rewrite become the same in-memory
    /// value — and therefore share a [`crate::stream::spec_fingerprint`]
    /// and produce byte-identical reports. A no-op when `grid.mesh` is
    /// empty or `grid.topology` is already set (the latter is rejected by
    /// [`Self::validate`]).
    pub fn normalize(&mut self) {
        if !self.grid.mesh.is_empty() && self.grid.topology.is_empty() {
            self.grid.topology = self.grid.mesh.iter().map(|m| format!("mesh{m}")).collect();
            self.grid.mesh.clear();
            eprintln!(
                "note: `grid.mesh` is deprecated; use `grid.topology = [{}]`",
                self.grid
                    .topology
                    .iter()
                    .map(|t| format!("{t:?}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
    }

    /// The fully resolved topology axis: `grid.topology` parsed into
    /// [`Topology`] instances, with the deprecated `grid.mesh` alias
    /// honoured and both-empty defaulting to a single 8×8 mesh.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if both axes are set, a name does not parse,
    /// or a topology is smaller than 2×2.
    pub fn resolved_topologies(&self) -> Result<Vec<Topology>, SpecError> {
        if !self.grid.mesh.is_empty() && !self.grid.topology.is_empty() {
            return Err(SpecError::new(
                "grid.mesh and grid.topology are mutually exclusive; grid.mesh is a \
                 deprecated alias — move its sides into grid.topology as \"mesh<N>\"",
            ));
        }
        let names: Vec<String> = if !self.grid.topology.is_empty() {
            self.grid.topology.clone()
        } else if !self.grid.mesh.is_empty() {
            self.grid.mesh.iter().map(|m| format!("mesh{m}")).collect()
        } else {
            vec!["mesh8".to_string()]
        };
        let mut out = Vec::with_capacity(names.len());
        for name in &names {
            let topology = Topology::parse(name).map_err(|e| SpecError::new(e.to_string()))?;
            if topology.rows() < 2 || topology.cols() < 2 {
                return Err(SpecError::new(format!(
                    "topology `{name}` is too small for a campaign (min 2x2)"
                )));
            }
            out.push(topology);
        }
        Ok(out)
    }

    /// The fully resolved attack-family axis; empty means `["fdos"]`.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the first unknown attack family.
    pub fn resolved_attacks(&self) -> Result<Vec<AttackAxis>, SpecError> {
        if self.grid.attack.is_empty() {
            return Ok(vec![AttackAxis::Fdos]);
        }
        self.grid.attack.iter().map(|n| parse_attack(n)).collect()
    }

    /// Loads a spec from a `.toml` or `.json` file, chosen by extension.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if the file cannot be read or parsed.
    pub fn from_path(path: &std::path::Path) -> Result<Self, SpecError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| SpecError::new(format!("cannot read {}: {e}", path.display())))?;
        match path.extension().and_then(|e| e.to_str()) {
            Some("json") => Self::from_json(&text),
            _ => Self::from_toml(&text),
        }
    }

    /// The fully resolved benign workloads of the grid (aliases expanded).
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the first unknown workload.
    pub fn workloads(&self) -> Result<Vec<BenignWorkload>, SpecError> {
        let mut out = Vec::new();
        for name in &self.grid.workloads {
            match name.to_ascii_lowercase().as_str() {
                "stp" => out.extend(
                    SyntheticPattern::ALL
                        .into_iter()
                        .map(|p| BenignWorkload::Synthetic(p, self.grid.injection_rate)),
                ),
                "parsec" => out.extend(ParsecWorkload::ALL.into_iter().map(BenignWorkload::Parsec)),
                "all" => {
                    out.extend(
                        SyntheticPattern::ALL
                            .into_iter()
                            .map(|p| BenignWorkload::Synthetic(p, self.grid.injection_rate)),
                    );
                    out.extend(ParsecWorkload::ALL.into_iter().map(BenignWorkload::Parsec));
                }
                _ => out.push(parse_workload(name, self.grid.injection_rate)?),
            }
        }
        Ok(out)
    }

    /// Checks the invariants the engine relies on.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] describing the first violated invariant.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.name.is_empty() {
            return Err(SpecError::new("campaign name must not be empty"));
        }
        self.resolved_topologies()?;
        self.resolved_attacks()?;
        if self.grid.seeds.is_empty() {
            return Err(SpecError::new("grid.seeds must list at least one seed"));
        }
        if let Some(f) = self.grid.fir.iter().find(|&&f| !(0.0..=1.0).contains(&f)) {
            return Err(SpecError::new(format!("FIR {f} outside [0, 1]")));
        }
        if self.grid.attack_placements == 0 && self.grid.benign_runs == 0 {
            return Err(SpecError::new(
                "grid needs attack_placements > 0 or benign_runs > 0",
            ));
        }
        if !(0.0..=1.0).contains(&self.grid.injection_rate) {
            return Err(SpecError::new(format!(
                "injection_rate {} outside [0, 1]",
                self.grid.injection_rate
            )));
        }
        if self.sim.samples_per_run == 0 || self.sim.sample_period == 0 {
            return Err(SpecError::new(
                "sim.samples_per_run and sim.sample_period must be positive",
            ));
        }
        if self.eval.enabled {
            if !self.sim.collect_samples {
                return Err(SpecError::new(
                    "eval.enabled requires sim.collect_samples = true",
                ));
            }
            if !(0.05..=0.95).contains(&self.eval.train_fraction) {
                return Err(SpecError::new(format!(
                    "eval.train_fraction {} outside [0.05, 0.95] (both partitions must be non-empty)",
                    self.eval.train_fraction
                )));
            }
            parse_feature(&self.eval.detection_feature)?;
            parse_feature(&self.eval.localization_feature)?;
        }
        self.workloads()?;
        validate_group_by(&self.report.group_by)?;
        Ok(())
    }
}

/// Checks that every report grouping key is one the engine can render —
/// shared by spec validation and [`crate::CampaignReport::from_runs`].
///
/// # Errors
///
/// Returns a [`SpecError`] naming the first unknown key.
pub fn validate_group_by(keys: &[String]) -> Result<(), SpecError> {
    for key in keys {
        if !matches!(
            key.as_str(),
            "workload" | "fir" | "mesh" | "topology" | "attack" | "seed" | "attackers" | "class"
        ) {
            return Err(SpecError::new(format!(
                "unknown report.group_by key `{key}` (expected \
                 workload/fir/mesh/topology/attack/seed/attackers/class)"
            )));
        }
    }
    Ok(())
}

/// One resolved attack-family axis value of the campaign grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackAxis {
    /// Flooding DoS: the catalog's single-/dual-attacker placements at the
    /// grid FIR.
    Fdos,
    /// Coordinated distributed DoS: `sources` attackers taking round-robin
    /// turns, sharing the grid FIR as an aggregate rate.
    Ddos {
        /// Number of coordinated sources per placement.
        sources: usize,
    },
    /// Duty-cycled ramp-up flooding that stays under the per-window FIR
    /// threshold.
    Stealth,
}

impl AttackAxis {
    /// The canonical spec-axis name (`"fdos"`, `"ddos2"`, `"stealth"`).
    pub fn name(&self) -> String {
        match self {
            AttackAxis::Fdos => "fdos".to_string(),
            AttackAxis::Ddos { sources } => format!("ddos{sources}"),
            AttackAxis::Stealth => "stealth".to_string(),
        }
    }

    /// The traffic-layer attack family this axis value selects.
    pub fn kind(&self) -> AttackKind {
        match self {
            AttackAxis::Fdos => AttackKind::Fdos,
            AttackAxis::Ddos { .. } => AttackKind::Ddos,
            AttackAxis::Stealth => AttackKind::Stealth,
        }
    }
}

/// Parses an attack-family axis name: `"fdos"`, `"stealth"`, or
/// `"ddos<k>"` with `k >= 2` coordinated sources (`"ddos"` alone means
/// `"ddos2"`).
///
/// # Errors
///
/// Returns a [`SpecError`] listing the valid families when `name` is
/// unknown or the source count is below 2.
pub fn parse_attack(name: &str) -> Result<AttackAxis, SpecError> {
    let canonical = name.trim().to_ascii_lowercase();
    match canonical.as_str() {
        "fdos" => return Ok(AttackAxis::Fdos),
        "stealth" => return Ok(AttackAxis::Stealth),
        _ => {}
    }
    if let Some(rest) = canonical.strip_prefix("ddos") {
        let sources: usize = if rest.is_empty() {
            2
        } else {
            rest.parse().map_err(|_| {
                SpecError::new(format!(
                    "unknown attack family `{name}` (expected fdos, ddos<k>, stealth)"
                ))
            })?
        };
        if sources < 2 {
            return Err(SpecError::new(format!(
                "distributed attack `{name}` needs at least 2 sources"
            )));
        }
        return Ok(AttackAxis::Ddos { sources });
    }
    Err(SpecError::new(format!(
        "unknown attack family `{name}` (expected fdos, ddos<k>, stealth)"
    )))
}

/// Resolves a workload name (`"uniform"`, `"tornado"`, `"shuffle"`,
/// `"neighbor"`, `"bit-rotation"`, `"bit-complement"`, `"blackscholes"`,
/// `"bodytrack"`, `"x264"`, `"idle"`) into a [`BenignWorkload`].
///
/// # Errors
///
/// Returns a [`SpecError`] listing the valid names when `name` is unknown.
pub fn parse_workload(name: &str, injection_rate: f64) -> Result<BenignWorkload, SpecError> {
    let canonical: String = name
        .to_ascii_lowercase()
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect();
    let workload = match canonical.as_str() {
        "uniform" | "uniformrandom" => {
            BenignWorkload::Synthetic(SyntheticPattern::UniformRandom, injection_rate)
        }
        "tornado" => BenignWorkload::Synthetic(SyntheticPattern::Tornado, injection_rate),
        "shuffle" => BenignWorkload::Synthetic(SyntheticPattern::Shuffle, injection_rate),
        "neighbor" | "neighbour" => {
            BenignWorkload::Synthetic(SyntheticPattern::Neighbor, injection_rate)
        }
        "bitrotation" | "rotation" => {
            BenignWorkload::Synthetic(SyntheticPattern::BitRotation, injection_rate)
        }
        "bitcomplement" | "complement" => {
            BenignWorkload::Synthetic(SyntheticPattern::BitComplement, injection_rate)
        }
        "blackscholes" => BenignWorkload::Parsec(ParsecWorkload::Blackscholes),
        "bodytrack" => BenignWorkload::Parsec(ParsecWorkload::Bodytrack),
        "x264" => BenignWorkload::Parsec(ParsecWorkload::X264),
        "idle" => BenignWorkload::Idle,
        _ => {
            return Err(SpecError::new(format!(
                "unknown workload `{name}` (expected uniform, tornado, shuffle, neighbor, \
                 bit-rotation, bit-complement, blackscholes, bodytrack, x264, idle, \
                 or the aliases stp/parsec/all)"
            )))
        }
    };
    Ok(workload)
}

/// Resolves a feature name (`"vco"` / `"boc"`) for the eval phase.
///
/// # Errors
///
/// Returns a [`SpecError`] when `name` is neither feature.
pub fn parse_feature(name: &str) -> Result<noc_monitor::FeatureKind, SpecError> {
    match name.to_ascii_lowercase().as_str() {
        "vco" => Ok(noc_monitor::FeatureKind::Vco),
        "boc" => Ok(noc_monitor::FeatureKind::Boc),
        _ => Err(SpecError::new(format!(
            "unknown feature `{name}` (expected `vco` or `boc`)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"
        name = "demo"
        [sim]
        warmup_cycles = 100
        sample_period = 200
        samples_per_run = 2
        [grid]
        mesh = [4, 8]
        fir = [0.4, 0.8]
        workloads = ["uniform", "x264"]
        attack_placements = 2
        benign_runs = 1
        seeds = [1, 2]
        [report]
        group_by = ["workload", "fir"]
    "#;

    #[test]
    fn toml_spec_parses_and_validates() {
        let spec = CampaignSpec::from_toml(SPEC).unwrap();
        assert_eq!(spec.name, "demo");
        // Legacy mesh sides normalize into the topology axis at load time.
        assert_eq!(spec.grid.topology, vec!["mesh4", "mesh8"]);
        assert!(spec.grid.mesh.is_empty());
        assert_eq!(spec.grid.seeds, vec![1, 2]);
        assert_eq!(spec.sim.sample_period, 200);
        assert!(!spec.eval.enabled);
        assert_eq!(spec.workloads().unwrap().len(), 2);
    }

    #[test]
    fn json_round_trip_preserves_the_spec() {
        let spec = CampaignSpec::from_toml(SPEC).unwrap();
        let json = serde_json::to_string(&spec).unwrap();
        let back = CampaignSpec::from_json(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn omitted_optional_fields_fall_back_to_spec_defaults() {
        // Regression: `#[serde(default)]` must pull from the struct-level
        // defaults (injection_rate 0.02), not the field type's zero value —
        // otherwise benign synthetic workloads silently inject nothing.
        let spec = CampaignSpec::from_toml(
            "name = \"defaults\"\n[grid]\nmesh = [8]\nfir = [0.8]\nworkloads = [\"uniform\"]\n",
        )
        .unwrap();
        assert_eq!(spec.grid.injection_rate, GridSpec::default().injection_rate);
        assert_eq!(spec.grid.seeds, GridSpec::default().seeds);
        assert_eq!(spec.sim, SimParams::default());
        assert_eq!(spec.eval, EvalSpec::default());
        assert!(spec.grid.injection_rate > 0.0);
        match spec.workloads().unwrap()[0] {
            noc_traffic::BenignWorkload::Synthetic(_, rate) => assert_eq!(rate, 0.02),
            ref other => panic!("expected synthetic workload, got {other:?}"),
        }
    }

    #[test]
    fn aliases_expand_to_benchmark_groups() {
        let mut spec = CampaignSpec::quick("alias");
        spec.grid.workloads = vec!["stp".into(), "parsec".into()];
        assert_eq!(spec.workloads().unwrap().len(), 9);
        spec.grid.workloads = vec!["all".into()];
        assert_eq!(spec.workloads().unwrap().len(), 9);
    }

    #[test]
    fn topology_and_attack_axes_resolve() {
        let spec = CampaignSpec::from_toml(
            "name = \"axes\"\n[grid]\ntopology = [\"torus4\", \"ring2x8\", \"mesh4x8\"]\n\
             attack = [\"fdos\", \"ddos2\", \"stealth\"]\n",
        )
        .unwrap();
        let topologies = spec.resolved_topologies().unwrap();
        assert_eq!(
            topologies.iter().map(|t| t.name()).collect::<Vec<_>>(),
            vec!["torus4", "ring2x8", "mesh4x8"]
        );
        assert_eq!(
            spec.resolved_attacks().unwrap(),
            vec![
                AttackAxis::Fdos,
                AttackAxis::Ddos { sources: 2 },
                AttackAxis::Stealth
            ]
        );
    }

    #[test]
    fn empty_axes_default_to_mesh8_fdos() {
        let spec = CampaignSpec::quick("defaults");
        let topologies = spec.resolved_topologies().unwrap();
        assert_eq!(topologies.len(), 1);
        assert_eq!(topologies[0].name(), "mesh8");
        assert_eq!(spec.resolved_attacks().unwrap(), vec![AttackAxis::Fdos]);
    }

    #[test]
    fn both_mesh_and_topology_are_refused() {
        let err = CampaignSpec::from_toml(
            "name = \"both\"\n[grid]\nmesh = [4]\ntopology = [\"torus4\"]\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn attack_axis_names_parse_and_round_trip() {
        assert_eq!(parse_attack("fdos").unwrap(), AttackAxis::Fdos);
        assert_eq!(parse_attack("stealth").unwrap(), AttackAxis::Stealth);
        assert_eq!(
            parse_attack("ddos4").unwrap(),
            AttackAxis::Ddos { sources: 4 }
        );
        assert_eq!(
            parse_attack("ddos").unwrap(),
            AttackAxis::Ddos { sources: 2 }
        );
        for axis in [
            AttackAxis::Fdos,
            AttackAxis::Ddos { sources: 3 },
            AttackAxis::Stealth,
        ] {
            assert_eq!(parse_attack(&axis.name()).unwrap(), axis);
        }
        assert!(parse_attack("ddos1").is_err());
        assert!(parse_attack("teardrop").is_err());
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let mut spec = CampaignSpec::quick("bad");
        spec.grid.fir = vec![1.5];
        assert!(spec.validate().is_err());

        let mut spec = CampaignSpec::quick("bad");
        spec.grid.topology = vec!["hypercube4".into()];
        assert!(spec.validate().is_err());

        let mut spec = CampaignSpec::quick("bad");
        spec.grid.topology = vec!["mesh1".into()];
        assert!(spec.validate().is_err(), "sub-2x2 topologies are rejected");

        let mut spec = CampaignSpec::quick("bad");
        spec.grid.attack = vec!["smurf".into()];
        assert!(spec.validate().is_err());

        let mut spec = CampaignSpec::quick("bad");
        spec.grid.workloads = vec!["warcraft".into()];
        assert!(spec.validate().is_err());

        let mut spec = CampaignSpec::quick("bad");
        spec.eval.enabled = true; // collect_samples is false
        assert!(spec.validate().is_err());

        let mut spec = CampaignSpec::quick("bad");
        spec.report.group_by = vec!["phase_of_moon".into()];
        assert!(spec.validate().is_err());

        assert!(CampaignSpec::from_toml("name = 3").is_err());
    }

    #[test]
    fn workload_names_cover_the_paper_benchmarks() {
        for name in [
            "uniform",
            "tornado",
            "shuffle",
            "neighbor",
            "bit-rotation",
            "bit-complement",
            "blackscholes",
            "bodytrack",
            "x264",
        ] {
            assert!(parse_workload(name, 0.02).is_ok(), "{name} should parse");
        }
        assert!(parse_workload("quake", 0.02).is_err());
    }
}
