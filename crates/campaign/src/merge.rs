//! Merging sharded campaign directories back into one campaign.
//!
//! [`merge`] reunites any set of campaign directories that share a spec
//! fingerprint — the shard directories written by
//! [`crate::stream::run_shard`] on different machines, a whole-campaign
//! directory, or any mix — into a fresh campaign directory whose
//! `report.json` is **byte-identical** to an uninterrupted single-machine
//! `campaign run` of the same spec.
//!
//! The merge is a two-pass stream over the inputs, so it never materializes
//! the combined result set:
//!
//! 1. **Index** — every input log is scanned record-by-record into a byte
//!    offset [`LogIndex`] (each record parsed for validation and dropped).
//!    Records for the same run index must be byte-identical — identical
//!    duplicates dedupe cleanly (first directory in argument order wins),
//!    conflicting ones abort the merge. A torn tail record in an input is
//!    tolerated exactly as [`crate::stream::resume`]'s scan tolerates its
//!    own: ignored, with its run index treated as not stored.
//! 2. **Replay** — the union is walked in run-index order; each record is
//!    re-read from its source, appended to the merged `runs.jsonl`, folded
//!    into the shared [`ReportAccumulator`], and dropped.
//!
//! Before replaying, the union must be gapless: any run index stored by no
//! input aborts the merge with the exact gap list (resume the shard that
//! owns it, then merge again). With gap re-execution enabled
//! ([`merge_with_opts`], `campaign merge --reexec-gaps`, and the
//! scheduler's final assembly), residual gaps are instead **speculatively
//! re-executed** locally — every run is deterministic from spec + index, so
//! the re-executed records are byte-identical to what a lost shard or
//! crashed worker would have produced, and the merged report still matches
//! a single-machine run exactly.

use crate::executor::Executor;
use crate::grid::{self, RunSpec};
use crate::report::{CampaignReport, ReportAccumulator};
use crate::spec::{CampaignSpec, SpecError};
use crate::spill::SampleStore;
use crate::stream::{spec_fingerprint, CampaignDir, LogIndex, RecordEntry, SpillPolicy};
use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Scratch directory (inside the merge output) where gap re-execution
/// streams its records; removed once the merged report is written.
const GAPFILL_DIR: &str = ".gapfill";

/// One opened input of a merge: its directory, record index, and (once the
/// first record is read back) an open `runs.jsonl` handle — duplicate
/// checks and the replay loop seek within it instead of reopening the file
/// per record. Lazy because a source may hold no records at all.
struct MergeSource {
    dir: CampaignDir,
    index: LogIndex,
    reader: Option<File>,
}

impl MergeSource {
    /// Reads one record's exact bytes through the cached handle.
    fn read_record(&mut self, entry: &RecordEntry) -> Result<String, SpecError> {
        if self.reader.is_none() {
            self.reader = Some(self.dir.open_runs_for_read()?);
        }
        let reader = self.reader.as_mut().expect("just opened");
        self.dir.read_record_line_at(reader, entry)
    }
}

/// Merges campaign directories sharing one spec fingerprint into a fresh
/// whole-campaign directory at `out`, returning the rebuilt report.
///
/// The merged directory holds the union of the inputs' run records in
/// run-index order plus a `report.json` byte-identical to an uninterrupted
/// single-machine run (it is itself an ordinary, resumable campaign
/// directory). Inputs are only read, never modified.
///
/// # Errors
///
/// Returns a [`SpecError`] when:
/// - `inputs` is empty, an input is not a campaign directory, or its
///   manifest is corrupt;
/// - two inputs fingerprint differently (no mixing results across specs);
/// - a run index is stored with conflicting payloads (within one input or
///   across two);
/// - the union has gaps — the error lists every missing run index;
/// - the output directory already holds a campaign, or any I/O fails.
pub fn merge(
    executor: &Executor,
    inputs: &[PathBuf],
    out: impl Into<PathBuf>,
) -> Result<CampaignReport, SpecError> {
    merge_with(executor, inputs, out, SpillPolicy::default())
}

/// [`merge`] with an explicit [`SpillPolicy`] for the report-building
/// phase of the merged directory.
///
/// # Errors
///
/// Returns a [`SpecError`] under the same conditions as [`merge`].
pub fn merge_with(
    executor: &Executor,
    inputs: &[PathBuf],
    out: impl Into<PathBuf>,
    spill: SpillPolicy,
) -> Result<CampaignReport, SpecError> {
    merge_with_opts(executor, inputs, out, spill, false)
}

/// [`merge_with`] with optional speculative gap re-execution: when
/// `reexec_gaps` is set, run indices stored by no input are re-executed
/// locally (into a scratch directory removed afterwards) instead of
/// aborting the merge — every run is deterministic from spec + index, so
/// the merged report is still byte-identical to a single-machine run.
///
/// # Errors
///
/// Returns a [`SpecError`] under the same conditions as [`merge`], except
/// that with `reexec_gaps` a gapped union re-executes instead of erroring.
pub fn merge_with_opts(
    executor: &Executor,
    inputs: &[PathBuf],
    out: impl Into<PathBuf>,
    spill: SpillPolicy,
    reexec_gaps: bool,
) -> Result<CampaignReport, SpecError> {
    let (spec, runs, sources) = index_inputs(inputs)?;
    let out_dir = CampaignDir::create(out, &spec, runs.len())?;
    let plan = MergePlan {
        out_dir: &out_dir,
        spec: &spec,
        runs: &runs,
        spill,
        reexec_gaps,
        existing_source: None,
    };
    merge_core(executor, plan, sources)
}

/// Assembles `extra_inputs` (the scheduler's worker directories) **into**
/// the existing campaign directory at `root`, which doubles as merge source
/// 0: records already in its own log are folded but not re-appended, and
/// its sample store is not self-unioned. Residual gaps re-execute when
/// `reexec_gaps` is set. On success `root` is a complete, ordinary campaign
/// directory with a `report.json` byte-identical to a single-machine run.
pub(crate) fn merge_into_existing(
    executor: &Executor,
    root: &Path,
    extra_inputs: &[PathBuf],
    spill: SpillPolicy,
    reexec_gaps: bool,
) -> Result<CampaignReport, SpecError> {
    let mut inputs: Vec<PathBuf> = Vec::with_capacity(extra_inputs.len() + 1);
    inputs.push(root.to_path_buf());
    inputs.extend(extra_inputs.iter().cloned());
    let (spec, runs, sources) = index_inputs(&inputs)?;
    let out_dir = CampaignDir::open(root)?;
    if sources[0].index.truncated_tail {
        // Heal before appending, or the first merged record would fuse into
        // the torn line.
        out_dir.truncate_runs_to(sources[0].index.valid_bytes)?;
    }
    let plan = MergePlan {
        out_dir: &out_dir,
        spec: &spec,
        runs: &runs,
        spill,
        reexec_gaps,
        existing_source: Some(0),
    };
    merge_core(executor, plan, sources)
}

/// How [`merge_core`] should treat one merge: where the union lands, and
/// whether one source *is* the output directory (its records are folded but
/// never re-appended).
struct MergePlan<'a> {
    out_dir: &'a CampaignDir,
    spec: &'a CampaignSpec,
    runs: &'a [RunSpec],
    spill: SpillPolicy,
    reexec_gaps: bool,
    existing_source: Option<usize>,
}

/// The shared merge engine: unite, optionally re-execute gaps, then replay
/// the union in run-index order — copying each record's exact bytes into
/// the merged log and folding the parsed record into the accumulator, one
/// record in memory at a time, one open handle per source.
fn merge_core(
    executor: &Executor,
    plan: MergePlan<'_>,
    mut sources: Vec<MergeSource>,
) -> Result<CampaignReport, SpecError> {
    let MergePlan {
        out_dir,
        spec,
        runs,
        spill,
        reexec_gaps,
        existing_source,
    } = plan;
    let mut slots = unite(runs, &mut sources)?;
    let gaps: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.is_none().then_some(i))
        .collect();
    let mut gapfill_root: Option<PathBuf> = None;
    if !gaps.is_empty() {
        if !reexec_gaps {
            return Err(SpecError::new(format!(
                "merge is missing {} of {} run indices: [{}]; resume the shard(s) that \
                 own them, then merge again",
                gaps.len(),
                runs.len(),
                render_indices(&gaps)
            )));
        }
        // Speculative gap re-execution: runs are deterministic from
        // spec + index, so executing the residual indices here yields the
        // exact bytes the lost shard or crashed worker would have written.
        executor
            .telemetry()
            .recorder()
            .add("merge.gap_reexec_runs", gaps.len() as u64);
        let scratch = out_dir.root().join(GAPFILL_DIR);
        let _ = std::fs::remove_dir_all(&scratch);
        let gap_dir = CampaignDir::create(&scratch, spec, runs.len())?;
        let pending: Vec<RunSpec> = gaps.iter().map(|&i| runs[i].clone()).collect();
        let mut writer = gap_dir.open_runs_for_append()?;
        crate::stream::stream_pending(executor, spec, &pending, &gap_dir, &mut writer)?;
        writer
            .flush()
            .map_err(|e| SpecError::new(format!("cannot flush gap re-execution log: {e}")))?;
        drop(writer);
        let index = gap_dir.index_log(runs)?;
        let source_id = sources.len();
        sources.push(MergeSource {
            dir: gap_dir,
            index,
            reader: None,
        });
        for &i in &gaps {
            let entry = sources[source_id].index.entries[i].ok_or_else(|| {
                SpecError::new(format!(
                    "gap re-execution produced no record for run index {i}"
                ))
            })?;
            slots[i] = Some((source_id, entry));
        }
        gapfill_root = Some(scratch);
    }
    let union: Vec<(usize, RecordEntry)> = slots
        .into_iter()
        .map(|s| s.expect("gapless after re-execution"))
        .collect();

    let fingerprint = spec_fingerprint(spec);
    let out_store = unite_sample_stores(&sources, out_dir, &fingerprint, existing_source)?;
    let mut writer = out_dir.open_runs_for_append()?;
    let mut acc = ReportAccumulator::for_spec(spec)?;
    if spec.eval.enabled {
        // The merged directory aggregates under the requested spill policy;
        // a store carried over from stripped inputs must be attached even
        // under `InMemory`, or the stripped records' samples stay invisible.
        match (spill, out_store) {
            (SpillPolicy::Threshold(threshold), store) => {
                let store = match store {
                    Some(store) => store,
                    None => SampleStore::attach(out_dir.samples_path(), &fingerprint)?,
                };
                acc = acc.with_spill(store, threshold);
            }
            (SpillPolicy::InMemory, Some(store)) => {
                acc = acc.with_spill(store, usize::MAX);
            }
            (SpillPolicy::InMemory, None) => {}
        }
    }
    for (source_id, entry) in union {
        let source = &mut sources[source_id];
        let line = source.read_record(&entry)?;
        let record = parse_record(&source.dir, &line)?;
        if existing_source != Some(source_id) {
            writer
                .write_all(line.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .map_err(|e| {
                    SpecError::new(format!(
                        "cannot append to {}: {e}",
                        out_dir.runs_path().display()
                    ))
                })?;
        }
        acc.try_fold(&record)?;
    }
    writer
        .flush()
        .map_err(|e| SpecError::new(format!("cannot flush merged run log: {e}")))?;
    drop(writer);

    let report = acc.finish(executor)?;
    out_dir.write_report(&report)?;
    if let Some(scratch) = gapfill_root {
        drop(sources);
        std::fs::remove_dir_all(&scratch).map_err(|e| {
            SpecError::new(format!(
                "cannot remove gap re-execution scratch {}: {e}",
                scratch.display()
            ))
        })?;
    }
    Ok(report)
}

/// Unions the inputs' spilled sample stores (if any) into the merged
/// directory's store, batch by batch in input order — identical duplicate
/// batches dedupe (shards re-spilled after a resume overlap), conflicting
/// ones abort. Returns `None` when no input carries a store.
fn unite_sample_stores(
    sources: &[MergeSource],
    out_dir: &CampaignDir,
    fingerprint: &str,
    existing_source: Option<usize>,
) -> Result<Option<SampleStore>, SpecError> {
    let mut out_store: Option<SampleStore> = None;
    for (source_id, source) in sources.iter().enumerate() {
        let Some(in_store) =
            SampleStore::open_existing(source.dir.samples_path(), Some(fingerprint))?
        else {
            continue;
        };
        if existing_source == Some(source_id) {
            // This source *is* the output directory: its store is already
            // the union target, so copying it onto itself is both redundant
            // and unsound (reading a store while appending to it).
            if out_store.is_none() {
                out_store = Some(SampleStore::attach(out_dir.samples_path(), fingerprint)?);
            }
            drop(in_store);
            continue;
        }
        if out_store.is_none() {
            out_store = Some(SampleStore::attach(out_dir.samples_path(), fingerprint)?);
        }
        let out = out_store.as_mut().expect("just attached");
        for mesh in in_store.meshes() {
            in_store.for_each_raw(mesh, |index, line| {
                out.append_line(mesh, index, line).map(|_| ())
            })?;
        }
    }
    Ok(out_store)
}

/// Opens every input, verifies the shared fingerprint and run-matrix size,
/// and indexes each run log.
fn index_inputs(
    inputs: &[PathBuf],
) -> Result<(CampaignSpec, Vec<RunSpec>, Vec<MergeSource>), SpecError> {
    let Some(first) = inputs.first() else {
        return Err(SpecError::new(
            "merge needs at least one campaign directory",
        ));
    };
    let first_dir = CampaignDir::open(first)?;
    let first_manifest = first_dir.manifest()?;
    let spec = first_manifest.spec.clone();
    let runs = grid::expand(&spec)?;
    if runs.len() != first_manifest.total_runs {
        return Err(SpecError::new(format!(
            "manifest of {} records {} runs but its spec expands to {}; the \
             campaign directory is corrupt",
            first_dir.root().display(),
            first_manifest.total_runs,
            runs.len()
        )));
    }

    let mut sources = Vec::with_capacity(inputs.len());
    for input in inputs {
        let dir = CampaignDir::open(input)?;
        let manifest = dir.manifest()?;
        if manifest.fingerprint != first_manifest.fingerprint {
            return Err(SpecError::new(format!(
                "spec fingerprint mismatch: {} was created from fingerprint {}, but {} \
                 holds fingerprint {}; refusing to merge results from different campaigns",
                first_dir.root().display(),
                first_manifest.fingerprint,
                dir.root().display(),
                manifest.fingerprint
            )));
        }
        let index = dir.index_log(&runs)?;
        sources.push(MergeSource {
            dir,
            index,
            reader: None,
        });
    }
    Ok((spec, runs, sources))
}

/// Unions the sources' record locations by run index: identical duplicates
/// dedupe (first source in argument order wins), conflicting duplicates
/// abort. Gaps stay `None` — the caller decides between erroring with the
/// exact list and re-executing them.
fn unite(
    runs: &[RunSpec],
    sources: &mut [MergeSource],
) -> Result<Vec<Option<(usize, RecordEntry)>>, SpecError> {
    let mut slots: Vec<Option<(usize, RecordEntry)>> = (0..runs.len()).map(|_| None).collect();
    for source_id in 0..sources.len() {
        // Snapshot the (Copy) locations so the reader handles stay free for
        // the duplicate comparisons below.
        let located: Vec<(usize, RecordEntry)> = sources[source_id]
            .index
            .entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.map(|e| (i, e)))
            .collect();
        for (run_index, entry) in located {
            match slots[run_index] {
                None => slots[run_index] = Some((source_id, entry)),
                Some((kept_id, kept_entry)) => {
                    // Cross-input duplicate: runs are deterministic, so a
                    // true re-execution is byte-identical. Compare the raw
                    // record bytes (one record from each side in memory).
                    let kept = sources[kept_id].read_record(&kept_entry)?;
                    let dup = sources[source_id].read_record(&entry)?;
                    if kept != dup {
                        return Err(SpecError::new(format!(
                            "run index {run_index} appears with conflicting payloads in {} \
                             and {}; the shards were not produced by the same campaign \
                             execution",
                            sources[kept_id].dir.root().display(),
                            sources[source_id].dir.root().display()
                        )));
                    }
                }
            }
        }
    }
    Ok(slots)
}

/// Renders a sorted index list exactly, one decimal per index.
fn render_indices(indices: &[usize]) -> String {
    indices
        .iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Parses a record line re-read during replay (the log changed underneath
/// the index if this fails).
fn parse_record(dir: &CampaignDir, line: &str) -> Result<crate::executor::RunResult, SpecError> {
    serde_json::from_str(line.trim()).map_err(|e| {
        SpecError::new(format!(
            "record in {} changed under the merge index: {e}",
            dir.runs_path().display()
        ))
    })
}
