//! Merging sharded campaign directories back into one campaign.
//!
//! [`merge`] reunites any set of campaign directories that share a spec
//! fingerprint — the shard directories written by
//! [`crate::stream::run_shard`] on different machines, a whole-campaign
//! directory, or any mix — into a fresh campaign directory whose
//! `report.json` is **byte-identical** to an uninterrupted single-machine
//! `campaign run` of the same spec.
//!
//! The merge is a two-pass stream over the inputs, so it never materializes
//! the combined result set:
//!
//! 1. **Index** — every input log is scanned record-by-record into a byte
//!    offset [`LogIndex`] (each record parsed for validation and dropped).
//!    Records for the same run index must be byte-identical — identical
//!    duplicates dedupe cleanly (first directory in argument order wins),
//!    conflicting ones abort the merge. A torn tail record in an input is
//!    tolerated exactly as [`crate::stream::resume`]'s scan tolerates its
//!    own: ignored, with its run index treated as not stored.
//! 2. **Replay** — the union is walked in run-index order; each record is
//!    re-read from its source, appended to the merged `runs.jsonl`, folded
//!    into the shared [`ReportAccumulator`], and dropped.
//!
//! Before replaying, the union must be gapless: any run index stored by no
//! input aborts the merge with the exact gap list (resume the shard that
//! owns it, then merge again).

use crate::executor::Executor;
use crate::grid::{self, RunSpec};
use crate::report::{CampaignReport, ReportAccumulator};
use crate::spec::{CampaignSpec, SpecError};
use crate::spill::SampleStore;
use crate::stream::{spec_fingerprint, CampaignDir, LogIndex, RecordEntry, SpillPolicy};
use std::fs::File;
use std::io::Write as _;
use std::path::PathBuf;

/// One opened input of a merge: its directory, record index, and (once the
/// first record is read back) an open `runs.jsonl` handle — duplicate
/// checks and the replay loop seek within it instead of reopening the file
/// per record. Lazy because a source may hold no records at all.
struct MergeSource {
    dir: CampaignDir,
    index: LogIndex,
    reader: Option<File>,
}

impl MergeSource {
    /// Reads one record's exact bytes through the cached handle.
    fn read_record(&mut self, entry: &RecordEntry) -> Result<String, SpecError> {
        if self.reader.is_none() {
            self.reader = Some(self.dir.open_runs_for_read()?);
        }
        let reader = self.reader.as_mut().expect("just opened");
        self.dir.read_record_line_at(reader, entry)
    }
}

/// Merges campaign directories sharing one spec fingerprint into a fresh
/// whole-campaign directory at `out`, returning the rebuilt report.
///
/// The merged directory holds the union of the inputs' run records in
/// run-index order plus a `report.json` byte-identical to an uninterrupted
/// single-machine run (it is itself an ordinary, resumable campaign
/// directory). Inputs are only read, never modified.
///
/// # Errors
///
/// Returns a [`SpecError`] when:
/// - `inputs` is empty, an input is not a campaign directory, or its
///   manifest is corrupt;
/// - two inputs fingerprint differently (no mixing results across specs);
/// - a run index is stored with conflicting payloads (within one input or
///   across two);
/// - the union has gaps — the error lists every missing run index;
/// - the output directory already holds a campaign, or any I/O fails.
pub fn merge(
    executor: &Executor,
    inputs: &[PathBuf],
    out: impl Into<PathBuf>,
) -> Result<CampaignReport, SpecError> {
    merge_with(executor, inputs, out, SpillPolicy::default())
}

/// [`merge`] with an explicit [`SpillPolicy`] for the report-building
/// phase of the merged directory.
///
/// # Errors
///
/// Returns a [`SpecError`] under the same conditions as [`merge`].
pub fn merge_with(
    executor: &Executor,
    inputs: &[PathBuf],
    out: impl Into<PathBuf>,
    spill: SpillPolicy,
) -> Result<CampaignReport, SpecError> {
    let (spec, runs, mut sources) = index_inputs(inputs)?;
    let union = unite(&runs, &mut sources)?;

    // Replay the union in run-index order: copy each record's exact bytes
    // into the merged log and fold the parsed record into the accumulator —
    // one record in memory at a time, one open handle per source.
    let out_dir = CampaignDir::create(out, &spec, runs.len())?;
    let fingerprint = spec_fingerprint(&spec);
    let out_store = unite_sample_stores(&sources, &out_dir, &fingerprint)?;
    let mut writer = out_dir.open_runs_for_append()?;
    let mut acc = ReportAccumulator::for_spec(&spec)?;
    if spec.eval.enabled {
        // The merged directory aggregates under the requested spill policy;
        // a store carried over from stripped inputs must be attached even
        // under `InMemory`, or the stripped records' samples stay invisible.
        match (spill, out_store) {
            (SpillPolicy::Threshold(threshold), store) => {
                let store = match store {
                    Some(store) => store,
                    None => SampleStore::attach(out_dir.samples_path(), &fingerprint)?,
                };
                acc = acc.with_spill(store, threshold);
            }
            (SpillPolicy::InMemory, Some(store)) => {
                acc = acc.with_spill(store, usize::MAX);
            }
            (SpillPolicy::InMemory, None) => {}
        }
    }
    for (source_id, entry) in union {
        let source = &mut sources[source_id];
        let line = source.read_record(&entry)?;
        let record = parse_record(&source.dir, &line)?;
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .map_err(|e| {
                SpecError::new(format!(
                    "cannot append to {}: {e}",
                    out_dir.runs_path().display()
                ))
            })?;
        acc.try_fold(&record)?;
    }
    writer
        .flush()
        .map_err(|e| SpecError::new(format!("cannot flush merged run log: {e}")))?;
    drop(writer);

    let report = acc.finish(executor)?;
    out_dir.write_report(&report)?;
    Ok(report)
}

/// Unions the inputs' spilled sample stores (if any) into the merged
/// directory's store, batch by batch in input order — identical duplicate
/// batches dedupe (shards re-spilled after a resume overlap), conflicting
/// ones abort. Returns `None` when no input carries a store.
fn unite_sample_stores(
    sources: &[MergeSource],
    out_dir: &CampaignDir,
    fingerprint: &str,
) -> Result<Option<SampleStore>, SpecError> {
    let mut out_store: Option<SampleStore> = None;
    for source in sources {
        let Some(in_store) =
            SampleStore::open_existing(source.dir.samples_path(), Some(fingerprint))?
        else {
            continue;
        };
        if out_store.is_none() {
            out_store = Some(SampleStore::attach(out_dir.samples_path(), fingerprint)?);
        }
        let out = out_store.as_mut().expect("just attached");
        for mesh in in_store.meshes() {
            in_store.for_each_raw(mesh, |index, line| {
                out.append_line(mesh, index, line).map(|_| ())
            })?;
        }
    }
    Ok(out_store)
}

/// Opens every input, verifies the shared fingerprint and run-matrix size,
/// and indexes each run log.
fn index_inputs(
    inputs: &[PathBuf],
) -> Result<(CampaignSpec, Vec<RunSpec>, Vec<MergeSource>), SpecError> {
    let Some(first) = inputs.first() else {
        return Err(SpecError::new(
            "merge needs at least one campaign directory",
        ));
    };
    let first_dir = CampaignDir::open(first)?;
    let first_manifest = first_dir.manifest()?;
    let spec = first_manifest.spec.clone();
    let runs = grid::expand(&spec)?;
    if runs.len() != first_manifest.total_runs {
        return Err(SpecError::new(format!(
            "manifest of {} records {} runs but its spec expands to {}; the \
             campaign directory is corrupt",
            first_dir.root().display(),
            first_manifest.total_runs,
            runs.len()
        )));
    }

    let mut sources = Vec::with_capacity(inputs.len());
    for input in inputs {
        let dir = CampaignDir::open(input)?;
        let manifest = dir.manifest()?;
        if manifest.fingerprint != first_manifest.fingerprint {
            return Err(SpecError::new(format!(
                "spec fingerprint mismatch: {} was created from fingerprint {}, but {} \
                 holds fingerprint {}; refusing to merge results from different campaigns",
                first_dir.root().display(),
                first_manifest.fingerprint,
                dir.root().display(),
                manifest.fingerprint
            )));
        }
        let index = dir.index_log(&runs)?;
        sources.push(MergeSource {
            dir,
            index,
            reader: None,
        });
    }
    Ok((spec, runs, sources))
}

/// Unions the sources' record locations by run index: identical duplicates
/// dedupe (first source in argument order wins), conflicting duplicates and
/// gaps abort.
fn unite(
    runs: &[RunSpec],
    sources: &mut [MergeSource],
) -> Result<Vec<(usize, RecordEntry)>, SpecError> {
    let mut slots: Vec<Option<(usize, RecordEntry)>> = (0..runs.len()).map(|_| None).collect();
    for source_id in 0..sources.len() {
        // Snapshot the (Copy) locations so the reader handles stay free for
        // the duplicate comparisons below.
        let located: Vec<(usize, RecordEntry)> = sources[source_id]
            .index
            .entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.map(|e| (i, e)))
            .collect();
        for (run_index, entry) in located {
            match slots[run_index] {
                None => slots[run_index] = Some((source_id, entry)),
                Some((kept_id, kept_entry)) => {
                    // Cross-input duplicate: runs are deterministic, so a
                    // true re-execution is byte-identical. Compare the raw
                    // record bytes (one record from each side in memory).
                    let kept = sources[kept_id].read_record(&kept_entry)?;
                    let dup = sources[source_id].read_record(&entry)?;
                    if kept != dup {
                        return Err(SpecError::new(format!(
                            "run index {run_index} appears with conflicting payloads in {} \
                             and {}; the shards were not produced by the same campaign \
                             execution",
                            sources[kept_id].dir.root().display(),
                            sources[source_id].dir.root().display()
                        )));
                    }
                }
            }
        }
    }
    let gaps: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.is_none().then_some(i))
        .collect();
    if !gaps.is_empty() {
        return Err(SpecError::new(format!(
            "merge is missing {} of {} run indices: [{}]; resume the shard(s) that \
             own them, then merge again",
            gaps.len(),
            runs.len(),
            render_indices(&gaps)
        )));
    }
    Ok(slots.into_iter().map(|s| s.expect("gapless")).collect())
}

/// Renders a sorted index list exactly, one decimal per index.
fn render_indices(indices: &[usize]) -> String {
    indices
        .iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Parses a record line re-read during replay (the log changed underneath
/// the index if this fails).
fn parse_record(dir: &CampaignDir, line: &str) -> Result<crate::executor::RunResult, SpecError> {
    serde_json::from_str(line.trim()).map_err(|e| {
        SpecError::new(format!(
            "record in {} changed under the merge index: {e}",
            dir.runs_path().display()
        ))
    })
}
