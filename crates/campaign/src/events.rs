//! Reading and summarizing a campaign's telemetry event log.
//!
//! A campaign executed with telemetry enabled streams index-tagged JSONL
//! events (spans, counter deltas, histogram deltas — see
//! [`dl2fence_telemetry`]) into `events.jsonl` next to `runs.jsonl`. This
//! module is the read side: [`read_events`] loads the log through the same
//! torn-tail-tolerant scanner as the run log (a torn final line is the
//! shape of an in-flight append, not corruption), and [`summarize`] folds
//! the events into a [`TimingSummary`] — per-stage latency histograms
//! (p50/p90/p99/max), per-worker utilization and counter totals — which is
//! what `campaign watch` renders live and `campaign report --timings`
//! emits as the benchmark baseline schema.

use crate::spec::SpecError;
use crate::stream::scan_jsonl;
use dl2fence_telemetry::{Event, EventData, Histogram};
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::path::Path;

/// Schema tag stamped into every [`TimingSummary`] so committed baselines
/// (`BENCH_campaign.json`) are self-describing. Defined once in
/// [`dl2fence_telemetry::schema`] alongside every other artifact schema.
pub use dl2fence_telemetry::schema::TIMINGS_SCHEMA;

/// A loaded telemetry event log.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    /// Every whole event, in file order.
    pub events: Vec<Event>,
    /// Whether the log ended in a torn (in-flight or crash-truncated) line.
    pub truncated_tail: bool,
}

/// Reads `events.jsonl` at `path`. A missing file yields an empty log (a
/// campaign run without telemetry has no events — that is not an error);
/// a torn final line is tolerated and flagged, mid-file garbage is not.
///
/// # Errors
///
/// Returns a [`SpecError`] if the log holds an unparseable line that is
/// *not* the final one, or on any I/O failure other than the file missing.
pub fn read_events(path: &Path) -> Result<EventLog, SpecError> {
    let file = match File::open(path) {
        Ok(file) => file,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(EventLog::default()),
        Err(e) => {
            return Err(SpecError::new(format!(
                "cannot open event log {}: {e}",
                path.display()
            )))
        }
    };
    let mut events = Vec::new();
    let scan = scan_jsonl(file, path, "event log", |_, _, line| {
        match Event::parse(line) {
            Ok(event) => {
                events.push(event);
                Ok(None)
            }
            Err(e) => Ok(Some(e.0)),
        }
    })?;
    Ok(EventLog {
        events,
        truncated_tail: scan.truncated_tail,
    })
}

/// One named stage's aggregated timing distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Stage name (`stage.detect`, `run`, `nn.detector.fwd.0.Conv2d`, ...).
    pub name: String,
    /// Observations aggregated into the distribution.
    pub count: u64,
    /// Mean duration, microseconds.
    pub mean_us: u64,
    /// Median duration, microseconds.
    pub p50_us: u64,
    /// 90th-percentile duration, microseconds.
    pub p90_us: u64,
    /// 99th-percentile duration, microseconds.
    pub p99_us: u64,
    /// Largest observed duration, microseconds.
    pub max_us: u64,
}

/// One worker thread's aggregated busy time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerUtilization {
    /// The worker's pool ordinal.
    pub worker: u64,
    /// Jobs the worker completed.
    pub jobs: u64,
    /// Total busy time, microseconds.
    pub busy_us: u64,
    /// `busy_us` over the log's wall-clock extent, in `[0, 1]`.
    pub utilization: f64,
}

/// One counter's summed total.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterTotal {
    /// Counter name.
    pub name: String,
    /// Sum of every recorded delta.
    pub total: u64,
}

/// One recording session's extent within a (possibly resume-appended)
/// event log.
///
/// Every process that appends to `events.jsonl` restarts its telemetry
/// epoch, so `t_us` drops back near zero at each resume while `seq` keeps
/// climbing. [`segment_sessions`] detects those resets and splits the log,
/// so wall-clock arithmetic never mixes epochs.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SessionSummary {
    /// Whole events recorded in the session.
    pub events: usize,
    /// The session's wall-clock extent: its largest event end time,
    /// microseconds since that process's telemetry epoch.
    pub wall_us: u64,
    /// `run` spans observed in the session (completed campaign runs).
    pub runs: u64,
}

/// The aggregate view over one telemetry event log: what `campaign watch`
/// renders and `campaign report --timings` emits.
///
/// Stages merge both sources of duration data — explicit `hist` delta
/// events and individual `span` events — bucket-exactly, so a stage timed
/// via [`dl2fence_telemetry::Recorder::time`] and one timed via spans land
/// in the same table. Stages, workers and counters are sorted by name /
/// ordinal for deterministic output.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TimingSummary {
    /// Schema tag ([`TIMINGS_SCHEMA`]).
    pub schema: String,
    /// Whole events aggregated.
    pub events: usize,
    /// Whether the log ended in a torn line (campaign still writing).
    pub truncated_tail: bool,
    /// The log's wall-clock extent: the per-session wall clocks
    /// ([`SessionSummary::wall_us`]) **summed**, so a resume-appended log
    /// measures actual recording time, not one epoch polluted by another.
    pub wall_us: u64,
    /// The recording sessions the log splits into, in file order — one per
    /// process that appended to it (a never-resumed log has exactly one).
    #[serde(default)]
    pub sessions: Vec<SessionSummary>,
    /// Per-stage latency distributions, sorted by name.
    pub stages: Vec<StageTiming>,
    /// Per-worker busy time, sorted by ordinal. Only workers that recorded
    /// `worker.busy_us` / `worker.jobs` counters appear.
    pub workers: Vec<WorkerUtilization>,
    /// Counter totals, sorted by name (`worker.*` counters are folded into
    /// [`Self::workers`] instead).
    pub counters: Vec<CounterTotal>,
}

impl TimingSummary {
    /// Serializes the summary as pretty JSON — the `campaign report
    /// --timings` output and the committed `BENCH_campaign.json` schema.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("timing serialization cannot fail")
    }

    /// Parses a summary back from [`Self::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] on malformed JSON.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        serde_json::from_str(text).map_err(|e| SpecError::new(format!("invalid timings: {e}")))
    }

    /// The named stage, if present.
    pub fn stage(&self, name: &str) -> Option<&StageTiming> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// The named counter total (zero if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.total)
            .unwrap_or(0)
    }
}

/// The end time of one event on its own session's clock: a span covers
/// `[t_us, t_us + dur_us]`, every other payload is a point.
fn event_end_us(event: &Event) -> u64 {
    match &event.data {
        EventData::Span { dur_us, .. } => event.t_us.saturating_add(*dur_us),
        _ => event.t_us,
    }
}

/// Splits a (possibly resume-appended) event log into recording sessions.
///
/// Each process that appends to `events.jsonl` restarts `t_us` at its own
/// telemetry epoch, so naive `max(t_us + dur)` arithmetic mixes epochs.
/// Within one session, file order is near-monotone in event **end** time
/// (spans are recorded when they close, counters and histograms when they
/// flush), so a session boundary shows up as an end time collapsing far
/// below the running wall clock. The split fires when an event ends below
/// half the current session's wall *and* more than a second under it — the
/// absolute floor keeps late-flushed batches from early in a session (which
/// legitimately carry small end times) from fabricating a boundary.
/// Sessions shorter than the floor can therefore still conflate; their
/// wall-clock error is bounded by the floor itself.
pub fn segment_sessions(events: &[Event]) -> Vec<SessionSummary> {
    /// Minimum absolute collapse (µs) treated as a session reset.
    const SESSION_RESET_FLOOR_US: u64 = 1_000_000;
    let mut sessions = Vec::new();
    let mut cur = SessionSummary::default();
    for event in events {
        let end_us = event_end_us(event);
        if cur.events > 0
            && end_us < cur.wall_us / 2
            && cur.wall_us - end_us > SESSION_RESET_FLOOR_US
        {
            sessions.push(std::mem::take(&mut cur));
        }
        cur.events += 1;
        cur.wall_us = cur.wall_us.max(end_us);
        if let EventData::Span { name, .. } = &event.data {
            if name == "run" {
                cur.runs += 1;
            }
        }
    }
    if cur.events > 0 {
        sessions.push(cur);
    }
    sessions
}

/// Folds an event log into its [`TimingSummary`].
pub fn summarize(log: &EventLog) -> TimingSummary {
    let mut stages: Vec<(String, Histogram)> = Vec::new();
    let mut counters: Vec<(String, u64)> = Vec::new();
    let mut workers: Vec<(u64, u64, u64)> = Vec::new(); // (ordinal, jobs, busy_us)
    let sessions = segment_sessions(&log.events);
    let wall_us: u64 = sessions.iter().map(|s| s.wall_us).sum();
    for event in &log.events {
        match &event.data {
            EventData::Span { name, dur_us, .. } => {
                stage_mut(&mut stages, name).record_us(*dur_us);
            }
            EventData::Hist { name, .. } => {
                if let Some(hist) = event.as_histogram() {
                    stage_mut(&mut stages, name).merge(&hist);
                }
            }
            EventData::Counter { name, delta, index } => match (name.as_str(), index) {
                ("worker.jobs", Some(w)) => worker_mut(&mut workers, *w).1 += delta,
                ("worker.busy_us", Some(w)) => worker_mut(&mut workers, *w).2 += delta,
                _ => match counters.iter_mut().find(|(n, _)| n == name) {
                    Some((_, total)) => *total += delta,
                    None => counters.push((name.clone(), *delta)),
                },
            },
        }
    }
    let mut stages: Vec<StageTiming> = stages
        .into_iter()
        .map(|(name, hist)| StageTiming {
            name,
            count: hist.count(),
            mean_us: hist.mean_us(),
            p50_us: hist.p50_us(),
            p90_us: hist.p90_us(),
            p99_us: hist.p99_us(),
            max_us: hist.max_us(),
        })
        .collect();
    stages.sort_by(|a, b| a.name.cmp(&b.name));
    let mut workers: Vec<WorkerUtilization> = workers
        .into_iter()
        .map(|(worker, jobs, busy_us)| WorkerUtilization {
            worker,
            jobs,
            busy_us,
            utilization: if wall_us > 0 {
                let utilization = busy_us as f64 / wall_us as f64;
                // With per-session walls summed, busy time can no longer
                // exceed recorded wall time; >1 means session segmentation
                // failed (e.g. sub-second sessions conflated), which the old
                // `.min(1.0)` clamp used to paper over.
                debug_assert!(
                    utilization <= 1.0 + 1e-6,
                    "worker {worker} busy {busy_us}µs exceeds the summed session \
                     wall {wall_us}µs"
                );
                utilization
            } else {
                0.0
            },
        })
        .collect();
    workers.sort_by_key(|w| w.worker);
    let mut counters: Vec<CounterTotal> = counters
        .into_iter()
        .map(|(name, total)| CounterTotal { name, total })
        .collect();
    counters.sort_by(|a, b| a.name.cmp(&b.name));
    TimingSummary {
        schema: TIMINGS_SCHEMA.to_string(),
        events: log.events.len(),
        truncated_tail: log.truncated_tail,
        wall_us,
        sessions,
        stages,
        workers,
        counters,
    }
}

/// [`read_events`] + [`summarize`] in one call.
///
/// # Errors
///
/// Returns a [`SpecError`] under the same conditions as [`read_events`].
pub fn summarize_events(path: &Path) -> Result<TimingSummary, SpecError> {
    Ok(summarize(&read_events(path)?))
}

fn stage_mut<'a>(stages: &'a mut Vec<(String, Histogram)>, name: &str) -> &'a mut Histogram {
    if let Some(i) = stages.iter().position(|(n, _)| n == name) {
        return &mut stages[i].1;
    }
    stages.push((name.to_string(), Histogram::new()));
    &mut stages.last_mut().expect("just pushed").1
}

fn worker_mut(workers: &mut Vec<(u64, u64, u64)>, ordinal: u64) -> &mut (u64, u64, u64) {
    if let Some(i) = workers.iter().position(|(w, _, _)| *w == ordinal) {
        return &mut workers[i];
    }
    workers.push((ordinal, 0, 0));
    workers.last_mut().expect("just pushed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl2fence_telemetry::{MemorySink, Telemetry};
    use std::sync::Arc;

    fn write_log(dir: &Path, lines: &[&str]) -> std::path::PathBuf {
        let path = dir.join("events.jsonl");
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        path
    }

    fn events_from_recorder(f: impl FnOnce(&dl2fence_telemetry::Recorder)) -> Vec<Event> {
        let sink = Arc::new(MemorySink::new());
        let telemetry = Telemetry::with_sink(sink.clone());
        let rec = telemetry.recorder();
        f(&rec);
        drop(rec);
        sink.take()
    }

    #[test]
    fn missing_log_is_empty_not_an_error() {
        let dir = std::env::temp_dir().join("dl2fence-events-missing");
        let log = read_events(&dir.join("nope.jsonl")).unwrap();
        assert!(log.events.is_empty());
        assert!(!log.truncated_tail);
        let summary = summarize(&log);
        assert_eq!(summary.events, 0);
        assert!(summary.stages.is_empty());
    }

    #[test]
    fn torn_tail_is_tolerated_mid_file_garbage_is_not() {
        let dir = std::env::temp_dir().join("dl2fence-events-torn");
        std::fs::create_dir_all(&dir).unwrap();
        let events = events_from_recorder(|rec| {
            rec.time("stage.detect", || {
                std::thread::sleep(std::time::Duration::from_micros(50))
            });
            rec.add("runs", 2);
        });
        let mut lines: Vec<String> = events.iter().map(|e| e.emit()).collect();
        assert!(lines.len() >= 2, "expected hist + counter deltas");
        let whole = lines.clone();
        lines.push("{\"seq\":99,\"t_us\":1,\"wor".to_string()); // torn tail
        let path = write_log(&dir, &lines.iter().map(String::as_str).collect::<Vec<_>>());
        let log = read_events(&path).unwrap();
        assert_eq!(log.events.len(), whole.len());
        assert!(log.truncated_tail);

        let mut bad = whole.clone();
        bad.insert(0, "not json".to_string());
        let path = write_log(&dir, &bad.iter().map(String::as_str).collect::<Vec<_>>());
        assert!(read_events(&path).is_err(), "mid-file garbage must error");
    }

    fn span(seq: u64, t_us: u64, name: &str, dur_us: u64) -> Event {
        Event {
            seq,
            t_us,
            worker: 0,
            data: EventData::Span {
                name: name.to_string(),
                dur_us,
                parent: None,
                index: None,
            },
        }
    }

    fn counter(seq: u64, t_us: u64, name: &str, delta: u64, index: Option<u64>) -> Event {
        Event {
            seq,
            t_us,
            worker: 0,
            data: EventData::Counter {
                name: name.to_string(),
                delta,
                index,
            },
        }
    }

    #[test]
    fn summary_merges_spans_hists_and_worker_counters() {
        // A time-consistent synthetic session: 10ms of wall clock, with the
        // worker counters well inside it (the utilization debug assertion
        // rejects busy time exceeding recorded wall time).
        let mut events = vec![span(0, 0, "campaign.execute", 10_000)];
        for (i, mut event) in events_from_recorder(|rec| {
            rec.record_us("stage.detect", 100);
            rec.record_us("stage.detect", 300);
        })
        .into_iter()
        .enumerate()
        {
            event.seq = 1 + i as u64;
            event.t_us = 5_000;
            events.push(event);
        }
        events.push(counter(10, 9_000, "worker.jobs", 3, Some(0)));
        events.push(counter(11, 9_000, "worker.busy_us", 900, Some(0)));
        events.push(counter(12, 9_000, "worker.jobs", 2, Some(1)));
        events.push(counter(13, 9_000, "worker.busy_us", 500, Some(1)));
        events.push(counter(14, 9_000, "executor.worker_panics", 1, None));
        let summary = summarize(&EventLog {
            events,
            truncated_tail: false,
        });
        let detect = summary.stage("stage.detect").unwrap();
        assert_eq!(detect.count, 2);
        assert!(detect.max_us >= 256, "300µs lands in the [256,512) bucket");
        assert!(summary.stage("campaign.execute").is_some());
        assert_eq!(summary.wall_us, 10_000);
        assert_eq!(summary.sessions.len(), 1);
        assert_eq!(summary.workers.len(), 2);
        assert_eq!(summary.workers[0].worker, 0);
        assert_eq!(summary.workers[0].jobs, 3);
        assert_eq!(summary.workers[0].busy_us, 900);
        assert!((summary.workers[0].utilization - 0.09).abs() < 1e-9);
        assert_eq!(summary.workers[1].jobs, 2);
        assert_eq!(summary.counter("executor.worker_panics"), 1);
        assert!(
            summary
                .counters
                .iter()
                .all(|c| !c.name.starts_with("worker.")),
            "worker counters fold into the workers table"
        );
        // Deterministic ordering and a lossless JSON round trip.
        let parsed = TimingSummary::from_json(&summary.to_json()).unwrap();
        assert_eq!(parsed, summary);
        assert_eq!(parsed.schema, TIMINGS_SCHEMA);
    }

    #[test]
    fn resume_appended_logs_split_into_sessions_and_walls_sum() {
        // Session 1: 5s of recording, worker 0 busy 4s. Session 2 appends
        // after a resume — its epoch restarts near zero — 3s of recording,
        // busy another 2.5s. The old `max(t_us + dur)` arithmetic kept
        // wall at 5s and yielded busy/wall = 6.5/5 = 1.3, silently clamped
        // to 1.0.
        let events = vec![
            span(0, 0, "run", 2_000_000),
            span(1, 2_000_000, "run", 3_000_000),
            // A late-flushed batch carrying early end times must NOT split
            // a session (the gap exceeds 1s but not half the wall... it is
            // above wall/2): end 4s > 5s/2.
            counter(2, 4_000_000, "log.appends", 2, None),
            counter(3, 5_000_000, "worker.busy_us", 4_000_000, Some(0)),
            counter(4, 5_000_000, "worker.jobs", 2, Some(0)),
            // Resume: t_us collapses far below the running wall.
            span(5, 1_000, "run", 1_500_000),
            counter(6, 3_000_000, "worker.busy_us", 2_500_000, Some(0)),
            counter(7, 3_000_000, "worker.jobs", 1, Some(0)),
        ];
        let summary = summarize(&EventLog {
            events,
            truncated_tail: false,
        });
        assert_eq!(summary.sessions.len(), 2, "one session per process");
        assert_eq!(summary.sessions[0].wall_us, 5_000_000);
        assert_eq!(summary.sessions[0].runs, 2);
        assert_eq!(summary.sessions[1].wall_us, 3_000_000);
        assert_eq!(summary.sessions[1].runs, 1);
        assert_eq!(summary.wall_us, 8_000_000, "session walls sum");
        let worker = &summary.workers[0];
        assert_eq!(worker.busy_us, 6_500_000);
        assert!(
            worker.utilization <= 1.0,
            "busy time cannot exceed summed recorded wall time"
        );
        assert!((worker.utilization - 6.5 / 8.0).abs() < 1e-9);
        // `sessions` survives the JSON round trip (and old baselines
        // without the field still parse — it defaults empty).
        let parsed = TimingSummary::from_json(&summary.to_json()).unwrap();
        assert_eq!(parsed.sessions, summary.sessions);
        let legacy = TimingSummary::from_json(
            "{\"schema\":\"dl2fence-campaign/timings/v1\",\"events\":0,\
             \"truncated_tail\":false,\"wall_us\":0,\"stages\":[],\
             \"workers\":[],\"counters\":[]}",
        )
        .unwrap();
        assert!(legacy.sessions.is_empty(), "pre-sessions baselines parse");
    }
}
