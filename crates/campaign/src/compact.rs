//! Log compaction: `campaign compact <dir>`.
//!
//! A long-lived campaign directory accretes weight the streaming layer
//! never cleans up: records land in completion order (not index order),
//! resume cycles can leave identical duplicate records, a crash can leave a
//! torn tail, and — for sample-heavy eval campaigns — every record drags
//! its full labeled-sample payload along. [`compact`] rewrites `runs.jsonl`
//! **atomically** (temp file + rename, so a crash mid-compaction leaves the
//! original log untouched) into index-ordered, deduplicated, torn-tail-free
//! form, and can optionally move the sample payloads into the directory's
//! [`crate::spill::SampleStore`] first (`--strip-samples`), shrinking the
//! log to its scalar skeleton.
//!
//! The compacted directory stays an ordinary campaign (or shard) directory:
//! resumable — missing indices are re-executed and appended exactly as
//! before, and a stripped directory's report rebuild finds the stripped
//! records' samples in the store by run index — and mergeable, because
//! [`crate::merge::merge`] unions sample stores alongside run logs. (Only
//! mixing a stripped and an unstripped copy of the *same* record trips the
//! merge's byte-level conflict check: strip duplicates consistently.)

use crate::grid;
use crate::spec::SpecError;
use crate::spill::SampleStore;
use crate::stream::{spec_fingerprint, CampaignDir};
use std::io::Write as _;

/// What one [`compact`] pass did, for logging and assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactStats {
    /// Whole records kept (one per stored run index).
    pub records: usize,
    /// Identical duplicate records dropped.
    pub dropped_duplicates: usize,
    /// Whether a torn tail record was dropped.
    pub healed_torn_tail: bool,
    /// Labeled samples moved into the sample store (`strip_samples` only).
    pub stripped_samples: usize,
    /// Log size before compaction, bytes.
    pub bytes_before: u64,
    /// Log size after compaction, bytes.
    pub bytes_after: u64,
}

/// Compacts the campaign (or shard) directory at `root`: rewrites
/// `runs.jsonl` in run-index order with duplicates and any torn tail
/// dropped, atomically. With `strip_samples`, each record's labeled-sample
/// payload is first appended to the directory's sample store (synced to
/// stable storage before the log is swapped, so a crash can never lose
/// samples) and the rewritten record keeps an empty `samples` array.
///
/// Do **not** compact a directory whose campaign is still executing: the
/// rewrite snapshots the log and renames over it, so records a live writer
/// appends after the snapshot land on the replaced (unlinked) file and are
/// lost. Stop the campaign (or wait for it), compact, then resume —
/// `campaign status` is the tool that is safe against a live writer.
///
/// # Errors
///
/// Returns a [`SpecError`] if `root` is not a campaign directory, the log
/// holds conflicting duplicates or mid-file corruption, or any I/O fails.
pub fn compact(
    root: impl AsRef<std::path::Path>,
    strip_samples: bool,
) -> Result<CompactStats, SpecError> {
    let dir = CampaignDir::open(root.as_ref())?;
    let manifest = dir.manifest()?;
    let runs = grid::expand(&manifest.spec)?;
    if runs.len() != manifest.total_runs {
        return Err(SpecError::new(format!(
            "manifest records {} runs but the spec expands to {}; the campaign \
             directory is corrupt",
            manifest.total_runs,
            runs.len()
        )));
    }
    let index = dir.index_log(&runs)?;
    let bytes_before = std::fs::metadata(dir.runs_path())
        .map(|m| m.len())
        .unwrap_or(0);

    let mut store = if strip_samples {
        Some(SampleStore::attach(
            dir.samples_path(),
            &spec_fingerprint(&manifest.spec),
        )?)
    } else {
        None
    };

    // Stream the kept records into the replacement log in index order; the
    // original file stays valid until the final rename.
    let tmp_path = dir.root().join(".runs.jsonl.tmp");
    let tmp = std::fs::File::create(&tmp_path)
        .map_err(|e| SpecError::new(format!("cannot write {}: {e}", tmp_path.display())))?;
    let mut writer = std::io::BufWriter::new(tmp);
    let mut stripped_samples = 0usize;
    let mut records = 0usize;
    let write_error =
        |e: std::io::Error| SpecError::new(format!("cannot write {}: {e}", tmp_path.display()));
    dir.try_replay(&index, |mut record| {
        records += 1;
        if let Some(store) = &mut store {
            if !record.samples.is_empty() {
                let samples = record.take_samples();
                stripped_samples += samples.len();
                store.append_batch(record.spec.mesh, record.spec.index, samples)?;
            }
        }
        // Re-encoding a parsed record is byte-idempotent (a proptest pins
        // it), so unstripped records come out exactly as they went in.
        let line = serde_json::to_string(&record).expect("run serialization cannot fail");
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .map_err(write_error)?;
        Ok(())
    })?;
    // Samples become durable strictly before the stripped log replaces the
    // full one — a power loss can never leave scalar-only records whose
    // samples exist nowhere.
    if let Some(store) = &mut store {
        store.sync_all()?;
    }
    writer
        .into_inner()
        .map_err(|e| SpecError::new(format!("cannot flush {}: {e}", tmp_path.display())))?
        .sync_all()
        .map_err(|e| SpecError::new(format!("cannot sync {}: {e}", tmp_path.display())))?;
    std::fs::rename(&tmp_path, dir.runs_path()).map_err(|e| {
        SpecError::new(format!(
            "cannot finalize {}: {e}",
            dir.runs_path().display()
        ))
    })?;

    let bytes_after = std::fs::metadata(dir.runs_path())
        .map(|m| m.len())
        .map_err(|e| SpecError::new(format!("cannot stat {}: {e}", dir.runs_path().display())))?;
    Ok(CompactStats {
        records,
        dropped_duplicates: index.duplicate_records,
        healed_torn_tail: index.truncated_tail,
        stripped_samples,
        bytes_before,
        bytes_after,
    })
}
