//! Regression suite for `campaign watch` edge cases.
//!
//! Two degenerate-but-legal directory shapes used to render garbage:
//!
//! 1. **Empty grid** — a spec whose grid expands to zero runs (no FIR
//!    points and no benign runs). `completed / owned_runs` is `0 / 0`;
//!    the snapshot must report a defined, finite progress instead of NaN.
//! 2. **Unflushed telemetry** — `events.jsonl` exists but no flushed event
//!    has advanced the wall clock (`wall_us == 0`, the moment between
//!    file creation and the first batch flush). `completed / wall` is
//!    `n / 0`; the snapshot must stay in a "warming up" state instead of
//!    reporting `inf` runs/s and a `0.0s` ETA.

use dl2fence_campaign::{run_streaming, CampaignSpec, Executor, WatchSnapshot, EVENTS_FILE};
use dl2fence_telemetry::{Event, EventData};
use std::path::PathBuf;

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("dl2fence-watch-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    root
}

fn tiny_spec(name: &str) -> CampaignSpec {
    let mut spec = CampaignSpec::quick(name);
    spec.sim.warmup_cycles = 100;
    spec.sim.sample_period = 200;
    spec.sim.samples_per_run = 1;
    spec.grid.mesh = vec![4];
    spec.grid.fir = vec![0.8];
    spec.grid.workloads = vec!["uniform".to_string()];
    spec.grid.attack_placements = 1;
    spec.grid.benign_runs = 1;
    spec
}

/// A grid with no FIR points and no benign runs is valid and expands to
/// zero runs. Watching its directory must render finite, defined output:
/// progress 1.0 (vacuously complete), never NaN.
#[test]
fn empty_grid_dir_renders_finite_progress() {
    let mut spec = tiny_spec("watch-empty-grid");
    spec.grid.fir = vec![];
    spec.grid.benign_runs = 0;
    let root = temp_root("empty-grid");
    let report = run_streaming(&Executor::new(1), &spec, &root).unwrap();
    assert_eq!(report.total_runs, 0, "the grid must expand to zero runs");

    let snapshot = WatchSnapshot::capture(&root).unwrap();
    assert_eq!(snapshot.dir.owned_runs, 0);
    assert!(
        snapshot.progress.is_finite(),
        "0/0 runs must not be NaN: {}",
        snapshot.progress
    );
    assert_eq!(snapshot.progress, 1.0, "zero owned runs is vacuously done");
    assert!(snapshot.complete());
    assert!(snapshot.runs_per_sec.is_none());
    assert!(snapshot.eta_secs.is_none());

    let screen = snapshot.render();
    assert!(screen.contains("0/0 runs (100%)"), "screen:\n{screen}");
    assert!(screen.contains("zero runs"), "screen:\n{screen}");
    assert!(!screen.contains("NaN"), "screen:\n{screen}");
    assert!(!screen.contains("inf"), "screen:\n{screen}");
    // The JSON snapshot must stay machine-parseable (NaN is not JSON).
    assert!(!snapshot.to_json().contains("NaN"));
    let _ = std::fs::remove_dir_all(&root);
}

/// A directory with completed runs and an event log whose events are all
/// still at `t_us == 0` (first batch not yet flushed / clock not yet
/// advanced) must report "warming up" — `runs_per_sec = None` — instead of
/// dividing by a zero wall clock into `inf` runs/s and a `0.0s` ETA.
#[test]
fn unflushed_telemetry_renders_warming_up_not_inf() {
    let spec = tiny_spec("watch-warmup");
    let root = temp_root("warmup");
    let report = run_streaming(&Executor::new(1), &spec, &root).unwrap();
    assert_eq!(report.total_runs, 2, "attack + benign run expected");

    // Truncate the run log to one record so the campaign looks mid-flight
    // (completed > 0, missing non-empty — the shape where an ETA would be
    // shown), then plant an event log whose wall clock has not advanced.
    let runs_path = root.join("runs.jsonl");
    let log = std::fs::read_to_string(&runs_path).unwrap();
    let first_line = log.lines().next().unwrap();
    std::fs::write(&runs_path, format!("{first_line}\n")).unwrap();
    std::fs::remove_file(root.join("report.json")).unwrap();
    let unflushed = Event {
        seq: 0,
        t_us: 0,
        worker: 0,
        data: EventData::Counter {
            name: "worker.jobs".to_string(),
            delta: 1,
            index: Some(0),
        },
    };
    std::fs::write(root.join(EVENTS_FILE), format!("{}\n", unflushed.emit())).unwrap();

    let snapshot = WatchSnapshot::capture(&root).unwrap();
    assert_eq!(snapshot.dir.completed, 1);
    assert!(!snapshot.complete());
    let timings = snapshot.timings.as_ref().expect("the event log was read");
    assert_eq!(timings.wall_us, 0, "the clock must not have advanced");
    assert!(
        snapshot.runs_per_sec.is_none(),
        "zero wall clock must mean warming up, not {} runs/s",
        snapshot.runs_per_sec.unwrap()
    );
    assert!(snapshot.eta_secs.is_none(), "no rate, no ETA");

    let screen = snapshot.render();
    assert!(screen.contains("warming up"), "screen:\n{screen}");
    assert!(!screen.contains("inf"), "screen:\n{screen}");
    assert!(!screen.contains("ETA 0.0s"), "screen:\n{screen}");
    assert!(!snapshot.to_json().contains("inf"));
    let _ = std::fs::remove_dir_all(&root);
}

/// A resume-appended event log carries several recording sessions (the
/// telemetry clock restarts near zero per process). Throughput and ETA
/// must be measured over the **current session's** window — dividing the
/// completed count by the whole-log wall time counts the dead time between
/// sessions as execution time and reports a uselessly deflated rate.
#[test]
fn resumed_log_measures_throughput_over_the_current_session() {
    let spec = tiny_spec("watch-sessions");
    let root = temp_root("sessions");
    run_streaming(&Executor::new(1), &spec, &root).unwrap();

    // 1 of 2 runs stored: mid-flight, the shape where a rate and ETA show.
    let runs_path = root.join("runs.jsonl");
    let log = std::fs::read_to_string(&runs_path).unwrap();
    let first_line = log.lines().next().unwrap();
    std::fs::write(&runs_path, format!("{first_line}\n")).unwrap();
    std::fs::remove_file(root.join("report.json")).unwrap();

    // Session 1: one slow run filling an 8s wall. Session 2 (a resume —
    // t_us restarts near zero): one run over ~1s. The current rate is
    // ~1 run/s; the whole-log division would claim ~0.11 runs/s.
    let sessions = [
        Event {
            seq: 0,
            t_us: 0,
            worker: 0,
            data: EventData::Span {
                name: "run".to_string(),
                dur_us: 8_000_000,
                parent: None,
                index: Some(0),
            },
        },
        Event {
            seq: 1,
            t_us: 1_000,
            worker: 0,
            data: EventData::Span {
                name: "run".to_string(),
                dur_us: 1_000_000,
                parent: None,
                index: Some(1),
            },
        },
    ];
    let log: String = sessions.iter().map(|e| format!("{}\n", e.emit())).collect();
    std::fs::write(root.join(EVENTS_FILE), log).unwrap();

    let snapshot = WatchSnapshot::capture(&root).unwrap();
    let timings = snapshot.timings.as_ref().expect("the event log was read");
    assert_eq!(timings.sessions.len(), 2, "the reset must split sessions");
    assert_eq!(
        timings.wall_us, 9_001_000,
        "whole-log wall is the sum of the session walls"
    );

    let rps = snapshot
        .runs_per_sec
        .expect("the current session has a run");
    let expected = 1.0 / 1.001; // 1 run over the 1_001_000µs current window
    assert!(
        (rps - expected).abs() < 1e-9,
        "rate must come from the current session: want {expected}, got {rps}"
    );
    let eta = snapshot.eta_secs.expect("missing runs and a rate");
    assert!(
        (eta - 1.001).abs() < 1e-9,
        "1 missing run at the session rate, got {eta}"
    );

    let screen = snapshot.render();
    assert!(
        screen.contains("sessions: 2"),
        "multi-session logs must say so:\n{screen}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// Once the clock advances and a run completes, the throughput line comes
/// back — warming up is a transient state, not a regression of the normal
/// rendering.
#[test]
fn advanced_clock_restores_throughput_and_eta() {
    let spec = tiny_spec("watch-advanced");
    let root = temp_root("advanced");
    run_streaming(&Executor::new(1), &spec, &root).unwrap();

    let runs_path = root.join("runs.jsonl");
    let log = std::fs::read_to_string(&runs_path).unwrap();
    let first_line = log.lines().next().unwrap();
    std::fs::write(&runs_path, format!("{first_line}\n")).unwrap();
    std::fs::remove_file(root.join("report.json")).unwrap();
    let flushed = Event {
        seq: 0,
        t_us: 2_000_000,
        worker: 0,
        data: EventData::Counter {
            name: "worker.jobs".to_string(),
            delta: 1,
            index: Some(0),
        },
    };
    std::fs::write(root.join(EVENTS_FILE), format!("{}\n", flushed.emit())).unwrap();

    let snapshot = WatchSnapshot::capture(&root).unwrap();
    let rps = snapshot.runs_per_sec.expect("clock advanced, rate defined");
    assert!(
        (rps - 0.5).abs() < 1e-9,
        "1 run / 2s = 0.5 runs/s, got {rps}"
    );
    let eta = snapshot
        .eta_secs
        .expect("missing runs and a rate give an ETA");
    assert!(
        (eta - 2.0).abs() < 1e-9,
        "1 missing / 0.5 rps = 2s, got {eta}"
    );
    let screen = snapshot.render();
    assert!(
        screen.contains("throughput: 0.50 runs/s"),
        "screen:\n{screen}"
    );
    let _ = std::fs::remove_dir_all(&root);
}
