//! Integration tests of the lease-based distributed scheduler: a
//! coordinator and a worker fleet over the shared-filesystem transport,
//! kill-and-release lease recovery (an aborted worker's lease expires and
//! its unfinished indices reissue to a survivor), and a property sweeping
//! arbitrary fleet sizes × lease sizes × kill points against the
//! single-machine reference report.

use dl2fence_campaign::{
    expand, merge_with_opts, run_streaming, sched_status, serve_sched, spec_fingerprint, status,
    work, CampaignDir, CampaignSpec, Executor, Grant, RunResult, SchedConfig, Scheduler,
    ServeOptions, SpillPolicy, WorkOptions,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// The same small eval-enabled campaign the merge suite uses (12 runs with
/// sample payloads and trained-model metrics), so scheduler byte-identity
/// covers the sample-store union and the eval phase, not just scalars.
const SCHED_SPEC: &str = r#"
name = "sched-integration"

[sim]
warmup_cycles = 100
sample_period = 200
samples_per_run = 1
collect_samples = true

[grid]
mesh = [4]
fir = [0.4, 0.8]
workloads = ["uniform", "tornado"]
attack_placements = 2
benign_runs = 1
seeds = [0xDAC]

[report]
group_by = ["workload", "class"]

[eval]
enabled = true
train_fraction = 0.5
detector_epochs = 4
localizer_epochs = 2
detection_feature = "vco"
localization_feature = "boc"
"#;

fn spec() -> CampaignSpec {
    CampaignSpec::from_toml(SCHED_SPEC).unwrap()
}

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("dl2fence-sched-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// The uninterrupted single-machine reference report (JSON), computed once.
fn reference_json() -> &'static String {
    static REFERENCE: OnceLock<String> = OnceLock::new();
    REFERENCE.get_or_init(|| {
        let root = temp_root("reference");
        let report = run_streaming(&Executor::new(4), &spec(), &root).unwrap();
        std::fs::remove_dir_all(&root).unwrap();
        report.to_json()
    })
}

/// Blocks until the coordinator thread has initialized the campaign
/// directory (workers refuse to join a directory with no manifest).
fn wait_for_manifest(root: &std::path::Path) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !root.join("manifest.json").exists() {
        assert!(
            Instant::now() < deadline,
            "coordinator never wrote {}",
            root.join("manifest.json").display()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn coordinator_and_two_workers_drain_the_matrix_byte_identically() {
    let root = temp_root("fleet");
    let total = expand(&spec()).unwrap().len();

    let (report, outcomes) = std::thread::scope(|s| {
        let coord_root = root.clone();
        let coordinator = s.spawn(move || {
            serve_sched(
                &Executor::new(2),
                &coord_root,
                Some(&spec()),
                &ServeOptions {
                    lease_size: 2,
                    lease_ttl: Duration::from_secs(60),
                    poll: Duration::from_millis(5),
                    spill: SpillPolicy::default(),
                },
            )
        });
        wait_for_manifest(&root);
        let handles: Vec<_> = ["alpha", "beta"]
            .into_iter()
            .map(|name| {
                let wroot = root.clone();
                s.spawn(move || {
                    let mut opts = WorkOptions::named(name);
                    opts.poll = Duration::from_millis(5);
                    work(&Executor::new(2), &wroot, &opts)
                })
            })
            .collect();
        let outcomes: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().unwrap().unwrap())
            .collect();
        (coordinator.join().unwrap().unwrap(), outcomes)
    });

    // The fleet executed every run exactly once between them, and the
    // assembled report matches the single-machine run byte for byte.
    assert_eq!(outcomes.iter().map(|o| o.executed).sum::<usize>(), total);
    assert_eq!(&report.to_json(), reference_json());
    assert_eq!(
        &std::fs::read_to_string(root.join("report.json")).unwrap(),
        reference_json()
    );
    for name in ["alpha", "beta"] {
        assert!(
            root.join("workers")
                .join(name)
                .join("manifest.json")
                .exists(),
            "worker {name} must leave its directory behind"
        );
    }

    // The lease ledger survives for inspection: status shows the table.
    let sched = sched_status(&root).unwrap().expect("ledger written");
    assert_eq!(sched.active, 0, "no lease may stay active after drain");
    assert_eq!(sched.expired, 0, "no worker stalled");
    assert!(
        sched.issued >= (total / 2) as u64,
        "leases of 2 over {total} runs need at least {} grants, saw {}",
        total / 2,
        sched.issued
    );
    assert_eq!(sched.completed, sched.issued);
    let rendered = status(std::slice::from_ref(&root)).unwrap().render();
    assert!(rendered.contains("scheduler:"), "status:\n{rendered}");
    assert!(rendered.contains("lease"), "status:\n{rendered}");
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn killed_worker_lease_expires_and_is_reissued_to_the_survivor() {
    let root = temp_root("kill");
    let total = expand(&spec()).unwrap().len();

    let report = std::thread::scope(|s| {
        let coord_root = root.clone();
        let coordinator = s.spawn(move || {
            serve_sched(
                &Executor::new(2),
                &coord_root,
                Some(&spec()),
                &ServeOptions {
                    lease_size: 3,
                    lease_ttl: Duration::from_millis(300),
                    poll: Duration::from_millis(5),
                    spill: SpillPolicy::default(),
                },
            )
        });
        wait_for_manifest(&root);

        // The casualty persists one run of its first lease, then dies
        // without completing it — the crash shape the scheduler exists for.
        let mut casualty = WorkOptions::named("casualty");
        casualty.poll = Duration::from_millis(5);
        casualty.fail_after = Some(1);
        let err = work(&Executor::new(1), &root, &casualty).unwrap_err();
        assert!(err.to_string().contains("--fail-after"), "got: {err}");

        // The survivor drains the rest, including the reissued remainder of
        // the casualty's expired lease.
        let mut survivor = WorkOptions::named("survivor");
        survivor.poll = Duration::from_millis(5);
        survivor.strip_samples = true;
        let outcome = work(&Executor::new(2), &root, &survivor).unwrap();
        assert_eq!(
            outcome.executed,
            total - 1,
            "the casualty's persisted run must not re-execute"
        );
        coordinator.join().unwrap().unwrap()
    });

    assert_eq!(&report.to_json(), reference_json());
    assert_eq!(
        &std::fs::read_to_string(root.join("report.json")).unwrap(),
        reference_json()
    );

    let sched = sched_status(&root).unwrap().expect("ledger written");
    assert!(
        sched.expired >= 1,
        "the casualty's abandoned lease must expire: {sched:?}"
    );
    assert!(
        sched.reissued >= 1,
        "its unfinished indices must reissue: {sched:?}"
    );
    assert_eq!(sched.active, 0, "no lease may stay active after drain");
    assert!(sched
        .leases
        .iter()
        .any(|l| l.worker == "casualty" && l.state == "expired"));
    std::fs::remove_dir_all(&root).unwrap();
}

// ---------------------------------------------------------------------------
// Kill-and-release property: arbitrary fleets against the golden report.
// ---------------------------------------------------------------------------

/// A small sampled campaign (eval off, samples on) executed once: the
/// record pool the simulated workers draw from — appending `lines[i]` is
/// byte-identical to really executing run `i` — plus the single-machine
/// reference report.
fn sched_seed() -> &'static (CampaignSpec, Vec<String>, String) {
    static SEED: OnceLock<(CampaignSpec, Vec<String>, String)> = OnceLock::new();
    SEED.get_or_init(|| {
        let mut spec = CampaignSpec::quick("sched-prop");
        spec.sim.warmup_cycles = 50;
        spec.sim.sample_period = 100;
        spec.sim.samples_per_run = 1;
        spec.sim.collect_samples = true;
        spec.grid.mesh = vec![4];
        spec.grid.fir = vec![0.8];
        spec.grid.workloads = vec!["uniform".to_string()];
        spec.grid.attack_placements = 3;
        spec.grid.benign_runs = 3;
        spec.grid.seeds = vec![0xFACE];
        let root = temp_root("prop-seed");
        let report = run_streaming(&Executor::new(2), &spec, &root).unwrap();
        let log = std::fs::read_to_string(root.join("runs.jsonl")).unwrap();
        // The log is in completion order; key the pool by run index.
        let mut lines = vec![String::new(); report.total_runs];
        for line in log.lines() {
            let record: RunResult = serde_json::from_str(line).unwrap();
            lines[record.spec.index] = line.to_string();
        }
        std::fs::remove_dir_all(&root).unwrap();
        (spec, lines, report.to_json())
    })
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One simulated fleet member: a real worker directory it appends
/// precomputed records into, and a kill budget drawn from the seed.
struct SimWorker {
    root: PathBuf,
    writer: std::fs::File,
    name: String,
    alive: bool,
    /// Dies after persisting this many runs; `None` is immortal.
    budget: Option<usize>,
    executed: usize,
}

proptest! {
    /// Satellite of the scheduler tentpole: for **arbitrary fleet sizes**,
    /// **lease sizes** and **kill points**, driving the [`Scheduler`] state
    /// machine exactly as the coordinator does — workers persist records
    /// before acknowledging progress, killed workers vanish mid-lease
    /// (sometimes between the append and the ack: the idempotent-replay
    /// window), overdue leases expire and reissue — always reconstructs the
    /// single-machine report **byte-identically** from the worker
    /// directories, with speculative re-execution covering whatever no
    /// worker lived to finish.
    #[test]
    fn kill_and_release_reconstructs_the_report_for_any_fleet(
        workers in 1usize..5,
        lease_size in 1usize..6,
        kill_seed in 0u64..u64::MAX,
        case in 0u64..1_000_000,
    ) {
        let (spec, lines, reference) = sched_seed();
        let total = lines.len();
        let fingerprint = spec_fingerprint(spec);
        let root = temp_root(&format!("prop-{case}"));

        let mut rng = kill_seed;
        let mut fleet = Vec::with_capacity(workers);
        for i in 0..workers {
            let name = format!("w{i}");
            let wroot = root.join("workers").join(&name);
            let writer = CampaignDir::create_worker(&wroot, spec, total, &name)
                .map_err(|e| e.to_string())?
                .open_runs_for_append()
                .map_err(|e| e.to_string())?;
            rng = splitmix(rng);
            // Roughly half the fleet dies, at a point drawn over the matrix.
            let budget = (rng % 2 == 0).then(|| {
                rng = splitmix(rng);
                (rng % (total as u64 + 1)) as usize
            });
            fleet.push(SimWorker {
                root: wroot,
                writer,
                name,
                alive: true,
                budget,
                executed: 0,
            });
        }

        let config = SchedConfig { lease_size, lease_ttl_us: 1_000 };
        let mut sched = Scheduler::new(config, &fingerprint, &vec![false; total]);
        let mut now = 0u64;
        let mut rounds = 0usize;
        while !sched.drained() {
            rounds += 1;
            prop_assert!(
                rounds <= 4 * total + 4 * workers + 8,
                "scheduler failed to drain: pending {}, round {rounds}",
                sched.pending_len()
            );
            let mut any_alive = false;
            for w in &mut fleet {
                if !w.alive {
                    continue;
                }
                any_alive = true;
                now += 1;
                let lease = match sched.grant(&w.name, now) {
                    Grant::Lease { lease, .. } => lease,
                    Grant::Wait => continue,
                    Grant::Drained => {
                        w.alive = false;
                        continue;
                    }
                };
                let mut killed = false;
                for &i in &lease.indices {
                    if w.budget == Some(w.executed) {
                        killed = true; // died before starting this run
                        break;
                    }
                    use std::io::Write as _;
                    w.writer
                        .write_all(lines[i].as_bytes())
                        .and_then(|()| w.writer.write_all(b"\n"))
                        .map_err(|e| e.to_string())?;
                    w.executed += 1;
                    rng = splitmix(rng);
                    if w.budget == Some(w.executed) && rng % 2 == 0 {
                        // Died between the append and the progress ack: the
                        // record exists but the index reissues — merge must
                        // dedupe the identical duplicate.
                        killed = true;
                        break;
                    }
                    sched.progress(lease.id, i, now);
                }
                if killed {
                    w.alive = false;
                } else {
                    sched.complete(lease.id);
                }
            }
            // Time passes beyond the ttl: whatever the dead still hold
            // expires and returns to the queue.
            now += 2_000;
            sched.expire_overdue(now);
            if !any_alive {
                break; // the whole fleet died; assembly re-executes the rest
            }
        }

        if sched.drained() {
            prop_assert_eq!(sched.pending_len(), 0);
            let counters = sched.counters();
            prop_assert!(
                counters.issued >= (total.div_ceil(lease_size)) as u64,
                "covering {total} runs with leases of {lease_size} needs more grants \
                 than {}",
                counters.issued
            );
        }

        for w in &mut fleet {
            use std::io::Write as _;
            w.writer.flush().map_err(|e| e.to_string())?;
        }
        let inputs: Vec<PathBuf> = fleet.iter().map(|w| w.root.clone()).collect();
        drop(fleet);
        let report = merge_with_opts(
            &Executor::new(2),
            &inputs,
            root.join("merged"),
            SpillPolicy::default(),
            true,
        )
        .map_err(|e| e.to_string())?;
        prop_assert_eq!(&report.to_json(), reference);
        std::fs::remove_dir_all(&root).map_err(|e| e.to_string())?;
    }
}
