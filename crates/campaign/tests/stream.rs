//! Integration tests of the streaming/resumable engine: kill-and-resume
//! determinism down to the last report byte, spec-fingerprint enforcement,
//! and parity between the streaming, resumed and in-memory execution paths.

use dl2fence_campaign::{
    expand, resume, run_streaming, spec_fingerprint, CampaignReport, CampaignSpec, Executor,
};
use std::path::PathBuf;

/// A small streaming campaign with samples and the eval phase enabled, so
/// byte-identity covers the f32 frame payloads and the trained-model
/// metrics, not just scalar latencies.
const STREAM_SPEC: &str = r#"
name = "stream-integration"

[sim]
warmup_cycles = 100
sample_period = 200
samples_per_run = 2
collect_samples = true

[grid]
mesh = [4]
fir = [0.4, 0.8]
workloads = ["uniform", "tornado"]
attack_placements = 2
benign_runs = 1
seeds = [0xDAC]

[report]
group_by = ["workload", "class"]

[eval]
enabled = true
train_fraction = 0.5
detector_epochs = 6
localizer_epochs = 3
detection_feature = "vco"
localization_feature = "boc"
"#;

fn temp_root(tag: &str) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("dl2fence-stream-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

#[test]
fn kill_and_resume_reports_are_byte_identical_to_uninterrupted_and_in_memory() {
    let spec = CampaignSpec::from_toml(STREAM_SPEC).unwrap();
    let total = expand(&spec).unwrap().len();
    assert!(
        total >= 10,
        "spec must be big enough to truncate meaningfully"
    );

    // Path 1: uninterrupted streaming run.
    let full_root = temp_root("full");
    let uninterrupted = run_streaming(&Executor::new(4), &spec, &full_root).unwrap();
    let uninterrupted_json = uninterrupted.to_json();

    // Path 2: the pre-streaming in-memory path must agree byte-for-byte.
    let outcome = Executor::new(2).execute(&spec).unwrap();
    let in_memory_json = CampaignReport::build(&outcome).unwrap().to_json();
    assert_eq!(in_memory_json, uninterrupted_json);

    // Path 3: simulate a crash after K of N records — truncate the JSONL
    // mid-record (the shape a killed process leaves), drop the report, and
    // resume with a different worker count.
    for keep in [0, 3, total - 1] {
        let crash_root = temp_root(&format!("crash{keep}"));
        std::fs::create_dir_all(&crash_root).unwrap();
        std::fs::copy(
            full_root.join("manifest.json"),
            crash_root.join("manifest.json"),
        )
        .unwrap();
        let jsonl = std::fs::read_to_string(full_root.join("runs.jsonl")).unwrap();
        let lines: Vec<&str> = jsonl.lines().collect();
        let mut truncated: String = lines[..keep].iter().map(|l| format!("{l}\n")).collect();
        // Half of the (keep+1)-th record survives the "crash".
        truncated.push_str(&lines[keep][..lines[keep].len() / 2]);
        std::fs::write(crash_root.join("runs.jsonl"), truncated).unwrap();

        let resumed = resume(&Executor::new(3), &crash_root, Some(&spec))
            .unwrap()
            .expect("a whole-campaign directory resumes to a report");
        assert_eq!(
            resumed.to_json(),
            uninterrupted_json,
            "resume after {keep}/{total} records must be byte-identical"
        );
        // The resumed directory's persisted artifacts match the full run's.
        assert_eq!(
            std::fs::read_to_string(crash_root.join("report.json")).unwrap(),
            std::fs::read_to_string(full_root.join("report.json")).unwrap()
        );
        // Resume must leave a healthy log: exactly one whole record per run
        // (the torn record was truncated away, not merged into the first
        // re-executed append), so a second resume — e.g. after a crash
        // during the first — still works and is still byte-identical.
        let healed = std::fs::read_to_string(crash_root.join("runs.jsonl")).unwrap();
        assert_eq!(
            healed.lines().count(),
            total,
            "resume after {keep}/{total} must heal the log to one record per run"
        );
        let resumed_again = resume(&Executor::new(2), &crash_root, Some(&spec))
            .unwrap()
            .unwrap();
        assert_eq!(resumed_again.to_json(), uninterrupted_json);
        std::fs::remove_dir_all(&crash_root).unwrap();
    }
    std::fs::remove_dir_all(&full_root).unwrap();
}

#[test]
fn resume_refuses_a_mismatched_spec_fingerprint() {
    let spec = CampaignSpec::from_toml(STREAM_SPEC).unwrap();
    let root = temp_root("mismatch");
    run_streaming(&Executor::new(2), &spec, &root).unwrap();

    // Any grid difference fingerprints differently and must be refused —
    // no silent partial reuse of another campaign's results.
    let mut other = spec.clone();
    other.grid.fir = vec![0.4, 0.9];
    assert_ne!(spec_fingerprint(&spec), spec_fingerprint(&other));
    let err = resume(&Executor::new(2), &root, Some(&other)).unwrap_err();
    let message = err.to_string();
    assert!(message.contains("fingerprint mismatch"), "got: {message}");
    assert!(
        message.contains(&spec_fingerprint(&other)),
        "got: {message}"
    );

    // The matching spec still resumes fine afterwards.
    assert!(resume(&Executor::new(2), &root, Some(&spec)).is_ok());
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn parallel_eval_on_pool_matches_serial_eval_for_table1_quick() {
    // The committed table-1 spec, with the simulate/train knobs shrunk so
    // the double execution stays test-sized; grid structure (workload
    // aliases, grouping, eval features) comes from the file. A second mesh
    // is added so the eval phase has two independent training groups to
    // fan out.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/table1_quick.toml");
    let mut spec = CampaignSpec::from_path(std::path::Path::new(path)).unwrap();
    assert!(spec.eval.enabled, "table1_quick must enable the eval phase");
    // Loading normalized the file's legacy mesh axis into `topology`.
    spec.grid.topology = vec!["mesh4".into(), "mesh8".into()];
    spec.grid.workloads = vec!["uniform".into(), "x264".into()];
    spec.grid.attack_placements = 2;
    spec.grid.benign_runs = 1;
    spec.sim.warmup_cycles = 100;
    spec.sim.sample_period = 200;
    spec.sim.samples_per_run = 2;
    spec.eval.detector_epochs = 6;
    spec.eval.localizer_epochs = 3;

    let outcome = Executor::new(2).execute(&spec).unwrap();
    let serial = CampaignReport::build_with(&outcome, &Executor::new(1)).unwrap();
    let parallel = CampaignReport::build_with(&outcome, &Executor::new(4)).unwrap();

    assert_eq!(serial.evaluations.len(), 2, "one eval entry per mesh");
    for (s, p) in serial.evaluations.iter().zip(&parallel.evaluations) {
        assert_eq!(s, p, "eval entries must be identical for any pool size");
    }
    assert_eq!(serial.to_json(), parallel.to_json());
}
