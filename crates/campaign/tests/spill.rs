//! Integration coverage of the bounded-memory surface: disk-spilled eval
//! sample pools ([`dl2fence_campaign::spill`]), log compaction
//! ([`dl2fence_campaign::compact`]) and the read-only status inspector
//! ([`dl2fence_campaign::status`]) — including the acceptance guard that a
//! spilling accumulator's retention stays below its threshold on a
//! campaign an order of magnitude larger.

use dl2fence_campaign::stream::{RUNS_FILE, SAMPLES_DIR};
use dl2fence_campaign::{
    compact, expand, merge, resume_with, run_streaming, spec_fingerprint, status, CampaignDir,
    CampaignReport, CampaignSpec, Executor, ReportAccumulator, RunResult, SampleStore, SpillPolicy,
};
use std::path::PathBuf;

/// A sample-heavy eval campaign, small enough to simulate in-test: 20 runs
/// x 4 samples = 80 labeled samples through one mesh pool.
fn sample_heavy_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::quick("spill-heavy");
    spec.grid.mesh = vec![4];
    spec.grid.fir = vec![0.4, 0.8];
    spec.grid.workloads = vec!["uniform".into(), "tornado".into()];
    spec.grid.attack_placements = 2;
    spec.grid.benign_runs = 1;
    spec.grid.seeds = vec![7, 8];
    spec.sim.warmup_cycles = 50;
    spec.sim.sample_period = 100;
    spec.sim.samples_per_run = 4;
    spec.sim.collect_samples = true;
    spec.eval.enabled = true;
    spec.eval.detector_epochs = 4;
    spec.eval.localizer_epochs = 2;
    spec
}

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("dl2fence-spill-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

#[test]
fn spilling_accumulator_stays_below_threshold_on_a_10x_campaign() {
    // The acceptance criterion: with eval enabled and spilling active,
    // retained_samples() stays below the configured threshold for a
    // campaign at least 10x that size, and the report is byte-identical to
    // the in-memory build.
    let spec = sample_heavy_spec();
    let executor = Executor::new(2);
    let outcome = executor.execute(&spec).unwrap();
    let total_samples: usize = outcome.runs.iter().map(|r| r.samples.len()).sum();
    let threshold = total_samples / 10;
    assert!(threshold >= 1, "campaign must be >= 10x the threshold");
    let reference = CampaignReport::build_with(&outcome, &executor).unwrap();

    let root = temp_root("tenx");
    let store = SampleStore::attach(&root, &spec_fingerprint(&spec)).unwrap();
    let mut acc = ReportAccumulator::for_spec(&spec)
        .unwrap()
        .with_spill(store, threshold);
    let mut peak = 0usize;
    for run in &outcome.runs {
        acc.try_fold(run).unwrap();
        peak = peak.max(acc.retained_samples());
    }
    assert!(
        peak < threshold,
        "retention peaked at {peak}, threshold {threshold}"
    );
    assert!(
        acc.spilled_samples() >= total_samples - threshold,
        "most samples must be on disk"
    );
    let spilled = acc.finish(&executor).unwrap();
    assert_eq!(spilled.to_json(), reference.to_json());
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn compact_orders_dedupes_heals_and_preserves_the_report() {
    let spec = sample_heavy_spec();
    let executor = Executor::new(2);
    let root = temp_root("compact");
    let reference = run_streaming(&executor, &spec, &root).unwrap().to_json();

    // Wound the log: shuffle whole records, repeat two of them, and append
    // a torn half-record.
    let dir = CampaignDir::open(&root).unwrap();
    let full = std::fs::read_to_string(dir.runs_path()).unwrap();
    let mut lines: Vec<&str> = full.lines().collect();
    lines.rotate_left(5);
    let dup_a = lines[0];
    let dup_b = lines[3];
    let mut wounded: String = lines.iter().map(|l| format!("{l}\n")).collect();
    wounded.push_str(&format!("{dup_a}\n{dup_b}\n"));
    wounded.push_str(&dup_a[..dup_a.len() / 2]);
    std::fs::write(dir.runs_path(), &wounded).unwrap();

    let stats = compact(&root, false).unwrap();
    assert_eq!(stats.records, lines.len());
    assert_eq!(stats.dropped_duplicates, 2);
    assert!(stats.healed_torn_tail);
    assert!(stats.bytes_after < stats.bytes_before);

    // The rewritten log is index-ordered, gapless and duplicate-free.
    let compacted = std::fs::read_to_string(dir.runs_path()).unwrap();
    let indices: Vec<usize> = compacted
        .lines()
        .map(|l| serde_json::from_str::<RunResult>(l).unwrap().spec.index)
        .collect();
    assert_eq!(indices, (0..lines.len()).collect::<Vec<_>>());

    // And the directory still resumes to the identical report.
    let resumed = resume_with(&executor, &root, Some(&spec), SpillPolicy::InMemory)
        .unwrap()
        .unwrap();
    assert_eq!(resumed.to_json(), reference);
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn strip_samples_shrinks_the_log_and_keeps_every_path_byte_identical() {
    let spec = sample_heavy_spec();
    let executor = Executor::new(2);
    let root = temp_root("strip");
    let reference = run_streaming(&executor, &spec, &root).unwrap().to_json();
    let bytes_full = std::fs::metadata(root.join(RUNS_FILE)).unwrap().len();

    let stats = compact(&root, true).unwrap();
    assert!(stats.stripped_samples > 0);
    assert!(
        stats.bytes_after * 2 < bytes_full,
        "stripping a sample-heavy log must shrink it substantially \
         ({bytes_full} -> {} bytes)",
        stats.bytes_after
    );
    // Stripped records really are scalar-only.
    let log = std::fs::read_to_string(root.join(RUNS_FILE)).unwrap();
    for line in log.lines() {
        let record: RunResult = serde_json::from_str(line).unwrap();
        assert!(record.samples.is_empty());
    }

    // Resume of the stripped directory rebuilds the identical report from
    // the sample store (both with and without fresh spilling).
    for policy in [SpillPolicy::InMemory, SpillPolicy::Threshold(3)] {
        let resumed = resume_with(&executor, &root, Some(&spec), policy)
            .unwrap()
            .unwrap();
        assert_eq!(resumed.to_json(), reference, "policy {policy:?} diverged");
    }

    // A stripped directory still merges: its store rides along into the
    // merged directory and the report comes out byte-identical.
    let merged_root = temp_root("strip-merged");
    let merged = merge(&executor, std::slice::from_ref(&root), &merged_root).unwrap();
    assert_eq!(merged.to_json(), reference);
    assert!(
        merged_root.join(SAMPLES_DIR).join("4.jsonl").exists(),
        "the merged directory must carry the union of the input stores"
    );

    // Compaction is idempotent: a second strip moves nothing.
    let again = compact(&root, true).unwrap();
    assert_eq!(again.stripped_samples, 0);
    assert_eq!(again.bytes_after, stats.bytes_after);

    std::fs::remove_dir_all(&root).unwrap();
    std::fs::remove_dir_all(&merged_root).unwrap();
}

#[test]
fn sample_store_refuses_conflicts_and_foreign_fingerprints() {
    let root = temp_root("store-conflict");
    let spec = sample_heavy_spec();
    let outcome = Executor::new(1).execute(&spec).unwrap();
    let samples = outcome.runs[0].samples.clone();
    let fingerprint = spec_fingerprint(&spec);

    let mut store = SampleStore::attach(&root, &fingerprint).unwrap();
    assert!(store.append_batch(4, 0, samples.clone()).unwrap());
    // An identical re-append dedupes...
    assert!(!store.append_batch(4, 0, samples.clone()).unwrap());
    // ...but a different payload for the same run index is a conflict.
    let err = store.append_batch(4, 0, samples[..1].to_vec()).unwrap_err();
    assert!(err.to_string().contains("conflicting"), "{err}");
    drop(store);

    // Reattaching with another campaign's fingerprint is refused.
    let err = SampleStore::attach(&root, "0000000000000000").unwrap_err();
    assert!(err.to_string().contains("refusing to mix"), "{err}");
    let err = SampleStore::open_existing(&root, Some("0000000000000000")).unwrap_err();
    assert!(err.to_string().contains("refusing to mix"), "{err}");
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn status_reports_progress_gaps_spill_and_union() {
    let spec = sample_heavy_spec();
    let executor = Executor::new(2);
    let root = temp_root("status");
    run_streaming(&executor, &spec, &root).unwrap();
    let runs = expand(&spec).unwrap();

    // Complete directory: no gaps, report written, spill store present
    // (the default streaming policy attaches one for eval campaigns).
    let report = status(std::slice::from_ref(&root)).unwrap();
    assert_eq!(report.dirs.len(), 1);
    let dir_status = &report.dirs[0];
    assert_eq!(dir_status.total_runs, runs.len());
    assert_eq!(dir_status.completed, runs.len());
    assert!(dir_status.missing.is_empty());
    assert!(dir_status.report_written);
    assert!(report.fingerprints_agree);
    assert_eq!(report.union_missing.as_deref(), Some(&[] as &[usize]));
    // JSON and human renderings both cover the headline numbers.
    assert!(report.to_json().contains("\"completed\""));
    assert!(report.render().contains("stored"));

    // Knock out records 2 and 5 and append a torn tail: status must list
    // exactly those gaps plus the torn record's index, read-only.
    let full = std::fs::read_to_string(root.join(RUNS_FILE)).unwrap();
    let kept: Vec<&str> = full
        .lines()
        .filter(|l| {
            let idx = serde_json::from_str::<RunResult>(l).unwrap().spec.index;
            idx != 2 && idx != 5
        })
        .collect();
    let mut wounded: String = kept.iter().map(|l| format!("{l}\n")).collect();
    wounded.push_str(&kept[0][..kept[0].len() / 3]);
    std::fs::write(root.join(RUNS_FILE), &wounded).unwrap();
    let before = std::fs::read_to_string(root.join(RUNS_FILE)).unwrap();

    let report = status(std::slice::from_ref(&root)).unwrap();
    assert_eq!(report.dirs[0].missing, vec![2, 5]);
    assert!(report.dirs[0].truncated_tail);
    assert_eq!(
        std::fs::read_to_string(root.join(RUNS_FILE)).unwrap(),
        before,
        "status must never modify the directory"
    );

    // A second directory holding only the missing records completes the
    // union; a foreign-fingerprint directory voids it.
    let other_root = temp_root("status-other");
    let other = CampaignDir::create(&other_root, &spec, runs.len()).unwrap();
    let missing_records: String = full
        .lines()
        .filter(|l| {
            let idx = serde_json::from_str::<RunResult>(l).unwrap().spec.index;
            idx == 2 || idx == 5
        })
        .map(|l| format!("{l}\n"))
        .collect();
    std::fs::write(other.runs_path(), missing_records).unwrap();
    let report = status(&[root.clone(), other_root.clone()]).unwrap();
    assert!(report.fingerprints_agree);
    assert_eq!(report.union_missing.as_deref(), Some(&[] as &[usize]));

    let foreign_root = temp_root("status-foreign");
    let mut foreign_spec = spec.clone();
    foreign_spec.grid.seeds = vec![99];
    let foreign_runs = expand(&foreign_spec).unwrap().len();
    CampaignDir::create(&foreign_root, &foreign_spec, foreign_runs).unwrap();
    let report = status(&[root.clone(), foreign_root.clone()]).unwrap();
    assert!(!report.fingerprints_agree);
    assert!(report.union_missing.is_none());
    assert!(report.render().contains("fingerprints disagree"));

    for r in [root, other_root, foreign_root] {
        let _ = std::fs::remove_dir_all(&r);
    }
}

#[test]
fn shard_status_counts_owned_indices_only() {
    let spec = sample_heavy_spec();
    let root = temp_root("shard-status");
    let shard = dl2fence_campaign::ShardSlice { index: 1, count: 3 };
    dl2fence_campaign::run_shard(&Executor::new(2), &spec, shard, &root).unwrap();
    let total = expand(&spec).unwrap().len();

    let report = status(std::slice::from_ref(&root)).unwrap();
    let dir_status = &report.dirs[0];
    assert_eq!(dir_status.shard, Some(shard));
    assert_eq!(dir_status.total_runs, total);
    assert_eq!(dir_status.owned_runs, shard.owned_indices(total).count());
    assert_eq!(dir_status.completed, dir_status.owned_runs);
    assert!(
        dir_status.missing.is_empty(),
        "a complete shard owes nothing"
    );
    assert!(!dir_status.report_written, "shards build no report");
    std::fs::remove_dir_all(&root).unwrap();
}
