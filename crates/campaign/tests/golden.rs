//! Golden-report regression corpus.
//!
//! Every aggregation path the engine offers — in-memory, streaming,
//! crash-resume, shard-merge, and disk-spilled — must render the committed
//! specs to **byte-identical** reports, and those bytes must never drift
//! across refactors. The fixtures under `tests/golden/` pin them: each test
//! rebuilds its spec's report through all five paths and diffs the bytes
//! against the checked-in fixture.
//!
//! To regenerate after an intentional aggregation change:
//!
//! ```text
//! DL2FENCE_BLESS=1 cargo test -p dl2fence-campaign --test golden
//! ```
//!
//! then commit the rewritten `tests/golden/*.report.json` files with an
//! explanation of why the bytes moved.

use dl2fence_campaign::stream::{run_streaming_expanded_with, SpillPolicy, RUNS_FILE};
use dl2fence_campaign::{
    expand, merge, resume_with, CampaignDir, CampaignOutcome, CampaignReport, CampaignSpec,
    Executor, RunResult,
};
use std::path::{Path, PathBuf};

/// Environment variable that switches the corpus from verify to regenerate.
const BLESS_VAR: &str = "DL2FENCE_BLESS";

fn spec_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../specs")
        .join(name)
}

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("dl2fence-golden-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// Verifies `produced` against the fixture (or rewrites it under
/// [`BLESS_VAR`]), with a message naming the bless procedure on mismatch.
fn check_fixture(name: &str, produced: &str) {
    let path = golden_path(name);
    if std::env::var_os(BLESS_VAR).is_some() {
        std::fs::write(&path, produced).unwrap_or_else(|e| panic!("cannot bless {name}: {e}"));
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden fixture {name}: {e}\n\
             (first run? regenerate the corpus with {BLESS_VAR}=1 \
             cargo test -p dl2fence-campaign --test golden)"
        )
    });
    assert_eq!(
        produced, expected,
        "report bytes for {name} drifted from the golden fixture; if the \
         change is intentional, re-bless with {BLESS_VAR}=1 and commit"
    );
}

/// Reads a campaign directory's records back, sorted into matrix order —
/// the raw material for the in-memory / resume / merge rebuilds, so no
/// golden path pays for simulation twice.
fn stored_records(dir: &Path) -> Vec<RunResult> {
    let text = std::fs::read_to_string(dir.join(RUNS_FILE)).expect("streamed log must exist");
    let mut records: Vec<RunResult> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| serde_json::from_str(l).expect("streamed records parse"))
        .collect();
    records.sort_by_key(|r| r.spec.index);
    records
}

fn write_log(dir: &CampaignDir, records: &[&RunResult]) {
    let log: String = records
        .iter()
        .map(|r| format!("{}\n", serde_json::to_string(r).unwrap()))
        .collect();
    std::fs::write(dir.runs_path(), log).unwrap();
}

/// Rebuilds `spec`'s report through all five aggregation paths and checks
/// every one against the named fixture.
///
/// `spill_threshold` is the deliberately tiny bound used by the streamed
/// and spilled paths, so eval-enabled specs exercise real disk spills while
/// the in-memory path independently reproduces the same bytes.
fn golden_corpus(tag: &str, spec: &CampaignSpec, fixture: &str, spill_threshold: usize) {
    let executor = Executor::new(2);
    let runs = expand(spec).unwrap();

    // Path 1: streaming run (the only simulation this corpus pays for),
    // spilling eval samples at the tiny threshold.
    let streamed_root = temp_root(&format!("{tag}-stream"));
    let streamed = run_streaming_expanded_with(
        &executor,
        spec,
        &runs,
        &streamed_root,
        SpillPolicy::Threshold(spill_threshold),
    )
    .unwrap()
    .to_json();
    let records = stored_records(&streamed_root);

    // Path 2: in-memory aggregation of the same runs.
    let in_memory = CampaignReport::build_with(
        &CampaignOutcome {
            spec: spec.clone(),
            runs: records.clone(),
        },
        &executor,
    )
    .unwrap()
    .to_json();

    // Path 3: crash-resume — all but the last two records stored, plus a
    // torn half-record, then resumed (re-executing the missing runs).
    let resume_root = temp_root(&format!("{tag}-resume"));
    let resume_dir = CampaignDir::create(&resume_root, spec, runs.len()).unwrap();
    let keep = records.len().saturating_sub(2);
    write_log(&resume_dir, &records[..keep].iter().collect::<Vec<_>>());
    if let Some(next) = records.get(keep) {
        let line = serde_json::to_string(next).unwrap();
        let mut log = std::fs::read_to_string(resume_dir.runs_path()).unwrap();
        log.push_str(&line[..line.len() / 2]);
        std::fs::write(resume_dir.runs_path(), log).unwrap();
    }
    let resumed = resume_with(
        &executor,
        &resume_root,
        Some(spec),
        SpillPolicy::Threshold(spill_threshold),
    )
    .unwrap()
    .expect("whole-campaign resume returns a report")
    .to_json();

    // Path 4: shard-merge — records partitioned across two directories,
    // merged back.
    let merge_base = temp_root(&format!("{tag}-merge"));
    let mut inputs = Vec::new();
    for half in 0..2usize {
        let root = merge_base.join(format!("part-{half}"));
        let dir = CampaignDir::create(&root, spec, runs.len()).unwrap();
        let part: Vec<&RunResult> = records
            .iter()
            .filter(|r| r.spec.index % 2 == half)
            .collect();
        write_log(&dir, &part);
        inputs.push(root);
    }
    let merged = merge(&executor, &inputs, merge_base.join("merged"))
        .unwrap()
        .to_json();

    // Path 5: spilled rebuild — the streamed directory's report built again
    // from its log with an even smaller threshold (every fold spills).
    let spill_root = temp_root(&format!("{tag}-spill"));
    let spill_dir = CampaignDir::create(&spill_root, spec, runs.len()).unwrap();
    write_log(&spill_dir, &records.iter().collect::<Vec<_>>());
    let spilled = resume_with(
        &executor,
        &spill_root,
        Some(spec),
        SpillPolicy::Threshold(1),
    )
    .unwrap()
    .expect("whole-campaign resume returns a report")
    .to_json();

    // Every path must agree with every other before any of them is allowed
    // to (re)define the fixture.
    for (path, produced) in [
        ("in-memory", &in_memory),
        ("resume", &resumed),
        ("merge", &merged),
        ("spilled", &spilled),
    ] {
        assert_eq!(
            produced, &streamed,
            "{path} rebuild of {fixture} diverged from the streamed report"
        );
    }
    check_fixture(fixture, &streamed);

    for root in [streamed_root, resume_root, merge_base, spill_root] {
        let _ = std::fs::remove_dir_all(&root);
    }
}

#[test]
fn golden_smoke_eval_off() {
    let spec = CampaignSpec::from_path(&spec_path("smoke.toml")).unwrap();
    assert!(!spec.eval.enabled);
    golden_corpus("smoke-off", &spec, "smoke_eval_off.report.json", 4);
}

#[test]
fn golden_smoke_eval_on() {
    let spec = CampaignSpec::from_path(&spec_path("smoke_eval.toml")).unwrap();
    assert!(spec.eval.enabled);
    golden_corpus("smoke-on", &spec, "smoke_eval_on.report.json", 4);
}

#[test]
fn golden_table1_quick_eval_on() {
    let spec = CampaignSpec::from_path(&spec_path("table1_quick.toml")).unwrap();
    assert!(spec.eval.enabled);
    golden_corpus("table1-on", &spec, "table1_quick_eval_on.report.json", 16);
}

#[test]
fn golden_table1_quick_eval_off() {
    let mut spec = CampaignSpec::from_path(&spec_path("table1_quick.toml")).unwrap();
    // The eval-off variant of the same grid: identical run matrix and
    // group summaries, no evaluations array.
    spec.eval.enabled = false;
    golden_corpus("table1-off", &spec, "table1_quick_eval_off.report.json", 16);
}
