//! Property tests of the spec and streaming codecs: TOML/JSON spec
//! round-trips over arbitrary grids, lossless RunResult JSONL
//! encode/decode, resume-after-arbitrary-prefix scan recovery, shard-merge
//! byte-identity over arbitrary partitions of the run matrix, spilled-vs-
//! in-memory report byte-identity over arbitrary grids, compact-then-
//! resume/merge equivalence under arbitrary prefixes and duplicate
//! injection, and `campaign status` gap-list correctness.

use dl2fence_campaign::stream::{CampaignDir, RUNS_FILE};
use dl2fence_campaign::{
    compact, expand, merge, resume, run_streaming, spec_fingerprint, status, CampaignOutcome,
    CampaignReport, CampaignSpec, Executor, ReportAccumulator, RunMetrics, RunResult, RunSpec,
    SampleStore,
};
use noc_monitor::{DirectionalFrames, FeatureFrame, FeatureKind, GroundTruth, LabeledSample};
use noc_sim::Direction;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::OnceLock;

const WORKLOADS: [&str; 6] = [
    "uniform",
    "tornado",
    "shuffle",
    "bit-complement",
    "blackscholes",
    "x264",
];
const GROUP_KEYS: [&str; 8] = [
    "workload",
    "fir",
    "mesh",
    "seed",
    "attackers",
    "class",
    "topology",
    "attack",
];

/// Builds a valid spec from drawn raw values (the strategy surface the
/// proptest shim offers is integer/float ranges, so enumerations are picked
/// by index).
#[allow(clippy::too_many_arguments)]
fn build_spec(
    mesh_a: usize,
    mesh_b: usize,
    fir_pct: u64,
    workload_i: usize,
    workload_j: usize,
    placements: usize,
    benign: usize,
    seed: u64,
    inj_ppm: u64,
    key_i: usize,
) -> CampaignSpec {
    let mut spec = CampaignSpec::quick(format!("prop-{seed}"));
    // Topology family and attack mix derive from the existing draws so the
    // property sweeps all three families and all attack axes for free.
    let kind = ["mesh", "torus", "ring"][(mesh_a + mesh_b) % 3];
    spec.grid.topology = if mesh_a == mesh_b {
        vec![format!("{kind}{mesh_a}")]
    } else {
        vec![format!("{kind}{mesh_a}"), format!("{kind}{mesh_b}")]
    };
    spec.grid.attack = match fir_pct % 4 {
        0 => vec![],
        1 => vec!["ddos2".to_string()],
        2 => vec!["stealth".to_string()],
        _ => vec![
            "fdos".to_string(),
            "ddos3".to_string(),
            "stealth".to_string(),
        ],
    };
    spec.grid.fir = vec![fir_pct as f64 / 100.0];
    spec.grid.workloads = if workload_i == workload_j {
        vec![WORKLOADS[workload_i].to_string()]
    } else {
        vec![
            WORKLOADS[workload_i].to_string(),
            WORKLOADS[workload_j].to_string(),
        ]
    };
    spec.grid.attack_placements = placements;
    spec.grid.benign_runs = benign;
    spec.grid.seeds = vec![seed];
    spec.grid.injection_rate = inj_ppm as f64 / 1_000_000.0;
    spec.report.group_by = vec![GROUP_KEYS[key_i].to_string()];
    spec
}

/// Renders the drawn grid as TOML (there is no TOML serializer in the
/// offline shim set, so the round-trip is text → spec → JSON → spec).
fn spec_toml(spec: &CampaignSpec) -> String {
    let topology: Vec<String> = spec
        .grid
        .topology
        .iter()
        .map(|t| format!("{t:?}"))
        .collect();
    let attack: Vec<String> = spec.grid.attack.iter().map(|a| format!("{a:?}")).collect();
    let workloads: Vec<String> = spec
        .grid
        .workloads
        .iter()
        .map(|w| format!("{w:?}"))
        .collect();
    format!(
        "name = {:?}\n[grid]\ntopology = [{}]\nattack = [{}]\nfir = [{}]\nworkloads = [{}]\n\
         attack_placements = {}\nbenign_runs = {}\nseeds = [{}]\ninjection_rate = {}\n\
         [report]\ngroup_by = [{:?}]\n",
        spec.name,
        topology.join(", "),
        attack.join(", "),
        spec.grid.fir[0],
        workloads.join(", "),
        spec.grid.attack_placements,
        spec.grid.benign_runs,
        spec.grid.seeds[0],
        spec.grid.injection_rate,
        spec.report.group_by[0],
    )
}

/// One executed tiny campaign, shared by the JSONL and resume properties so
/// no property pays for simulation 256 times.
fn seed_results() -> &'static (CampaignSpec, Vec<RunResult>) {
    static SEED: OnceLock<(CampaignSpec, Vec<RunResult>)> = OnceLock::new();
    SEED.get_or_init(|| {
        let mut spec = CampaignSpec::quick("prop-seed");
        spec.grid.mesh = vec![4];
        spec.grid.fir = vec![0.8];
        spec.grid.workloads = vec!["uniform".into()];
        spec.grid.attack_placements = 3;
        spec.grid.benign_runs = 2;
        spec.grid.seeds = vec![0xBADC0DE];
        spec.sim.warmup_cycles = 50;
        spec.sim.sample_period = 100;
        spec.sim.samples_per_run = 2;
        spec.sim.collect_samples = true;
        let outcome = Executor::new(2).execute(&spec).unwrap();
        (spec, outcome.runs)
    })
}

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("dl2fence-prop-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// splitmix64 — the partition/shuffle randomness of the merge properties
/// (deterministic per drawn seed, independent of the engine's own seeding).
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// In-place Fisher–Yates driven by [`splitmix`].
fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut state = seed;
    for i in (1..items.len()).rev() {
        state = splitmix(state);
        items.swap(i, (state % (i as u64 + 1)) as usize);
    }
}

/// A deterministic synthetic result for `run` — exactly lossless under the
/// JSONL codec, so grid-arbitrary merge properties need no simulation.
fn synthetic_result(run: &RunSpec) -> RunResult {
    let i = run.index as f64;
    RunResult {
        spec: run.clone(),
        metrics: RunMetrics {
            packet_latency: 10.0 + i * 0.5,
            packet_queue_latency: 2.0 + i * 0.25,
            flit_latency: 8.0 + i * 0.125,
            flit_queue_latency: 1.0 + i,
            packets_created: 1000 + run.index as u64,
            packets_received: 900 + run.index as u64,
            malicious_packets_received: run.index as u64 % 7,
            saturated: run.index.is_multiple_of(3),
            energy_nj: 5000.0 + i * 3.0,
            power_mw: 12.0 + i * 0.0625,
        },
        samples: Vec::new(),
    }
}

/// Writes `results` partitioned into `count` campaign directories under
/// `base` (run `i` goes to the shard `assign(i)` picks), each shard's log
/// in a drawn completion order, and returns the shard paths.
fn write_partitioned_shards(
    base: &std::path::Path,
    spec: &CampaignSpec,
    results: &[RunResult],
    count: usize,
    assign: impl Fn(usize) -> usize,
    shuffle_seed: u64,
) -> Vec<PathBuf> {
    let mut buckets: Vec<Vec<&RunResult>> = (0..count).map(|_| Vec::new()).collect();
    for (i, result) in results.iter().enumerate() {
        buckets[assign(i) % count].push(result);
    }
    buckets
        .into_iter()
        .enumerate()
        .map(|(s, mut bucket)| {
            // Out-of-order completion within the shard.
            shuffle(&mut bucket, splitmix(shuffle_seed ^ s as u64));
            let root = base.join(format!("shard-{s}"));
            CampaignDir::create(&root, spec, results.len()).unwrap();
            let log: String = bucket
                .iter()
                .map(|r| format!("{}\n", serde_json::to_string(r).unwrap()))
                .collect();
            std::fs::write(root.join(RUNS_FILE), log).unwrap();
            root
        })
        .collect()
}

proptest! {
    #[test]
    fn spec_round_trips_through_toml_and_json(
        mesh_a in 2usize..12,
        mesh_b in 2usize..12,
        fir_pct in 1u64..101,
        workload_i in 0usize..6,
        workload_j in 0usize..6,
        placements in 1usize..5,
        benign in 0usize..4,
        seed in 0u64..1_000_000_000_000,
        inj_ppm in 1u64..200_000,
        key_i in 0usize..8,
    ) {
        let spec = build_spec(
            mesh_a, mesh_b, fir_pct, workload_i, workload_j, placements,
            benign, seed, inj_ppm, key_i,
        );
        prop_assert!(spec.validate().is_ok(), "drawn spec must be valid");

        // TOML text → spec: every drawn field survives the parse.
        let from_toml = CampaignSpec::from_toml(&spec_toml(&spec))
            .map_err(|e| e.to_string())?;
        prop_assert_eq!(&from_toml.grid, &spec.grid);
        prop_assert_eq!(&from_toml.report.group_by, &spec.report.group_by);

        // spec → JSON → spec is the identity, and the fingerprint pins it.
        let json = serde_json::to_string(&spec).map_err(|e| e.to_string())?;
        let back = CampaignSpec::from_json(&json).map_err(|e| e.to_string())?;
        prop_assert_eq!(&back, &spec);
        prop_assert_eq!(spec_fingerprint(&back), spec_fingerprint(&spec));

        // The expansion contract: dense in-order indices, spec-derived seeds.
        let runs = expand(&spec).map_err(|e| e.to_string())?;
        for (i, run) in runs.iter().enumerate() {
            prop_assert_eq!(run.index, i);
            prop_assert_eq!(
                run.run_seed,
                dl2fence_campaign::derive_run_seed(run.campaign_seed, i)
            );
        }
    }

    #[test]
    fn run_result_jsonl_record_round_trips_losslessly(
        case in 0usize..5,
        latency_bits in 0u64..u64::MAX,
        energy_bits in 0u64..u64::MAX,
        packets in 0u64..u64::MAX,
    ) {
        // Real simulator output (frames included) with adversarial float
        // payloads grafted in: any finite f64 bit pattern must survive the
        // JSONL text codec bit-for-bit.
        let (_, results) = seed_results();
        let mut result = results[case % results.len()].clone();
        let graft = |bits: u64| {
            let f = f64::from_bits(bits);
            if f.is_finite() { f } else { bits as f64 / 7.0 }
        };
        result.metrics.packet_latency = graft(latency_bits);
        result.metrics.energy_nj = graft(energy_bits);
        result.metrics.packets_created = packets;

        let line = serde_json::to_string(&result).map_err(|e| e.to_string())?;
        prop_assert!(!line.contains('\n'), "a JSONL record is one line");
        let back: RunResult = serde_json::from_str(&line).map_err(|e| e.to_string())?;
        prop_assert_eq!(&back, &result);
        // Idempotent re-encode: scan+append cycles cannot drift.
        prop_assert_eq!(serde_json::to_string(&back).map_err(|e| e.to_string())?, line);
    }

    #[test]
    fn scan_recovers_exactly_the_missing_indices_after_any_prefix(
        keep in 0usize..9,
        chop in 1usize..40,
    ) {
        let (spec, results) = seed_results();
        let runs = expand(spec).map_err(|e| e.to_string())?;
        let keep = keep.min(results.len());

        let root = temp_root("scan");
        let dir = CampaignDir::create(&root, spec, results.len()).map_err(|e| e.to_string())?;
        let mut jsonl = String::new();
        for result in &results[..keep] {
            jsonl.push_str(&serde_json::to_string(result).map_err(|e| e.to_string())?);
            jsonl.push('\n');
        }
        if keep < results.len() {
            // A crash-truncated partial record of the next run.
            let next = serde_json::to_string(&results[keep]).map_err(|e| e.to_string())?;
            jsonl.push_str(&next[..chop.min(next.len() - 1)]);
        }
        std::fs::write(dir.runs_path(), &jsonl).map_err(|e| e.to_string())?;

        let index = dir.index_log(&runs).map_err(|e| e.to_string())?;
        prop_assert_eq!(index.completed(), keep);
        prop_assert_eq!(
            index.missing_indices(),
            (keep..results.len()).collect::<Vec<_>>()
        );
        std::fs::remove_dir_all(&root).map_err(|e| e.to_string())?;
    }
}

proptest! {
    /// Satellite of the sharding tentpole: for **arbitrary spec grids** and
    /// **arbitrary partitions** of the run matrix into 1–5 shards (strided
    /// like `campaign shard`, or fully irregular), with out-of-order
    /// completion inside every shard, `merge` rebuilds the report
    /// byte-identically to the single uninterrupted aggregation of the same
    /// runs. Results are synthetic (losslessly codable), so the property
    /// sweeps grids without paying for simulation.
    #[test]
    fn merge_of_any_partition_of_any_grid_is_byte_identical(
        mesh_a in 2usize..10,
        fir_pct in 1u64..101,
        workload_i in 0usize..6,
        workload_j in 0usize..6,
        placements in 1usize..5,
        benign in 0usize..4,
        seed in 0u64..1_000_000_000_000,
        shards in 1usize..6,
        assign_seed in 0u64..u64::MAX,
        shuffle_seed in 0u64..u64::MAX,
        strided in 0usize..2,
    ) {
        let spec = build_spec(
            mesh_a, mesh_a, fir_pct, workload_i, workload_j, placements,
            benign, seed, 20_000, seed as usize % 6,
        );
        let runs = expand(&spec).map_err(|e| e.to_string())?;
        let results: Vec<RunResult> = runs.iter().map(synthetic_result).collect();
        let reference = CampaignReport::build_with(
            &CampaignOutcome { spec: spec.clone(), runs: results.clone() },
            &Executor::new(1),
        )
        .map_err(|e| e.to_string())?
        .to_json();

        let base = temp_root("merge-grid");
        let inputs = write_partitioned_shards(
            &base,
            &spec,
            &results,
            shards,
            |i| if strided == 0 { i } else { (splitmix(assign_seed ^ i as u64)) as usize },
            shuffle_seed,
        );
        let merged = merge(&Executor::new(1), &inputs, base.join("merged"))
            .map_err(|e| e.to_string())?;
        prop_assert_eq!(merged.to_json(), reference);
        std::fs::remove_dir_all(&base).map_err(|e| e.to_string())?;
    }

    /// The same partition property over **real simulated runs** (frame
    /// payloads included): any 1–5-way split of the shared seed campaign's
    /// records, shuffled within each shard, merges back byte-identically to
    /// the uninterrupted `campaign run` report.
    #[test]
    fn merge_of_any_partition_of_simulated_runs_is_byte_identical(
        shards in 1usize..6,
        assign_seed in 0u64..u64::MAX,
        shuffle_seed in 0u64..u64::MAX,
    ) {
        let (spec, results) = seed_results();
        let reference = streamed_reference();
        let base = temp_root("merge-sim");
        let inputs = write_partitioned_shards(
            &base,
            spec,
            results,
            shards,
            |i| (splitmix(assign_seed ^ i as u64)) as usize,
            shuffle_seed,
        );
        let merged = merge(&Executor::new(2), &inputs, base.join("merged"))
            .map_err(|e| e.to_string())?;
        prop_assert_eq!(&merged.to_json(), reference);
        std::fs::remove_dir_all(&base).map_err(|e| e.to_string())?;
    }
}

/// The uninterrupted streaming report of [`seed_results`]' campaign,
/// computed once and shared by the 256 merge-partition cases.
fn streamed_reference() -> &'static String {
    static REFERENCE: OnceLock<String> = OnceLock::new();
    REFERENCE.get_or_init(|| {
        let (spec, _) = seed_results();
        let root = temp_root("merge-sim-reference");
        let report = run_streaming(&Executor::new(2), spec, &root).unwrap();
        std::fs::remove_dir_all(&root).unwrap();
        report.to_json()
    })
}

/// One synthetic directional frame bundle with deterministic dyadic pixel
/// values (exact under the JSON f32 codec), driven by [`splitmix`].
fn synthetic_frames(kind: FeatureKind, mesh: usize, state: &mut u64) -> DirectionalFrames {
    let frames = Direction::CARDINAL
        .into_iter()
        .map(|direction| {
            let data: Vec<f32> = (0..mesh * mesh)
                .map(|_| {
                    *state = splitmix(*state);
                    (*state % 256) as f32 / 256.0
                })
                .collect();
            FeatureFrame::new(direction, kind, mesh, mesh, data)
        })
        .collect();
    DirectionalFrames::new(frames)
}

/// A [`synthetic_result`] carrying `samples_per_run` synthetic labeled
/// samples whose ground truth mirrors the run's scenario — enough for the
/// eval phase to train on, with no simulation.
fn synthetic_sampled_result(run: &RunSpec, samples_per_run: usize) -> RunResult {
    let mut result = synthetic_result(run);
    let truth = if run.is_attack() {
        GroundTruth {
            under_attack: true,
            attackers: run.scenario.attackers.clone(),
            attack_pairs: run
                .scenario
                .attackers
                .iter()
                .map(|&a| (a, run.scenario.victim))
                .collect(),
            victims: vec![run.scenario.victim],
            rows: run.mesh,
            cols: run.mesh,
        }
    } else {
        GroundTruth::benign(run.mesh, run.mesh)
    };
    let mut state = splitmix(run.run_seed ^ 0x5A5A_5A5A);
    for _ in 0..samples_per_run {
        result.samples.push(LabeledSample {
            vco: synthetic_frames(FeatureKind::Vco, run.mesh, &mut state),
            boc: synthetic_frames(FeatureKind::Boc, run.mesh, &mut state),
            truth: truth.clone(),
            benchmark: run.workload.clone(),
        });
    }
    result
}

proptest! {
    /// The spill tentpole's core property: for **arbitrary grids** with the
    /// eval phase enabled and **arbitrary spill thresholds**, folding the
    /// same runs through a disk-spilling accumulator produces a report
    /// byte-identical to the all-in-memory build — while never retaining a
    /// threshold's worth of samples between folds.
    #[test]
    fn spilled_report_is_byte_identical_to_in_memory_for_any_grid(
        // DL2Fence's detector CNN needs at least a 4x4 mesh.
        mesh in 4usize..6,
        fir_pct in 1u64..101,
        workload_i in 0usize..6,
        placements in 1usize..4,
        benign in 1usize..3,
        seed in 0u64..1_000_000_000_000,
        // At least two samples per run: with the alternating 0.5 split,
        // every run (in particular every attack run — the localizer needs
        // one to train) then contributes a sample to the training side.
        samples_per_run in 2usize..4,
        threshold in 1usize..12,
    ) {
        let mut spec = build_spec(
            mesh, mesh, fir_pct, workload_i, workload_i, placements,
            benign, seed, 20_000, seed as usize % 6,
        );
        spec.sim.collect_samples = true;
        spec.sim.samples_per_run = samples_per_run;
        spec.eval.enabled = true;
        spec.eval.train_fraction = 0.5;
        spec.eval.detector_epochs = 1;
        spec.eval.localizer_epochs = 1;
        prop_assert!(spec.validate().is_ok(), "drawn spec must be valid");

        let runs = expand(&spec).map_err(|e| e.to_string())?;
        let results: Vec<RunResult> = runs
            .iter()
            .map(|r| synthetic_sampled_result(r, samples_per_run))
            .collect();
        let executor = Executor::new(1);
        let reference = CampaignReport::build_with(
            &CampaignOutcome { spec: spec.clone(), runs: results.clone() },
            &executor,
        )
        .map_err(|e| e.to_string())?
        .to_json();

        let root = temp_root("spill-grid");
        let store = SampleStore::attach(&root, &spec_fingerprint(&spec))
            .map_err(|e| e.to_string())?;
        let mut acc = ReportAccumulator::for_spec(&spec)
            .map_err(|e| e.to_string())?
            .with_spill(store, threshold);
        for result in &results {
            acc.try_fold(result).map_err(|e| e.to_string())?;
            prop_assert!(
                acc.retained_samples() < threshold,
                "retained {} samples at threshold {threshold}",
                acc.retained_samples()
            );
        }
        let spilled = acc.finish(&executor).map_err(|e| e.to_string())?.to_json();
        prop_assert_eq!(spilled, reference);
        std::fs::remove_dir_all(&root).map_err(|e| e.to_string())?;
    }

    /// Compact-then-resume equivalence: starting from an **arbitrary
    /// prefix** of the seed campaign's records, in arbitrary order, with
    /// arbitrary identical-duplicate injection and a torn tail, `compact`
    /// rewrites the log into index-ordered duplicate-free form and a
    /// subsequent resume still rebuilds the uninterrupted report
    /// byte-identically.
    #[test]
    fn compact_then_resume_matches_the_reference_after_any_prefix(
        keep in 2usize..6,
        dup_a in 0usize..8,
        dup_b in 0usize..8,
        shuffle_seed in 0u64..u64::MAX,
        chop in 5usize..60,
    ) {
        let (spec, results) = seed_results();
        let keep = keep.min(results.len());
        let root = temp_root("compact-resume");
        let dir = CampaignDir::create(&root, spec, results.len()).map_err(|e| e.to_string())?;

        let mut stored: Vec<&RunResult> = results[..keep].iter().collect();
        shuffle(&mut stored, shuffle_seed);
        let mut lines: Vec<String> = stored
            .iter()
            .map(|r| serde_json::to_string(r).map_err(|e| e.to_string()))
            .collect::<Result<_, _>>()?;
        // Duplicate two stored records (identical bytes — the legal kind).
        if !lines.is_empty() {
            lines.push(lines[dup_a % lines.len()].clone());
            lines.push(lines[dup_b % lines.len()].clone());
        }
        let mut jsonl: String = lines.iter().map(|l| format!("{l}\n")).collect();
        if keep < results.len() {
            // A torn half-record of the next run.
            let next = serde_json::to_string(&results[keep]).map_err(|e| e.to_string())?;
            jsonl.push_str(&next[..chop.min(next.len() - 1)]);
        }
        std::fs::write(dir.runs_path(), &jsonl).map_err(|e| e.to_string())?;

        let stats = compact(&root, false).map_err(|e| e.to_string())?;
        prop_assert_eq!(stats.records, keep);
        prop_assert_eq!(stats.dropped_duplicates, if keep == 0 { 0 } else { 2 });
        prop_assert_eq!(stats.healed_torn_tail, keep < results.len());

        let report = resume(&Executor::new(2), &root, Some(spec))
            .map_err(|e| e.to_string())?
            .expect("whole-campaign resume returns a report");
        prop_assert_eq!(&report.to_json(), streamed_reference());
        std::fs::remove_dir_all(&root).map_err(|e| e.to_string())?;
    }

    /// Compact-then-merge equivalence: an arbitrary 2-way partition of the
    /// seed campaign's records with duplicate injection on both sides,
    /// both directories compacted, merges into the reference report
    /// byte-identically (no simulation at all).
    #[test]
    fn compact_then_merge_matches_the_reference_for_any_partition(
        assign_seed in 0u64..u64::MAX,
        shuffle_seed in 0u64..u64::MAX,
        dup in 0usize..8,
    ) {
        let (spec, results) = seed_results();
        let base = temp_root("compact-merge");
        let inputs = write_partitioned_shards(
            &base,
            spec,
            results,
            2,
            |i| (splitmix(assign_seed ^ i as u64)) as usize,
            shuffle_seed,
        );
        // Inject an identical duplicate into each non-empty input, then
        // compact both.
        for input in &inputs {
            let log_path = input.join(RUNS_FILE);
            let log = std::fs::read_to_string(&log_path).map_err(|e| e.to_string())?;
            if let Some(line) = log.lines().nth(dup % log.lines().count().max(1)) {
                let dup_line = line.to_string();
                std::fs::write(&log_path, format!("{log}{dup_line}\n"))
                    .map_err(|e| e.to_string())?;
            }
            compact(input, false).map_err(|e| e.to_string())?;
        }
        let merged = merge(&Executor::new(2), &inputs, base.join("merged"))
            .map_err(|e| e.to_string())?;
        prop_assert_eq!(&merged.to_json(), streamed_reference());
        std::fs::remove_dir_all(&base).map_err(|e| e.to_string())?;
    }

    /// `campaign status` reports exactly the gap list the log index
    /// computes, for any stored subset of the run matrix.
    #[test]
    fn status_gap_list_matches_the_log_index(
        mask in 0u64..32,
        shuffle_seed in 0u64..u64::MAX,
    ) {
        let (spec, results) = seed_results();
        let root = temp_root("status-gaps");
        let dir = CampaignDir::create(&root, spec, results.len()).map_err(|e| e.to_string())?;
        let mut stored: Vec<&RunResult> = results
            .iter()
            .enumerate()
            .filter_map(|(i, r)| (mask & (1 << i) != 0).then_some(r))
            .collect();
        shuffle(&mut stored, shuffle_seed);
        let jsonl: String = stored
            .iter()
            .map(|r| format!("{}\n", serde_json::to_string(r).unwrap()))
            .collect();
        std::fs::write(dir.runs_path(), jsonl).map_err(|e| e.to_string())?;

        let runs = expand(spec).map_err(|e| e.to_string())?;
        let index = dir.index_log(&runs).map_err(|e| e.to_string())?;
        let report = status(std::slice::from_ref(&root)).map_err(|e| e.to_string())?;
        prop_assert_eq!(&report.dirs[0].missing, &index.missing_indices());
        prop_assert_eq!(report.dirs[0].completed, index.completed());
        prop_assert_eq!(
            report.union_missing.as_ref().expect("one fingerprint"),
            &index.missing_indices()
        );
        std::fs::remove_dir_all(&root).map_err(|e| e.to_string())?;
    }
}

/// Full resume equality over every possible prefix length — the executable
/// complement of the scan property (kept out of the 256-case proptest loop
/// because each resume re-runs real simulations).
#[test]
fn resume_after_every_prefix_matches_the_uninterrupted_report() {
    let (spec, results) = seed_results();
    let full_root = temp_root("resume-full");
    let reference = run_streaming(&Executor::new(2), spec, &full_root)
        .unwrap()
        .to_json();
    std::fs::remove_dir_all(&full_root).unwrap();

    for keep in 0..=results.len() {
        let root = temp_root(&format!("resume-{keep}"));
        let dir = CampaignDir::create(&root, spec, results.len()).unwrap();
        let mut jsonl = String::new();
        for result in &results[..keep] {
            jsonl.push_str(&serde_json::to_string(result).unwrap());
            jsonl.push('\n');
        }
        std::fs::write(root.join(RUNS_FILE), &jsonl).unwrap();
        drop(dir);

        let report = resume(&Executor::new(3), &root, Some(spec))
            .unwrap()
            .unwrap();
        assert_eq!(report.to_json(), reference, "prefix {keep} diverged");
        std::fs::remove_dir_all(&root).unwrap();
    }
}
