//! Property tests of the spec and streaming codecs: TOML/JSON spec
//! round-trips over arbitrary grids, lossless RunResult JSONL
//! encode/decode, and resume-after-arbitrary-prefix scan recovery.

use dl2fence_campaign::stream::{CampaignDir, RUNS_FILE};
use dl2fence_campaign::{
    expand, resume, run_streaming, spec_fingerprint, CampaignSpec, Executor, RunResult,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::OnceLock;

const WORKLOADS: [&str; 6] = [
    "uniform",
    "tornado",
    "shuffle",
    "bit-complement",
    "blackscholes",
    "x264",
];
const GROUP_KEYS: [&str; 6] = ["workload", "fir", "mesh", "seed", "attackers", "class"];

/// Builds a valid spec from drawn raw values (the strategy surface the
/// proptest shim offers is integer/float ranges, so enumerations are picked
/// by index).
#[allow(clippy::too_many_arguments)]
fn build_spec(
    mesh_a: usize,
    mesh_b: usize,
    fir_pct: u64,
    workload_i: usize,
    workload_j: usize,
    placements: usize,
    benign: usize,
    seed: u64,
    inj_ppm: u64,
    key_i: usize,
) -> CampaignSpec {
    let mut spec = CampaignSpec::quick(format!("prop-{seed}"));
    spec.grid.mesh = if mesh_a == mesh_b {
        vec![mesh_a]
    } else {
        vec![mesh_a, mesh_b]
    };
    spec.grid.fir = vec![fir_pct as f64 / 100.0];
    spec.grid.workloads = if workload_i == workload_j {
        vec![WORKLOADS[workload_i].to_string()]
    } else {
        vec![
            WORKLOADS[workload_i].to_string(),
            WORKLOADS[workload_j].to_string(),
        ]
    };
    spec.grid.attack_placements = placements;
    spec.grid.benign_runs = benign;
    spec.grid.seeds = vec![seed];
    spec.grid.injection_rate = inj_ppm as f64 / 1_000_000.0;
    spec.report.group_by = vec![GROUP_KEYS[key_i].to_string()];
    spec
}

/// Renders the drawn grid as TOML (there is no TOML serializer in the
/// offline shim set, so the round-trip is text → spec → JSON → spec).
fn spec_toml(spec: &CampaignSpec) -> String {
    let mesh: Vec<String> = spec.grid.mesh.iter().map(|m| m.to_string()).collect();
    let workloads: Vec<String> = spec
        .grid
        .workloads
        .iter()
        .map(|w| format!("{w:?}"))
        .collect();
    format!(
        "name = {:?}\n[grid]\nmesh = [{}]\nfir = [{}]\nworkloads = [{}]\n\
         attack_placements = {}\nbenign_runs = {}\nseeds = [{}]\ninjection_rate = {}\n\
         [report]\ngroup_by = [{:?}]\n",
        spec.name,
        mesh.join(", "),
        spec.grid.fir[0],
        workloads.join(", "),
        spec.grid.attack_placements,
        spec.grid.benign_runs,
        spec.grid.seeds[0],
        spec.grid.injection_rate,
        spec.report.group_by[0],
    )
}

/// One executed tiny campaign, shared by the JSONL and resume properties so
/// no property pays for simulation 256 times.
fn seed_results() -> &'static (CampaignSpec, Vec<RunResult>) {
    static SEED: OnceLock<(CampaignSpec, Vec<RunResult>)> = OnceLock::new();
    SEED.get_or_init(|| {
        let mut spec = CampaignSpec::quick("prop-seed");
        spec.grid.mesh = vec![4];
        spec.grid.fir = vec![0.8];
        spec.grid.workloads = vec!["uniform".into()];
        spec.grid.attack_placements = 3;
        spec.grid.benign_runs = 2;
        spec.grid.seeds = vec![0xBADC0DE];
        spec.sim.warmup_cycles = 50;
        spec.sim.sample_period = 100;
        spec.sim.samples_per_run = 2;
        spec.sim.collect_samples = true;
        let outcome = Executor::new(2).execute(&spec).unwrap();
        (spec, outcome.runs)
    })
}

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("dl2fence-prop-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

proptest! {
    #[test]
    fn spec_round_trips_through_toml_and_json(
        mesh_a in 2usize..12,
        mesh_b in 2usize..12,
        fir_pct in 1u64..101,
        workload_i in 0usize..6,
        workload_j in 0usize..6,
        placements in 1usize..5,
        benign in 0usize..4,
        seed in 0u64..1_000_000_000_000,
        inj_ppm in 1u64..200_000,
        key_i in 0usize..6,
    ) {
        let spec = build_spec(
            mesh_a, mesh_b, fir_pct, workload_i, workload_j, placements,
            benign, seed, inj_ppm, key_i,
        );
        prop_assert!(spec.validate().is_ok(), "drawn spec must be valid");

        // TOML text → spec: every drawn field survives the parse.
        let from_toml = CampaignSpec::from_toml(&spec_toml(&spec))
            .map_err(|e| e.to_string())?;
        prop_assert_eq!(&from_toml.grid, &spec.grid);
        prop_assert_eq!(&from_toml.report.group_by, &spec.report.group_by);

        // spec → JSON → spec is the identity, and the fingerprint pins it.
        let json = serde_json::to_string(&spec).map_err(|e| e.to_string())?;
        let back = CampaignSpec::from_json(&json).map_err(|e| e.to_string())?;
        prop_assert_eq!(&back, &spec);
        prop_assert_eq!(spec_fingerprint(&back), spec_fingerprint(&spec));

        // The expansion contract: dense in-order indices, spec-derived seeds.
        let runs = expand(&spec).map_err(|e| e.to_string())?;
        for (i, run) in runs.iter().enumerate() {
            prop_assert_eq!(run.index, i);
            prop_assert_eq!(
                run.run_seed,
                dl2fence_campaign::derive_run_seed(run.campaign_seed, i)
            );
        }
    }

    #[test]
    fn run_result_jsonl_record_round_trips_losslessly(
        case in 0usize..5,
        latency_bits in 0u64..u64::MAX,
        energy_bits in 0u64..u64::MAX,
        packets in 0u64..u64::MAX,
    ) {
        // Real simulator output (frames included) with adversarial float
        // payloads grafted in: any finite f64 bit pattern must survive the
        // JSONL text codec bit-for-bit.
        let (_, results) = seed_results();
        let mut result = results[case % results.len()].clone();
        let graft = |bits: u64| {
            let f = f64::from_bits(bits);
            if f.is_finite() { f } else { bits as f64 / 7.0 }
        };
        result.metrics.packet_latency = graft(latency_bits);
        result.metrics.energy_nj = graft(energy_bits);
        result.metrics.packets_created = packets;

        let line = serde_json::to_string(&result).map_err(|e| e.to_string())?;
        prop_assert!(!line.contains('\n'), "a JSONL record is one line");
        let back: RunResult = serde_json::from_str(&line).map_err(|e| e.to_string())?;
        prop_assert_eq!(&back, &result);
        // Idempotent re-encode: scan+append cycles cannot drift.
        prop_assert_eq!(serde_json::to_string(&back).map_err(|e| e.to_string())?, line);
    }

    #[test]
    fn scan_recovers_exactly_the_missing_indices_after_any_prefix(
        keep in 0usize..9,
        chop in 1usize..40,
    ) {
        let (spec, results) = seed_results();
        let runs = expand(spec).map_err(|e| e.to_string())?;
        let keep = keep.min(results.len());

        let root = temp_root("scan");
        let dir = CampaignDir::create(&root, spec, results.len()).map_err(|e| e.to_string())?;
        let mut jsonl = String::new();
        for result in &results[..keep] {
            jsonl.push_str(&serde_json::to_string(result).map_err(|e| e.to_string())?);
            jsonl.push('\n');
        }
        if keep < results.len() {
            // A crash-truncated partial record of the next run.
            let next = serde_json::to_string(&results[keep]).map_err(|e| e.to_string())?;
            jsonl.push_str(&next[..chop.min(next.len() - 1)]);
        }
        std::fs::write(dir.runs_path(), &jsonl).map_err(|e| e.to_string())?;

        let scan = dir.scan(&runs).map_err(|e| e.to_string())?;
        prop_assert_eq!(scan.completed(), keep);
        prop_assert_eq!(
            scan.missing_indices(),
            (keep..results.len()).collect::<Vec<_>>()
        );
        std::fs::remove_dir_all(&root).map_err(|e| e.to_string())?;
    }
}

/// Full resume equality over every possible prefix length — the executable
/// complement of the scan property (kept out of the 256-case proptest loop
/// because each resume re-runs real simulations).
#[test]
fn resume_after_every_prefix_matches_the_uninterrupted_report() {
    let (spec, results) = seed_results();
    let full_root = temp_root("resume-full");
    let reference = run_streaming(&Executor::new(2), spec, &full_root)
        .unwrap()
        .to_json();
    std::fs::remove_dir_all(&full_root).unwrap();

    for keep in 0..=results.len() {
        let root = temp_root(&format!("resume-{keep}"));
        let dir = CampaignDir::create(&root, spec, results.len()).unwrap();
        let mut jsonl = String::new();
        for result in &results[..keep] {
            jsonl.push_str(&serde_json::to_string(result).unwrap());
            jsonl.push('\n');
        }
        std::fs::write(root.join(RUNS_FILE), &jsonl).unwrap();
        drop(dir);

        let report = resume(&Executor::new(3), &root, Some(spec)).unwrap();
        assert_eq!(report.to_json(), reference, "prefix {keep} diverged");
        std::fs::remove_dir_all(&root).unwrap();
    }
}
