//! Property tests of the spec and streaming codecs: TOML/JSON spec
//! round-trips over arbitrary grids, lossless RunResult JSONL
//! encode/decode, resume-after-arbitrary-prefix scan recovery, and
//! shard-merge byte-identity over arbitrary partitions of the run matrix.

use dl2fence_campaign::stream::{CampaignDir, RUNS_FILE};
use dl2fence_campaign::{
    expand, merge, resume, run_streaming, spec_fingerprint, CampaignOutcome, CampaignReport,
    CampaignSpec, Executor, RunMetrics, RunResult, RunSpec,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::OnceLock;

const WORKLOADS: [&str; 6] = [
    "uniform",
    "tornado",
    "shuffle",
    "bit-complement",
    "blackscholes",
    "x264",
];
const GROUP_KEYS: [&str; 6] = ["workload", "fir", "mesh", "seed", "attackers", "class"];

/// Builds a valid spec from drawn raw values (the strategy surface the
/// proptest shim offers is integer/float ranges, so enumerations are picked
/// by index).
#[allow(clippy::too_many_arguments)]
fn build_spec(
    mesh_a: usize,
    mesh_b: usize,
    fir_pct: u64,
    workload_i: usize,
    workload_j: usize,
    placements: usize,
    benign: usize,
    seed: u64,
    inj_ppm: u64,
    key_i: usize,
) -> CampaignSpec {
    let mut spec = CampaignSpec::quick(format!("prop-{seed}"));
    spec.grid.mesh = if mesh_a == mesh_b {
        vec![mesh_a]
    } else {
        vec![mesh_a, mesh_b]
    };
    spec.grid.fir = vec![fir_pct as f64 / 100.0];
    spec.grid.workloads = if workload_i == workload_j {
        vec![WORKLOADS[workload_i].to_string()]
    } else {
        vec![
            WORKLOADS[workload_i].to_string(),
            WORKLOADS[workload_j].to_string(),
        ]
    };
    spec.grid.attack_placements = placements;
    spec.grid.benign_runs = benign;
    spec.grid.seeds = vec![seed];
    spec.grid.injection_rate = inj_ppm as f64 / 1_000_000.0;
    spec.report.group_by = vec![GROUP_KEYS[key_i].to_string()];
    spec
}

/// Renders the drawn grid as TOML (there is no TOML serializer in the
/// offline shim set, so the round-trip is text → spec → JSON → spec).
fn spec_toml(spec: &CampaignSpec) -> String {
    let mesh: Vec<String> = spec.grid.mesh.iter().map(|m| m.to_string()).collect();
    let workloads: Vec<String> = spec
        .grid
        .workloads
        .iter()
        .map(|w| format!("{w:?}"))
        .collect();
    format!(
        "name = {:?}\n[grid]\nmesh = [{}]\nfir = [{}]\nworkloads = [{}]\n\
         attack_placements = {}\nbenign_runs = {}\nseeds = [{}]\ninjection_rate = {}\n\
         [report]\ngroup_by = [{:?}]\n",
        spec.name,
        mesh.join(", "),
        spec.grid.fir[0],
        workloads.join(", "),
        spec.grid.attack_placements,
        spec.grid.benign_runs,
        spec.grid.seeds[0],
        spec.grid.injection_rate,
        spec.report.group_by[0],
    )
}

/// One executed tiny campaign, shared by the JSONL and resume properties so
/// no property pays for simulation 256 times.
fn seed_results() -> &'static (CampaignSpec, Vec<RunResult>) {
    static SEED: OnceLock<(CampaignSpec, Vec<RunResult>)> = OnceLock::new();
    SEED.get_or_init(|| {
        let mut spec = CampaignSpec::quick("prop-seed");
        spec.grid.mesh = vec![4];
        spec.grid.fir = vec![0.8];
        spec.grid.workloads = vec!["uniform".into()];
        spec.grid.attack_placements = 3;
        spec.grid.benign_runs = 2;
        spec.grid.seeds = vec![0xBADC0DE];
        spec.sim.warmup_cycles = 50;
        spec.sim.sample_period = 100;
        spec.sim.samples_per_run = 2;
        spec.sim.collect_samples = true;
        let outcome = Executor::new(2).execute(&spec).unwrap();
        (spec, outcome.runs)
    })
}

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("dl2fence-prop-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// splitmix64 — the partition/shuffle randomness of the merge properties
/// (deterministic per drawn seed, independent of the engine's own seeding).
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// In-place Fisher–Yates driven by [`splitmix`].
fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut state = seed;
    for i in (1..items.len()).rev() {
        state = splitmix(state);
        items.swap(i, (state % (i as u64 + 1)) as usize);
    }
}

/// A deterministic synthetic result for `run` — exactly lossless under the
/// JSONL codec, so grid-arbitrary merge properties need no simulation.
fn synthetic_result(run: &RunSpec) -> RunResult {
    let i = run.index as f64;
    RunResult {
        spec: run.clone(),
        metrics: RunMetrics {
            packet_latency: 10.0 + i * 0.5,
            packet_queue_latency: 2.0 + i * 0.25,
            flit_latency: 8.0 + i * 0.125,
            flit_queue_latency: 1.0 + i,
            packets_created: 1000 + run.index as u64,
            packets_received: 900 + run.index as u64,
            malicious_packets_received: run.index as u64 % 7,
            saturated: run.index.is_multiple_of(3),
            energy_nj: 5000.0 + i * 3.0,
            power_mw: 12.0 + i * 0.0625,
        },
        samples: Vec::new(),
    }
}

/// Writes `results` partitioned into `count` campaign directories under
/// `base` (run `i` goes to the shard `assign(i)` picks), each shard's log
/// in a drawn completion order, and returns the shard paths.
fn write_partitioned_shards(
    base: &std::path::Path,
    spec: &CampaignSpec,
    results: &[RunResult],
    count: usize,
    assign: impl Fn(usize) -> usize,
    shuffle_seed: u64,
) -> Vec<PathBuf> {
    let mut buckets: Vec<Vec<&RunResult>> = (0..count).map(|_| Vec::new()).collect();
    for (i, result) in results.iter().enumerate() {
        buckets[assign(i) % count].push(result);
    }
    buckets
        .into_iter()
        .enumerate()
        .map(|(s, mut bucket)| {
            // Out-of-order completion within the shard.
            shuffle(&mut bucket, splitmix(shuffle_seed ^ s as u64));
            let root = base.join(format!("shard-{s}"));
            CampaignDir::create(&root, spec, results.len()).unwrap();
            let log: String = bucket
                .iter()
                .map(|r| format!("{}\n", serde_json::to_string(r).unwrap()))
                .collect();
            std::fs::write(root.join(RUNS_FILE), log).unwrap();
            root
        })
        .collect()
}

proptest! {
    #[test]
    fn spec_round_trips_through_toml_and_json(
        mesh_a in 2usize..12,
        mesh_b in 2usize..12,
        fir_pct in 1u64..101,
        workload_i in 0usize..6,
        workload_j in 0usize..6,
        placements in 1usize..5,
        benign in 0usize..4,
        seed in 0u64..1_000_000_000_000,
        inj_ppm in 1u64..200_000,
        key_i in 0usize..6,
    ) {
        let spec = build_spec(
            mesh_a, mesh_b, fir_pct, workload_i, workload_j, placements,
            benign, seed, inj_ppm, key_i,
        );
        prop_assert!(spec.validate().is_ok(), "drawn spec must be valid");

        // TOML text → spec: every drawn field survives the parse.
        let from_toml = CampaignSpec::from_toml(&spec_toml(&spec))
            .map_err(|e| e.to_string())?;
        prop_assert_eq!(&from_toml.grid, &spec.grid);
        prop_assert_eq!(&from_toml.report.group_by, &spec.report.group_by);

        // spec → JSON → spec is the identity, and the fingerprint pins it.
        let json = serde_json::to_string(&spec).map_err(|e| e.to_string())?;
        let back = CampaignSpec::from_json(&json).map_err(|e| e.to_string())?;
        prop_assert_eq!(&back, &spec);
        prop_assert_eq!(spec_fingerprint(&back), spec_fingerprint(&spec));

        // The expansion contract: dense in-order indices, spec-derived seeds.
        let runs = expand(&spec).map_err(|e| e.to_string())?;
        for (i, run) in runs.iter().enumerate() {
            prop_assert_eq!(run.index, i);
            prop_assert_eq!(
                run.run_seed,
                dl2fence_campaign::derive_run_seed(run.campaign_seed, i)
            );
        }
    }

    #[test]
    fn run_result_jsonl_record_round_trips_losslessly(
        case in 0usize..5,
        latency_bits in 0u64..u64::MAX,
        energy_bits in 0u64..u64::MAX,
        packets in 0u64..u64::MAX,
    ) {
        // Real simulator output (frames included) with adversarial float
        // payloads grafted in: any finite f64 bit pattern must survive the
        // JSONL text codec bit-for-bit.
        let (_, results) = seed_results();
        let mut result = results[case % results.len()].clone();
        let graft = |bits: u64| {
            let f = f64::from_bits(bits);
            if f.is_finite() { f } else { bits as f64 / 7.0 }
        };
        result.metrics.packet_latency = graft(latency_bits);
        result.metrics.energy_nj = graft(energy_bits);
        result.metrics.packets_created = packets;

        let line = serde_json::to_string(&result).map_err(|e| e.to_string())?;
        prop_assert!(!line.contains('\n'), "a JSONL record is one line");
        let back: RunResult = serde_json::from_str(&line).map_err(|e| e.to_string())?;
        prop_assert_eq!(&back, &result);
        // Idempotent re-encode: scan+append cycles cannot drift.
        prop_assert_eq!(serde_json::to_string(&back).map_err(|e| e.to_string())?, line);
    }

    #[test]
    fn scan_recovers_exactly_the_missing_indices_after_any_prefix(
        keep in 0usize..9,
        chop in 1usize..40,
    ) {
        let (spec, results) = seed_results();
        let runs = expand(spec).map_err(|e| e.to_string())?;
        let keep = keep.min(results.len());

        let root = temp_root("scan");
        let dir = CampaignDir::create(&root, spec, results.len()).map_err(|e| e.to_string())?;
        let mut jsonl = String::new();
        for result in &results[..keep] {
            jsonl.push_str(&serde_json::to_string(result).map_err(|e| e.to_string())?);
            jsonl.push('\n');
        }
        if keep < results.len() {
            // A crash-truncated partial record of the next run.
            let next = serde_json::to_string(&results[keep]).map_err(|e| e.to_string())?;
            jsonl.push_str(&next[..chop.min(next.len() - 1)]);
        }
        std::fs::write(dir.runs_path(), &jsonl).map_err(|e| e.to_string())?;

        let index = dir.index_log(&runs).map_err(|e| e.to_string())?;
        prop_assert_eq!(index.completed(), keep);
        prop_assert_eq!(
            index.missing_indices(),
            (keep..results.len()).collect::<Vec<_>>()
        );
        std::fs::remove_dir_all(&root).map_err(|e| e.to_string())?;
    }
}

proptest! {
    /// Satellite of the sharding tentpole: for **arbitrary spec grids** and
    /// **arbitrary partitions** of the run matrix into 1–5 shards (strided
    /// like `campaign shard`, or fully irregular), with out-of-order
    /// completion inside every shard, `merge` rebuilds the report
    /// byte-identically to the single uninterrupted aggregation of the same
    /// runs. Results are synthetic (losslessly codable), so the property
    /// sweeps grids without paying for simulation.
    #[test]
    fn merge_of_any_partition_of_any_grid_is_byte_identical(
        mesh_a in 2usize..10,
        fir_pct in 1u64..101,
        workload_i in 0usize..6,
        workload_j in 0usize..6,
        placements in 1usize..5,
        benign in 0usize..4,
        seed in 0u64..1_000_000_000_000,
        shards in 1usize..6,
        assign_seed in 0u64..u64::MAX,
        shuffle_seed in 0u64..u64::MAX,
        strided in 0usize..2,
    ) {
        let spec = build_spec(
            mesh_a, mesh_a, fir_pct, workload_i, workload_j, placements,
            benign, seed, 20_000, seed as usize % 6,
        );
        let runs = expand(&spec).map_err(|e| e.to_string())?;
        let results: Vec<RunResult> = runs.iter().map(synthetic_result).collect();
        let reference = CampaignReport::build_with(
            &CampaignOutcome { spec: spec.clone(), runs: results.clone() },
            &Executor::new(1),
        )
        .map_err(|e| e.to_string())?
        .to_json();

        let base = temp_root("merge-grid");
        let inputs = write_partitioned_shards(
            &base,
            &spec,
            &results,
            shards,
            |i| if strided == 0 { i } else { (splitmix(assign_seed ^ i as u64)) as usize },
            shuffle_seed,
        );
        let merged = merge(&Executor::new(1), &inputs, base.join("merged"))
            .map_err(|e| e.to_string())?;
        prop_assert_eq!(merged.to_json(), reference);
        std::fs::remove_dir_all(&base).map_err(|e| e.to_string())?;
    }

    /// The same partition property over **real simulated runs** (frame
    /// payloads included): any 1–5-way split of the shared seed campaign's
    /// records, shuffled within each shard, merges back byte-identically to
    /// the uninterrupted `campaign run` report.
    #[test]
    fn merge_of_any_partition_of_simulated_runs_is_byte_identical(
        shards in 1usize..6,
        assign_seed in 0u64..u64::MAX,
        shuffle_seed in 0u64..u64::MAX,
    ) {
        let (spec, results) = seed_results();
        let reference = streamed_reference();
        let base = temp_root("merge-sim");
        let inputs = write_partitioned_shards(
            &base,
            spec,
            results,
            shards,
            |i| (splitmix(assign_seed ^ i as u64)) as usize,
            shuffle_seed,
        );
        let merged = merge(&Executor::new(2), &inputs, base.join("merged"))
            .map_err(|e| e.to_string())?;
        prop_assert_eq!(&merged.to_json(), reference);
        std::fs::remove_dir_all(&base).map_err(|e| e.to_string())?;
    }
}

/// The uninterrupted streaming report of [`seed_results`]' campaign,
/// computed once and shared by the 256 merge-partition cases.
fn streamed_reference() -> &'static String {
    static REFERENCE: OnceLock<String> = OnceLock::new();
    REFERENCE.get_or_init(|| {
        let (spec, _) = seed_results();
        let root = temp_root("merge-sim-reference");
        let report = run_streaming(&Executor::new(2), spec, &root).unwrap();
        std::fs::remove_dir_all(&root).unwrap();
        report.to_json()
    })
}

/// Full resume equality over every possible prefix length — the executable
/// complement of the scan property (kept out of the 256-case proptest loop
/// because each resume re-runs real simulations).
#[test]
fn resume_after_every_prefix_matches_the_uninterrupted_report() {
    let (spec, results) = seed_results();
    let full_root = temp_root("resume-full");
    let reference = run_streaming(&Executor::new(2), spec, &full_root)
        .unwrap()
        .to_json();
    std::fs::remove_dir_all(&full_root).unwrap();

    for keep in 0..=results.len() {
        let root = temp_root(&format!("resume-{keep}"));
        let dir = CampaignDir::create(&root, spec, results.len()).unwrap();
        let mut jsonl = String::new();
        for result in &results[..keep] {
            jsonl.push_str(&serde_json::to_string(result).unwrap());
            jsonl.push('\n');
        }
        std::fs::write(root.join(RUNS_FILE), &jsonl).unwrap();
        drop(dir);

        let report = resume(&Executor::new(3), &root, Some(spec))
            .unwrap()
            .unwrap();
        assert_eq!(report.to_json(), reference, "prefix {keep} diverged");
        std::fs::remove_dir_all(&root).unwrap();
    }
}
