//! Backward-compatibility proof for the topology axis redesign: a legacy
//! `grid.mesh = [N]` spec and its `grid.topology = ["meshN"]` rewrite are
//! the same campaign — equal in-memory specs, equal fingerprints, and
//! byte-identical reports — while the new torus/ring topologies and
//! distributed/stealthy attack families execute end to end.

use dl2fence_campaign::{expand, spec_fingerprint, CampaignReport, CampaignSpec, Executor};

/// Shared body for the legacy/rewrite pair: everything but the `[grid]`
/// topology axis line.
fn spec_with_grid_axis(axis_line: &str) -> String {
    format!(
        r#"
name = "compat"

[sim]
warmup_cycles = 100
sample_period = 200
samples_per_run = 2
collect_samples = false

[grid]
{axis_line}
fir = [0.6]
workloads = ["uniform"]
attack_placements = 2
benign_runs = 1
seeds = [7]

[report]
group_by = ["workload", "class"]
"#
    )
}

#[test]
fn legacy_mesh_spec_and_topology_rewrite_are_the_same_campaign() {
    let legacy = CampaignSpec::from_toml(&spec_with_grid_axis("mesh = [4]")).unwrap();
    let rewrite = CampaignSpec::from_toml(&spec_with_grid_axis("topology = [\"mesh4\"]")).unwrap();

    // Loading normalizes the deprecated axis away, so the two specs are the
    // same value — which is what makes every downstream artifact identical.
    assert_eq!(legacy, rewrite);
    assert!(
        legacy.grid.mesh.is_empty(),
        "normalize must clear the alias"
    );
    assert_eq!(legacy.grid.topology, vec!["mesh4".to_string()]);

    // Same fingerprint: streamed campaign directories started under the old
    // spelling resume under the new one.
    assert_eq!(spec_fingerprint(&legacy), spec_fingerprint(&rewrite));

    // Same report, byte for byte.
    let legacy_json = CampaignReport::build(&Executor::new(2).execute(&legacy).unwrap())
        .unwrap()
        .to_json();
    let rewrite_json = CampaignReport::build(&Executor::new(2).execute(&rewrite).unwrap())
        .unwrap()
        .to_json();
    assert_eq!(legacy_json, rewrite_json);
}

#[test]
fn setting_both_axes_is_refused_with_a_migration_hint() {
    let toml = spec_with_grid_axis("mesh = [4]\ntopology = [\"torus4\"]");
    let err = CampaignSpec::from_toml(&toml).unwrap_err().to_string();
    assert!(err.contains("mutually exclusive"), "got: {err}");
    assert!(err.contains("mesh<N>"), "got: {err}");
}

#[test]
fn torus_and_ring_campaigns_with_new_attack_families_execute_end_to_end() {
    let mut spec =
        CampaignSpec::from_toml(&spec_with_grid_axis("topology = [\"torus4\", \"ring2x8\"]"))
            .unwrap();
    spec.grid.attack = vec!["ddos2".into(), "stealth".into()];

    let runs = expand(&spec).unwrap();
    // topologies(2) × workloads(1) × (benign(1) + firs(1) × attacks(2) × placements(2))
    assert_eq!(runs.len(), 2 * (1 + 2 * 2));
    let outcome = Executor::new(2).execute(&spec).unwrap();
    let report = CampaignReport::build(&outcome).unwrap();
    assert_eq!(report.total_runs, runs.len());

    // Every run simulated real traffic on its topology.
    for run in &outcome.runs {
        assert!(
            run.metrics.packets_received > 0,
            "run {} delivered nothing",
            run.spec.index
        );
    }
    // Distributed attacks place every source away from the victim.
    for run in runs.iter().filter(|r| r.attack == "ddos2") {
        assert_eq!(run.scenario.attackers.len(), 2);
        assert!(!run.scenario.attackers.contains(&run.scenario.victim));
    }
    assert!(runs.iter().any(|r| r.attack == "stealth"));
    assert!(runs.iter().any(|r| r.topology == "ring2x8" && r.mesh == 2));
}

#[test]
fn topology_and_attack_group_axes_appear_in_the_report() {
    let mut spec =
        CampaignSpec::from_toml(&spec_with_grid_axis("topology = [\"torus4\"]")).unwrap();
    spec.grid.attack = vec!["fdos".into(), "ddos3".into()];
    spec.report.group_by = vec!["topology".into(), "attack".into()];

    let outcome = Executor::new(2).execute(&spec).unwrap();
    let report = CampaignReport::build(&outcome).unwrap();
    let keys: Vec<String> = report
        .groups
        .iter()
        .map(|g| {
            g.key
                .iter()
                .map(|(_, v)| v.clone())
                .collect::<Vec<_>>()
                .join("/")
        })
        .collect();
    for expected in ["torus4/none", "torus4/fdos", "torus4/ddos3"] {
        assert!(
            keys.iter().any(|k| k == expected),
            "missing {expected} in {keys:?}"
        );
    }
}
