//! Integration tests of cross-machine campaign sharding: shard → merge
//! byte-identity against a single-machine run, and every merge failure
//! mode — mismatched fingerprints, gaps, conflicting duplicates, identical
//! duplicates, and torn tail records.

use dl2fence_campaign::stream::RUNS_FILE;
use dl2fence_campaign::{
    expand, merge, merge_with_opts, resume, run_shard, run_streaming, spec_fingerprint,
    CampaignDir, CampaignSpec, Executor, RunResult, ShardSlice, SpillPolicy,
};
use std::path::PathBuf;
use std::sync::OnceLock;

/// A small campaign with samples and the eval phase enabled, so merge
/// byte-identity covers the f32 frame payloads and the trained-model
/// metrics, not just scalar latencies.
const SHARD_SPEC: &str = r#"
name = "shard-integration"

[sim]
warmup_cycles = 100
sample_period = 200
samples_per_run = 1
collect_samples = true

[grid]
mesh = [4]
fir = [0.4, 0.8]
workloads = ["uniform", "tornado"]
attack_placements = 2
benign_runs = 1
seeds = [0xDAC]

[report]
group_by = ["workload", "class"]

[eval]
enabled = true
train_fraction = 0.5
detector_epochs = 4
localizer_epochs = 2
detection_feature = "vco"
localization_feature = "boc"
"#;

fn spec() -> CampaignSpec {
    CampaignSpec::from_toml(SHARD_SPEC).unwrap()
}

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("dl2fence-merge-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// The uninterrupted single-machine reference report (JSON), computed once.
fn reference_json() -> &'static String {
    static REFERENCE: OnceLock<String> = OnceLock::new();
    REFERENCE.get_or_init(|| {
        let root = temp_root("reference");
        let report = run_streaming(&Executor::new(4), &spec(), &root).unwrap();
        std::fs::remove_dir_all(&root).unwrap();
        report.to_json()
    })
}

/// Runs all `count` shards of the spec into `<base>/shard-<i>` directories.
fn run_shards(base: &std::path::Path, count: usize) -> Vec<PathBuf> {
    (0..count)
        .map(|index| {
            let dir = base.join(format!("shard-{index}"));
            run_shard(
                &Executor::new(2),
                &spec(),
                ShardSlice { index, count },
                &dir,
            )
            .unwrap();
            dir
        })
        .collect()
}

/// Alters one record's `packets_created`, keeping the JSON valid and the
/// embedded run spec untouched — a payload conflict, not corruption.
fn tamper_metric(line: &str) -> String {
    let mut record: RunResult = serde_json::from_str(line).unwrap();
    record.metrics.packets_created += 1;
    serde_json::to_string(&record).unwrap()
}

#[test]
fn three_shards_merge_byte_identical_to_a_single_machine_run() {
    let base = temp_root("identity");
    let shards = run_shards(&base, 3);
    let total = expand(&spec()).unwrap().len();

    // Each shard streamed only its strided slice and built no report.
    for (index, dir) in shards.iter().enumerate() {
        let shard = ShardSlice { index, count: 3 };
        let log = std::fs::read_to_string(dir.join(RUNS_FILE)).unwrap();
        assert_eq!(log.lines().count(), shard.owned_indices(total).count());
        assert!(!dir.join("report.json").exists());
    }

    let out = base.join("merged");
    let report = merge(&Executor::new(3), &shards, &out).unwrap();
    assert_eq!(&report.to_json(), reference_json());
    assert_eq!(
        &std::fs::read_to_string(out.join("report.json")).unwrap(),
        reference_json()
    );
    // The merged log is the full matrix in run-index order.
    let merged_log = std::fs::read_to_string(out.join(RUNS_FILE)).unwrap();
    let indices: Vec<usize> = merged_log
        .lines()
        .map(|l| serde_json::from_str::<RunResult>(l).unwrap().spec.index)
        .collect();
    assert_eq!(indices, (0..total).collect::<Vec<_>>());

    // The merged directory is an ordinary campaign directory: it resumes
    // with nothing to do, byte-identically.
    let resumed = resume(&Executor::new(2), &out, Some(&spec()))
        .unwrap()
        .expect("merged directories are whole campaigns");
    assert_eq!(&resumed.to_json(), reference_json());
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn merge_refuses_mismatched_spec_fingerprints() {
    let base = temp_root("fingerprint");
    let shards = run_shards(&base, 2);

    // The same grid at a different FIR fingerprints differently.
    let mut other = spec();
    other.grid.fir = vec![0.4, 0.9];
    assert_ne!(spec_fingerprint(&spec()), spec_fingerprint(&other));
    let foreign = base.join("foreign");
    run_shard(
        &Executor::new(2),
        &other,
        ShardSlice { index: 1, count: 2 },
        &foreign,
    )
    .unwrap();

    let inputs = vec![shards[0].clone(), foreign];
    let err = merge(&Executor::new(2), &inputs, base.join("merged")).unwrap_err();
    let message = err.to_string();
    assert!(message.contains("fingerprint mismatch"), "got: {message}");
    assert!(
        message.contains(&spec_fingerprint(&other)),
        "the offending fingerprint must be named: {message}"
    );
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn merge_reports_the_exact_gap_list_when_a_shard_is_missing() {
    let base = temp_root("gaps");
    let shards = run_shards(&base, 3);
    let total = expand(&spec()).unwrap().len();

    // Merge without shard 1: every index it owns must be listed, exactly.
    let inputs = vec![shards[0].clone(), shards[2].clone()];
    let err = merge(&Executor::new(2), &inputs, base.join("merged")).unwrap_err();
    let message = err.to_string();
    let expected: Vec<String> = ShardSlice { index: 1, count: 3 }
        .owned_indices(total)
        .map(|i| i.to_string())
        .collect();
    assert!(
        message.contains(&format!("[{}]", expected.join(", "))),
        "gap list must be exact: {message}"
    );
    assert!(
        message.contains(&format!("missing {} of {total}", expected.len())),
        "got: {message}"
    );
    std::fs::remove_dir_all(&base).unwrap();
}

/// The same lost-shard shape, but with `--reexec-gaps`: instead of refusing
/// with the gap list, the merge re-executes the missing strided slice
/// locally (runs are deterministic from spec + index) and the report stays
/// byte-identical to the single-machine run. The re-execution scratch
/// directory must not survive the merge.
#[test]
fn reexec_gaps_fills_a_lost_shard_byte_identically() {
    let base = temp_root("reexec");
    let shards = run_shards(&base, 3);
    let total = expand(&spec()).unwrap().len();

    let inputs = vec![shards[0].clone(), shards[2].clone()];
    let out = base.join("merged-reexec");
    let report = merge_with_opts(
        &Executor::new(2),
        &inputs,
        &out,
        SpillPolicy::default(),
        true,
    )
    .unwrap();
    assert_eq!(&report.to_json(), reference_json());
    assert_eq!(
        &std::fs::read_to_string(out.join("report.json")).unwrap(),
        reference_json()
    );

    // The merged log holds the full matrix in run-index order — shard 1's
    // slice re-executed, not skipped — and the scratch is cleaned up.
    let merged_log = std::fs::read_to_string(out.join(RUNS_FILE)).unwrap();
    let indices: Vec<usize> = merged_log
        .lines()
        .map(|l| serde_json::from_str::<RunResult>(l).unwrap().spec.index)
        .collect();
    assert_eq!(indices, (0..total).collect::<Vec<_>>());
    assert!(
        !out.join(".gapfill").exists(),
        "the gap re-execution scratch must be removed"
    );
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn identical_duplicates_dedupe_and_conflicting_duplicates_are_rejected() {
    let base = temp_root("dups");
    let shards = run_shards(&base, 2);

    // A whole-campaign directory overlaps every shard record; the merge of
    // all three dedupes the identical duplicates cleanly.
    let full = base.join("full");
    run_streaming(&Executor::new(2), &spec(), &full).unwrap();
    let inputs = vec![full.clone(), shards[0].clone(), shards[1].clone()];
    let report = merge(&Executor::new(2), &inputs, base.join("merged-dedupe")).unwrap();
    assert_eq!(&report.to_json(), reference_json());

    // Tamper one record of shard 0: the same index now carries a different
    // payload than the full directory's record — refused.
    let log_path = shards[0].join(RUNS_FILE);
    let log = std::fs::read_to_string(&log_path).unwrap();
    let mut lines: Vec<String> = log.lines().map(str::to_string).collect();
    let tampered_index = serde_json::from_str::<RunResult>(&lines[0])
        .unwrap()
        .spec
        .index;
    lines[0] = tamper_metric(&lines[0]);
    std::fs::write(&log_path, format!("{}\n", lines.join("\n"))).unwrap();

    let inputs = vec![full, shards[0].clone()];
    let err = merge(&Executor::new(2), &inputs, base.join("merged-conflict")).unwrap_err();
    let message = err.to_string();
    assert!(message.contains("conflicting payloads"), "got: {message}");
    assert!(
        message.contains(&format!("run index {tampered_index}")),
        "the conflicting index must be named: {message}"
    );
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn torn_tail_records_are_healed_exactly_as_resume_heals_them() {
    let base = temp_root("torn");
    let shards = run_shards(&base, 2);

    // Case 1: shard 0 additionally holds a torn copy of a record shard 1
    // stores completely (an append killed mid-retry). Merge ignores the
    // torn line — the index is covered elsewhere — and stays byte-identical.
    let log_path = shards[0].join(RUNS_FILE);
    let pristine = std::fs::read_to_string(&log_path).unwrap();
    let foreign_line = std::fs::read_to_string(shards[1].join(RUNS_FILE))
        .unwrap()
        .lines()
        .next()
        .unwrap()
        .to_string();
    std::fs::write(
        &log_path,
        format!("{pristine}{}", &foreign_line[..foreign_line.len() / 2]),
    )
    .unwrap();
    let report = merge(&Executor::new(2), &shards, base.join("merged-covered")).unwrap();
    assert_eq!(&report.to_json(), reference_json());

    // Case 2: shard 0's own final record is torn (the classic crash shape).
    // Its index is stored nowhere, so merge refuses with exactly that gap...
    let mut lines: Vec<String> = pristine.lines().map(str::to_string).collect();
    let tail = lines.pop().unwrap();
    let torn_index = serde_json::from_str::<RunResult>(&tail).unwrap().spec.index;
    let mut torn_log: String = lines.iter().map(|l| format!("{l}\n")).collect();
    torn_log.push_str(&tail[..tail.len() / 2]);
    std::fs::write(&log_path, torn_log).unwrap();
    let err = merge(&Executor::new(2), &shards, base.join("merged-gap")).unwrap_err();
    assert!(
        err.to_string().contains(&format!("[{torn_index}]")),
        "got: {err}"
    );

    // ...and resuming the shard re-executes exactly that run (healing the
    // torn line away first, as resume always does), after which the merge
    // succeeds byte-identically.
    assert!(resume(&Executor::new(2), &shards[0], Some(&spec()))
        .unwrap()
        .is_none());
    let healed = std::fs::read_to_string(&log_path).unwrap();
    assert_eq!(healed.lines().count(), pristine.lines().count());
    let dir = CampaignDir::open(&shards[0]).unwrap();
    let index = dir.index_log(&expand(&spec()).unwrap()).unwrap();
    assert!(!index.truncated_tail, "resume must heal the torn tail");
    let report = merge(&Executor::new(2), &shards, base.join("merged-healed")).unwrap();
    assert_eq!(&report.to_json(), reference_json());
    std::fs::remove_dir_all(&base).unwrap();
}
