//! Telemetry integration suite.
//!
//! The observability layer's contract has two halves, and both are locked
//! here:
//!
//! 1. **Zero observable effect on results** — running a campaign with a
//!    live telemetry sink must produce report bytes identical to the same
//!    campaign with telemetry disabled (and to the committed golden
//!    fixture). Telemetry is a tap on the pipeline, never a tee into it.
//! 2. **The event log is trustworthy** — every line `campaign run
//!    --telemetry` writes parses back losslessly (property-tested over
//!    arbitrary events, including names exercising every JSON escape), a
//!    torn final line heals to the longest valid prefix (the shape of a
//!    crash mid-append), and an appending resume keeps `seq` unique across
//!    the whole log.

use dl2fence_campaign::stream::{run_streaming_expanded_with, SpillPolicy};
use dl2fence_campaign::{
    expand, read_events, summarize, CampaignSpec, Executor, WatchSnapshot, EVENTS_FILE,
};
use dl2fence_telemetry::{Event, EventData, Telemetry};
use std::path::{Path, PathBuf};

fn spec_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../specs")
        .join(name)
}

fn temp_root(tag: &str) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("dl2fence-telemetry-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// Streams `spec` into a fresh campaign directory, with a JSONL telemetry
/// sink wired through the executor when `telemetry` is set, and returns
/// `(campaign dir, report bytes)`.
fn run_campaign(spec: &CampaignSpec, tag: &str, telemetry: bool) -> (PathBuf, String) {
    let runs = expand(spec).unwrap();
    let root = temp_root(tag);
    std::fs::create_dir_all(&root).unwrap();
    let mut executor = Executor::new(2);
    if telemetry {
        let sink = Telemetry::to_jsonl_file(&root.join(EVENTS_FILE)).unwrap();
        executor = executor.with_telemetry(sink);
    }
    let report =
        run_streaming_expanded_with(&executor, spec, &runs, &root, SpillPolicy::Threshold(4))
            .unwrap()
            .to_json();
    (root, report)
}

/// The tentpole guarantee: a telemetry-on run's report is byte-identical
/// to the telemetry-off run of the same spec — and to the golden fixture
/// the telemetry-off corpus committed. The observer changes nothing.
#[test]
fn telemetry_on_report_is_byte_identical_to_telemetry_off() {
    let spec = CampaignSpec::from_path(&spec_path("smoke_eval.toml")).unwrap();
    let (on_root, on_report) = run_campaign(&spec, "on", true);
    let (off_root, off_report) = run_campaign(&spec, "off", false);
    assert_eq!(
        on_report, off_report,
        "running with a live telemetry sink changed the report bytes"
    );
    // The golden corpus (tests/golden.rs) owns this fixture; under a bless
    // run it may not be rewritten yet, so only verify, never regenerate.
    if std::env::var_os("DL2FENCE_BLESS").is_none() {
        let fixture =
            Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/smoke_eval_on.report.json");
        let expected = std::fs::read_to_string(fixture).unwrap();
        assert_eq!(
            on_report, expected,
            "telemetry-on report drifted from the golden fixture"
        );
    }
    assert!(!off_root.join(EVENTS_FILE).exists());
    let _ = std::fs::remove_dir_all(on_root);
    let _ = std::fs::remove_dir_all(off_root);
}

/// The event log a real campaign writes parses in full, summarizes into
/// non-empty stage/worker tables, and feeds a complete watch snapshot.
#[test]
fn campaign_event_log_parses_and_feeds_watch() {
    let spec = CampaignSpec::from_path(&spec_path("smoke_eval.toml")).unwrap();
    let total_runs = expand(&spec).unwrap().len();
    let (root, _report) = run_campaign(&spec, "watch", true);

    let log = read_events(&root.join(EVENTS_FILE)).unwrap();
    assert!(!log.truncated_tail, "a finished run leaves no torn tail");
    assert!(!log.events.is_empty());
    let mut seqs: Vec<u64> = log.events.iter().map(|e| e.seq).collect();
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(seqs.len(), log.events.len(), "seq numbers must be unique");

    let summary = summarize(&log);
    assert_eq!(summary.events, log.events.len());
    let run_spans = summary.stage("run").expect("per-run spans recorded");
    assert_eq!(run_spans.count as usize, total_runs);
    for stage in [
        "stage.detect",
        "stage.fuse",
        "stage.localize",
        "eval.train",
        "eval.evaluate",
        "log.append",
        "campaign.execute",
        "campaign.report",
    ] {
        let timing = summary
            .stage(stage)
            .unwrap_or_else(|| panic!("stage `{stage}` missing from summary"));
        assert!(timing.count > 0, "stage `{stage}` recorded no observations");
        assert!(timing.max_us >= timing.p50_us);
    }
    assert!(!summary.workers.is_empty(), "worker utilization missing");
    assert_eq!(summary.counter("executor.worker_panics"), 0);

    let snapshot = WatchSnapshot::capture(&root).unwrap();
    assert!(snapshot.complete());
    assert_eq!(snapshot.progress, 1.0);
    assert!(snapshot.dir.report_written);
    assert!(snapshot.runs_per_sec.is_some());
    let timings = snapshot.timings.as_ref().expect("snapshot sees the log");
    assert!(timings.stage("stage.detect").is_some());
    let screen = snapshot.render();
    assert!(screen.contains("stage.detect"));
    assert!(screen.contains("runs (100%)"));
    let _ = std::fs::remove_dir_all(root);
}

/// An appending handle (what `campaign resume --telemetry` opens) continues
/// sequence numbers after the existing log — even past a torn final line —
/// so `seq` stays unique across crash/resume boundaries.
#[test]
fn appending_telemetry_continues_seq_numbers_past_a_torn_tail() {
    let root = temp_root("append");
    std::fs::create_dir_all(&root).unwrap();
    let path = root.join(EVENTS_FILE);

    let first = Telemetry::to_jsonl_file(&path).unwrap();
    {
        let rec = first.recorder();
        rec.add("phase", 1);
        rec.time("work", || ());
    }
    drop(first);
    let before = read_events(&path).unwrap().events;
    assert!(!before.is_empty());
    let max_seq = before.iter().map(|e| e.seq).max().unwrap();

    // A crash mid-append leaves a torn final line; the appender must skip
    // it when scanning for the largest seq, not refuse the file.
    let mut bytes = std::fs::read(&path).unwrap();
    bytes.extend_from_slice(b"{\"seq\":9999,\"t_us\":1");
    std::fs::write(&path, &bytes).unwrap();

    let second = Telemetry::append_jsonl_file(&path).unwrap();
    {
        let rec = second.recorder();
        rec.add("phase", 1);
    }
    drop(second);

    let log = read_events(&path).unwrap();
    let mut seqs: Vec<u64> = log.events.iter().map(|e| e.seq).collect();
    assert!(seqs.iter().any(|&s| s > max_seq), "appended events resumed");
    assert!(seqs.iter().all(|&s| s != 9999), "torn line must not count");
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(seqs.len(), log.events.len(), "seq unique across append");
    let _ = std::fs::remove_dir_all(root);
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    /// Characters chosen to exercise every branch of the event JSON string
    /// escaper: plain ASCII, every named escape, a bare control character
    /// (`\u` path) and multi-byte UTF-8.
    const NAME_CHARS: &[char] = &[
        'a', 'Z', '0', '.', '_', '-', ' ', '"', '\\', '\n', '\r', '\t', '\u{1}', 'µ', '✓',
    ];

    /// splitmix64 step — the same generator the proptest shim uses, applied
    /// here to expand one drawn seed into a whole event's worth of fields.
    fn mix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn name_from(state: &mut u64) -> String {
        let len = 1 + (mix(state) % 12) as usize;
        (0..len)
            .map(|_| NAME_CHARS[(mix(state) as usize) % NAME_CHARS.len()])
            .collect()
    }

    fn build_event(state: &mut u64, seq: u64) -> Event {
        let data = match mix(state) % 3 {
            0 => EventData::Span {
                name: name_from(state),
                dur_us: mix(state),
                parent: mix(state).is_multiple_of(2).then(|| name_from(state)),
                index: mix(state).is_multiple_of(2).then(|| mix(state)),
            },
            1 => EventData::Counter {
                name: name_from(state),
                delta: mix(state),
                index: mix(state).is_multiple_of(2).then(|| mix(state)),
            },
            _ => EventData::Hist {
                name: name_from(state),
                count: mix(state),
                sum_us: mix(state),
                max_us: mix(state),
                buckets: (0..mix(state) % 41).map(|_| mix(state)).collect(),
            },
        };
        Event {
            seq,
            t_us: mix(state),
            worker: mix(state) % 64,
            data,
        }
    }

    fn prop_temp(tag: &str, case: u64) -> PathBuf {
        std::env::temp_dir().join(format!(
            "dl2fence-telemetry-prop-{tag}-{}-{case}.jsonl",
            std::process::id()
        ))
    }

    proptest! {
        /// For arbitrary events — every kind, optional fields present and
        /// absent, names hitting every escape branch — `emit` → `parse`
        /// recovers the event exactly and re-emitting reproduces the bytes,
        /// both per line and through a whole `read_events` log file.
        #[test]
        fn event_jsonl_round_trips_losslessly(
            seed in 0u64..u64::MAX,
            nevents in 1usize..6,
        ) {
            let mut state = seed;
            let events: Vec<Event> =
                (0..nevents).map(|i| build_event(&mut state, i as u64)).collect();
            let mut text = String::new();
            for event in &events {
                let line = event.emit();
                let parsed = Event::parse(&line).map_err(|e| e.to_string())?;
                prop_assert_eq!(&parsed, event);
                prop_assert_eq!(parsed.emit(), line.clone());
                text.push_str(&line);
                text.push('\n');
            }
            let path = prop_temp("roundtrip", seed);
            std::fs::write(&path, &text).map_err(|e| e.to_string())?;
            let log = read_events(&path).map_err(|e| e.to_string())?;
            let _ = std::fs::remove_file(&path);
            prop_assert!(!log.truncated_tail);
            prop_assert_eq!(log.events, events);
        }

        /// A log whose final line is cut at an arbitrary byte — the shape
        /// of a crash mid-append — heals to exactly the events before the
        /// cut, flagged as a torn tail rather than an error.
        #[test]
        fn torn_final_line_heals_to_the_valid_prefix(
            seed in 0u64..u64::MAX,
            nevents in 1usize..6,
            cut in 0usize..4096,
        ) {
            let mut state = seed;
            let events: Vec<Event> =
                (0..nevents).map(|i| build_event(&mut state, i as u64)).collect();
            let mut text = String::new();
            for event in &events[..nevents - 1] {
                text.push_str(&event.emit());
                text.push('\n');
            }
            let last = events[nevents - 1].emit();
            // Cut strictly inside the line (never keep the full line or its
            // newline), backing up to a char boundary — the cut may land
            // mid-way through a multi-byte name character.
            let mut cut = 1 + cut % (last.len() - 1);
            while !last.is_char_boundary(cut) {
                cut -= 1;
            }
            text.push_str(&last[..cut]);
            let path = prop_temp("torn", seed);
            std::fs::write(&path, &text).map_err(|e| e.to_string())?;
            let log = read_events(&path).map_err(|e| e.to_string())?;
            let _ = std::fs::remove_file(&path);
            prop_assert!(log.truncated_tail, "a cut final line is a torn tail");
            prop_assert_eq!(log.events, events[..nevents - 1].to_vec());
        }
    }
}
