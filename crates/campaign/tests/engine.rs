//! Integration tests of the campaign engine: grid expansion arithmetic,
//! TOML spec loading, and the parallel-equals-serial determinism guarantee
//! down to the last report byte.

use dl2fence_campaign::{expand, CampaignReport, CampaignSpec, Executor};

const SWEEP_SPEC: &str = r#"
name = "integration-sweep"

[sim]
warmup_cycles = 100
sample_period = 200
samples_per_run = 2
collect_samples = true

[grid]
mesh = [4, 8]
fir = [0.4, 0.8]
workloads = ["uniform", "tornado"]
attack_placements = 2
benign_runs = 1
seeds = [0xDAC]

[report]
group_by = ["workload", "fir", "mesh"]

[eval]
enabled = true
train_fraction = 0.5
detector_epochs = 8
localizer_epochs = 4
detection_feature = "vco"
localization_feature = "boc"
"#;

#[test]
fn grid_expansion_produces_the_expected_run_matrix() {
    let spec = CampaignSpec::from_toml(SWEEP_SPEC).unwrap();
    let runs = expand(&spec).unwrap();
    // seeds(1) × mesh(2) × workloads(2) × (benign(1) + firs(2) × placements(2))
    assert_eq!(runs.len(), 2 * 2 * (1 + 2 * 2));
    assert!(runs.len() >= 12, "acceptance floor: at least 12 runs");

    // Dense, ordered indices with spec-derived seeds.
    for (i, run) in runs.iter().enumerate() {
        assert_eq!(run.index, i);
        assert_eq!(
            run.run_seed,
            dl2fence_campaign::derive_run_seed(run.campaign_seed, i)
        );
    }
    // Both meshes, both workloads, both classes appear.
    for mesh in [4, 8] {
        assert!(runs.iter().any(|r| r.mesh == mesh));
    }
    for workload in ["Uniform Random", "Tornado"] {
        assert!(runs.iter().any(|r| r.workload == workload));
    }
    assert_eq!(runs.iter().filter(|r| !r.is_attack()).count(), 4);
    // Attack placements never target the attacker itself.
    for run in runs.iter().filter(|r| r.is_attack()) {
        assert!(!run.scenario.attackers.contains(&run.scenario.victim));
    }
}

#[test]
fn four_worker_campaign_matches_serial_byte_for_byte() {
    let spec = CampaignSpec::from_toml(SWEEP_SPEC).unwrap();
    assert!(expand(&spec).unwrap().len() >= 12);

    let serial = Executor::new(1).execute(&spec).unwrap();
    let parallel = Executor::new(4).execute(&spec).unwrap();

    let serial_json = CampaignReport::build(&serial).unwrap().to_json();
    let parallel_json = CampaignReport::build(&parallel).unwrap().to_json();
    assert!(
        !serial_json.is_empty() && serial_json.contains("\"evaluations\""),
        "report must include the eval phase"
    );
    assert_eq!(
        serial_json, parallel_json,
        "parallel aggregated report must be byte-identical to serial"
    );
}

#[test]
fn report_json_survives_a_round_trip() {
    let mut spec = CampaignSpec::from_toml(SWEEP_SPEC).unwrap();
    // Shrink for speed: one mesh, no eval. (Loading normalized the legacy
    // mesh axis into `topology`.)
    spec.grid.topology = vec!["mesh4".into()];
    spec.eval.enabled = false;
    spec.sim.collect_samples = false;
    let outcome = Executor::new(2).execute(&spec).unwrap();
    let report = CampaignReport::build(&outcome).unwrap();
    let back = CampaignReport::from_json(&report.to_json()).unwrap();
    assert_eq!(report, back);
    assert_eq!(back.group_by, vec!["workload", "fir", "mesh"]);
    let grouped_runs: usize = back.groups.iter().map(|g| g.runs).sum();
    assert_eq!(grouped_runs, back.total_runs);
}
