//! Test coverage of the [`ReportAccumulator`]: folding one run at a time
//! equals batch aggregation on the committed `table1_quick` spec, and the
//! accumulator's per-run retention stays O(1) — the guard behind the
//! bigger-than-memory claim of the streaming resume and merge paths.

use dl2fence_campaign::{
    expand, run_streaming, CampaignDir, CampaignReport, CampaignSpec, Executor, ReportAccumulator,
};
use std::path::PathBuf;

/// The committed table-1 spec with the simulate/train knobs shrunk so the
/// double execution stays test-sized; grid structure (workload aliases,
/// grouping, eval features) comes from the file.
fn table1_quick_shrunk() -> CampaignSpec {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/table1_quick.toml");
    let mut spec = CampaignSpec::from_path(std::path::Path::new(path)).unwrap();
    assert!(spec.eval.enabled, "table1_quick must enable the eval phase");
    // Loading normalized the file's legacy mesh axis into `topology`.
    spec.grid.topology = vec!["mesh4".into()];
    spec.grid.workloads = vec!["uniform".into(), "x264".into()];
    spec.grid.attack_placements = 2;
    spec.grid.benign_runs = 1;
    spec.sim.warmup_cycles = 100;
    spec.sim.sample_period = 200;
    spec.sim.samples_per_run = 2;
    spec.eval.detector_epochs = 4;
    spec.eval.localizer_epochs = 2;
    spec
}

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("dl2fence-acc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

#[test]
fn fold_one_at_a_time_equals_batch_aggregation_on_table1_quick() {
    let spec = table1_quick_shrunk();
    let outcome = Executor::new(2).execute(&spec).unwrap();
    let batch = CampaignReport::build_with(&outcome, &Executor::new(2)).unwrap();

    let mut acc = ReportAccumulator::for_spec(&spec).unwrap();
    let mut expected_samples = 0;
    for run in &outcome.runs {
        acc.fold(run);
        expected_samples += run.samples.len();
        // With the eval phase enabled the accumulator buffers exactly the
        // labeled samples it will train on — and nothing else per run.
        assert_eq!(acc.retained_samples(), expected_samples);
    }
    assert_eq!(acc.folded_runs(), outcome.runs.len());
    let incremental = acc.finish(&Executor::new(2)).unwrap();

    assert_eq!(incremental.to_json(), batch.to_json());
    assert!(
        !incremental.evaluations.is_empty(),
        "the comparison must cover the eval phase"
    );
}

#[test]
fn accumulator_retains_no_samples_when_the_eval_phase_is_off() {
    let mut spec = table1_quick_shrunk();
    spec.eval.enabled = false; // collect_samples stays on: runs carry samples
    let outcome = Executor::new(2).execute(&spec).unwrap();
    assert!(outcome.runs.iter().all(|r| !r.samples.is_empty()));

    let mut acc = ReportAccumulator::for_spec(&spec).unwrap();
    for run in &outcome.runs {
        acc.fold(run);
        assert_eq!(
            acc.retained_samples(),
            0,
            "without an eval phase the accumulator must retain nothing per run"
        );
    }
    let report = acc.finish(&Executor::new(1)).unwrap();
    assert_eq!(report.total_runs, outcome.runs.len());
    assert!(report.evaluations.is_empty());
}

#[test]
fn streamed_replay_through_the_accumulator_peaks_at_one_retained_run() {
    // The full bigger-than-memory pipeline: a streamed campaign directory
    // replayed record by record into the accumulator, with a counting
    // observer proving the peak number of simultaneously materialized
    // RunResults is exactly one — O(1) in the campaign size.
    let mut spec = table1_quick_shrunk();
    spec.eval.enabled = false;
    spec.sim.collect_samples = false;
    let root = temp_root("peak");
    let reference = run_streaming(&Executor::new(2), &spec, &root).unwrap();

    let dir = CampaignDir::open(&root).unwrap();
    let runs = expand(&spec).unwrap();
    let index = dir.index_log(&runs).unwrap();
    assert_eq!(index.completed(), runs.len());

    let mut acc = ReportAccumulator::for_spec(&spec).unwrap();
    let mut live = 0usize;
    let mut peak = 0usize;
    dir.replay(&index, |record| {
        live += 1;
        peak = peak.max(live);
        acc.fold(&record);
        assert_eq!(acc.retained_samples(), 0);
        // `record` is dropped at the end of this closure; replay holds no
        // other copy, so `live` returns to zero between records.
        live -= 1;
    })
    .unwrap();
    assert_eq!(peak, 1, "replay+fold must materialize one run at a time");
    assert_eq!(
        acc.finish(&Executor::new(1)).unwrap().to_json(),
        reference.to_json(),
        "the replayed accumulator must rebuild the streamed report byte-identically"
    );
    std::fs::remove_dir_all(&root).unwrap();
}
