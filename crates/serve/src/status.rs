//! The service's observable state: SLO metrics and accounting as one
//! serializable snapshot (`dl2fence-serve status --json`).

use dl2fence_telemetry::Histogram;
use serde::{Deserialize, Serialize};

/// Schema tag stamped into every [`ServeStatus`]. Defined once in
/// [`dl2fence_telemetry::schema`] alongside every other artifact schema.
pub use dl2fence_telemetry::schema::STATUS_SCHEMA;

/// One latency distribution summarized to the quantiles the SLOs bind.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Metric name (`serve.e2e`, `stage.detect`, ...).
    pub name: String,
    /// Observations.
    pub count: u64,
    /// Mean, microseconds.
    pub mean_us: u64,
    /// Median, microseconds.
    pub p50_us: u64,
    /// 90th percentile, microseconds.
    pub p90_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
    /// Largest observation, microseconds.
    pub max_us: u64,
}

impl LatencySummary {
    /// Summarizes a named histogram.
    pub fn from_histogram(name: &str, h: &Histogram) -> Self {
        LatencySummary {
            name: name.to_string(),
            count: h.count(),
            mean_us: h.mean_us(),
            p50_us: h.p50_us(),
            p90_us: h.p90_us(),
            p99_us: h.p99_us(),
            max_us: h.max_us(),
        }
    }
}

/// One rejection reason's count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RejectCount {
    /// Reason name (see [`crate::RejectReason::name`]).
    pub reason: String,
    /// Windows/frames rejected for this reason.
    pub count: u64,
}

/// A moment-in-time snapshot of a running service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeStatus {
    /// Schema tag ([`STATUS_SCHEMA`]).
    pub schema: String,
    /// Open tenant sessions.
    pub tenants: usize,
    /// Frames offered to ingestion (accepted or not).
    pub ingested_frames: u64,
    /// Windows that completed assembly and entered a ring.
    pub assembled_windows: u64,
    /// Rejections by reason, sorted by reason name. The backpressure
    /// contract: nothing is silently dropped, so
    /// `assembled + rejected-window reasons` accounts for every completed
    /// window.
    pub rejected: Vec<RejectCount>,
    /// Sum over [`Self::rejected`].
    pub rejected_total: u64,
    /// Windows currently queued in tenant rings.
    pub queued: usize,
    /// Windows dispatched to workers but not yet verdicted.
    pub in_flight: usize,
    /// Verdicts produced since start.
    pub verdicts: u64,
    /// Verdicts whose window was flagged (ran the localization tail).
    pub flagged: u64,
    /// The current model bundle version.
    pub model_version: u64,
    /// Fingerprint of the served weights (see
    /// [`crate::ModelBundle::fingerprint`]).
    pub model_fingerprint: u64,
    /// Whether detection currently runs the fused int8 path.
    pub quantized: bool,
    /// Completed hot-swaps since start.
    pub swaps: u64,
    /// End-to-end latency (window assembled → verdict recorded); `None`
    /// before the first verdict.
    pub e2e: Option<LatencySummary>,
    /// Per-stage latencies (`stage.detect`, `stage.segment`, ...), sorted
    /// by name.
    pub stages: Vec<LatencySummary>,
}

impl ServeStatus {
    /// Serializes the snapshot as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("status serialization cannot fail")
    }

    /// Parses a snapshot back from [`Self::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error on malformed input.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// The named stage summary, if present.
    pub fn stage(&self, name: &str) -> Option<&LatencySummary> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// The count for one rejection reason (0 if never hit).
    pub fn rejected_for(&self, reason: &str) -> u64 {
        self.rejected
            .iter()
            .find(|r| r.reason == reason)
            .map(|r| r.count)
            .unwrap_or(0)
    }

    /// Renders the snapshot as a human-readable screen.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "dl2fence-serve: {} tenant(s), model v{} ({}, fingerprint {:016x}), {} swap(s)",
            self.tenants,
            self.model_version,
            if self.quantized { "int8" } else { "f32" },
            self.model_fingerprint,
            self.swaps,
        );
        let _ = writeln!(
            out,
            "  frames: {} in, windows: {} assembled, {} queued, {} in flight",
            self.ingested_frames, self.assembled_windows, self.queued, self.in_flight
        );
        let _ = writeln!(
            out,
            "  verdicts: {} ({} flagged), rejected: {}",
            self.verdicts, self.flagged, self.rejected_total
        );
        for r in &self.rejected {
            if r.count > 0 {
                let _ = writeln!(out, "    reject.{}: {}", r.reason, r.count);
            }
        }
        let mut rows: Vec<&LatencySummary> = Vec::new();
        if let Some(e2e) = &self.e2e {
            rows.push(e2e);
        }
        rows.extend(self.stages.iter());
        if !rows.is_empty() {
            let _ = writeln!(
                out,
                "  {:<24} {:>8} {:>10} {:>10} {:>10} {:>10}",
                "latency", "count", "mean µs", "p50 µs", "p99 µs", "max µs"
            );
            for s in rows {
                let _ = writeln!(
                    out,
                    "  {:<24} {:>8} {:>10} {:>10} {:>10} {:>10}",
                    s.name, s.count, s.mean_us, s.p50_us, s.p99_us, s.max_us
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_round_trips_through_json() {
        let status = ServeStatus {
            schema: STATUS_SCHEMA.to_string(),
            tenants: 3,
            ingested_frames: 96,
            assembled_windows: 12,
            rejected: vec![RejectCount {
                reason: "queue_full".to_string(),
                count: 1,
            }],
            rejected_total: 1,
            queued: 0,
            in_flight: 0,
            verdicts: 11,
            flagged: 4,
            model_version: 1,
            model_fingerprint: 0xDEADBEEF,
            quantized: true,
            swaps: 1,
            e2e: Some(LatencySummary {
                name: "serve.e2e".to_string(),
                count: 11,
                mean_us: 800,
                p50_us: 700,
                p90_us: 1500,
                p99_us: 2100,
                max_us: 2500,
            }),
            stages: vec![],
        };
        let parsed = ServeStatus::from_json(&status.to_json()).unwrap();
        assert_eq!(parsed, status);
        assert_eq!(parsed.rejected_for("queue_full"), 1);
        assert_eq!(parsed.rejected_for("shape_mismatch"), 0);
        let screen = status.render();
        assert!(screen.contains("model v1 (int8"));
        assert!(screen.contains("reject.queue_full: 1"));
        assert!(screen.contains("serve.e2e"));
    }
}
