//! The threaded detection service: dispatcher + worker pool around
//! [`ServeEngine`], with atomic model hot-swap and SLO telemetry.
//!
//! Threading model:
//!
//! - Callers ingest frames under the state mutex (cheap: ring pushes).
//! - One dispatcher thread drains assembled windows round-robin into
//!   batches and sends each batch — together with an `Arc` of the model
//!   bundle captured *at dispatch* — over a channel.
//! - N worker threads pull batches, rebuild their cached
//!   [`PipelineReplica`] when the captured bundle's version differs, and
//!   run detection (+ the localization tail on flagged windows only).
//!
//! Because the bundle travels with the batch, [`DetectionService::swap_model`]
//! is atomic from the pipeline's point of view: in-flight batches finish on
//! the version they captured, later batches see the new one, and no batch
//! ever mixes versions. Nothing is dropped across a swap.

use crate::assembler::{AssembledWindow, RejectReason};
use crate::engine::ServeEngine;
use crate::model::ModelBundle;
use crate::replica::{PipelineReplica, Verdict};
use crate::status::{LatencySummary, RejectCount, ServeStatus, STATUS_SCHEMA};
use dl2fence_telemetry::{AggregateSink, Telemetry};
use noc_monitor::FeatureFrame;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Tuning knobs for a [`DetectionService`]. Mesh shape and feature kinds
/// are not here — they come from the installed model's
/// [`FenceConfig`](dl2fence::FenceConfig), so the service can never accept
/// frames its model cannot analyse.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Per-tenant ready-window ring capacity (backpressure bound).
    pub queue_capacity: usize,
    /// Maximum concurrent tenant sessions.
    pub max_tenants: usize,
    /// Worker threads running pipeline replicas.
    pub workers: usize,
    /// Maximum windows per dispatched batch.
    pub batch_windows: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 16,
            max_tenants: 8,
            workers: 2,
            batch_windows: 8,
        }
    }
}

/// Mutable state guarded by the service mutex.
struct State {
    engine: ServeEngine,
    bundle: Arc<ModelBundle>,
    paused: bool,
    shutdown: bool,
    /// Windows handed to workers whose verdicts are not yet recorded.
    in_flight: usize,
    next_batch: u64,
    swaps: u64,
    verdict_count: u64,
    flagged_count: u64,
}

struct Batch {
    id: u64,
    bundle: Arc<ModelBundle>,
    windows: Vec<AssembledWindow>,
}

struct Inner {
    state: Mutex<State>,
    /// Signalled when work arrives, the service unpauses, or shuts down.
    wake: Condvar,
    /// Signalled when a batch completes (for [`DetectionService::drain_until_idle`]).
    idle: Condvar,
    sink: Arc<AggregateSink>,
    telemetry: Telemetry,
    verdicts: Mutex<Vec<Verdict>>,
}

/// A running multi-tenant detection service.
pub struct DetectionService {
    inner: Arc<Inner>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl DetectionService {
    /// Starts a service serving `bundle` with the given tuning. Spawns the
    /// dispatcher and `config.workers` worker threads immediately.
    ///
    /// # Panics
    ///
    /// Panics if any `config` knob is zero.
    pub fn new(config: ServeConfig, bundle: ModelBundle) -> Self {
        assert!(config.workers > 0, "need at least one worker");
        assert!(config.batch_windows > 0, "batches must hold windows");
        let sink = Arc::new(AggregateSink::new());
        let telemetry =
            Telemetry::with_sink(sink.clone() as Arc<dyn dl2fence_telemetry::TelemetrySink>);
        let fence_cfg = bundle.fence.config;
        let engine = ServeEngine::new(
            fence_cfg.rows,
            fence_cfg.cols,
            fence_cfg.detection_feature,
            fence_cfg.localization_feature,
            config.queue_capacity,
            config.max_tenants,
        );
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                engine,
                bundle: Arc::new(bundle),
                paused: false,
                shutdown: false,
                in_flight: 0,
                next_batch: 0,
                swaps: 0,
                verdict_count: 0,
                flagged_count: 0,
            }),
            wake: Condvar::new(),
            idle: Condvar::new(),
            sink,
            telemetry,
            verdicts: Mutex::new(Vec::new()),
        });

        let (tx, rx) = mpsc::channel::<Batch>();
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::with_capacity(config.workers);
        for _ in 0..config.workers {
            let inner = Arc::clone(&inner);
            let rx = Arc::clone(&rx);
            workers.push(std::thread::spawn(move || worker_loop(inner, rx)));
        }
        let dispatcher = {
            let inner = Arc::clone(&inner);
            let batch_windows = config.batch_windows;
            std::thread::spawn(move || dispatcher_loop(inner, tx, batch_windows))
        };

        DetectionService {
            inner,
            dispatcher: Some(dispatcher),
            workers,
        }
    }

    /// Ingests one frame for `tenant`. Mirrors [`ServeEngine::ingest`]:
    /// `Ok(Some(seq))` when a window completed (the dispatcher is woken),
    /// `Err(reason)` on explicit rejection.
    pub fn ingest(&self, tenant: u64, frame: FeatureFrame) -> Result<Option<u64>, RejectReason> {
        let mut state = self.inner.state.lock().expect("serve state poisoned");
        let outcome = state.engine.ingest(tenant, frame);
        if matches!(outcome, Ok(Some(_))) {
            self.inner.wake.notify_all();
        }
        outcome
    }

    /// Pauses dispatch: ingestion keeps filling the rings, workers finish
    /// batches already in flight, but no new batch is formed. Used by the
    /// soak harness to exercise backpressure deterministically.
    pub fn pause(&self) {
        self.inner
            .state
            .lock()
            .expect("serve state poisoned")
            .paused = true;
    }

    /// Resumes dispatch after [`Self::pause`].
    pub fn resume(&self) {
        let mut state = self.inner.state.lock().expect("serve state poisoned");
        state.paused = false;
        drop(state);
        self.inner.wake.notify_all();
    }

    /// Atomically installs a new model. Returns the version assigned to it
    /// (monotonically increasing). Batches already dispatched finish on the
    /// old version; every batch formed after this call sees the new one.
    /// No frame — queued or in flight — is dropped.
    pub fn swap_model(
        &self,
        fence: dl2fence::FenceModelExport,
        quant: Option<tinycnn::serialize::QuantizedModelExport>,
    ) -> u64 {
        let mut state = self.inner.state.lock().expect("serve state poisoned");
        let version = state.bundle.version + 1;
        state.bundle = Arc::new(ModelBundle {
            fence,
            quant,
            version,
        });
        state.swaps += 1;
        version
    }

    /// Blocks until every queued and in-flight window has a verdict (or the
    /// service is shut down). Do not call while paused with queued windows
    /// — the queue cannot drain.
    pub fn drain_until_idle(&self) {
        let mut state = self.inner.state.lock().expect("serve state poisoned");
        while !state.shutdown && (state.engine.queued() > 0 || state.in_flight > 0) {
            self.inner.wake.notify_all();
            state = self.inner.idle.wait(state).expect("serve state poisoned");
        }
    }

    /// Takes all verdicts recorded since the previous call, in completion
    /// order.
    pub fn take_verdicts(&self) -> Vec<Verdict> {
        std::mem::take(&mut *self.inner.verdicts.lock().expect("verdicts poisoned"))
    }

    /// Snapshots the service: accounting, model identity, and the
    /// end-to-end / per-stage latency histograms.
    pub fn status(&self) -> ServeStatus {
        let state = self.inner.state.lock().expect("serve state poisoned");
        let counters = state.engine.counters().clone();
        let mut rejected: Vec<RejectCount> = RejectReason::ALL
            .iter()
            .map(|r| RejectCount {
                reason: r.name().to_string(),
                count: counters.rejected_for(*r),
            })
            .collect();
        rejected.retain(|r| r.count > 0);
        let status = ServeStatus {
            schema: STATUS_SCHEMA.to_string(),
            tenants: state.engine.tenants(),
            ingested_frames: counters.ingested_frames,
            assembled_windows: counters.assembled_windows,
            rejected,
            rejected_total: counters.rejected_total(),
            queued: state.engine.queued(),
            in_flight: state.in_flight,
            verdicts: state.verdict_count,
            flagged: state.flagged_count,
            model_version: state.bundle.version,
            model_fingerprint: state.bundle.fingerprint(),
            quantized: state.bundle.is_quantized(),
            swaps: state.swaps,
            e2e: None,
            stages: Vec::new(),
        };
        drop(state);
        let mut status = status;
        let hists = self.inner.sink.histograms();
        status.e2e = hists
            .get("serve.e2e")
            .filter(|h| !h.is_empty())
            .map(|h| LatencySummary::from_histogram("serve.e2e", h));
        status.stages = hists
            .iter()
            .filter(|(name, h)| name.starts_with("stage.") && !h.is_empty())
            .map(|(name, h)| LatencySummary::from_histogram(name, h))
            .collect();
        status
    }

    /// Stops the service: unpauses, lets workers finish every queued and
    /// in-flight window, then joins all threads. Returns the final status
    /// so callers can assert the no-loss accounting identity.
    pub fn shutdown(mut self) -> ServeStatus {
        self.begin_shutdown();
        if let Some(d) = self.dispatcher.take() {
            let _ = d.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.status()
    }

    fn begin_shutdown(&self) {
        let mut state = self.inner.state.lock().expect("serve state poisoned");
        state.shutdown = true;
        state.paused = false;
        drop(state);
        self.inner.wake.notify_all();
        self.inner.idle.notify_all();
    }
}

impl Drop for DetectionService {
    fn drop(&mut self) {
        self.begin_shutdown();
        if let Some(d) = self.dispatcher.take() {
            let _ = d.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Forms batches from ready windows and ships them to the workers. On
/// shutdown it keeps draining until the rings are empty, then drops the
/// sender so workers see a closed channel and exit.
fn dispatcher_loop(inner: Arc<Inner>, tx: mpsc::Sender<Batch>, batch_windows: usize) {
    loop {
        let batch = {
            let mut state = inner.state.lock().expect("serve state poisoned");
            loop {
                if state.shutdown && state.engine.queued() == 0 {
                    return; // drops tx → workers drain and exit
                }
                if !state.paused && state.engine.queued() > 0 {
                    break;
                }
                state = inner.wake.wait(state).expect("serve state poisoned");
            }
            let windows = state.engine.drain(batch_windows);
            if windows.is_empty() {
                continue;
            }
            state.in_flight += windows.len();
            let id = state.next_batch;
            state.next_batch += 1;
            Batch {
                id,
                bundle: Arc::clone(&state.bundle),
                windows,
            }
        };
        if tx.send(batch).is_err() {
            return; // all workers gone (only happens under shutdown)
        }
    }
}

/// Pulls batches, keeps a cached replica hot across same-version batches,
/// and records verdicts + latencies.
fn worker_loop(inner: Arc<Inner>, rx: Arc<Mutex<mpsc::Receiver<Batch>>>) {
    let recorder = inner.telemetry.recorder();
    let mut replica: Option<PipelineReplica> = None;
    loop {
        let batch = {
            let rx = rx.lock().expect("receiver poisoned");
            match rx.recv() {
                Ok(b) => b,
                Err(_) => return, // dispatcher gone and channel drained
            }
        };
        // Rebuild only on version change — the common path re-uses the
        // cached replica, so a hot-swap costs one rebuild per worker.
        if replica.as_ref().map(|r| r.version()) != Some(batch.bundle.version) {
            let mut fresh = PipelineReplica::build(&batch.bundle);
            fresh.set_telemetry(recorder.clone());
            replica = Some(fresh);
        }
        let replica = replica.as_mut().expect("just installed");
        let now = Instant::now();
        for w in &batch.windows {
            let waited = now.saturating_duration_since(w.assembled_at);
            recorder.record_us(
                "serve.queue_wait",
                u64::try_from(waited.as_micros()).unwrap_or(u64::MAX),
            );
        }
        let verdicts = replica.process(batch.id, &batch.windows);
        let done = Instant::now();
        for w in &batch.windows {
            let e2e = done.saturating_duration_since(w.assembled_at);
            recorder.record_us(
                "serve.e2e",
                u64::try_from(e2e.as_micros()).unwrap_or(u64::MAX),
            );
        }
        recorder.flush();
        let completed = verdicts.len();
        let flagged = verdicts.iter().filter(|v| v.report.detected).count();
        inner
            .verdicts
            .lock()
            .expect("verdicts poisoned")
            .extend(verdicts);
        let mut state = inner.state.lock().expect("serve state poisoned");
        state.in_flight -= completed;
        state.verdict_count += completed as u64;
        state.flagged_count += flagged as u64;
        drop(state);
        inner.idle.notify_all();
    }
}
