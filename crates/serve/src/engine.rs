//! The multi-tenant ingestion engine: sessions, accounting and fair
//! cross-tenant draining.
//!
//! [`ServeEngine`] is the synchronous core of the service — no threads, no
//! locks — so every ingest/drain/accounting behavior is unit-testable
//! deterministically. [`crate::DetectionService`] wraps it in a mutex and
//! adds the dispatcher and worker pool.

use crate::assembler::{AssembledWindow, FrameAssembler, RejectReason};
use noc_monitor::{FeatureFrame, FeatureKind};
use std::collections::BTreeMap;

/// Monotonic ingestion counters — the accounting half of the backpressure
/// contract: every ingested frame is either absorbed, completes an
/// accepted window, or increments exactly one rejection counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Frames offered to `ingest`, accepted or not.
    pub ingested_frames: u64,
    /// Windows that completed assembly and entered a ring.
    pub assembled_windows: u64,
    /// Rejections by reason name (see [`RejectReason::name`]).
    pub rejected: BTreeMap<&'static str, u64>,
}

impl EngineCounters {
    /// Total rejections across all reasons.
    pub fn rejected_total(&self) -> u64 {
        self.rejected.values().sum()
    }

    /// The count for one reason (0 if never hit).
    pub fn rejected_for(&self, reason: RejectReason) -> u64 {
        self.rejected.get(reason.name()).copied().unwrap_or(0)
    }
}

/// The synchronous multi-tenant ingestion engine.
pub struct ServeEngine {
    rows: usize,
    cols: usize,
    detection_kind: FeatureKind,
    localization_kind: FeatureKind,
    queue_capacity: usize,
    max_tenants: usize,
    sessions: BTreeMap<u64, FrameAssembler>,
    counters: EngineCounters,
    /// Round-robin resume point so one chatty tenant cannot starve others.
    next_drain_tenant: u64,
}

impl ServeEngine {
    /// Creates an engine serving `rows × cols` meshes with the given
    /// feature pair, per-tenant ring capacity and tenant limit.
    ///
    /// # Panics
    ///
    /// Panics if `queue_capacity` or `max_tenants` is zero.
    pub fn new(
        rows: usize,
        cols: usize,
        detection_kind: FeatureKind,
        localization_kind: FeatureKind,
        queue_capacity: usize,
        max_tenants: usize,
    ) -> Self {
        assert!(queue_capacity > 0, "queue capacity must be positive");
        assert!(max_tenants > 0, "at least one tenant must fit");
        ServeEngine {
            rows,
            cols,
            detection_kind,
            localization_kind,
            queue_capacity,
            max_tenants,
            sessions: BTreeMap::new(),
            counters: EngineCounters::default(),
            next_drain_tenant: 0,
        }
    }

    /// Ingests one frame for `tenant`, opening a session on first contact.
    ///
    /// Returns `Ok(Some(seq))` when the frame completed window `seq`,
    /// `Ok(None)` when absorbed, `Err(reason)` when rejected. Every
    /// outcome is counted — rejection is explicit, never a silent drop.
    pub fn ingest(
        &mut self,
        tenant: u64,
        frame: FeatureFrame,
    ) -> Result<Option<u64>, RejectReason> {
        self.counters.ingested_frames += 1;
        if !self.sessions.contains_key(&tenant) {
            if self.sessions.len() >= self.max_tenants {
                return Err(self.reject(RejectReason::TenantLimit));
            }
            self.sessions.insert(
                tenant,
                FrameAssembler::new(
                    tenant,
                    self.rows,
                    self.cols,
                    self.detection_kind,
                    self.localization_kind,
                    self.queue_capacity,
                ),
            );
        }
        let session = self.sessions.get_mut(&tenant).expect("just ensured");
        match session.ingest(frame) {
            Ok(Some(seq)) => {
                self.counters.assembled_windows += 1;
                Ok(Some(seq))
            }
            Ok(None) => Ok(None),
            Err(reason) => Err(self.reject(reason)),
        }
    }

    fn reject(&mut self, reason: RejectReason) -> RejectReason {
        *self.counters.rejected.entry(reason.name()).or_insert(0) += 1;
        reason
    }

    /// Drains up to `max` ready windows, round-robin across tenants so a
    /// backlogged tenant cannot starve the rest. Returns fewer (possibly
    /// zero) when the rings hold less.
    pub fn drain(&mut self, max: usize) -> Vec<AssembledWindow> {
        let mut out = Vec::new();
        if max == 0 || self.sessions.is_empty() {
            return out;
        }
        loop {
            let mut popped_any = false;
            // One round: a single window from each tenant, starting after
            // the previous round's resume point.
            let tenants: Vec<u64> = self
                .sessions
                .range(self.next_drain_tenant..)
                .map(|(t, _)| *t)
                .chain(
                    self.sessions
                        .range(..self.next_drain_tenant)
                        .map(|(t, _)| *t),
                )
                .collect();
            for tenant in tenants {
                if out.len() >= max {
                    self.next_drain_tenant = tenant;
                    return out;
                }
                if let Some(w) = self.sessions.get_mut(&tenant).expect("listed").pop() {
                    out.push(w);
                    popped_any = true;
                }
            }
            if !popped_any || out.len() >= max {
                return out;
            }
        }
    }

    /// Total windows queued across all tenants.
    pub fn queued(&self) -> usize {
        self.sessions.values().map(|s| s.queued()).sum()
    }

    /// Open tenant sessions.
    pub fn tenants(&self) -> usize {
        self.sessions.len()
    }

    /// The accounting counters.
    pub fn counters(&self) -> &EngineCounters {
        &self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::Direction;

    fn window_frames(kind_pair: (FeatureKind, FeatureKind)) -> Vec<FeatureFrame> {
        let mut frames = Vec::new();
        for kind in [kind_pair.0, kind_pair.1] {
            for dir in Direction::CARDINAL {
                frames.push(FeatureFrame::zeros(dir, kind, 4, 4));
            }
            if kind_pair.0 == kind_pair.1 {
                break;
            }
        }
        frames
    }

    fn ingest_window(engine: &mut ServeEngine, tenant: u64) -> Result<Option<u64>, RejectReason> {
        let mut last = Ok(None);
        for f in window_frames((FeatureKind::Vco, FeatureKind::Boc)) {
            last = engine.ingest(tenant, f);
        }
        last
    }

    fn engine(capacity: usize, max_tenants: usize) -> ServeEngine {
        ServeEngine::new(
            4,
            4,
            FeatureKind::Vco,
            FeatureKind::Boc,
            capacity,
            max_tenants,
        )
    }

    #[test]
    fn accounting_identity_holds() {
        let mut e = engine(1, 4);
        assert_eq!(ingest_window(&mut e, 0), Ok(Some(0)));
        assert_eq!(ingest_window(&mut e, 0), Err(RejectReason::QueueFull));
        assert_eq!(ingest_window(&mut e, 1), Ok(Some(0)));
        let c = e.counters();
        assert_eq!(c.ingested_frames, 24);
        assert_eq!(c.assembled_windows, 2);
        assert_eq!(c.rejected_for(RejectReason::QueueFull), 1);
        assert_eq!(c.rejected_total(), 1);
        assert_eq!(e.queued(), 2);
    }

    #[test]
    fn tenant_limit_rejects_new_sessions_only() {
        let mut e = engine(2, 2);
        assert_eq!(ingest_window(&mut e, 0), Ok(Some(0)));
        assert_eq!(ingest_window(&mut e, 1), Ok(Some(0)));
        // A third tenant is rejected on its very first frame...
        let first = window_frames((FeatureKind::Vco, FeatureKind::Boc)).remove(0);
        assert_eq!(e.ingest(2, first), Err(RejectReason::TenantLimit));
        // ...but existing tenants keep streaming.
        assert_eq!(ingest_window(&mut e, 0), Ok(Some(1)));
        assert_eq!(e.tenants(), 2);
        assert_eq!(e.counters().rejected_for(RejectReason::TenantLimit), 1);
    }

    #[test]
    fn drain_is_round_robin_fair() {
        let mut e = engine(4, 4);
        // Tenant 0 queues three windows, tenant 5 queues two.
        for _ in 0..3 {
            ingest_window(&mut e, 0).unwrap();
        }
        for _ in 0..2 {
            ingest_window(&mut e, 5).unwrap();
        }
        let drained = e.drain(4);
        let order: Vec<(u64, u64)> = drained.iter().map(|w| (w.tenant, w.seq)).collect();
        // Alternating rounds, not tenant 0 exhausted first.
        assert_eq!(order, vec![(0, 0), (5, 0), (0, 1), (5, 1)]);
        assert_eq!(e.queued(), 1);
        let rest = e.drain(10);
        assert_eq!(rest.len(), 1);
        assert_eq!((rest[0].tenant, rest[0].seq), (0, 2));
        assert!(e.drain(10).is_empty(), "an idle drain tick is empty");
    }
}
