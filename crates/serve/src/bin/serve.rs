//! The `dl2fence-serve` CLI: soak a live multi-tenant detection service
//! with campaign-generated traffic, and inspect saved status snapshots.
//!
//! ```text
//! dl2fence-serve soak   <spec.toml|spec.json> [options]
//! dl2fence-serve status <status.json|dir> [--json]
//! ```

use dl2fence_campaign::CampaignSpec;
use dl2fence_serve::{run_soak, ServeConfig, ServeStatus, SoakOptions};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
usage:
  dl2fence-serve soak <spec.toml|spec.json> [--out DIR] [--tenants N]
                      [--workers N] [--capacity N] [--batch N]
                      [--sim-workers N] [--quantized] [--no-swap]
                      [--max-p99-us N] [--json]
      Run the campaign as a traffic generator through a live detection
      service: train on the generated samples, force one counted
      backpressure rejection, stream every window across --tenants sessions
      (hot-swapping the model mid-stream unless --no-swap), then audit
      verdicts bit-identically against offline replicas and check the
      --max-p99-us end-to-end SLO. Exits non-zero if any invariant fails.
      With --out DIR the final status snapshot lands in DIR/status.json.
      --quantized serves the fused int8 detector first (the swap then
      installs the f32 pipeline; without it, the reverse).
  dl2fence-serve status <status.json|dir> [--json]
      Render a saved status snapshot (a file, or a soak --out directory
      containing status.json). --json echoes the raw JSON.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    match args.first().map(String::as_str) {
        Some("soak") => cmd_soak(&args[1..]),
        Some("status") => cmd_status(&args[1..]),
        Some(other) => Err(format!("unknown subcommand `{other}`")),
        None => Err("missing subcommand".to_string()),
    }
}

fn parse_count(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<usize, String> {
    let v = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
    v.parse::<usize>()
        .map_err(|_| format!("invalid value `{v}` for {flag}"))
}

fn cmd_soak(args: &[String]) -> Result<ExitCode, String> {
    let mut spec_path: Option<String> = None;
    let mut out: Option<PathBuf> = None;
    let mut options = SoakOptions::default();
    let mut config = ServeConfig::default();
    let mut json = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = Some(PathBuf::from(it.next().ok_or("--out needs a path")?)),
            "--tenants" => options.tenants = parse_count(&mut it, "--tenants")?,
            "--workers" => config.workers = parse_count(&mut it, "--workers")?,
            "--capacity" => config.queue_capacity = parse_count(&mut it, "--capacity")?,
            "--batch" => config.batch_windows = parse_count(&mut it, "--batch")?,
            "--sim-workers" => options.sim_workers = parse_count(&mut it, "--sim-workers")?,
            "--quantized" => options.quantized = true,
            "--no-swap" => options.swap_mid_stream = false,
            "--max-p99-us" => {
                options.max_p99_e2e_us = parse_count(&mut it, "--max-p99-us")? as u64;
            }
            "--json" => json = true,
            other if !other.starts_with("--") && spec_path.is_none() => {
                spec_path = Some(other.to_string());
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let spec_path = spec_path.ok_or("soak needs a spec path")?;
    options.spec = CampaignSpec::from_path(Path::new(&spec_path)).map_err(|e| e.to_string())?;
    config.max_tenants = config.max_tenants.max(options.tenants);
    options.config = config;

    let report = run_soak(&options)?;
    if let Some(dir) = out {
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        let path = dir.join("status.json");
        std::fs::write(&path, report.status.to_json())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    if json {
        println!("{}", report.status.to_json());
        for f in &report.failures {
            eprintln!("FAIL: {f}");
        }
    } else {
        print!("{}", report.render());
    }
    Ok(if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_status(args: &[String]) -> Result<ExitCode, String> {
    let mut path: Option<PathBuf> = None;
    let mut json = false;
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            other if !other.starts_with("--") && path.is_none() => {
                path = Some(PathBuf::from(other));
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let mut path = path.ok_or("status needs a snapshot path")?;
    if path.is_dir() {
        path = path.join("status.json");
    }
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let status = ServeStatus::from_json(&text).map_err(|e| e.to_string())?;
    if json {
        println!("{}", status.to_json());
    } else {
        print!("{}", status.render());
    }
    Ok(ExitCode::SUCCESS)
}
