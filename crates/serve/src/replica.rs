//! Per-worker pipeline replicas and the verdicts they emit.

use crate::assembler::AssembledWindow;
use crate::model::ModelBundle;
use dl2fence::pipeline::FenceReport;
use dl2fence::{Dl2Fence, QuantizedDetector};
use dl2fence_telemetry::Recorder;
use noc_monitor::DirectionalFrames;

/// One analysed window: the pipeline report plus enough provenance to
/// audit it offline — which tenant/window it answers, which dispatch batch
/// carried it (and where inside that batch), and which model version
/// produced it. The soak harness replays `(batch, position)` groups
/// through an offline replica to prove verdicts bit-identical and batches
/// version-pure.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// The owning tenant.
    pub tenant: u64,
    /// The tenant's window sequence number.
    pub seq: u64,
    /// The dispatch batch that carried this window.
    pub batch: u64,
    /// Position of the window inside its batch (int8 verdicts depend on
    /// batch composition, so audits must preserve it).
    pub position: usize,
    /// The model version that produced the verdict.
    pub model_version: u64,
    /// The pipeline's report for the window.
    pub report: FenceReport,
}

/// A worker's private pipeline instance, rebuilt from a [`ModelBundle`]
/// whenever the bundle version changes.
pub struct PipelineReplica {
    fence: Dl2Fence,
    quant: Option<QuantizedDetector>,
    recorder: Recorder,
    version: u64,
}

impl PipelineReplica {
    /// Builds a replica from a bundle. The f32 pipeline restores
    /// bit-identically ([`Dl2Fence::from_export`]); when the bundle
    /// carries an int8 artifact, detection runs the fused quantized path
    /// while segmentation/localization stay f32.
    pub fn build(bundle: &ModelBundle) -> Self {
        PipelineReplica {
            fence: Dl2Fence::from_export(bundle.fence.clone()),
            quant: bundle.quant.clone().map(QuantizedDetector::from_export),
            recorder: Recorder::default(),
            version: bundle.version,
        }
    }

    /// The bundle version this replica was built from.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Attaches a telemetry recorder (stage + per-layer histograms).
    pub fn set_telemetry(&mut self, recorder: Recorder) {
        self.fence.set_telemetry(recorder.clone());
        if let Some(q) = &mut self.quant {
            q.set_telemetry(recorder.clone());
        }
        self.recorder = recorder;
    }

    /// Analyses one dispatched batch in order. Detection runs batched —
    /// one model invocation over the whole slice — and only flagged
    /// windows pay the segment → fuse → localize tail. An empty batch (an
    /// idle flush tick) is a no-op.
    pub fn process(&mut self, batch: u64, windows: &[AssembledWindow]) -> Vec<Verdict> {
        let reports = match self.quant.as_mut() {
            Some(q) => {
                let bundles: Vec<&DirectionalFrames> =
                    windows.iter().map(|w| &w.detection).collect();
                let detections = self
                    .recorder
                    .time("stage.detect", || q.detect_batch(&bundles));
                windows
                    .iter()
                    .zip(detections)
                    .map(|(w, det)| self.fence.report_for_detection(det, &w.localization))
                    .collect()
            }
            None => {
                let pairs: Vec<(&DirectionalFrames, &DirectionalFrames)> = windows
                    .iter()
                    .map(|w| (&w.detection, &w.localization))
                    .collect();
                self.fence.analyze_frames_batch(&pairs)
            }
        };
        windows
            .iter()
            .zip(reports)
            .enumerate()
            .map(|(position, (w, report))| Verdict {
                tenant: w.tenant,
                seq: w.seq,
                batch,
                position,
                model_version: self.version,
                report,
            })
            .collect()
    }
}

impl std::fmt::Debug for PipelineReplica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PipelineReplica(v{}, {})",
            self.version,
            if self.quant.is_some() { "int8" } else { "f32" }
        )
    }
}
