//! Per-tenant frame assembly with bounded buffering and explicit
//! backpressure.
//!
//! The monitor layer delivers feature frames one direction at a time (the
//! wire shape of a mesh streaming its sampler output). A
//! [`FrameAssembler`] reassembles them into the 4-frame
//! [`DirectionalFrames`] bundles the pipeline consumes — one bundle per
//! feature kind — and queues completed windows in a bounded ring. When the
//! ring is full the completing window is **rejected with a reason**, never
//! silently dropped: the caller learns, the counter increments, and the
//! tenant can replay the window once the ring drains.

use noc_monitor::{DirectionalFrames, FeatureFrame, FeatureKind};
use noc_sim::Direction;
use std::collections::VecDeque;
use std::time::Instant;

/// Why an ingested frame (or the window it completed) was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The window completed while the tenant's ring buffer was full. The
    /// whole window is rejected; replay it after the ring drains.
    QueueFull,
    /// The service is at its tenant limit and cannot open a new session.
    TenantLimit,
    /// The frame's mesh shape does not match the served model.
    ShapeMismatch,
    /// The frame's feature kind is neither the detection nor the
    /// localization feature of the served model.
    KindMismatch,
    /// The frame arrived out of E, N, W, S order for its kind; the
    /// partially assembled bundle of that kind is discarded.
    DirectionOrder,
}

impl RejectReason {
    /// The stable counter suffix for this reason (`serve.reject.<name>`).
    pub fn name(&self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::TenantLimit => "tenant_limit",
            RejectReason::ShapeMismatch => "shape_mismatch",
            RejectReason::KindMismatch => "kind_mismatch",
            RejectReason::DirectionOrder => "direction_order",
        }
    }

    /// Every reason, for exhaustive counter reporting.
    pub const ALL: [RejectReason; 5] = [
        RejectReason::QueueFull,
        RejectReason::TenantLimit,
        RejectReason::ShapeMismatch,
        RejectReason::KindMismatch,
        RejectReason::DirectionOrder,
    ];
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One fully assembled monitoring window, ready for inference.
#[derive(Debug, Clone)]
pub struct AssembledWindow {
    /// The owning tenant.
    pub tenant: u64,
    /// The tenant's monotonically increasing window sequence number.
    pub seq: u64,
    /// The detection-feature bundle (what the detector CNN sees).
    pub detection: DirectionalFrames,
    /// The localization-feature bundle (what the segment → fuse →
    /// localize tail sees when the window is flagged).
    pub localization: DirectionalFrames,
    /// When assembly completed — the start of the end-to-end latency
    /// measurement.
    pub assembled_at: Instant,
}

/// One tenant's reassembly state plus its bounded ready-window ring.
#[derive(Debug)]
pub struct FrameAssembler {
    tenant: u64,
    rows: usize,
    cols: usize,
    detection_kind: FeatureKind,
    localization_kind: FeatureKind,
    capacity: usize,
    partial_detection: Vec<FeatureFrame>,
    partial_localization: Vec<FeatureFrame>,
    pending_detection: Option<DirectionalFrames>,
    pending_localization: Option<DirectionalFrames>,
    ready: VecDeque<AssembledWindow>,
    next_seq: u64,
}

impl FrameAssembler {
    /// Creates an assembler for one tenant streaming `rows × cols` frames.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a ring that can hold nothing would
    /// reject every window.
    pub fn new(
        tenant: u64,
        rows: usize,
        cols: usize,
        detection_kind: FeatureKind,
        localization_kind: FeatureKind,
        capacity: usize,
    ) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        FrameAssembler {
            tenant,
            rows,
            cols,
            detection_kind,
            localization_kind,
            capacity,
            partial_detection: Vec::with_capacity(4),
            partial_localization: Vec::with_capacity(4),
            pending_detection: None,
            pending_localization: None,
            ready: VecDeque::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Ingests one directional frame.
    ///
    /// Returns `Ok(Some(seq))` when the frame completed window `seq` and
    /// the window was queued, `Ok(None)` when the frame was absorbed into a
    /// partial bundle, and `Err` when the frame (or the window it would
    /// have completed) was rejected. On [`RejectReason::QueueFull`] the
    /// completed window is discarded but fully accounted: the tenant
    /// replays the same window's frames once the ring drains — its
    /// sequence number is not consumed.
    pub fn ingest(&mut self, frame: FeatureFrame) -> Result<Option<u64>, RejectReason> {
        if frame.rows() != self.rows || frame.cols() != self.cols {
            return Err(RejectReason::ShapeMismatch);
        }
        let kind = frame.kind();
        if kind != self.detection_kind && kind != self.localization_kind {
            return Err(RejectReason::KindMismatch);
        }
        let partial = if kind == self.detection_kind {
            &mut self.partial_detection
        } else {
            &mut self.partial_localization
        };
        if frame.direction() != Direction::CARDINAL[partial.len()] {
            partial.clear();
            return Err(RejectReason::DirectionOrder);
        }
        partial.push(frame);
        if partial.len() == 4 {
            let bundle = DirectionalFrames::new(std::mem::take(partial));
            if kind == self.detection_kind {
                self.pending_detection = Some(bundle);
            } else {
                self.pending_localization = Some(bundle);
            }
        }
        self.try_complete()
    }

    /// Completes a window when both bundles are pending. A single-feature
    /// configuration (detection and localization share a kind) needs only
    /// one bundle, which then serves both roles.
    fn try_complete(&mut self) -> Result<Option<u64>, RejectReason> {
        let single_feature = self.detection_kind == self.localization_kind;
        let complete = if single_feature {
            self.pending_detection.is_some()
        } else {
            self.pending_detection.is_some() && self.pending_localization.is_some()
        };
        if !complete {
            return Ok(None);
        }
        if self.ready.len() >= self.capacity {
            // Backpressure: the window is rejected with a reason, not
            // silently dropped. Its frames are discarded so the tenant can
            // replay the whole window; the sequence number is preserved.
            self.pending_detection = None;
            self.pending_localization = None;
            return Err(RejectReason::QueueFull);
        }
        let detection = self.pending_detection.take().expect("checked above");
        let localization = if single_feature {
            detection.clone()
        } else {
            self.pending_localization.take().expect("checked above")
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.ready.push_back(AssembledWindow {
            tenant: self.tenant,
            seq,
            detection,
            localization,
            assembled_at: Instant::now(),
        });
        Ok(Some(seq))
    }

    /// Pops the oldest ready window, if any.
    pub fn pop(&mut self) -> Option<AssembledWindow> {
        self.ready.pop_front()
    }

    /// Ready windows currently queued.
    pub fn queued(&self) -> usize {
        self.ready.len()
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The next window sequence number this tenant will be assigned.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(dir: Direction, kind: FeatureKind) -> FeatureFrame {
        FeatureFrame::zeros(dir, kind, 4, 4)
    }

    fn ingest_window(a: &mut FrameAssembler) -> Result<Option<u64>, RejectReason> {
        let mut last = Ok(None);
        for kind in [FeatureKind::Vco, FeatureKind::Boc] {
            for dir in Direction::CARDINAL {
                last = a.ingest(frame(dir, kind));
            }
        }
        last
    }

    #[test]
    fn eight_frames_complete_one_window() {
        let mut a = FrameAssembler::new(7, 4, 4, FeatureKind::Vco, FeatureKind::Boc, 2);
        assert_eq!(ingest_window(&mut a), Ok(Some(0)));
        assert_eq!(a.queued(), 1);
        let w = a.pop().unwrap();
        assert_eq!(w.tenant, 7);
        assert_eq!(w.seq, 0);
        assert_eq!(w.detection.kind(), FeatureKind::Vco);
        assert_eq!(w.localization.kind(), FeatureKind::Boc);
    }

    #[test]
    fn single_feature_config_needs_only_four_frames() {
        let mut a = FrameAssembler::new(0, 4, 4, FeatureKind::Vco, FeatureKind::Vco, 2);
        let mut last = Ok(None);
        for dir in Direction::CARDINAL {
            last = a.ingest(frame(dir, FeatureKind::Vco));
        }
        assert_eq!(last, Ok(Some(0)));
        let w = a.pop().unwrap();
        assert_eq!(w.detection, w.localization);
    }

    #[test]
    fn full_ring_rejects_the_completing_window_and_preserves_seq() {
        let mut a = FrameAssembler::new(0, 4, 4, FeatureKind::Vco, FeatureKind::Boc, 2);
        assert_eq!(ingest_window(&mut a), Ok(Some(0)));
        assert_eq!(ingest_window(&mut a), Ok(Some(1)));
        assert_eq!(ingest_window(&mut a), Err(RejectReason::QueueFull));
        assert_eq!(a.queued(), 2, "the ring never overfills");
        // Draining frees a slot; the replayed window takes the seq the
        // rejected one would have had.
        assert!(a.pop().is_some());
        assert_eq!(ingest_window(&mut a), Ok(Some(2)));
    }

    #[test]
    fn shape_and_kind_mismatches_reject_the_frame() {
        let mut a = FrameAssembler::new(0, 4, 4, FeatureKind::Vco, FeatureKind::Vco, 1);
        let wrong_shape = FeatureFrame::zeros(Direction::East, FeatureKind::Vco, 8, 8);
        assert_eq!(a.ingest(wrong_shape), Err(RejectReason::ShapeMismatch));
        let wrong_kind = frame(Direction::East, FeatureKind::Boc);
        assert_eq!(a.ingest(wrong_kind), Err(RejectReason::KindMismatch));
        // The session is not wedged: a good window still assembles.
        for dir in Direction::CARDINAL {
            let _ = a.ingest(frame(dir, FeatureKind::Vco));
        }
        assert_eq!(a.queued(), 1);
    }

    #[test]
    fn out_of_order_direction_discards_the_partial_bundle() {
        let mut a = FrameAssembler::new(0, 4, 4, FeatureKind::Vco, FeatureKind::Vco, 1);
        assert_eq!(a.ingest(frame(Direction::East, FeatureKind::Vco)), Ok(None));
        assert_eq!(
            a.ingest(frame(Direction::South, FeatureKind::Vco)),
            Err(RejectReason::DirectionOrder)
        );
        // The partial was discarded; a full in-order window recovers.
        let mut last = Ok(None);
        for dir in Direction::CARDINAL {
            last = a.ingest(frame(dir, FeatureKind::Vco));
        }
        assert_eq!(last, Ok(Some(0)));
    }
}
