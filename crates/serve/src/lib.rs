//! `dl2fence-serve`: online multi-tenant DoS detection.
//!
//! The offline story of this workspace runs the detect → segment → fuse →
//! localize pipeline inside batch campaigns. This crate wraps the same
//! pipeline in a **long-running service** that ingests frame streams from
//! many concurrent meshes (tenants):
//!
//! - each tenant gets a [`FrameAssembler`]: a bounded ring buffer that
//!   reassembles the monitor sampler's directional frames into 4-frame
//!   bundles, with **explicit backpressure** — a window that completes
//!   while the ring is full is rejected with a [`RejectReason`] and
//!   counted, never silently dropped;
//! - a cross-tenant dispatcher drains assembled windows into batches and
//!   feeds a small worker pool; workers run batched detector inference
//!   ([`dl2fence::Dl2Fence::analyze_frames_batch`] in f32 mode,
//!   [`dl2fence::QuantizedDetector::detect_batch`] in int8 mode) and the
//!   segment → fuse → localize tail only on flagged windows;
//! - p50/p99 end-to-end and per-stage latencies fold into
//!   [`dl2fence_telemetry::AggregateSink`] histograms, snapshotted as a
//!   [`ServeStatus`] (`dl2fence-serve status --json`);
//! - models **hot-swap atomically**: a [`ModelBundle`] travels with every
//!   dispatched batch behind an `Arc`, so one batch always runs one model
//!   version and a swap never drops in-flight frames.
//!
//! The campaign engine doubles as the load generator: [`soak::run_soak`]
//! replays a campaign spec's traffic against the service, forces a
//! backpressure rejection deterministically, hot-swaps mid-stream, and
//! asserts SLOs plus bit-identical verdicts against the offline pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assembler;
pub mod engine;
pub mod model;
pub mod replica;
pub mod service;
pub mod soak;
pub mod status;

pub use assembler::{AssembledWindow, FrameAssembler, RejectReason};
pub use engine::{EngineCounters, ServeEngine};
pub use model::ModelBundle;
pub use replica::{PipelineReplica, Verdict};
pub use service::{DetectionService, ServeConfig};
pub use soak::{run_soak, SoakOptions, SoakReport};
pub use status::{LatencySummary, RejectCount, ServeStatus, STATUS_SCHEMA};
