//! Soak harness: replays campaign traffic through a live service and
//! proves the serving layer changes nothing.
//!
//! The campaign engine is the load generator — a [`CampaignSpec`] expands
//! into simulated runs whose labeled samples become the frame stream. The
//! harness then:
//!
//! 1. trains a pipeline on the generated samples and installs it,
//! 2. forces deterministic backpressure (pause → overfill one tenant's
//!    ring → exactly one counted rejection → replay after drain),
//! 3. streams the remaining windows across tenants, hot-swapping the
//!    model mid-stream,
//! 4. audits every verdict against an offline replica fed the *same batch
//!    compositions* (int8 results depend on composition, so the audit
//!    replays batches, not windows), plus a per-window
//!    [`Dl2Fence::analyze_frames`] check on f32 batches,
//! 5. checks the accounting identity (nothing lost, nothing silently
//!    dropped) and the latency SLO.
//!
//! Violations are collected in [`SoakReport::failures`] rather than
//! panicking, so the CI smoke job can print the full report before
//! failing.

use crate::assembler::{AssembledWindow, RejectReason};
use crate::model::ModelBundle;
use crate::replica::{PipelineReplica, Verdict};
use crate::service::{DetectionService, ServeConfig};
use crate::status::ServeStatus;
use dl2fence::input::sample_frames;
use dl2fence::{Dl2Fence, FenceConfig};
use dl2fence_campaign::spec::parse_feature;
use dl2fence_campaign::{CampaignSpec, Executor};
use noc_monitor::{FeatureFrame, FeatureKind, LabeledSample};
use std::collections::BTreeMap;
use std::time::Instant;

/// Soak run configuration.
#[derive(Debug, Clone)]
pub struct SoakOptions {
    /// The campaign that generates the traffic and training corpus. Its
    /// first mesh size defines the served shape; `sim.collect_samples` is
    /// forced on.
    pub spec: CampaignSpec,
    /// Service tuning (worker pool, batch size, ring capacity, tenants).
    pub config: ServeConfig,
    /// Tenant sessions to spread the stream across (≤ `config.max_tenants`).
    pub tenants: usize,
    /// Serve the fused int8 detector (the swap then installs the f32
    /// pipeline, and vice versa — the swap always crosses precisions so it
    /// is observable).
    pub quantized: bool,
    /// Hot-swap the model halfway through the stream.
    pub swap_mid_stream: bool,
    /// End-to-end p99 SLO in microseconds.
    pub max_p99_e2e_us: u64,
    /// Campaign executor workers for the load-generation phase.
    pub sim_workers: usize,
}

impl Default for SoakOptions {
    fn default() -> Self {
        SoakOptions {
            spec: CampaignSpec::quick("serve-soak"),
            config: ServeConfig::default(),
            tenants: 3,
            quantized: false,
            swap_mid_stream: true,
            max_p99_e2e_us: 2_000_000,
            sim_workers: 2,
        }
    }
}

/// What a soak run proved (or didn't).
#[derive(Debug)]
pub struct SoakReport {
    /// Final service status after clean shutdown.
    pub status: ServeStatus,
    /// Windows accepted into rings over the whole run.
    pub windows_streamed: usize,
    /// Verdicts audited for bit-identical parity against offline replicas.
    pub verdicts_audited: usize,
    /// Backpressure rejections deliberately forced (and counted).
    pub forced_rejections: u64,
    /// The version installed by the mid-stream swap, when one happened.
    pub swap_version: Option<u64>,
    /// Wall-clock of the serving phase (excludes simulation + training).
    pub serve_wall_us: u64,
    /// Every violated invariant, empty on success.
    pub failures: Vec<String>,
}

impl SoakReport {
    /// `true` when every invariant held.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the report as a human-readable screen.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "soak: {} — {} windows streamed, {} verdicts audited, {} forced rejection(s), swap {}",
            if self.passed() { "PASS" } else { "FAIL" },
            self.windows_streamed,
            self.verdicts_audited,
            self.forced_rejections,
            match self.swap_version {
                Some(v) => format!("→ v{v}"),
                None => "skipped".to_string(),
            },
        );
        for f in &self.failures {
            let _ = writeln!(out, "  FAIL: {f}");
        }
        out.push_str(&self.status.render());
        out
    }
}

/// The frames of one window in ingest order: the detection bundle's four
/// directions, then (for two-feature configs) the localization bundle's.
fn window_frames(sample: &LabeledSample, det: FeatureKind, loc: FeatureKind) -> Vec<FeatureFrame> {
    let mut frames = sample_frames(sample, det).clone().into_frames();
    if det != loc {
        frames.extend(sample_frames(sample, loc).clone().into_frames());
    }
    frames
}

/// Streams one window into the service, returning the completing frame's
/// outcome (`Ok(seq)` or the rejection reason).
fn ingest_window(
    service: &DetectionService,
    tenant: u64,
    sample: &LabeledSample,
    det: FeatureKind,
    loc: FeatureKind,
) -> Result<u64, RejectReason> {
    let mut last = Ok(None);
    for frame in window_frames(sample, det, loc) {
        last = service.ingest(tenant, frame);
    }
    match last {
        Ok(Some(seq)) => Ok(seq),
        Ok(None) => unreachable!("a full window always completes or rejects"),
        Err(reason) => Err(reason),
    }
}

/// Runs the full soak. See the module docs for the phases.
///
/// # Errors
///
/// Returns an error string when the campaign itself cannot run (invalid
/// spec, zero runs, no samples) — *invariant violations* during serving are
/// reported in [`SoakReport::failures`] instead.
#[allow(clippy::too_many_lines)]
pub fn run_soak(options: &SoakOptions) -> Result<SoakReport, String> {
    let mut failures: Vec<String> = Vec::new();

    // ---- Load generation: the campaign engine produces the traffic. ----
    let mut spec = options.spec.clone();
    spec.sim.collect_samples = true;
    // One served shape per soak, whichever axis the spec used.
    spec.grid.topology.truncate(1);
    spec.grid.mesh.truncate(1);
    let mesh = *spec
        .grid
        .mesh
        .first()
        .ok_or_else(|| "spec has no mesh sizes".to_string())?;
    let outcome = Executor::new(options.sim_workers.max(1))
        .execute(&spec)
        .map_err(|e| e.to_string())?;
    let samples: Vec<LabeledSample> = outcome.runs.into_iter().flat_map(|r| r.samples).collect();
    if samples.is_empty() {
        return Err("campaign produced no samples (zero runs?)".to_string());
    }

    // ---- Train the pipeline the service will serve. ----
    let det_kind = parse_feature(&spec.eval.detection_feature).map_err(|e| e.to_string())?;
    let loc_kind = parse_feature(&spec.eval.localization_feature).map_err(|e| e.to_string())?;
    let fence_cfg = FenceConfig {
        detection_feature: det_kind,
        localization_feature: loc_kind,
        ..FenceConfig::new(mesh, mesh)
            .with_epochs(spec.eval.detector_epochs, spec.eval.localizer_epochs)
    };
    let mut fence = Dl2Fence::new(fence_cfg);
    fence.train(&samples);
    let export = fence.export_model();
    let quant_export = fence.detector().quantize().export();

    // The swap always crosses precisions so pre/post-swap batches are
    // distinguishable by more than the version number.
    let (initial, swapped) = if options.quantized {
        (
            ModelBundle::quantized(export.clone(), quant_export.clone()),
            ModelBundle::f32_only(export.clone()),
        )
    } else {
        (
            ModelBundle::f32_only(export.clone()),
            ModelBundle::quantized(export.clone(), quant_export.clone()),
        )
    };

    // Version → bundle, for the offline audit. v1 exists only if we swap.
    let mut bundles: BTreeMap<u64, ModelBundle> = BTreeMap::new();
    bundles.insert(0, initial.clone());

    // ---- Serve. ----
    let serve_start = Instant::now();
    let service = DetectionService::new(options.config, initial);
    let tenants = options.tenants.clamp(1, options.config.max_tenants) as u64;

    // (tenant, seq) → index of the sample whose frames built that window,
    // so every verdict can be traced back to its input.
    let mut window_source: BTreeMap<(u64, u64), usize> = BTreeMap::new();
    let mut windows_streamed = 0usize;

    // Phase A — deterministic backpressure: with dispatch paused, tenant 0
    // can absorb exactly `queue_capacity` windows; one more must be
    // rejected with QueueFull, and a replay after draining must succeed.
    let capacity = options.config.queue_capacity;
    service.pause();
    for i in 0..capacity {
        let sample = &samples[i % samples.len()];
        match ingest_window(&service, 0, sample, det_kind, loc_kind) {
            Ok(seq) => {
                window_source.insert((0, seq), i % samples.len());
                windows_streamed += 1;
            }
            Err(r) => failures.push(format!(
                "backpressure: window {i} rejected ({r}) below ring capacity {capacity}"
            )),
        }
    }
    let overflow_sample = capacity % samples.len();
    let forced_rejections =
        match ingest_window(&service, 0, &samples[overflow_sample], det_kind, loc_kind) {
            Err(RejectReason::QueueFull) => 1,
            other => {
                failures.push(format!(
                    "backpressure: overfull ring answered {other:?}, expected Err(queue_full)"
                ));
                0
            }
        };
    service.resume();
    service.drain_until_idle();
    // The ring has drained: the rejected window replays successfully.
    match ingest_window(&service, 0, &samples[overflow_sample], det_kind, loc_kind) {
        Ok(seq) => {
            window_source.insert((0, seq), overflow_sample);
            windows_streamed += 1;
        }
        Err(r) => failures.push(format!("backpressure: replay after drain rejected ({r})")),
    }

    // Phase B — stream every sample across the tenants, swapping halfway.
    let mut swap_version = None;
    let swap_at = samples.len() / 2;
    for (i, sample) in samples.iter().enumerate() {
        if options.swap_mid_stream && i == swap_at {
            service.drain_until_idle(); // pre-swap verdicts are all v0
            let v = service.swap_model(swapped.fence.clone(), swapped.quant.clone());
            bundles.insert(
                v,
                ModelBundle {
                    version: v,
                    ..swapped.clone()
                },
            );
            swap_version = Some(v);
        }
        let tenant = i as u64 % tenants;
        match ingest_window(&service, tenant, sample, det_kind, loc_kind) {
            Ok(seq) => {
                window_source.insert((tenant, seq), i);
                windows_streamed += 1;
            }
            Err(RejectReason::QueueFull) => {
                // Live backpressure: drain and replay — rejected, never lost.
                service.drain_until_idle();
                match ingest_window(&service, tenant, sample, det_kind, loc_kind) {
                    Ok(seq) => {
                        window_source.insert((tenant, seq), i);
                        windows_streamed += 1;
                    }
                    Err(r) => failures.push(format!("stream: replay of window {i} rejected ({r})")),
                }
            }
            Err(r) => failures.push(format!("stream: window {i} rejected ({r})")),
        }
    }
    service.drain_until_idle();
    let verdicts = service.take_verdicts();
    let status = service.shutdown();
    let serve_wall_us = u64::try_from(serve_start.elapsed().as_micros()).unwrap_or(u64::MAX);

    // ---- Audit: accounting identity. ----
    if verdicts.len() != windows_streamed {
        failures.push(format!(
            "accounting: {} windows accepted but {} verdicts produced",
            windows_streamed,
            verdicts.len()
        ));
    }
    if status.queued != 0 || status.in_flight != 0 {
        failures.push(format!(
            "shutdown leak: {} queued / {} in flight after drain",
            status.queued, status.in_flight
        ));
    }
    if status.rejected_for("queue_full") < forced_rejections {
        failures.push("accounting: forced rejection not counted".to_string());
    }
    if options.swap_mid_stream {
        if status.swaps != 1 {
            failures.push(format!(
                "swap: expected 1 swap, status shows {}",
                status.swaps
            ));
        }
        if swap_version.is_some() && !verdicts.iter().any(|v| v.model_version > 0) {
            failures.push("swap: no post-swap verdicts observed".to_string());
        }
    }
    match &status.e2e {
        None => failures.push("SLO: e2e histogram is empty".to_string()),
        Some(e2e) => {
            if e2e.count != verdicts.len() as u64 {
                failures.push(format!(
                    "SLO: e2e histogram holds {} observations for {} verdicts",
                    e2e.count,
                    verdicts.len()
                ));
            }
            if e2e.p99_us > options.max_p99_e2e_us {
                failures.push(format!(
                    "SLO: e2e p99 {}µs exceeds budget {}µs",
                    e2e.p99_us, options.max_p99_e2e_us
                ));
            }
        }
    }

    // ---- Audit: version purity + bit-identical parity vs offline. ----
    // Group verdicts back into the exact batches the workers saw.
    let mut batches: BTreeMap<u64, Vec<&Verdict>> = BTreeMap::new();
    for v in &verdicts {
        batches.entry(v.batch).or_default().push(v);
    }
    let mut replicas: BTreeMap<u64, PipelineReplica> = BTreeMap::new();
    let mut offline_f32 = Dl2Fence::from_export(export.clone());
    let mut verdicts_audited = 0usize;
    for (batch_id, mut group) in batches {
        group.sort_by_key(|v| v.position);
        let version = group[0].model_version;
        if group.iter().any(|v| v.model_version != version) {
            failures.push(format!("purity: batch {batch_id} mixes model versions"));
            continue;
        }
        let Some(bundle) = bundles.get(&version) else {
            failures.push(format!(
                "purity: batch {batch_id} ran unknown version {version}"
            ));
            continue;
        };
        // Rebuild the batch's windows in dispatch order from the traced
        // samples — same composition, same order, so even the
        // composition-dependent int8 path must reproduce bit-identically.
        let windows: Vec<AssembledWindow> = group
            .iter()
            .map(|v| {
                let idx = window_source[&(v.tenant, v.seq)];
                AssembledWindow {
                    tenant: v.tenant,
                    seq: v.seq,
                    detection: sample_frames(&samples[idx], det_kind).clone(),
                    localization: sample_frames(&samples[idx], loc_kind).clone(),
                    assembled_at: Instant::now(),
                }
            })
            .collect();
        let replica = replicas
            .entry(version)
            .or_insert_with(|| PipelineReplica::build(bundle));
        let offline = replica.process(batch_id, &windows);
        for (live, off) in group.iter().zip(&offline) {
            if live.report != off.report {
                failures.push(format!(
                    "parity: tenant {} window {} (batch {batch_id}, v{version}) differs from offline replica",
                    live.tenant, live.seq
                ));
            }
            verdicts_audited += 1;
        }
        // f32 batches additionally match the plain offline single-window
        // API — the service layer adds nothing to the paper pipeline.
        if !bundle.is_quantized() {
            for v in &group {
                let idx = window_source[&(v.tenant, v.seq)];
                let expected = offline_f32.analyze_frames(
                    sample_frames(&samples[idx], det_kind),
                    sample_frames(&samples[idx], loc_kind),
                );
                if v.report != expected {
                    failures.push(format!(
                        "parity: tenant {} window {} differs from offline analyze_frames",
                        v.tenant, v.seq
                    ));
                }
            }
        }
    }

    Ok(SoakReport {
        status,
        windows_streamed,
        verdicts_audited,
        forced_rejections,
        swap_version,
        serve_wall_us,
        failures,
    })
}
