//! The versioned model artifact a service instance runs.

use dl2fence::FenceModelExport;
use tinycnn::serialize::QuantizedModelExport;

/// Everything a worker needs to rebuild its pipeline replica: the f32
/// pipeline export (always present — the localization tail is f32 even in
/// int8 mode), an optional fused int8 detector artifact, and a version
/// number assigned by the service at install/swap time.
///
/// Bundles travel with every dispatched batch behind an `Arc`, which is
/// what makes hot-swap atomic: a batch captures one bundle at dispatch and
/// runs it to completion, so no batch ever mixes model versions.
#[derive(Debug, Clone)]
pub struct ModelBundle {
    /// The f32 pipeline (config + detector + localizer weights).
    pub fence: FenceModelExport,
    /// The fused int8 detector; `Some` switches detection to the
    /// quantized batched path while localization stays f32.
    pub quant: Option<QuantizedModelExport>,
    /// Monotonic version assigned by the service; version `0` is the
    /// install-time model.
    pub version: u64,
}

impl ModelBundle {
    /// An f32-only bundle at version 0.
    pub fn f32_only(fence: FenceModelExport) -> Self {
        ModelBundle {
            fence,
            quant: None,
            version: 0,
        }
    }

    /// A bundle serving int8 detection at version 0.
    pub fn quantized(fence: FenceModelExport, quant: QuantizedModelExport) -> Self {
        ModelBundle {
            fence,
            quant: Some(quant),
            version: 0,
        }
    }

    /// `true` when detection runs the fused int8 path.
    pub fn is_quantized(&self) -> bool {
        self.quant.is_some()
    }

    /// A stable fingerprint of the weights actually served: the detector
    /// artifact in use (int8 when present, f32 otherwise) combined with
    /// the f32 localizer. Two bundles fingerprint equal iff a swap between
    /// them would change nothing.
    pub fn fingerprint(&self) -> u64 {
        let detector = match &self.quant {
            Some(q) => q.fingerprint(),
            None => self.fence.detector.fingerprint(),
        };
        // Order-dependent mix (FNV-style) of the two component hashes.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for part in [detector, self.fence.localizer.fingerprint()] {
            for byte in part.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
}
