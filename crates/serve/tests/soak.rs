//! The campaign-driven soak: table-style traffic through a live service,
//! asserting SLOs, accounting and bit-identical offline parity. The same
//! harness backs the `serve-soak-smoke` CI job via the CLI.

use dl2fence_campaign::CampaignSpec;
use dl2fence_serve::{run_soak, ServeConfig, SoakOptions};

fn soak_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::quick("serve-soak-test");
    spec.grid.mesh = vec![4];
    spec.sim.warmup_cycles = 100;
    spec.sim.sample_period = 200;
    spec.sim.samples_per_run = 2;
    spec.eval.detector_epochs = 6;
    spec.eval.localizer_epochs = 4;
    spec
}

fn options(quantized: bool) -> SoakOptions {
    SoakOptions {
        spec: soak_spec(),
        config: ServeConfig {
            queue_capacity: 2,
            max_tenants: 4,
            workers: 2,
            batch_windows: 3,
        },
        tenants: 3,
        quantized,
        swap_mid_stream: true,
        // Generous: the SLO mechanism is under test, not this machine.
        max_p99_e2e_us: 60_000_000,
        sim_workers: 2,
    }
}

#[test]
fn f32_soak_passes_every_invariant() {
    let report = run_soak(&options(false)).expect("soak must run");
    assert!(report.passed(), "{}", report.render());
    assert_eq!(report.forced_rejections, 1);
    assert!(report.verdicts_audited > 0);
    assert_eq!(report.swap_version, Some(1));
    let e2e = report.status.e2e.as_ref().expect("e2e populated");
    assert_eq!(e2e.count, report.windows_streamed as u64);
    assert_eq!(report.status.rejected_for("queue_full"), 1);
}

#[test]
fn quantized_soak_passes_every_invariant() {
    let report = run_soak(&options(true)).expect("soak must run");
    assert!(report.passed(), "{}", report.render());
    assert!(report.status.e2e.is_some());
    // Started int8, swapped to f32 — the final bundle is the f32 pipeline.
    assert!(!report.status.quantized);
    assert_eq!(report.status.model_version, 1);
}

#[test]
fn an_impossible_slo_is_reported_not_swallowed() {
    let mut opts = options(false);
    opts.swap_mid_stream = false;
    opts.max_p99_e2e_us = 0; // nothing real completes in 0µs
    let report = run_soak(&opts).expect("soak must run");
    assert!(!report.passed());
    assert!(
        report.failures.iter().any(|f| f.contains("SLO")),
        "{:?}",
        report.failures
    );
}
