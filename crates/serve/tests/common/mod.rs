//! Shared fixtures for the serve integration tests: one small campaign's
//! samples and two independently trained pipelines (different seeds), each
//! in f32 and fused-int8 export form, built once per test binary.

#![allow(dead_code)] // each test binary uses a different subset

use dl2fence::input::sample_frames;
use dl2fence::{Dl2Fence, FenceConfig, FenceModelExport};
use dl2fence_campaign::{CampaignSpec, Executor};
use dl2fence_serve::{
    AssembledWindow, DetectionService, ModelBundle, PipelineReplica, RejectReason, Verdict,
};
use noc_monitor::{FeatureKind, LabeledSample};
use std::collections::BTreeMap;
use std::sync::OnceLock;
use std::time::Instant;
use tinycnn::serialize::QuantizedModelExport;

/// Mesh side of every fixture sample and model.
pub const MESH: usize = 4;
/// Detection feature of the fixture models.
pub const DET: FeatureKind = FeatureKind::Vco;
/// Localization feature of the fixture models.
pub const LOC: FeatureKind = FeatureKind::Boc;

pub struct Fixture {
    /// Labeled samples from a tiny campaign — the traffic source.
    pub samples: Vec<LabeledSample>,
    /// Model A (seed 1), f32 export.
    pub export_a: FenceModelExport,
    /// Model A, fused int8 detector.
    pub quant_a: QuantizedModelExport,
    /// Model B (seed 2) — a genuinely different model for swap tests.
    pub export_b: FenceModelExport,
    /// Model B, fused int8 detector.
    pub quant_b: QuantizedModelExport,
}

pub fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let mut spec = CampaignSpec::quick("serve-test");
        spec.grid.mesh = vec![MESH];
        spec.sim.warmup_cycles = 100;
        spec.sim.sample_period = 200;
        spec.sim.samples_per_run = 2;
        spec.sim.collect_samples = true;
        let outcome = Executor::new(2).execute(&spec).unwrap();
        let samples: Vec<LabeledSample> =
            outcome.runs.into_iter().flat_map(|r| r.samples).collect();
        assert!(samples.len() >= 6, "fixture campaign too small");
        let train = |seed: u64| {
            let mut fence = Dl2Fence::new(
                FenceConfig::new(MESH, MESH)
                    .with_epochs(6, 4)
                    .with_seed(seed),
            );
            fence.train(&samples);
            (fence.export_model(), fence.detector().quantize().export())
        };
        let (export_a, quant_a) = train(1);
        let (export_b, quant_b) = train(2);
        assert_ne!(
            export_a.detector.fingerprint(),
            export_b.detector.fingerprint(),
            "the two fixture models must differ"
        );
        Fixture {
            samples,
            export_a,
            quant_a,
            export_b,
            quant_b,
        }
    })
}

/// Streams one sample's frames as a complete window into the service,
/// returning the completing frame's outcome.
pub fn ingest_window(
    service: &DetectionService,
    tenant: u64,
    sample: &LabeledSample,
) -> Result<u64, RejectReason> {
    let mut last = Ok(None);
    for frame in sample_frames(sample, DET).clone().into_frames() {
        last = service.ingest(tenant, frame);
    }
    for frame in sample_frames(sample, LOC).clone().into_frames() {
        last = service.ingest(tenant, frame);
    }
    match last {
        Ok(Some(seq)) => Ok(seq),
        Ok(None) => panic!("a full window must complete or reject"),
        Err(reason) => Err(reason),
    }
}

/// Audits a verdict set against offline replicas: every batch must be
/// version-pure, every version must map to a known bundle, and replaying
/// each batch — same windows, same order — through a fresh
/// [`PipelineReplica`] must reproduce every report bit-identically.
/// Returns human-readable violations (empty = all invariants held).
pub fn replay_parity(
    verdicts: &[Verdict],
    source: &BTreeMap<(u64, u64), usize>,
    samples: &[LabeledSample],
    bundles: &BTreeMap<u64, ModelBundle>,
) -> Vec<String> {
    let mut failures = Vec::new();
    let mut batches: BTreeMap<u64, Vec<&Verdict>> = BTreeMap::new();
    for v in verdicts {
        batches.entry(v.batch).or_default().push(v);
    }
    for (batch_id, mut group) in batches {
        group.sort_by_key(|v| v.position);
        let version = group[0].model_version;
        if group.iter().any(|v| v.model_version != version) {
            failures.push(format!("batch {batch_id} mixes model versions"));
            continue;
        }
        let Some(bundle) = bundles.get(&version) else {
            failures.push(format!("batch {batch_id} ran unknown version {version}"));
            continue;
        };
        let windows: Vec<AssembledWindow> = group
            .iter()
            .map(|v| {
                let idx = source[&(v.tenant, v.seq)];
                AssembledWindow {
                    tenant: v.tenant,
                    seq: v.seq,
                    detection: sample_frames(&samples[idx], DET).clone(),
                    localization: sample_frames(&samples[idx], LOC).clone(),
                    assembled_at: Instant::now(),
                }
            })
            .collect();
        let offline = PipelineReplica::build(bundle).process(batch_id, &windows);
        for (live, off) in group.iter().zip(&offline) {
            if live.report != off.report {
                failures.push(format!(
                    "tenant {} window {} (batch {batch_id}, v{version}) differs from offline",
                    live.tenant, live.seq
                ));
            }
        }
    }
    failures
}
