//! Integration tests of the threaded service: deterministic backpressure,
//! offline parity, hot-swap atomicity and leak-free shutdown.

mod common;

use common::{fixture, ingest_window, replay_parity};
use dl2fence::input::sample_frames;
use dl2fence::Dl2Fence;
use dl2fence_serve::{DetectionService, ModelBundle, RejectReason, ServeConfig};
use std::collections::BTreeMap;

fn small_config() -> ServeConfig {
    ServeConfig {
        queue_capacity: 2,
        max_tenants: 4,
        workers: 2,
        batch_windows: 3,
    }
}

#[test]
fn backpressure_is_deterministic_counted_and_replayable() {
    let fix = fixture();
    let service =
        DetectionService::new(small_config(), ModelBundle::f32_only(fix.export_a.clone()));
    // An idle drain returns immediately — nothing queued, nothing in flight.
    service.drain_until_idle();

    // Paused, tenant 0's ring absorbs exactly `queue_capacity` windows...
    service.pause();
    assert_eq!(ingest_window(&service, 0, &fix.samples[0]), Ok(0));
    assert_eq!(ingest_window(&service, 0, &fix.samples[1]), Ok(1));
    // ...and the next completing window is rejected with a reason.
    assert_eq!(
        ingest_window(&service, 0, &fix.samples[2]),
        Err(RejectReason::QueueFull)
    );
    service.resume();
    service.drain_until_idle();
    assert_eq!(service.take_verdicts().len(), 2);

    // The ring drained: the rejected window replays, nothing was lost.
    assert_eq!(ingest_window(&service, 0, &fix.samples[2]), Ok(2));
    service.drain_until_idle();
    assert_eq!(service.take_verdicts().len(), 1);

    let status = service.shutdown();
    assert_eq!(status.assembled_windows, 3);
    assert_eq!(status.rejected_for("queue_full"), 1);
    assert_eq!(status.rejected_total, 1);
    assert_eq!(status.verdicts, 3);
    assert_eq!(status.queued, 0);
    assert_eq!(status.in_flight, 0);
}

#[test]
fn f32_verdicts_match_offline_analyze_frames_bitwise() {
    let fix = fixture();
    let service =
        DetectionService::new(small_config(), ModelBundle::f32_only(fix.export_a.clone()));
    let mut source = BTreeMap::new();
    for (i, sample) in fix.samples.iter().enumerate() {
        let tenant = i as u64 % 2;
        let seq = ingest_window(&service, tenant, sample).expect("capacity suffices with draining");
        source.insert((tenant, seq), i);
        service.drain_until_idle();
    }
    let verdicts = service.take_verdicts();
    assert_eq!(verdicts.len(), fix.samples.len());

    // The f32 path is batch-composition independent, so every verdict must
    // equal the plain offline single-window API bit for bit.
    let mut offline = Dl2Fence::from_export(fix.export_a.clone());
    for v in &verdicts {
        let idx = source[&(v.tenant, v.seq)];
        let expected = offline.analyze_frames(
            sample_frames(&fix.samples[idx], common::DET),
            sample_frames(&fix.samples[idx], common::LOC),
        );
        assert_eq!(v.report, expected, "tenant {} window {}", v.tenant, v.seq);
    }

    let status = service.shutdown();
    let e2e = status
        .e2e
        .as_ref()
        .expect("e2e histogram must be populated");
    assert_eq!(e2e.count, verdicts.len() as u64);
    assert!(e2e.p99_us >= e2e.p50_us);
    assert!(
        status.stage("stage.detect").is_some(),
        "per-stage histograms must be populated, got: {:?}",
        status.stages
    );
}

#[test]
fn hot_swap_under_load_is_version_pure_and_lossless() {
    let fix = fixture();
    let service =
        DetectionService::new(small_config(), ModelBundle::f32_only(fix.export_a.clone()));
    let mut bundles = BTreeMap::new();
    bundles.insert(0, ModelBundle::f32_only(fix.export_a.clone()));

    let mut source = BTreeMap::new();
    let mut streamed = 0usize;
    let half = fix.samples.len() / 2;
    for (i, sample) in fix.samples.iter().enumerate() {
        if i == half {
            // Swap while windows are queued and possibly in flight — model B
            // in int8 form, so the change crosses both weights and precision.
            let v = service.swap_model(fix.export_b.clone(), Some(fix.quant_b.clone()));
            assert_eq!(v, 1);
            bundles.insert(
                1,
                ModelBundle {
                    version: 1,
                    ..ModelBundle::quantized(fix.export_b.clone(), fix.quant_b.clone())
                },
            );
        }
        let tenant = i as u64 % 3;
        match ingest_window(&service, tenant, sample) {
            Ok(seq) => {
                source.insert((tenant, seq), i);
                streamed += 1;
            }
            Err(RejectReason::QueueFull) => {
                service.drain_until_idle();
                let seq = ingest_window(&service, tenant, sample).expect("ring drained");
                source.insert((tenant, seq), i);
                streamed += 1;
            }
            Err(other) => panic!("unexpected rejection: {other}"),
        }
    }
    service.drain_until_idle();
    let verdicts = service.take_verdicts();
    assert_eq!(verdicts.len(), streamed, "no window lost across the swap");
    assert!(
        verdicts.iter().any(|v| v.model_version == 1),
        "post-swap verdicts must exist"
    );

    let failures = replay_parity(&verdicts, &source, &fix.samples, &bundles);
    assert!(failures.is_empty(), "{failures:?}");

    let status = service.shutdown();
    assert_eq!(status.swaps, 1);
    assert_eq!(status.model_version, 1);
    assert!(status.quantized);
    assert_eq!(
        status.model_fingerprint,
        bundles[&1].fingerprint(),
        "status reports the live bundle's fingerprint"
    );
}

#[test]
fn shutdown_mid_stream_drains_everything_before_joining() {
    let fix = fixture();
    let service = DetectionService::new(
        ServeConfig {
            queue_capacity: 16,
            ..small_config()
        },
        ModelBundle::quantized(fix.export_a.clone(), fix.quant_a.clone()),
    );
    let mut streamed = 0;
    for (i, sample) in fix.samples.iter().enumerate() {
        ingest_window(&service, i as u64 % 2, sample).expect("capacity 16 fits the fixture");
        streamed += 1;
    }
    // No drain: shutdown itself must finish every queued window.
    let status = service.shutdown();
    assert_eq!(status.assembled_windows, streamed);
    assert_eq!(status.verdicts, streamed);
    assert_eq!(status.queued, 0);
    assert_eq!(status.in_flight, 0);
    assert_eq!(status.rejected_total, 0);
}

#[test]
fn status_json_round_trips_with_populated_histograms() {
    let fix = fixture();
    let service =
        DetectionService::new(small_config(), ModelBundle::f32_only(fix.export_a.clone()));
    ingest_window(&service, 0, &fix.samples[0]).unwrap();
    service.drain_until_idle();
    let status = service.status();
    let parsed = dl2fence_serve::ServeStatus::from_json(&status.to_json()).unwrap();
    assert_eq!(parsed, status);
    assert!(
        parsed.e2e.is_some(),
        "non-empty p50/p99 in the JSON snapshot"
    );
    service.shutdown();
}
