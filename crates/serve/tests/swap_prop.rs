//! Satellite property: swapping a `QuantizedModelExport` between batches —
//! at an **arbitrary** point in the stream, with arbitrary ring/batch
//! geometry — never mixes models within one batch, and pre-/post-swap
//! verdicts match their respective offline detectors bit-identically
//! (replayed with the exact batch compositions, since int8 activation
//! scales depend on what else shared the batch).

mod common;

use common::{fixture, ingest_window, replay_parity};
use dl2fence_serve::{ModelBundle, RejectReason, ServeConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;

proptest! {
    #[test]
    fn quantized_swap_never_mixes_models_within_a_batch(
        swap_at in 0usize..7,
        batch_windows in 1usize..4,
        queue_capacity in 1usize..4,
        workers in 1usize..3,
    ) {
        let fix = fixture();
        let config = ServeConfig {
            queue_capacity,
            max_tenants: 3,
            workers,
            batch_windows,
        };
        let initial = ModelBundle::quantized(fix.export_a.clone(), fix.quant_a.clone());
        let service = dl2fence_serve::DetectionService::new(config, initial.clone());
        let mut bundles = BTreeMap::new();
        bundles.insert(0, initial);

        let mut source = BTreeMap::new();
        let mut streamed = 0usize;
        for (i, sample) in fix.samples.iter().enumerate() {
            if i == swap_at.min(fix.samples.len() - 1) {
                // Drain first so the version split is deterministic: every
                // earlier window verdicts on model A, every later one on B.
                service.drain_until_idle();
                let v = service.swap_model(fix.export_b.clone(), Some(fix.quant_b.clone()));
                bundles.insert(v, ModelBundle {
                    version: v,
                    ..ModelBundle::quantized(fix.export_b.clone(), fix.quant_b.clone())
                });
            }
            let tenant = i as u64 % 3;
            let seq = match ingest_window(&service, tenant, sample) {
                Ok(seq) => seq,
                Err(RejectReason::QueueFull) => {
                    service.drain_until_idle();
                    ingest_window(&service, tenant, sample).expect("ring drained")
                }
                Err(other) => panic!("unexpected rejection: {other}"),
            };
            source.insert((tenant, seq), i);
            streamed += 1;
        }
        service.drain_until_idle();
        let verdicts = service.take_verdicts();
        let status = service.shutdown();

        prop_assert_eq!(verdicts.len(), streamed); // no window lost across the swap
        prop_assert_eq!(status.swaps, 1u64);
        // Version purity + bit-identical parity against the respective
        // offline detectors, batch compositions preserved.
        let failures = replay_parity(&verdicts, &source, &fix.samples, &bundles);
        prop_assert!(failures.is_empty(), "{:?}", failures);
        // The drain before the swap pins the split: window i verdicts on
        // model A iff it was streamed before the swap point.
        let pivot = swap_at.min(fix.samples.len() - 1);
        for v in &verdicts {
            let idx = source[&(v.tenant, v.seq)];
            let expected = u64::from(idx >= pivot);
            prop_assert_eq!(v.model_version, expected);
        }
    }
}
