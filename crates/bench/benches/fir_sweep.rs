//! Criterion benchmark of the Figure 1 FIR sweep machinery: one latency
//! measurement point at a representative FIR.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use noc_monitor::{sweep_fir, FirSweepConfig};
use noc_sim::{NocConfig, NodeId};
use noc_traffic::{BenignWorkload, SyntheticPattern};

fn bench_fir_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fir_sweep");
    group.sample_size(10);
    for &fir in &[0.2f64, 0.8] {
        group.bench_with_input(
            BenchmarkId::new("single_point_8x8_2000_cycles", format!("fir_{fir}")),
            &fir,
            |b, &fir| {
                b.iter(|| {
                    let config = FirSweepConfig {
                        noc: NocConfig::mesh(8, 8),
                        workload: BenignWorkload::Synthetic(SyntheticPattern::UniformRandom, 0.02),
                        attackers: vec![NodeId(63)],
                        victim: NodeId(0),
                        firs: vec![fir],
                        cycles: 2_000,
                        seed: 7,
                    };
                    sweep_fir(&config)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fir_sweep);
criterion_main!(benches);
