//! Criterion benchmark of the campaign engine's parallel throughput: the
//! same fixed 18-run campaign executed at 1, 2 and N worker threads, so the
//! runs-per-second speedup can be tracked over time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dl2fence_campaign::{CampaignSpec, Executor};

fn throughput_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::quick("bench-throughput");
    spec.grid.mesh = vec![8];
    spec.grid.fir = vec![0.4, 0.8];
    spec.grid.workloads = vec!["uniform".into(), "tornado".into(), "blackscholes".into()];
    spec.grid.attack_placements = 2;
    spec.grid.benign_runs = 2;
    spec.grid.seeds = vec![7];
    spec.sim.warmup_cycles = 100;
    spec.sim.sample_period = 300;
    spec.sim.samples_per_run = 2;
    spec
}

fn bench_campaign_throughput(c: &mut Criterion) {
    let spec = throughput_spec();
    let runs = dl2fence_campaign::expand(&spec)
        .expect("bench spec expands")
        .len();
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut group = c.benchmark_group("campaign_throughput");
    group.sample_size(10);
    let mut worker_counts = vec![1usize, 2];
    if available > 2 {
        worker_counts.push(available);
    }
    for workers in worker_counts {
        group.bench_with_input(
            BenchmarkId::new(format!("{runs}_runs"), format!("{workers}_workers")),
            &workers,
            |b, &workers| {
                let executor = Executor::new(workers);
                b.iter(|| executor.execute(&spec).expect("campaign executes"))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_campaign_throughput);
criterion_main!(benches);
