//! Criterion micro-benchmarks of the NoC simulator: cycles per second under
//! benign and attack traffic at 8×8 and 16×16.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use noc_sim::{NocConfig, NodeId};
use noc_traffic::{AttackScenario, FloodingAttack, SyntheticPattern};

fn simulate(mesh: usize, attack: bool, cycles: u64) -> u64 {
    let mut builder = AttackScenario::builder(NocConfig::mesh(mesh, mesh))
        .benign(SyntheticPattern::UniformRandom, 0.02)
        .seed(1);
    if attack {
        builder = builder.attack(FloodingAttack::new(
            vec![NodeId(mesh * mesh - 1)],
            NodeId(0),
            0.8,
        ));
    }
    let mut scenario = builder.build();
    scenario.run(cycles);
    scenario.network().stats().packets_received
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    for &mesh in &[8usize, 16] {
        group.bench_with_input(
            BenchmarkId::new("benign_1000_cycles", mesh),
            &mesh,
            |b, &m| b.iter(|| simulate(m, false, 1_000)),
        );
        group.bench_with_input(
            BenchmarkId::new("attack_1000_cycles", mesh),
            &mesh,
            |b, &m| b.iter(|| simulate(m, true, 1_000)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
