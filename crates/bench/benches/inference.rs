//! Criterion micro-benchmarks of model inference: detector classification
//! and localizer segmentation latency per monitoring window.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dl2fence::{DosDetector, DosLocalizer};
use noc_monitor::{FeatureKind, FrameSampler};
use noc_sim::{NocConfig, NodeId};
use noc_traffic::{AttackScenario, FloodingAttack, SyntheticPattern};

fn sampled_frames(
    mesh: usize,
) -> (
    noc_monitor::DirectionalFrames,
    noc_monitor::DirectionalFrames,
) {
    let mut scenario = AttackScenario::builder(NocConfig::mesh(mesh, mesh))
        .benign(SyntheticPattern::UniformRandom, 0.02)
        .attack(FloodingAttack::new(
            vec![NodeId(mesh * mesh - 1)],
            NodeId(0),
            0.8,
        ))
        .seed(2)
        .build();
    scenario.run(1_000);
    (
        FrameSampler::sample(scenario.network(), FeatureKind::Vco),
        FrameSampler::sample(scenario.network(), FeatureKind::Boc),
    )
}

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference");
    group.sample_size(20);
    for &mesh in &[8usize, 16] {
        let (vco, boc) = sampled_frames(mesh);
        let mut detector = DosDetector::new(mesh, mesh, 0);
        let mut localizer = DosLocalizer::new(mesh, mesh, 1);
        group.bench_with_input(BenchmarkId::new("detector", mesh), &mesh, |b, _| {
            b.iter(|| detector.detect(&vco))
        });
        group.bench_with_input(BenchmarkId::new("localizer_bundle", mesh), &mesh, |b, _| {
            b.iter(|| localizer.segment_bundle(&boc))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
