//! Criterion micro-benchmarks of the end-to-end DL2Fence pipeline: frame
//! sampling plus detection plus (when triggered) segmentation, fusion and
//! attacker localization for one monitoring window.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dl2fence::{Dl2Fence, FenceConfig};
use noc_sim::{NocConfig, NodeId};
use noc_traffic::{AttackScenario, FloodingAttack, SyntheticPattern};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(20);
    for &mesh in &[8usize, 16] {
        let mut scenario = AttackScenario::builder(NocConfig::mesh(mesh, mesh))
            .benign(SyntheticPattern::UniformRandom, 0.02)
            .attack(FloodingAttack::new(
                vec![NodeId(mesh * mesh - 1)],
                NodeId(0),
                0.8,
            ))
            .seed(3)
            .build();
        scenario.run(1_000);
        let mut fence = Dl2Fence::new(FenceConfig::new(mesh, mesh).with_epochs(1, 1));
        group.bench_with_input(BenchmarkId::new("monitor_window", mesh), &mesh, |b, _| {
            b.iter(|| fence.monitor(scenario.network()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
