//! Regenerates **Table 2**: detection and localization metrics when both
//! tasks use the (normalized) Buffer Operation Counts (BOC) feature.
//!
//! Run with `--full` (or `DL2FENCE_FULL=1`) for the paper-scale 16×16 mesh.

use dl2fence_bench::{print_table, run_table_experiment, ExperimentScale};
use noc_monitor::FeatureKind;

fn main() {
    let scale = ExperimentScale::from_env();
    println!(
        "Table 2 — BOC for detection and localization ({}x{} STP mesh, FIR {})",
        scale.stp_mesh, scale.stp_mesh, scale.fir
    );
    let result = run_table_experiment(FeatureKind::Boc, FeatureKind::Boc, &scale);
    print_table("Table 2: BOC | BOC", &result);
    println!(
        "Paper reference (16x16): STP detection avg acc 0.997, localization avg acc 0.973;\n\
         PARSEC detection avg acc 0.94, localization avg acc 0.97.\n\
         Expected shape: BOC is at least as good as VCO for detection and much\n\
         stronger for localization on the traffic-heavy STP benchmarks."
    );
}
