//! Ablation: localizer depth versus dice accuracy versus hardware cost
//! (DESIGN.md §5). The paper notes that "adding more convolutional layers
//! might enhance dice accuracy, but it would substantially inflate the
//! model's hardware overhead".

use dl2fence::input::direction_masks;
use dl2fence::DosLocalizer;
use dl2fence_bench::{collect_split, stp_workloads, ExperimentScale};
use hw_overhead::area::AcceleratorParams;
use noc_monitor::FeatureKind;
use noc_sim::Direction;
use tinycnn::{dice_coefficient, Tensor};

fn main() {
    let scale = ExperimentScale::from_env();
    let mesh = scale.stp_mesh;
    println!("Ablation — localizer depth vs dice accuracy vs area ({mesh}x{mesh} mesh)");
    let (train, test) = collect_split(&stp_workloads(&scale), mesh, &scale);
    let attack_tests: Vec<_> = test.iter().filter(|s| s.truth.under_attack).collect();

    println!(
        "{:>11} {:>10} {:>12} {:>14}",
        "conv layers", "params", "mean dice", "accel gates"
    );
    for conv_layers in [2usize, 3, 4] {
        let mut localizer = DosLocalizer::with_architecture(mesh, mesh, 8, conv_layers, scale.seed);
        localizer.train(&train, FeatureKind::Boc, scale.localizer_epochs, scale.seed);
        // Mean dice over every direction of every attack test sample.
        let mut dice_sum = 0.0;
        let mut count = 0usize;
        for s in &attack_tests {
            let segs = localizer.segment_bundle(&s.boc);
            let masks = direction_masks(&s.truth);
            for dir in Direction::CARDINAL {
                let pred = Tensor::from_vec(segs[dir.index()].clone(), &[mesh * mesh]);
                let truth = Tensor::from_vec(masks[dir.index()].clone(), &[mesh * mesh]);
                dice_sum += dice_coefficient(&pred, &truth, 0.5);
                count += 1;
            }
        }
        // Area of an accelerator storing this model's weights.
        let accel = AcceleratorParams {
            weight_count: localizer.parameter_count(),
            ..AcceleratorParams::localizer()
        };
        println!(
            "{:>11} {:>10} {:>12.3} {:>14.0}",
            conv_layers,
            localizer.parameter_count(),
            dice_sum / count.max(1) as f64,
            accel.gates()
        );
    }
    println!();
    println!(
        "Expected shape: dice accuracy saturates after 2–3 layers while the\n\
         accelerator area keeps growing — the paper's rationale for the minimal model."
    );
}
