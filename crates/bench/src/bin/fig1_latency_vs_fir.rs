//! Regenerates **Figure 1 (right)**: packet/flit queue and end-to-end
//! latencies as the Flooding Injection Rate (FIR) rises from 0 to 1, with
//! the saturation ("system crashed") point at FIR = 1.
//!
//! Run with `--full` for longer runs per FIR point.

use dl2fence_bench::ExperimentScale;
use noc_monitor::{sweep_fir, FirSweepConfig};
use noc_sim::{NocConfig, NodeId};
use noc_traffic::{BenignWorkload, ParsecWorkload};

fn main() {
    let scale = ExperimentScale::from_env();
    let mesh = scale.parsec_mesh;
    let cycles = if scale.stp_mesh >= 16 { 20_000 } else { 5_000 };
    let config = FirSweepConfig {
        noc: NocConfig::mesh(mesh, mesh).with_injection_queue_capacity(512),
        workload: BenignWorkload::Parsec(ParsecWorkload::Blackscholes),
        attackers: vec![NodeId(mesh * mesh - 1)],
        victim: NodeId(0),
        firs: (0..=10).map(|i| i as f64 / 10.0).collect(),
        cycles,
        seed: 0xF1,
    };
    println!(
        "Figure 1 — latency vs FIR ({}x{} mesh, PARSEC-like benign workload, {} cycles/point)",
        mesh, mesh, cycles
    );
    println!(
        "{:>5} {:>18} {:>15} {:>18} {:>13} {:>10}",
        "FIR", "pkt queue lat", "pkt latency", "flit queue lat", "flit latency", "crashed"
    );
    for p in sweep_fir(&config) {
        println!(
            "{:>5.1} {:>18.2} {:>15.2} {:>18.2} {:>13.2} {:>10}",
            p.fir,
            p.packet_queue_latency,
            p.packet_latency,
            p.flit_queue_latency,
            p.flit_latency,
            if p.saturated { "yes" } else { "no" }
        );
    }
    println!();
    println!(
        "Paper reference: latency rises monotonically with FIR (1.1x–60x over the\n\
         no-attack value between FIR 0.1 and 0.9) and the system crashes at FIR = 1."
    );
}
