//! Regenerates **Figure 1 (right)**: packet/flit queue and end-to-end
//! latencies as the Flooding Injection Rate (FIR) rises from 0 to 1, with
//! the saturation ("system crashed") point at FIR = 1.
//!
//! The eleven FIR points are independent simulations, so the sweep runs as a
//! campaign on the `dl2fence-campaign` worker-pool executor — one run per
//! point, all cores busy, deterministic output for any worker count.
//!
//! Run with `--full` for longer runs per FIR point.

use dl2fence_bench::ExperimentScale;
use dl2fence_campaign::{runs_from_scenarios, CampaignReport, Executor, SimParams};
use noc_monitor::ScenarioSpec;
use noc_sim::NodeId;
use noc_traffic::{BenignWorkload, ParsecWorkload};
use std::time::Instant;

fn main() {
    let scale = ExperimentScale::from_env();
    let mesh = scale.parsec_mesh;
    let cycles = if scale.stp_mesh >= 16 { 20_000 } else { 5_000 };
    let workload = BenignWorkload::Parsec(ParsecWorkload::Blackscholes);
    let attacker = NodeId(mesh * mesh - 1);
    let victim = NodeId(0);

    // One scenario per FIR point: the paper's corner-to-corner flooding
    // attack overlaid on the PARSEC-like benign workload (FIR 0 = no attack).
    let scenarios = (0..=10).map(|i| {
        let fir = i as f64 / 10.0;
        if fir == 0.0 {
            ScenarioSpec::benign(workload)
        } else {
            ScenarioSpec::attacked(workload, vec![attacker], victim, fir)
        }
    });
    let runs = runs_from_scenarios(0xF1, mesh, scenarios);
    let sim = SimParams {
        warmup_cycles: 0,
        sample_period: cycles,
        samples_per_run: 1,
        collect_samples: false,
        injection_queue_capacity: 512,
    };

    let executor = Executor::with_available_parallelism();
    println!(
        "Figure 1 — latency vs FIR ({}x{} mesh, PARSEC-like benign workload, {} cycles/point, {} workers)",
        mesh,
        mesh,
        cycles,
        executor.workers()
    );
    let started = Instant::now();
    let results = executor.execute_runs(&sim, &runs);
    let elapsed = started.elapsed();

    println!(
        "{:>5} {:>18} {:>15} {:>18} {:>13} {:>10}",
        "FIR", "pkt queue lat", "pkt latency", "flit queue lat", "flit latency", "crashed"
    );
    for r in &results {
        println!(
            "{:>5.1} {:>18.2} {:>15.2} {:>18.2} {:>13.2} {:>10}",
            r.spec.scenario.fir,
            r.metrics.packet_queue_latency,
            r.metrics.packet_latency,
            r.metrics.flit_queue_latency,
            r.metrics.flit_latency,
            if r.metrics.saturated { "yes" } else { "no" }
        );
    }
    let report = CampaignReport::from_runs("fig1_latency_vs_fir", vec!["fir".into()], &results)
        .expect("fir is a valid grouping key");
    println!(
        "\n{} runs in {:.2}s ({:.1} runs/s); grouped report: {} groups",
        report.total_runs,
        elapsed.as_secs_f64(),
        report.total_runs as f64 / elapsed.as_secs_f64().max(1e-9),
        report.groups.len()
    );
    println!(
        "Paper reference: latency rises monotonically with FIR (1.1x–60x over the\n\
         no-attack value between FIR 0.1 and 0.9) and the system crashes at FIR = 1."
    );
}
