//! Ablation: effect of the Victim Completing Enhancement (VCE) stage on
//! localization quality (DESIGN.md §5).
//!
//! Trains one DL2Fence instance per setting (VCE on / VCE off) on the same
//! dataset and compares the localization confusion on the held-out test set.

use dl2fence::evaluation::evaluate;
use dl2fence::{Dl2Fence, FenceConfig};
use dl2fence_bench::{collect_split, stp_workloads, ExperimentScale};
use noc_monitor::FeatureKind;

fn main() {
    let scale = ExperimentScale::from_env();
    let mesh = scale.stp_mesh;
    println!("Ablation — Victim Completing Enhancement ({mesh}x{mesh} mesh)");
    let (train, test) = collect_split(&stp_workloads(&scale), mesh, &scale);

    for vce in [false, true] {
        let mut config = FenceConfig::new(mesh, mesh)
            .with_seed(scale.seed)
            .with_epochs(scale.detector_epochs, scale.localizer_epochs)
            .with_vce(vce);
        config.detection_feature = FeatureKind::Vco;
        config.localization_feature = FeatureKind::Boc;
        let mut fence = Dl2Fence::new(config);
        fence.train(&train);
        let report = evaluate(&mut fence, &test);
        let loc = report.overall_localization();
        println!(
            "VCE {:<3}: localization accuracy {:.3}  precision {:.3}  recall {:.3}  f1 {:.3}",
            if vce { "on" } else { "off" },
            loc.accuracy(),
            loc.precision(),
            loc.recall(),
            loc.f1()
        );
    }
    println!();
    println!(
        "Expected shape: VCE raises recall (missed routing-path victims are deduced\n\
         from XY routing) at little or no cost in precision."
    );
}
