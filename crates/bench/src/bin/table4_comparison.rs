//! Regenerates **Table 4**: the comparison against related works (ML model,
//! hardware overhead, NoC scale, detection/localization metrics).
//!
//! Literature rows use the numbers reported by the cited works; the
//! "Our Work" row combines the analytical area model with the metrics
//! measured by the Table 3 experiment at the current scale.

use dl2fence_bench::{run_table_experiment, ExperimentScale};
use hw_overhead::comparison::{our_work_entry, related_works};
use hw_overhead::{AreaModel, RouterParams};
use noc_monitor::FeatureKind;

fn fmt_pct(v: Option<f64>) -> String {
    v.map(|x| format!("{:.1}%", x * 100.0))
        .unwrap_or_else(|| "N/A".to_string())
}

fn main() {
    let scale = ExperimentScale::from_env();
    println!(
        "Table 4 — comparison to related works (measuring our metrics at {}x{})",
        scale.stp_mesh, scale.stp_mesh
    );
    let result = run_table_experiment(FeatureKind::Vco, FeatureKind::Boc, &scale);
    let detection = result.stp.overall_detection();
    let localization = result.stp.overall_localization();

    let model = AreaModel::new(RouterParams::default());
    let mut rows = related_works();
    rows.push(our_work_entry(
        &model,
        scale.stp_mesh,
        detection.accuracy(),
        detection.precision(),
        localization.accuracy(),
        localization.precision(),
    ));

    println!(
        "{:<24} {:<26} {:>9} {:>7} {:>8} {:>8} {:>8} {:>8}",
        "Work", "ML model", "overhead", "scale", "D-acc", "D-prec", "L-acc", "L-prec"
    );
    for r in &rows {
        println!(
            "{:<24} {:<26} {:>9} {:>5}x{:<1} {:>8} {:>8} {:>8} {:>8}",
            r.work,
            r.ml_model,
            fmt_pct(r.hardware_overhead),
            r.noc_scale,
            r.noc_scale,
            fmt_pct(r.detection_accuracy),
            fmt_pct(r.detection_precision),
            fmt_pct(r.localization_accuracy),
            fmt_pct(r.localization_precision),
        );
    }
    println!();
    println!(
        "Additional overhead points from the area model: 8x8 = {:.2}%, 16x16 = {:.2}%",
        model.dl2fence_overhead(8) * 100.0,
        model.dl2fence_overhead(16) * 100.0
    );
    println!(
        "Paper reference: DL2Fence reports 1.9% (8x8) / 0.45% (16x16) overhead,\n\
         detection acc 95.8% / precision 98.5%, localization acc 91.7% / precision 99.3%,\n\
         and is the only scheme evaluated at 16x16."
    );
}
