//! Ablation: Multi-Frame-Fusion binarization threshold sweep (DESIGN.md §5).
//!
//! Trains one DL2Fence instance and re-evaluates localization with different
//! binarization thresholds applied to the segmentation outputs.

use dl2fence::evaluation::evaluate;
use dl2fence::{Dl2Fence, FenceConfig};
use dl2fence_bench::{collect_split, stp_workloads, ExperimentScale};
use noc_monitor::FeatureKind;

fn main() {
    let scale = ExperimentScale::from_env();
    let mesh = scale.stp_mesh;
    println!("Ablation — MFF binarization threshold sweep ({mesh}x{mesh} mesh)");
    let (train, test) = collect_split(&stp_workloads(&scale), mesh, &scale);

    println!(
        "{:>9} {:>10} {:>11} {:>8} {:>8}",
        "threshold", "accuracy", "precision", "recall", "f1"
    );
    for threshold in [0.3f32, 0.4, 0.5, 0.6, 0.7] {
        let mut config = FenceConfig::new(mesh, mesh)
            .with_seed(scale.seed)
            .with_epochs(scale.detector_epochs, scale.localizer_epochs);
        config.detection_feature = FeatureKind::Vco;
        config.localization_feature = FeatureKind::Boc;
        config.fusion_threshold = threshold;
        let mut fence = Dl2Fence::new(config);
        fence.train(&train);
        let report = evaluate(&mut fence, &test);
        let loc = report.overall_localization();
        println!(
            "{:>9.1} {:>10.3} {:>11.3} {:>8.3} {:>8.3}",
            threshold,
            loc.accuracy(),
            loc.precision(),
            loc.recall(),
            loc.f1()
        );
    }
    println!();
    println!(
        "Expected shape: low thresholds trade precision for recall; the default 0.5\n\
         sits near the F1 optimum."
    );
}
