//! Regenerates **Table 3**: the chosen DL2Fence configuration — VCO frames
//! for detection, normalized BOC frames for localization.
//!
//! Run with `--full` (or `DL2FENCE_FULL=1`) for the paper-scale 16×16 mesh.

use dl2fence_bench::{print_table, run_table_experiment, ExperimentScale};
use noc_monitor::FeatureKind;

fn main() {
    let scale = ExperimentScale::from_env();
    println!(
        "Table 3 — VCO detection + BOC localization ({}x{} STP mesh, FIR {})",
        scale.stp_mesh, scale.stp_mesh, scale.fir
    );
    let result = run_table_experiment(FeatureKind::Vco, FeatureKind::Boc, &scale);
    print_table("Table 3: VCO detection | BOC localization", &result);
    println!(
        "Paper reference (16x16): detection acc 0.958 / precision 0.985,\n\
         localization acc 0.917 / precision 0.993 (STP averages).\n\
         Expected shape: detection close to the VCO-only numbers, localization\n\
         close to the BOC-only numbers — the best of both features."
    );
}
