//! Regenerates **Figure 5**: DL2Fence hardware overhead versus NoC size
//! (4×4, 8×8, 16×16, 32×32), plus the 8×8→16×16 reduction headline.

use hw_overhead::{AreaModel, RouterParams};

fn main() {
    let model = AreaModel::new(RouterParams::default());
    println!("Figure 5 — hardware overhead vs NoC size (analytical area model)");
    println!(
        "{:>8} {:>16} {:>16} {:>12}",
        "NoC", "NoC gates", "DL2Fence gates", "overhead"
    );
    for n in [4usize, 8, 16, 32] {
        println!(
            "{:>5}x{:<2} {:>16.0} {:>16.0} {:>11.2}%",
            n,
            n,
            model.noc_gates(n),
            model.dl2fence_gates(),
            model.dl2fence_overhead(n) * 100.0
        );
    }
    println!();
    println!(
        "8x8 -> 16x16 overhead reduction: {:.1}% (paper reports 76.3%)",
        model.overhead_reduction(8, 16) * 100.0
    );
    println!("Paper reference points: 7.4% (4x4), 1.9% (8x8), 0.45% (16x16), 0.11% (32x32).");
}
