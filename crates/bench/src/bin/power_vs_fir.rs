//! Extension experiment: energy / average power versus Flooding Injection
//! Rate, quantifying the paper's motivation that flooding DoS causes "a
//! surge in power consumption" alongside the latency impact of Figure 1.

use dl2fence_bench::ExperimentScale;
use noc_sim::{EnergyModel, NocConfig, NodeId};
use noc_traffic::{AttackScenario, FloodingAttack, SyntheticPattern};

fn main() {
    let scale = ExperimentScale::from_env();
    let mesh = scale.parsec_mesh;
    let cycles = 5_000u64;
    let model = EnergyModel::new();
    println!(
        "Power vs FIR ({}x{} mesh, uniform-random benign workload, {} cycles/point)",
        mesh, mesh, cycles
    );
    println!(
        "{:>5} {:>14} {:>12} {:>12} {:>12} {:>12}",
        "FIR", "buffer ops", "buffer nJ", "link nJ", "total nJ", "avg mW"
    );
    for i in 0..=10 {
        let fir = i as f64 / 10.0;
        let mut builder = AttackScenario::builder(NocConfig::mesh(mesh, mesh))
            .benign(SyntheticPattern::UniformRandom, 0.02)
            .seed(0xCAFE);
        if fir > 0.0 {
            builder = builder.attack(FloodingAttack::new(
                vec![NodeId(mesh * mesh - 1)],
                NodeId(0),
                fir,
            ));
        }
        let mut scenario = builder.build();
        scenario.run(cycles);
        let stats = scenario.network().stats();
        let report = model.estimate(stats, mesh * mesh);
        println!(
            "{:>5.1} {:>14} {:>12.1} {:>12.1} {:>12.1} {:>12.3}",
            fir,
            stats.buffer_operations,
            report.buffer_nj,
            report.link_nj,
            report.total_nj,
            report.average_mw
        );
    }
    println!();
    println!("Expected shape: dynamic energy grows monotonically with FIR on top of a constant static floor.");
}
