//! Regenerates **Table 1**: detection and localization metrics when both
//! tasks use the Virtual Channel Occupancy (VCO) feature, across the six
//! synthetic traffic patterns and the three PARSEC-like workloads.
//!
//! Each benchmark group runs as one declarative `dl2fence-campaign`: the
//! simulate→sample grid executes on the worker-pool engine across every
//! available core, and the campaign's eval phase trains and scores the
//! models.
//!
//! Run with `--full` (or `DL2FENCE_FULL=1`) for the paper-scale 16×16 mesh.

use dl2fence_bench::{print_table, run_table_experiment, ExperimentScale};
use noc_monitor::FeatureKind;

fn main() {
    let scale = ExperimentScale::from_env();
    println!(
        "Table 1 — VCO for detection and localization ({}x{} STP mesh, FIR {})",
        scale.stp_mesh, scale.stp_mesh, scale.fir
    );
    let result = run_table_experiment(FeatureKind::Vco, FeatureKind::Vco, &scale);
    print_table("Table 1: VCO | VCO", &result);
    println!(
        "Paper reference (16x16): STP detection avg acc 0.98, localization avg acc 0.53;\n\
         PARSEC detection avg acc 0.93, localization avg acc 0.98.\n\
         Expected shape: VCO detects well everywhere but localizes poorly on\n\
         traffic-heavy STP and well on sparse PARSEC-like workloads."
    );
}
