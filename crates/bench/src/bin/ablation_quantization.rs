//! Ablation: accelerator weight precision. The hardware model assumes 16-bit
//! fixed-point weights; this experiment measures how much detection accuracy
//! the trained detector loses when its weights are quantized to various bit
//! widths.

use dl2fence::{DosDetector, FenceConfig};
use dl2fence_bench::{collect_split, stp_workloads, ExperimentScale};
use noc_monitor::FeatureKind;
use tinycnn::quantize::quantize_model;
use tinycnn::BinaryConfusion;

fn main() {
    let scale = ExperimentScale::from_env();
    let mesh = scale.stp_mesh;
    println!("Ablation — detector weight quantization ({mesh}x{mesh} mesh)");
    let (train, test) = collect_split(&stp_workloads(&scale), mesh, &scale);

    let config = FenceConfig::new(mesh, mesh);
    let mut detector = DosDetector::new(mesh, mesh, config.seed);
    detector.train(&train, FeatureKind::Vco, scale.detector_epochs, scale.seed);
    let export = detector.export();

    println!(
        "{:>10} {:>10} {:>11} {:>8}",
        "precision", "accuracy", "precision", "recall"
    );
    for bits in [4u32, 8, 12, 16, 32] {
        let mut quantized = if bits >= 32 {
            DosDetector::from_export(mesh, mesh, export.clone())
        } else {
            DosDetector::from_export(mesh, mesh, quantize_model(&export, bits))
        };
        let mut confusion = BinaryConfusion::new();
        for sample in &test {
            let result = quantized.detect(&sample.vco);
            confusion.record(result.detected, sample.truth.under_attack);
        }
        println!(
            "{:>7}bit {:>10.3} {:>11.3} {:>8.3}",
            if bits >= 32 { 32 } else { bits },
            confusion.accuracy(),
            confusion.precision(),
            confusion.recall()
        );
    }
    println!();
    println!(
        "Expected shape: 16-bit and 12-bit weights match the float model; accuracy only\n\
         starts to drop at very low precisions — supporting the 16-bit accelerator assumption."
    );
}
