//! Ablation: accelerator weight precision. The hardware model assumes 16-bit
//! fixed-point weights; this experiment measures how much detection accuracy
//! the trained detector loses when its weights are quantized to various bit
//! widths.
//!
//! The sample-collection campaign is declarative —
//! `specs/ablation_quantization.toml`, embedded at compile time — and runs
//! on the campaign engine's worker pool; the binary then trains the float
//! detector on the spec's train split and re-scores it per precision.

use dl2fence::{DosDetector, FenceConfig};
use dl2fence_bench::load_spec_scaled;
use dl2fence_campaign::{split_by_benchmark, Executor};
use noc_monitor::FeatureKind;
use tinycnn::quantize::quantize_model;
use tinycnn::BinaryConfusion;

const SPEC_TOML: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../specs/ablation_quantization.toml"
));

fn main() {
    let spec = load_spec_scaled(SPEC_TOML);
    let mesh = spec.grid.mesh[0];
    let seed = spec.grid.seeds[0];
    println!("Ablation — detector weight quantization ({mesh}x{mesh} mesh)");
    let outcome = Executor::with_available_parallelism()
        .execute(&spec)
        .expect("ablation campaign must be valid");
    let (train, test) = split_by_benchmark(outcome.runs, spec.eval.train_fraction);

    let config = FenceConfig::new(mesh, mesh);
    let mut detector = DosDetector::new(mesh, mesh, config.seed);
    detector.train(&train, FeatureKind::Vco, spec.eval.detector_epochs, seed);
    let export = detector.export();

    println!(
        "{:>10} {:>10} {:>11} {:>8}",
        "precision", "accuracy", "precision", "recall"
    );
    for bits in [4u32, 8, 12, 16, 32] {
        let mut quantized = if bits >= 32 {
            DosDetector::from_export(mesh, mesh, export.clone())
        } else {
            DosDetector::from_export(mesh, mesh, quantize_model(&export, bits))
        };
        let mut confusion = BinaryConfusion::new();
        for sample in &test {
            let result = quantized.detect(&sample.vco);
            confusion.record(result.detected, sample.truth.under_attack);
        }
        println!(
            "{:>7}bit {:>10.3} {:>11.3} {:>8.3}",
            if bits >= 32 { 32 } else { bits },
            confusion.accuracy(),
            confusion.precision(),
            confusion.recall()
        );
    }
    println!();
    println!(
        "Expected shape: 16-bit and 12-bit weights match the float model; accuracy only\n\
         starts to drop at very low precisions — supporting the 16-bit accelerator assumption."
    );
}
