//! Regenerates **Figure 4**: localization examples on the synthetic-traffic
//! benchmark — a single-attacker case (attacker 104 → victim 0) and a
//! two-attacker case (attackers 192 and 15 → victim 85) on a 16×16 mesh,
//! showing the reconstructed attack route and the per-example localization
//! accuracy / precision / recall.
//!
//! The quick configuration shrinks the mesh to 8×8 with analogous attacker
//! placements; `--full` uses the paper's 16×16 placements.

use dl2fence::evaluation::evaluate;
use dl2fence::{Dl2Fence, FenceConfig};
use dl2fence_bench::{collect_split, ExperimentScale};
use noc_monitor::dataset::{CollectionConfig, DatasetGenerator, ScenarioSpec};
use noc_monitor::FeatureKind;
use noc_sim::{NocConfig, NodeId};
use noc_traffic::{BenignWorkload, SyntheticPattern};

fn render_map(victims: &[NodeId], attackers: &[NodeId], rows: usize, cols: usize) -> String {
    let mut out = String::new();
    for y in (0..rows).rev() {
        for x in 0..cols {
            let node = NodeId(y * cols + x);
            let c = if attackers.contains(&node) {
                'A'
            } else if victims.contains(&node) {
                'V'
            } else {
                '.'
            };
            out.push(c);
            out.push(' ');
        }
        out.push('\n');
    }
    out
}

fn main() {
    let scale = ExperimentScale::from_env();
    let mesh = scale.stp_mesh;
    let workload =
        BenignWorkload::Synthetic(SyntheticPattern::UniformRandom, scale.stp_injection_rate);

    // The two example placements of Figure 4, scaled to the mesh in use.
    let (single, double) = if mesh >= 16 {
        (
            (vec![NodeId(104)], NodeId(0)),
            (vec![NodeId(192), NodeId(15)], NodeId(85)),
        )
    } else {
        // Analogous placements on an 8x8 mesh.
        (
            (vec![NodeId(52)], NodeId(0)),
            (vec![NodeId(56), NodeId(7)], NodeId(27)),
        )
    };

    // Train a fence on the standard STP dataset, with extra attack placements
    // so both straight and L-shaped routes in every direction are represented.
    println!(
        "Figure 4 — localization examples on a {mesh}x{mesh} mesh (training the models first)..."
    );
    let mut train_scale = scale.clone();
    train_scale.attacks_per_benchmark = train_scale.attacks_per_benchmark.max(12);
    train_scale.benign_runs = train_scale.benign_runs.max(4);
    let (train, _) = collect_split(&[workload], mesh, &train_scale);
    let mut config = FenceConfig::new(mesh, mesh)
        .with_seed(scale.seed)
        .with_epochs(scale.detector_epochs, scale.localizer_epochs);
    config.detection_feature = FeatureKind::Vco;
    config.localization_feature = FeatureKind::Boc;
    let mut fence = Dl2Fence::new(config);
    fence.train(&train);

    // Collect the two example scenarios and analyse them.
    let collection = CollectionConfig {
        noc: NocConfig::mesh(mesh, mesh),
        warmup_cycles: scale.warmup_cycles,
        sample_period: scale.sample_period,
        samples_per_run: 1,
        seed: scale.seed + 99,
    };
    let generator = DatasetGenerator::new(collection);
    for (label, (attackers, victim)) in [("Single attacker", single), ("Two attackers", double)] {
        let spec = ScenarioSpec::attacked(workload, attackers.clone(), victim, scale.fir);
        let samples = generator.collect_run(&spec, scale.seed + 7);
        let sample = &samples[0];
        let report = fence.analyze(sample);
        let metrics = evaluate(&mut fence, &samples);
        println!();
        println!(
            "{label}: attackers {:?} -> victim {victim} (FIR {})",
            attackers.iter().map(|a| a.0).collect::<Vec<_>>(),
            scale.fir
        );
        println!(
            "  detected: {} (p = {:.3})",
            report.detected, report.detection.probability
        );
        println!(
            "  localized victims: {:?}",
            report.victims.iter().map(|v| v.0).collect::<Vec<_>>()
        );
        println!(
            "  ground-truth victims: {:?}",
            sample.truth.victims.iter().map(|v| v.0).collect::<Vec<_>>()
        );
        println!(
            "  localized attackers: {:?} (truth {:?})",
            report.attackers.iter().map(|a| a.0).collect::<Vec<_>>(),
            attackers.iter().map(|a| a.0).collect::<Vec<_>>()
        );
        let loc = metrics.overall_localization();
        println!(
            "  localization: accuracy {:.3}  precision {:.3}  recall {:.3}",
            loc.accuracy(),
            loc.precision(),
            loc.recall()
        );
        println!("  reconstructed map (A = localized attacker, V = localized victim):");
        print!(
            "{}",
            render_map(&report.victims, &report.attackers, mesh, mesh)
        );
    }
    println!();
    println!(
        "Paper reference: accuracy 1.0 / precision 1.0 / recall 1.0 for the single-attacker\n\
         example and accuracy 0.96 / precision 1.0 / recall 0.96 for the two-attacker example."
    );
}
