//! Regenerates **Figure 4**: localization examples on the synthetic-traffic
//! benchmark — a single-attacker case (attacker 104 → victim 0) and a
//! two-attacker case (attackers 192 and 15 → victim 85) on a 16×16 mesh,
//! showing the reconstructed attack route and the per-example localization
//! accuracy / precision / recall.
//!
//! The training campaign is declarative — `specs/fig4_localization.toml`,
//! embedded at compile time, with enough attack placements that straight
//! and L-shaped routes in every direction are represented — and runs on the
//! campaign engine's worker pool. The quick configuration uses an 8×8 mesh
//! with analogous attacker placements; `--full` rescales the spec to the
//! paper's 16×16 placements.

use dl2fence::evaluation::evaluate;
use dl2fence::{Dl2Fence, FenceConfig};
use dl2fence_bench::load_spec_scaled;
use dl2fence_campaign::{parse_feature, split_by_benchmark, Executor};
use noc_monitor::dataset::{CollectionConfig, DatasetGenerator, ScenarioSpec};
use noc_sim::{NocConfig, NodeId};
use noc_traffic::{BenignWorkload, SyntheticPattern};

const SPEC_TOML: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../specs/fig4_localization.toml"
));

fn render_map(victims: &[NodeId], attackers: &[NodeId], rows: usize, cols: usize) -> String {
    let mut out = String::new();
    for y in (0..rows).rev() {
        for x in 0..cols {
            let node = NodeId(y * cols + x);
            let c = if attackers.contains(&node) {
                'A'
            } else if victims.contains(&node) {
                'V'
            } else {
                '.'
            };
            out.push(c);
            out.push(' ');
        }
        out.push('\n');
    }
    out
}

fn main() {
    let spec = load_spec_scaled(SPEC_TOML);
    let mesh = spec.grid.mesh[0];
    let seed = spec.grid.seeds[0];
    let fir = spec.grid.fir[0];
    let workload =
        BenignWorkload::Synthetic(SyntheticPattern::UniformRandom, spec.grid.injection_rate);

    // The two example placements of Figure 4, scaled to the mesh in use.
    let (single, double) = if mesh >= 16 {
        (
            (vec![NodeId(104)], NodeId(0)),
            (vec![NodeId(192), NodeId(15)], NodeId(85)),
        )
    } else {
        // Analogous placements on an 8x8 mesh.
        (
            (vec![NodeId(52)], NodeId(0)),
            (vec![NodeId(56), NodeId(7)], NodeId(27)),
        )
    };

    // Train a fence on the spec's campaign (uniform traffic with extra
    // attack placements), using the spec's split and feature assignment.
    println!(
        "Figure 4 — localization examples on a {mesh}x{mesh} mesh (training the models first)..."
    );
    let outcome = Executor::with_available_parallelism()
        .execute(&spec)
        .expect("fig4 campaign must be valid");
    let (train, _) = split_by_benchmark(outcome.runs, spec.eval.train_fraction);
    let mut config = FenceConfig::new(mesh, mesh)
        .with_seed(seed)
        .with_epochs(spec.eval.detector_epochs, spec.eval.localizer_epochs);
    config.detection_feature =
        parse_feature(&spec.eval.detection_feature).expect("embedded spec feature is valid");
    config.localization_feature =
        parse_feature(&spec.eval.localization_feature).expect("embedded spec feature is valid");
    let mut fence = Dl2Fence::new(config);
    fence.train(&train);

    // Collect the two example scenarios and analyse them.
    let collection = CollectionConfig {
        noc: NocConfig::mesh(mesh, mesh),
        warmup_cycles: spec.sim.warmup_cycles,
        sample_period: spec.sim.sample_period,
        samples_per_run: 1,
        seed: seed + 99,
    };
    let generator = DatasetGenerator::new(collection);
    for (label, (attackers, victim)) in [("Single attacker", single), ("Two attackers", double)] {
        let scenario = ScenarioSpec::attacked(workload, attackers.clone(), victim, fir);
        let samples = generator.collect_run(&scenario, seed + 7);
        let sample = &samples[0];
        let report = fence.analyze(sample);
        let metrics = evaluate(&mut fence, &samples);
        println!();
        println!(
            "{label}: attackers {:?} -> victim {victim} (FIR {fir})",
            attackers.iter().map(|a| a.0).collect::<Vec<_>>(),
        );
        println!(
            "  detected: {} (p = {:.3})",
            report.detected, report.detection.probability
        );
        println!(
            "  localized victims: {:?}",
            report.victims.iter().map(|v| v.0).collect::<Vec<_>>()
        );
        println!(
            "  ground-truth victims: {:?}",
            sample.truth.victims.iter().map(|v| v.0).collect::<Vec<_>>()
        );
        println!(
            "  localized attackers: {:?} (truth {:?})",
            report.attackers.iter().map(|a| a.0).collect::<Vec<_>>(),
            attackers.iter().map(|a| a.0).collect::<Vec<_>>()
        );
        let loc = metrics.overall_localization();
        println!(
            "  localization: accuracy {:.3}  precision {:.3}  recall {:.3}",
            loc.accuracy(),
            loc.precision(),
            loc.recall()
        );
        println!("  reconstructed map (A = localized attacker, V = localized victim):");
        print!(
            "{}",
            render_map(&report.victims, &report.attackers, mesh, mesh)
        );
    }
    println!();
    println!(
        "Paper reference: accuracy 1.0 / precision 1.0 / recall 1.0 for the single-attacker\n\
         example and accuracy 0.96 / precision 1.0 / recall 0.96 for the two-attacker example."
    );
}
