//! # dl2fence-bench — harness regenerating every table and figure of the
//! DL2Fence paper
//!
//! Each binary in `src/bin/` regenerates one table or figure (see
//! DESIGN.md's per-experiment index and EXPERIMENTS.md for recorded
//! results); the Criterion benches in `benches/` measure the runtime cost of
//! the simulator and of model inference.
//!
//! All experiment binaries accept `--full` (or the environment variable
//! `DL2FENCE_FULL=1`) to run at the paper's scale (16×16 mesh for the
//! synthetic patterns, more attack placements, longer sampling windows).
//! Without it they run a reduced "quick" configuration that finishes in
//! seconds and preserves the papers' qualitative shape.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dl2fence::EvaluationReport;
use dl2fence_campaign::{runs_from_scenarios, CampaignReport, CampaignSpec, Executor, SimParams};
use noc_monitor::dataset::specs_for_benchmark;
use noc_monitor::{FeatureKind, LabeledSample};
use noc_traffic::{BenignWorkload, ParsecWorkload, SyntheticPattern};

pub use dl2fence::evaluation::BenchmarkMetrics;

/// Scale of one table/figure experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentScale {
    /// Mesh side used for the synthetic-traffic-pattern benchmarks.
    pub stp_mesh: usize,
    /// Mesh side used for the PARSEC-like benchmarks (the paper is limited
    /// to 8×8 for PARSEC by gem5).
    pub parsec_mesh: usize,
    /// Attack placements per benchmark.
    pub attacks_per_benchmark: usize,
    /// Attack-free runs per benchmark.
    pub benign_runs: usize,
    /// Sampling window length in cycles.
    pub sample_period: u64,
    /// Warm-up cycles before the first window.
    pub warmup_cycles: u64,
    /// Windows sampled per run.
    pub samples_per_run: usize,
    /// Flooding injection rate of the attack runs.
    pub fir: f64,
    /// Fraction of samples used for training (the rest is the test set).
    pub train_fraction: f64,
    /// Detector training epochs.
    pub detector_epochs: usize,
    /// Localizer training epochs.
    pub localizer_epochs: usize,
    /// Benign injection rate for the synthetic patterns.
    pub stp_injection_rate: f64,
    /// Master seed.
    pub seed: u64,
}

impl ExperimentScale {
    /// The reduced configuration used by default: 8×8 meshes and a handful
    /// of attack placements. Finishes in seconds.
    pub fn quick() -> Self {
        ExperimentScale {
            stp_mesh: 8,
            parsec_mesh: 8,
            attacks_per_benchmark: 4,
            benign_runs: 3,
            sample_period: 400,
            warmup_cycles: 200,
            samples_per_run: 3,
            fir: 0.8,
            train_fraction: 0.6,
            detector_epochs: 40,
            localizer_epochs: 40,
            stp_injection_rate: 0.02,
            seed: 0xDAC,
        }
    }

    /// The paper-scale configuration: 16×16 mesh for STP, 18 attack
    /// placements per benchmark, 1 000-cycle windows, FIR 0.8.
    pub fn full() -> Self {
        ExperimentScale {
            stp_mesh: 16,
            parsec_mesh: 8,
            attacks_per_benchmark: 18,
            benign_runs: 6,
            sample_period: 1_000,
            warmup_cycles: 500,
            samples_per_run: 4,
            fir: 0.8,
            train_fraction: 0.6,
            detector_epochs: 60,
            localizer_epochs: 60,
            stp_injection_rate: 0.02,
            seed: 0xDAC,
        }
    }

    /// Chooses quick or full from the process arguments / environment
    /// (`--full` or `DL2FENCE_FULL=1`).
    pub fn from_env() -> Self {
        if full_requested() {
            Self::full()
        } else {
            Self::quick()
        }
    }
}

/// Whether the process arguments / environment ask for the paper-scale
/// configuration (`--full` or `DL2FENCE_FULL=1`).
pub fn full_requested() -> bool {
    std::env::args().any(|a| a == "--full")
        || std::env::var("DL2FENCE_FULL")
            .map(|v| v == "1")
            .unwrap_or(false)
}

/// Overrides a declarative campaign spec with an [`ExperimentScale`]'s
/// knobs — how the spec-driven binaries implement `--full`: the quick
/// configuration lives in the `specs/*.toml` file, and the paper-scale one
/// is the same spec rescaled.
pub fn apply_scale(spec: &mut CampaignSpec, scale: &ExperimentScale) {
    let collect = spec.sim.collect_samples;
    spec.sim = sim_params(scale);
    spec.sim.collect_samples = collect;
    spec.grid.mesh = vec![scale.stp_mesh];
    spec.grid.fir = vec![scale.fir];
    spec.grid.attack_placements = scale.attacks_per_benchmark;
    spec.grid.benign_runs = scale.benign_runs;
    spec.grid.seeds = vec![scale.seed];
    spec.grid.injection_rate = scale.stp_injection_rate;
    spec.eval.train_fraction = scale.train_fraction;
    spec.eval.detector_epochs = scale.detector_epochs;
    spec.eval.localizer_epochs = scale.localizer_epochs;
}

/// Loads one of the workspace's embedded `specs/*.toml` campaign specs,
/// applying the paper-scale overrides when `--full` / `DL2FENCE_FULL=1` is
/// set.
///
/// # Panics
///
/// Panics if the embedded spec does not parse — a build-time asset bug.
pub fn load_spec_scaled(embedded_toml: &str) -> CampaignSpec {
    let mut spec = CampaignSpec::from_toml(embedded_toml).expect("embedded spec must be valid");
    if full_requested() {
        apply_scale(&mut spec, &ExperimentScale::full());
    }
    spec
}

/// The six synthetic-traffic-pattern benchmarks at the scale's injection
/// rate.
pub fn stp_workloads(scale: &ExperimentScale) -> Vec<BenignWorkload> {
    SyntheticPattern::ALL
        .into_iter()
        .map(|p| BenignWorkload::Synthetic(p, scale.stp_injection_rate))
        .collect()
}

/// The three PARSEC-like benchmarks.
pub fn parsec_workloads() -> Vec<BenignWorkload> {
    ParsecWorkload::ALL
        .into_iter()
        .map(BenignWorkload::Parsec)
        .collect()
}

/// The campaign-engine simulation parameters of one experiment scale.
pub fn sim_params(scale: &ExperimentScale) -> SimParams {
    SimParams {
        warmup_cycles: scale.warmup_cycles,
        sample_period: scale.sample_period,
        samples_per_run: scale.samples_per_run,
        collect_samples: true,
        injection_queue_capacity: 0,
    }
}

/// Collects the labeled samples of one benchmark group (`workloads`) on a
/// `mesh × mesh` NoC and splits them into train and test sets.
///
/// Collection runs on the `dl2fence-campaign` worker-pool executor, using
/// every available core; the engine's deterministic per-run seed derivation
/// makes the dataset independent of the worker count.
pub fn collect_split(
    workloads: &[BenignWorkload],
    mesh: usize,
    scale: &ExperimentScale,
) -> (Vec<LabeledSample>, Vec<LabeledSample>) {
    let scenarios = workloads.iter().flat_map(|workload| {
        specs_for_benchmark(
            *workload,
            mesh,
            mesh,
            scale.attacks_per_benchmark,
            scale.benign_runs,
            scale.fir,
        )
    });
    let runs = runs_from_scenarios(scale.seed, mesh, scenarios);
    let results = Executor::with_available_parallelism().execute_runs(&sim_params(scale), &runs);
    // The engine's shared per-benchmark deterministic train/test interleave:
    // samples move (not clone — the frame bundles dominate memory at paper
    // scale) and both classes and all attack placements appear on both
    // sides.
    dl2fence_campaign::split_by_benchmark(results, scale.train_fraction)
}

/// The result of one table experiment: the evaluation reports of the STP and
/// PARSEC benchmark groups.
#[derive(Debug)]
pub struct TableResult {
    /// Per-benchmark metrics on the synthetic traffic patterns.
    pub stp: EvaluationReport,
    /// Per-benchmark metrics on the PARSEC-like workloads.
    pub parsec: EvaluationReport,
}

/// Runs one of the paper's table experiments: trains DL2Fence with the given
/// feature assignment and evaluates it per benchmark.
///
/// * Table 1 → `detection = VCO, localization = VCO`
/// * Table 2 → `detection = BOC, localization = BOC`
/// * Table 3 → `detection = VCO, localization = BOC`
pub fn run_table_experiment(
    detection: FeatureKind,
    localization: FeatureKind,
    scale: &ExperimentScale,
) -> TableResult {
    let stp = run_group(
        &stp_workloads(scale),
        scale.stp_mesh,
        detection,
        localization,
        scale,
    );
    let parsec = run_group(
        &parsec_workloads(),
        scale.parsec_mesh,
        detection,
        localization,
        scale,
    );
    TableResult { stp, parsec }
}

/// The spec-level name of a feature kind.
pub fn feature_name(kind: FeatureKind) -> &'static str {
    match kind {
        FeatureKind::Vco => "vco",
        FeatureKind::Boc => "boc",
    }
}

/// Builds the declarative campaign spec of one table-experiment benchmark
/// group: the full simulate→sample grid plus the train/evaluate phase.
pub fn campaign_for_group(
    workloads: &[BenignWorkload],
    mesh: usize,
    detection: FeatureKind,
    localization: FeatureKind,
    scale: &ExperimentScale,
) -> CampaignSpec {
    let mut spec = CampaignSpec::quick(format!(
        "table-{}-{}",
        feature_name(detection),
        feature_name(localization)
    ));
    spec.sim = sim_params(scale);
    spec.grid.mesh = vec![mesh];
    spec.grid.fir = vec![scale.fir];
    spec.grid.workloads = workloads.iter().map(|w| w.name()).collect();
    spec.grid.attack_placements = scale.attacks_per_benchmark;
    spec.grid.benign_runs = scale.benign_runs;
    spec.grid.seeds = vec![scale.seed];
    spec.grid.injection_rate = scale.stp_injection_rate;
    spec.report.group_by = vec!["workload".to_string(), "class".to_string()];
    spec.eval.enabled = true;
    spec.eval.train_fraction = scale.train_fraction;
    spec.eval.detector_epochs = scale.detector_epochs;
    spec.eval.localizer_epochs = scale.localizer_epochs;
    spec.eval.detection_feature = feature_name(detection).to_string();
    spec.eval.localization_feature = feature_name(localization).to_string();
    spec
}

/// Trains one DL2Fence instance on a benchmark group and evaluates it on the
/// held-out test samples.
///
/// The whole experiment is one declarative campaign: the grid expands into
/// the simulate→sample run matrix, the worker-pool executor runs it across
/// every available core, and the campaign's eval phase trains and scores
/// the models — identical results for any worker count.
pub fn run_group(
    workloads: &[BenignWorkload],
    mesh: usize,
    detection: FeatureKind,
    localization: FeatureKind,
    scale: &ExperimentScale,
) -> EvaluationReport {
    let spec = campaign_for_group(workloads, mesh, detection, localization, scale);
    let outcome = Executor::with_available_parallelism()
        .execute(&spec)
        .expect("generated table campaign must be valid");
    let report = CampaignReport::build(&outcome).expect("eval phase must succeed");
    report
        .evaluations
        .into_iter()
        .next()
        .expect("eval phase produced one entry per mesh")
        .report
}

/// Prints a table experiment in the paper's layout.
pub fn print_table(title: &str, result: &TableResult) {
    println!("=== {title} ===");
    println!("--- Synthetic Traffic Patterns ---");
    print!("{}", result.stp.render_table());
    println!("--- PARSEC-like workloads ---");
    print!("{}", result.parsec.render_table());
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_is_smaller_than_full() {
        let q = ExperimentScale::quick();
        let f = ExperimentScale::full();
        assert!(q.stp_mesh <= f.stp_mesh);
        assert!(q.attacks_per_benchmark < f.attacks_per_benchmark);
        assert_eq!(f.stp_mesh, 16);
        assert_eq!(f.attacks_per_benchmark, 18);
    }

    #[test]
    fn workload_lists_cover_the_paper_benchmarks() {
        let scale = ExperimentScale::quick();
        assert_eq!(stp_workloads(&scale).len(), 6);
        assert_eq!(parsec_workloads().len(), 3);
    }

    #[test]
    fn collect_split_produces_both_partitions() {
        let mut scale = ExperimentScale::quick();
        scale.attacks_per_benchmark = 2;
        scale.benign_runs = 1;
        scale.samples_per_run = 2;
        scale.sample_period = 200;
        scale.warmup_cycles = 100;
        let workloads = vec![BenignWorkload::Synthetic(
            SyntheticPattern::UniformRandom,
            0.02,
        )];
        let (train, test) = collect_split(&workloads, 8, &scale);
        assert!(!train.is_empty());
        assert!(!test.is_empty());
        assert!(train.len() > test.len());
    }
}
