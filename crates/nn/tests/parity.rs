//! Parity suite for the im2col/GEMM forward path.
//!
//! Two contracts are enforced here:
//!
//! 1. **Bit-exactness of f32.** The blocked GEMM convolution and the batched
//!    `Sequential::predict` path must reproduce the scalar seed kernels
//!    *bit-for-bit* over arbitrary shapes and batch sizes — this is what
//!    keeps the golden report corpus byte-identical after the kernel swap.
//! 2. **Int8 accuracy budget.** The fused int8 path is allowed to drift, but
//!    only inside the envelope the `ablation_quantization` spec established:
//!    8-bit weights match the float model's decisions, so int8 inference
//!    must preserve classification behaviour on anything but knife-edge
//!    probabilities.

use proptest::{prop_assert_eq, proptest};
use tinycnn::prelude::*;
use tinycnn::qmodel::QuantizedModel;

/// Deterministic pseudo-random tensor in roughly `[-0.5, 0.5]`.
fn pseudo_tensor(seed: u64, shape: &[usize]) -> Tensor {
    let len: usize = shape.iter().product();
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xA5);
    let data = (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect();
    Tensor::from_vec(data, shape)
}

proptest! {
    #[test]
    fn gemm_conv_is_bit_identical_to_scalar_reference(
        batch in 1usize..4,
        in_channels in 1usize..4,
        out_channels in 1usize..5,
        kernel in 1usize..4,
        extra_h in 0usize..6,
        extra_w in 0usize..6,
        pad_same in 0u8..2,
        seed in 0u64..1_000_000,
    ) {
        // Same padding requires an odd kernel; fall back to Valid otherwise.
        let padding = if pad_same == 1 && kernel % 2 == 1 {
            Padding::Same
        } else {
            Padding::Valid
        };
        let (h, w) = (kernel + extra_h, kernel + extra_w);
        let mut conv = Conv2d::new(in_channels, out_channels, kernel, padding, seed);
        let x = pseudo_tensor(seed ^ 0xC0FFEE, &[batch, in_channels, h, w]);
        let fast = conv.forward(&x);
        let reference = conv.forward_reference(&x);
        prop_assert_eq!(fast.shape(), reference.shape());
        for (a, b) in fast.data().iter().zip(reference.data()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn batched_predict_is_bitwise_equal_to_per_sample_predict(
        batch in 1usize..9,
        kernels in 1usize..5,
        seed in 0u64..1_000_000,
    ) {
        // Detector-shaped stack on a small 7x8 mesh frame.
        let (h, w) = (7usize, 8usize);
        let pooled = kernels * ((h - 2) / 2) * ((w - 2) / 2);
        let mut model = Sequential::new()
            .push(Conv2d::new(4, kernels, 3, Padding::Valid, seed))
            .push(Relu::new())
            .push(MaxPool2d::new(2))
            .push(Flatten::new())
            .push(Dense::new(pooled, 1, seed + 1))
            .push(Sigmoid::new());
        let frames: Vec<Tensor> = (0..batch)
            .map(|i| pseudo_tensor(seed + 10 + i as u64, &[1, 4, h, w]))
            .collect();
        let refs: Vec<&Tensor> = frames.iter().collect();
        let batched_input = Tensor::stack(&refs).reshape(&[batch, 4, h, w]);
        let batched = model.predict(&batched_input);
        prop_assert_eq!(batched.shape(), &[batch, 1][..]);
        for (i, frame) in frames.iter().enumerate() {
            let single = model.predict(frame);
            prop_assert_eq!(batched.data()[i].to_bits(), single.data()[0].to_bits());
        }
    }

    #[test]
    fn localizer_shaped_batch_is_bitwise_equal_too(
        batch in 1usize..5,
        seed in 0u64..1_000_000,
    ) {
        // Localizer-shaped stack: Same-padded conv chain on [*, 1, h, w].
        let (h, w) = (7usize, 8usize);
        let mut model = Sequential::new()
            .push(Conv2d::new(1, 4, 3, Padding::Same, seed))
            .push(Relu::new())
            .push(Conv2d::new(4, 1, 3, Padding::Same, seed + 1))
            .push(Sigmoid::new());
        let frames: Vec<Tensor> = (0..batch)
            .map(|i| pseudo_tensor(seed + 50 + i as u64, &[1, 1, h, w]))
            .collect();
        let refs: Vec<&Tensor> = frames.iter().collect();
        let batched = model.predict(&Tensor::stack(&refs).reshape(&[batch, 1, h, w]));
        for (i, frame) in frames.iter().enumerate() {
            let single = model.predict(frame);
            let got = batched.batch_item(i);
            prop_assert_eq!(got.shape(), single.shape());
            for (a, b) in got.data().iter().zip(single.data()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}

/// Trains a tiny detector on a linearly separable synthetic task and checks
/// the int8 model stays inside the quantization ablation's accuracy budget:
/// 8-bit weights should match the float model's decisions.
#[test]
fn int8_detector_stays_inside_ablation_accuracy_budget() {
    let (h, w) = (7usize, 8usize);
    let pooled = 8 * ((h - 2) / 2) * ((w - 2) / 2);
    let mut model = Sequential::new()
        .push(Conv2d::new(4, 8, 3, Padding::Valid, 0xDAC))
        .push(Relu::new())
        .push(MaxPool2d::new(2))
        .push(Flatten::new())
        .push(Dense::new(pooled, 1, 0xDAD))
        .push(Sigmoid::new());

    // Synthetic task: "attack" frames carry a strong hot region.
    let make_sample = |i: usize, hot: bool| {
        let mut t = pseudo_tensor(i as u64, &[4, h, w]);
        if hot {
            for v in t.data_mut().iter_mut().take(4 * w) {
                *v += 1.5;
            }
        }
        t
    };
    let samples: Vec<(Tensor, f32)> = (0..32)
        .map(|i| {
            (
                make_sample(i, i % 2 == 0),
                if i % 2 == 0 { 1.0 } else { 0.0 },
            )
        })
        .collect();

    let mut ds = Dataset::new();
    for (input, label) in &samples {
        ds.push(input.clone(), Tensor::from_vec(vec![*label], &[1]));
    }
    let mut trainer = Trainer::new(
        Adam::new(0.01),
        BinaryCrossEntropy::new(),
        TrainingConfig {
            epochs: 15,
            batch_size: 8,
            shuffle_seed: 1,
            ..Default::default()
        },
    );
    trainer.fit(&mut model, &ds);

    let inputs: Vec<Tensor> = samples.iter().map(|(x, _)| x.clone()).collect();
    let input_refs: Vec<&Tensor> = inputs.iter().collect();
    let x = Tensor::stack(&input_refs);
    let y = Tensor::from_vec(
        samples.iter().map(|(_, l)| *l).collect(),
        &[samples.len(), 1],
    );

    let yf = model.predict(&x);
    let mut q = QuantizedModel::from_model(&model);
    let yq = q.predict(&x);

    let acc = |probs: &Tensor| {
        probs
            .data()
            .iter()
            .zip(y.data())
            .filter(|(p, l)| (**p >= 0.5) == (**l >= 0.5))
            .count() as f32
            / samples.len() as f32
    };
    let (acc_f, acc_q) = (acc(&yf), acc(&yq));
    assert!(
        acc_f > 0.9,
        "float model failed to learn the synthetic task: acc {acc_f}"
    );
    // The ablation's finding: 8-bit matches float. Allow one flipped sample
    // of headroom for knife-edge probabilities.
    assert!(
        acc_q >= acc_f - 1.0 / samples.len() as f32,
        "int8 accuracy {acc_q} fell outside the ablation budget (float {acc_f})"
    );
    for (a, b) in yf.data().iter().zip(yq.data()) {
        assert!(
            (a - b).abs() < 0.25,
            "int8 probability drifted too far: {a} vs {b}"
        );
    }
}
