//! 2-D convolution layer.

use crate::gemm::{self, ConvShape};
use crate::init::Init;
use crate::layers::{Layer, ParamGrad};
use crate::serialize::LayerExport;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Padding mode for [`Conv2d`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Padding {
    /// No padding: the output spatial size shrinks by `kernel - 1`.
    Valid,
    /// Zero padding so that the output spatial size equals the input size
    /// (requires an odd kernel size).
    Same,
}

/// A 2-D convolution over NCHW tensors with stride 1.
///
/// This is the workhorse of both DL2Fence models: the detector uses a single
/// `Conv2d` with 8 kernels, the localizer stacks two or three of them.
///
/// # Examples
///
/// ```
/// use tinycnn::{Conv2d, Padding, Layer, Tensor};
///
/// let mut conv = Conv2d::new(1, 8, 3, Padding::Valid, 0);
/// let x = Tensor::zeros(&[1, 1, 16, 15]);
/// let y = conv.forward(&x);
/// assert_eq!(y.shape(), &[1, 8, 14, 13]);
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    padding: Padding,
    /// Weights laid out as `[out_channels, in_channels, kernel, kernel]`.
    weight: Tensor,
    bias: Tensor,
    weight_grad: Tensor,
    bias_grad: Tensor,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution layer with He-uniform initialized weights.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` is even and `padding` is [`Padding::Same`], or if
    /// any size is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        padding: Padding,
        seed: u64,
    ) -> Self {
        assert!(in_channels > 0 && out_channels > 0 && kernel > 0);
        if padding == Padding::Same {
            assert!(kernel % 2 == 1, "Same padding requires an odd kernel size");
        }
        let fan_in = in_channels * kernel * kernel;
        let fan_out = out_channels * kernel * kernel;
        let wshape = [out_channels, in_channels, kernel, kernel];
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            padding,
            weight: Init::HeUniform.make(&wshape, fan_in, fan_out, seed),
            bias: Tensor::zeros(&[out_channels]),
            weight_grad: Tensor::zeros(&wshape),
            bias_grad: Tensor::zeros(&[out_channels]),
            cached_input: None,
        }
    }

    /// Reconstructs a layer from previously exported weights.
    ///
    /// # Panics
    ///
    /// Panics if the tensor shapes are inconsistent with the configuration.
    pub fn from_weights(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        padding: Padding,
        weight: Tensor,
        bias: Tensor,
    ) -> Self {
        assert_eq!(
            weight.shape(),
            &[out_channels, in_channels, kernel, kernel],
            "weight shape mismatch"
        );
        assert_eq!(bias.shape(), &[out_channels], "bias shape mismatch");
        let wshape = weight.shape().to_vec();
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            padding,
            weight_grad: Tensor::zeros(&wshape),
            bias_grad: Tensor::zeros(&[out_channels]),
            weight,
            bias,
            cached_input: None,
        }
    }

    /// The number of output channels (kernels).
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// The kernel (filter) size.
    pub fn kernel_size(&self) -> usize {
        self.kernel
    }

    fn pad_amount(&self) -> usize {
        match self.padding {
            Padding::Valid => 0,
            Padding::Same => self.kernel / 2,
        }
    }

    /// Validates the input against the layer configuration and derives the
    /// kernel geometry shared by the f32 and int8 GEMM paths.
    fn conv_shape(&self, input: &Tensor) -> ConvShape {
        let (n, c, h, w) = dims4(input);
        assert_eq!(
            c, self.in_channels,
            "input channel count {c} does not match layer in_channels {}",
            self.in_channels
        );
        let p = self.pad_amount();
        let (ph, pw) = (h + 2 * p, w + 2 * p);
        let k = self.kernel;
        assert!(
            ph >= k && pw >= k,
            "input spatial size {ph}x{pw} smaller than kernel {k}"
        );
        ConvShape {
            batch: n,
            in_channels: self.in_channels,
            height: h,
            width: w,
            out_channels: self.out_channels,
            kernel: k,
            pad: p,
        }
    }

    /// The scalar seed kernel, kept as the oracle the GEMM path is proven
    /// bit-identical against (property tests) and as the baseline the
    /// `nn-bench` suite measures speedups from. Not used on any hot path.
    pub fn forward_reference(&self, input: &Tensor) -> Tensor {
        let s = self.conv_shape(input);
        let padded = self.padded(input);
        let (n, k) = (s.batch, s.kernel);
        let (oh, ow) = (s.out_height(), s.out_width());
        let mut out = Tensor::zeros(&[n, self.out_channels, oh, ow]);
        for b in 0..n {
            for oc in 0..self.out_channels {
                let bias = self.bias.get(&[oc]);
                for y in 0..oh {
                    for x in 0..ow {
                        let mut acc = bias;
                        for ic in 0..self.in_channels {
                            for ky in 0..k {
                                for kx in 0..k {
                                    acc += self.weight.get(&[oc, ic, ky, kx])
                                        * padded.get(&[b, ic, y + ky, x + kx]);
                                }
                            }
                        }
                        out.set(&[b, oc, y, x], acc);
                    }
                }
            }
        }
        out
    }

    fn padded(&self, input: &Tensor) -> Tensor {
        let p = self.pad_amount();
        if p == 0 {
            return input.clone();
        }
        let (n, c, h, w) = dims4(input);
        let mut out = Tensor::zeros(&[n, c, h + 2 * p, w + 2 * p]);
        for b in 0..n {
            for ch in 0..c {
                for y in 0..h {
                    for x in 0..w {
                        out.set(&[b, ch, y + p, x + p], input.get(&[b, ch, y, x]));
                    }
                }
            }
        }
        out
    }
}

fn dims4(t: &Tensor) -> (usize, usize, usize, usize) {
    assert_eq!(
        t.rank(),
        4,
        "expected NCHW tensor, got shape {:?}",
        t.shape()
    );
    (t.shape()[0], t.shape()[1], t.shape()[2], t.shape()[3])
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "Conv2d"
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        let out = self.infer(input);
        self.cached_input = Some(input.clone());
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let s = self.conv_shape(input);
        let out = gemm::conv_forward_f32(input.data(), self.weight.data(), self.bias.data(), &s);
        Tensor::from_vec(
            out,
            &[s.batch, self.out_channels, s.out_height(), s.out_width()],
        )
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward")
            .clone();
        let padded = self.padded(&input);
        let p = self.pad_amount();
        let (n, _, ph, pw) = dims4(&padded);
        let (_, _, ih, iw) = dims4(&input);
        let (_, _, oh, ow) = dims4(grad_output);
        let k = self.kernel;

        let mut grad_padded = Tensor::zeros(&[n, self.in_channels, ph, pw]);
        for b in 0..n {
            for oc in 0..self.out_channels {
                for y in 0..oh {
                    for x in 0..ow {
                        let g = grad_output.get(&[b, oc, y, x]);
                        if g == 0.0 {
                            continue;
                        }
                        // Bias gradient.
                        let bg = self.bias_grad.get(&[oc]) + g;
                        self.bias_grad.set(&[oc], bg);
                        for ic in 0..self.in_channels {
                            for ky in 0..k {
                                for kx in 0..k {
                                    // Weight gradient.
                                    let wg = self.weight_grad.get(&[oc, ic, ky, kx])
                                        + g * padded.get(&[b, ic, y + ky, x + kx]);
                                    self.weight_grad.set(&[oc, ic, ky, kx], wg);
                                    // Input gradient.
                                    let ig = grad_padded.get(&[b, ic, y + ky, x + kx])
                                        + g * self.weight.get(&[oc, ic, ky, kx]);
                                    grad_padded.set(&[b, ic, y + ky, x + kx], ig);
                                }
                            }
                        }
                    }
                }
            }
        }

        if p == 0 {
            return grad_padded;
        }
        // Crop the padding back off.
        let mut grad_input = Tensor::zeros(&[n, self.in_channels, ih, iw]);
        for b in 0..n {
            for ic in 0..self.in_channels {
                for y in 0..ih {
                    for x in 0..iw {
                        grad_input.set(&[b, ic, y, x], grad_padded.get(&[b, ic, y + p, x + p]));
                    }
                }
            }
        }
        grad_input
    }

    fn params_mut(&mut self) -> Vec<ParamGrad<'_>> {
        vec![
            (&mut self.weight, &mut self.weight_grad),
            (&mut self.bias, &mut self.bias_grad),
        ]
    }

    fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn zero_grad(&mut self) {
        self.weight_grad.fill_zero();
        self.bias_grad.fill_zero();
    }

    fn export(&self) -> LayerExport {
        LayerExport::Conv2d {
            in_channels: self.in_channels,
            out_channels: self.out_channels,
            kernel: self.kernel,
            padding: self.padding,
            weight: self.weight.clone(),
            bias: self.bias.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_padding_shrinks_output() {
        let mut conv = Conv2d::new(1, 3, 3, Padding::Valid, 1);
        let x = Tensor::zeros(&[2, 1, 10, 8]);
        let y = conv.forward(&x);
        assert_eq!(y.shape(), &[2, 3, 8, 6]);
    }

    #[test]
    fn same_padding_preserves_spatial_size() {
        let mut conv = Conv2d::new(2, 4, 3, Padding::Same, 1);
        let x = Tensor::zeros(&[1, 2, 7, 9]);
        let y = conv.forward(&x);
        assert_eq!(y.shape(), &[1, 4, 7, 9]);
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        // A single 1x1 kernel with weight 1 and bias 0 must copy the input.
        let weight = Tensor::ones(&[1, 1, 1, 1]);
        let bias = Tensor::zeros(&[1]);
        let mut conv = Conv2d::from_weights(1, 1, 1, Padding::Valid, weight, bias);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let y = conv.forward(&x);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn known_convolution_value() {
        // 2x2 input, 2x2 kernel of all ones => output = sum of input.
        let weight = Tensor::ones(&[1, 1, 2, 2]);
        let bias = Tensor::from_vec(vec![0.5], &[1]);
        let mut conv = Conv2d::from_weights(1, 1, 2, Padding::Valid, weight, bias);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let y = conv.forward(&x);
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert!((y.get(&[0, 0, 0, 0]) - 10.5).abs() < 1e-6);
    }

    #[test]
    fn bias_gradient_accumulates_output_grad() {
        let mut conv = Conv2d::new(1, 1, 2, Padding::Valid, 3);
        let x = Tensor::ones(&[1, 1, 3, 3]);
        let y = conv.forward(&x);
        let g = Tensor::ones(y.shape());
        conv.backward(&g);
        // Output is 2x2 => bias grad = 4.
        let pairs = conv.params_mut();
        let (_, bias_grad) = &pairs[1];
        assert!((bias_grad.get(&[0]) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn zero_grad_resets() {
        let mut conv = Conv2d::new(1, 2, 3, Padding::Valid, 3);
        let x = Tensor::ones(&[1, 1, 5, 5]);
        let y = conv.forward(&x);
        conv.backward(&Tensor::ones(y.shape()));
        conv.zero_grad();
        for (_, g) in conv.params_mut() {
            assert!(g.data().iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn param_count_matches_formula() {
        let conv = Conv2d::new(4, 8, 3, Padding::Valid, 0);
        assert_eq!(conv.param_count(), 8 * 4 * 3 * 3 + 8);
    }

    #[test]
    #[should_panic(expected = "channel count")]
    fn wrong_channel_count_panics() {
        let mut conv = Conv2d::new(2, 1, 3, Padding::Valid, 0);
        let x = Tensor::zeros(&[1, 1, 5, 5]);
        conv.forward(&x);
    }

    #[test]
    fn gemm_forward_is_bit_identical_to_reference_kernel() {
        for (padding, seed) in [(Padding::Valid, 7u64), (Padding::Same, 8u64)] {
            let mut conv = Conv2d::new(3, 5, 3, padding, seed);
            let x = crate::init::Init::XavierUniform.make(&[2, 3, 9, 11], 27, 27, seed + 100);
            let fast = conv.forward(&x);
            let reference = conv.forward_reference(&x);
            assert_eq!(fast.shape(), reference.shape());
            for (a, b) in fast.data().iter().zip(reference.data()) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "GEMM path drifted from seed kernel"
                );
            }
        }
    }

    #[test]
    fn infer_matches_forward_without_caching() {
        let mut conv = Conv2d::new(2, 3, 3, Padding::Same, 9);
        let x = crate::init::Init::XavierUniform.make(&[1, 2, 6, 6], 18, 18, 4);
        let from_infer = conv.infer(&x);
        assert!(conv.cached_input.is_none(), "infer must not cache");
        let from_forward = conv.forward(&x);
        assert!(conv.cached_input.is_some(), "forward must cache");
        assert_eq!(from_infer.data(), from_forward.data());
    }

    #[test]
    fn export_round_trips_weights() {
        let conv = Conv2d::new(1, 2, 3, Padding::Same, 5);
        match conv.export() {
            LayerExport::Conv2d { weight, .. } => {
                assert_eq!(weight.shape(), &[2, 1, 3, 3]);
            }
            other => panic!("unexpected export {other:?}"),
        }
    }
}
