//! Fully connected (dense) layer.

use crate::init::Init;
use crate::layers::{Layer, ParamGrad};
use crate::serialize::LayerExport;
use crate::tensor::Tensor;

/// A fully connected layer computing `y = x·W + b` over `[batch, in]` inputs.
///
/// # Examples
///
/// ```
/// use tinycnn::{Dense, Layer, Tensor};
///
/// let mut dense = Dense::new(4, 2, 0);
/// let x = Tensor::zeros(&[3, 4]);
/// let y = dense.forward(&x);
/// assert_eq!(y.shape(), &[3, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct Dense {
    in_features: usize,
    out_features: usize,
    /// `[in_features, out_features]`
    weight: Tensor,
    /// `[out_features]`
    bias: Tensor,
    weight_grad: Tensor,
    bias_grad: Tensor,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with Xavier-uniform initialized weights.
    ///
    /// # Panics
    ///
    /// Panics if either feature count is zero.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        assert!(in_features > 0 && out_features > 0);
        Dense {
            in_features,
            out_features,
            weight: Init::XavierUniform.make(
                &[in_features, out_features],
                in_features,
                out_features,
                seed,
            ),
            bias: Tensor::zeros(&[out_features]),
            weight_grad: Tensor::zeros(&[in_features, out_features]),
            bias_grad: Tensor::zeros(&[out_features]),
            cached_input: None,
        }
    }

    /// Reconstructs a layer from previously exported weights.
    ///
    /// # Panics
    ///
    /// Panics if the tensor shapes do not match the configuration.
    pub fn from_weights(
        in_features: usize,
        out_features: usize,
        weight: Tensor,
        bias: Tensor,
    ) -> Self {
        assert_eq!(weight.shape(), &[in_features, out_features]);
        assert_eq!(bias.shape(), &[out_features]);
        Dense {
            in_features,
            out_features,
            weight_grad: Tensor::zeros(&[in_features, out_features]),
            bias_grad: Tensor::zeros(&[out_features]),
            weight,
            bias,
            cached_input: None,
        }
    }

    /// The number of input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// The number of output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "Dense"
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        let out = self.infer(input);
        self.cached_input = Some(input.clone());
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.rank(), 2, "Dense expects a [batch, features] tensor");
        assert_eq!(
            input.shape()[1],
            self.in_features,
            "input feature count {} does not match layer in_features {}",
            input.shape()[1],
            self.in_features
        );
        let mut out = input.matmul(&self.weight);
        let bias = self.bias.data();
        for row in out.data_mut().chunks_exact_mut(self.out_features) {
            for (v, &b) in row.iter_mut().zip(bias) {
                *v += b;
            }
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        // dW = x^T · dY ; db = sum over batch of dY ; dX = dY · W^T
        let dw = input.transpose().matmul(grad_output);
        self.weight_grad.add_scaled(&dw, 1.0);
        let batch = grad_output.shape()[0];
        for b in 0..batch {
            for o in 0..self.out_features {
                let v = self.bias_grad.get(&[o]) + grad_output.get(&[b, o]);
                self.bias_grad.set(&[o], v);
            }
        }
        grad_output.matmul(&self.weight.transpose())
    }

    fn params_mut(&mut self) -> Vec<ParamGrad<'_>> {
        vec![
            (&mut self.weight, &mut self.weight_grad),
            (&mut self.bias, &mut self.bias_grad),
        ]
    }

    fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn zero_grad(&mut self) {
        self.weight_grad.fill_zero();
        self.bias_grad.fill_zero();
    }

    fn export(&self) -> LayerExport {
        LayerExport::Dense {
            in_features: self.in_features,
            out_features: self.out_features,
            weight: self.weight.clone(),
            bias: self.bias.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matches_hand_computation() {
        let weight = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let bias = Tensor::from_vec(vec![0.1, 0.2, 0.3], &[3]);
        let mut dense = Dense::from_weights(2, 3, weight, bias);
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let y = dense.forward(&x);
        assert_eq!(y.shape(), &[1, 3]);
        assert!((y.get(&[0, 0]) - 5.1).abs() < 1e-6);
        assert!((y.get(&[0, 1]) - 7.2).abs() < 1e-6);
        assert!((y.get(&[0, 2]) - 9.3).abs() < 1e-6);
    }

    #[test]
    fn backward_shapes_are_consistent() {
        let mut dense = Dense::new(5, 3, 2);
        let x = Tensor::ones(&[4, 5]);
        let y = dense.forward(&x);
        let gi = dense.backward(&Tensor::ones(y.shape()));
        assert_eq!(gi.shape(), &[4, 5]);
    }

    #[test]
    fn bias_grad_sums_over_batch() {
        let mut dense = Dense::new(2, 2, 2);
        let x = Tensor::ones(&[3, 2]);
        let y = dense.forward(&x);
        dense.backward(&Tensor::ones(y.shape()));
        let pairs = dense.params_mut();
        let (_, bias_grad) = &pairs[1];
        assert_eq!(bias_grad.data(), &[3.0, 3.0]);
    }

    #[test]
    fn param_count_matches_formula() {
        let dense = Dense::new(10, 4, 0);
        assert_eq!(dense.param_count(), 10 * 4 + 4);
    }

    #[test]
    #[should_panic(expected = "feature count")]
    fn wrong_input_features_panics() {
        let mut dense = Dense::new(3, 2, 0);
        dense.forward(&Tensor::zeros(&[1, 4]));
    }
}
