//! Max-pooling layer.

use crate::layers::Layer;
use crate::serialize::LayerExport;
use crate::tensor::Tensor;

/// 2-D max pooling with a square window and stride equal to the window size.
///
/// If the spatial size is not a multiple of the window, the trailing rows and
/// columns that do not fill a complete window are dropped (the behaviour of
/// TensorFlow's `MaxPool2D` with `padding="valid"`, which the paper's
/// detector uses).
///
/// # Examples
///
/// ```
/// use tinycnn::{MaxPool2d, Layer, Tensor};
///
/// let mut pool = MaxPool2d::new(2);
/// let x = Tensor::zeros(&[1, 8, 14, 13]);
/// let y = pool.forward(&x);
/// assert_eq!(y.shape(), &[1, 8, 7, 6]);
/// ```
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    window: usize,
    /// Indices (into the flat input) of each output's argmax, for backward.
    argmax: Vec<usize>,
    input_shape: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a max-pooling layer with the given square window size.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "pooling window must be non-zero");
        MaxPool2d {
            window,
            argmax: Vec::new(),
            input_shape: Vec::new(),
        }
    }

    /// The pooling window size.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "MaxPool2d"
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(input.rank(), 4, "MaxPool2d expects an NCHW tensor");
        let (n, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let k = self.window;
        assert!(h >= k && w >= k, "input {h}x{w} smaller than window {k}");
        let oh = h / k;
        let ow = w / k;
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        self.argmax = vec![0; n * c * oh * ow];
        self.input_shape = input.shape().to_vec();
        let mut oi = 0;
        for b in 0..n {
            for ch in 0..c {
                for y in 0..oh {
                    for x in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0;
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = y * k + ky;
                                let ix = x * k + kx;
                                let v = input.get(&[b, ch, iy, ix]);
                                if v > best {
                                    best = v;
                                    best_idx = ((b * c + ch) * h + iy) * w + ix;
                                }
                            }
                        }
                        out.set(&[b, ch, y, x], best);
                        self.argmax[oi] = best_idx;
                        oi += 1;
                    }
                }
            }
        }
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.rank(), 4, "MaxPool2d expects an NCHW tensor");
        let (n, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let k = self.window;
        assert!(h >= k && w >= k, "input {h}x{w} smaller than window {k}");
        let (oh, ow) = (h / k, w / k);
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let src = input.data();
        let dst = out.data_mut();
        let mut oi = 0;
        for plane in 0..n * c {
            let src_plane = &src[plane * h * w..][..h * w];
            for y in 0..oh {
                for x in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    for ky in 0..k {
                        let row = &src_plane[(y * k + ky) * w + x * k..][..k];
                        for &v in row {
                            if v > best {
                                best = v;
                            }
                        }
                    }
                    dst[oi] = best;
                    oi += 1;
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        assert!(
            !self.input_shape.is_empty(),
            "backward called before forward"
        );
        let mut grad_input = Tensor::zeros(&self.input_shape);
        for (oi, &src) in self.argmax.iter().enumerate() {
            grad_input.data_mut()[src] += grad_output.data()[oi];
        }
        grad_input
    }

    fn export(&self) -> LayerExport {
        LayerExport::MaxPool2d {
            window: self.window,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pooling_selects_maximum() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let y = pool.forward(&x);
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert_eq!(y.get(&[0, 0, 0, 0]), 4.0);
    }

    #[test]
    fn trailing_rows_are_dropped() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::zeros(&[1, 1, 5, 7]);
        let y = pool.forward(&x);
        assert_eq!(y.shape(), &[1, 1, 2, 3]);
    }

    #[test]
    fn backward_routes_gradient_to_argmax() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec(vec![1.0, 9.0, 3.0, 4.0], &[1, 1, 2, 2]);
        pool.forward(&x);
        let g = Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]);
        let gi = pool.backward(&g);
        assert_eq!(gi.data(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn infer_matches_forward_without_argmax_bookkeeping() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec(
            (0..36).map(|v| ((v * 7) % 13) as f32).collect(),
            &[1, 1, 6, 6],
        );
        let fast = pool.infer(&x);
        assert!(pool.argmax.is_empty(), "infer must not record argmax");
        let slow = pool.forward(&x);
        assert_eq!(fast.data(), slow.data());
    }

    #[test]
    fn pool_has_no_params() {
        let mut pool = MaxPool2d::new(2);
        assert_eq!(pool.param_count(), 0);
        assert!(pool.params_mut().is_empty());
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_before_forward_panics() {
        let mut pool = MaxPool2d::new(2);
        pool.backward(&Tensor::zeros(&[1, 1, 1, 1]));
    }
}
