//! Flatten layer: collapses NCHW feature maps into `[batch, features]`.

use crate::layers::Layer;
use crate::serialize::LayerExport;
use crate::tensor::Tensor;

/// Flattens every non-batch dimension into a single feature dimension.
///
/// # Examples
///
/// ```
/// use tinycnn::{Flatten, Layer, Tensor};
///
/// let mut flat = Flatten::new();
/// let y = flat.forward(&Tensor::zeros(&[2, 8, 3, 3]));
/// assert_eq!(y.shape(), &[2, 72]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    input_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a new flatten layer.
    pub fn new() -> Self {
        Flatten {
            input_shape: Vec::new(),
        }
    }
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "Flatten"
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.input_shape = input.shape().to_vec();
        self.infer(input)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        assert!(
            input.rank() >= 2,
            "Flatten expects at least a rank-2 tensor"
        );
        let batch = input.shape()[0];
        let features: usize = input.shape()[1..].iter().product();
        input.reshape(&[batch, features])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        assert!(
            !self.input_shape.is_empty(),
            "backward called before forward"
        );
        grad_output.reshape(&self.input_shape)
    }

    fn export(&self) -> LayerExport {
        LayerExport::Flatten
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_preserves_batch_dimension() {
        let mut f = Flatten::new();
        let y = f.forward(&Tensor::zeros(&[3, 2, 4, 5]));
        assert_eq!(y.shape(), &[3, 40]);
    }

    #[test]
    fn backward_restores_original_shape() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 2, 2]);
        let y = f.forward(&x);
        let g = f.backward(&y);
        assert_eq!(g.shape(), x.shape());
        assert_eq!(g.data(), x.data());
    }

    #[test]
    fn flatten_of_matrix_is_identity_shape() {
        let mut f = Flatten::new();
        let y = f.forward(&Tensor::zeros(&[4, 7]));
        assert_eq!(y.shape(), &[4, 7]);
    }
}
