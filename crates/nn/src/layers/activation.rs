//! Activation layers: ReLU and Sigmoid.

use crate::layers::Layer;
use crate::serialize::LayerExport;
use crate::tensor::Tensor;

/// Rectified linear unit: `max(0, x)` applied element-wise.
///
/// # Examples
///
/// ```
/// use tinycnn::{Relu, Layer, Tensor};
///
/// let mut relu = Relu::new();
/// let y = relu.forward(&Tensor::from_vec(vec![-1.0, 2.0], &[1, 2]));
/// assert_eq!(y.data(), &[0.0, 2.0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Relu {
    cached_input: Option<Tensor>,
}

impl Relu {
    /// Creates a new ReLU activation layer.
    pub fn new() -> Self {
        Relu { cached_input: None }
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "ReLU"
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.cached_input = Some(input.clone());
        self.infer(input)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        input.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        input.zip(grad_output, |x, g| if x > 0.0 { g } else { 0.0 })
    }

    fn export(&self) -> LayerExport {
        LayerExport::Relu
    }
}

/// Logistic sigmoid: `1 / (1 + e^-x)` applied element-wise.
///
/// Used as the output activation of both DL2Fence models (binary detection
/// probability and per-pixel segmentation probability).
///
/// # Examples
///
/// ```
/// use tinycnn::{Sigmoid, Layer, Tensor};
///
/// let mut s = Sigmoid::new();
/// let y = s.forward(&Tensor::from_vec(vec![0.0], &[1, 1]));
/// assert!((y.data()[0] - 0.5).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Sigmoid {
    cached_output: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a new sigmoid activation layer.
    pub fn new() -> Self {
        Sigmoid {
            cached_output: None,
        }
    }
}

/// Numerically stable scalar sigmoid.
pub(crate) fn sigmoid_scalar(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

impl Layer for Sigmoid {
    fn name(&self) -> &'static str {
        "Sigmoid"
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        let out = self.infer(input);
        self.cached_output = Some(out.clone());
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        input.map(sigmoid_scalar)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let out = self
            .cached_output
            .as_ref()
            .expect("backward called before forward");
        out.zip(grad_output, |y, g| g * y * (1.0 - y))
    }

    fn export(&self) -> LayerExport {
        LayerExport::Sigmoid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut relu = Relu::new();
        let y = relu.forward(&Tensor::from_vec(vec![-3.0, 0.0, 2.5], &[3]));
        assert_eq!(y.data(), &[0.0, 0.0, 2.5]);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let mut relu = Relu::new();
        relu.forward(&Tensor::from_vec(vec![-1.0, 1.0], &[2]));
        let g = relu.backward(&Tensor::from_vec(vec![5.0, 5.0], &[2]));
        assert_eq!(g.data(), &[0.0, 5.0]);
    }

    #[test]
    fn sigmoid_is_bounded_and_monotonic() {
        let mut s = Sigmoid::new();
        let y = s.forward(&Tensor::from_vec(vec![-10.0, -1.0, 0.0, 1.0, 10.0], &[5]));
        let d = y.data();
        assert!(d.iter().all(|&v| (0.0..=1.0).contains(&v)));
        for w in d.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn sigmoid_extreme_inputs_do_not_overflow() {
        let mut s = Sigmoid::new();
        let y = s.forward(&Tensor::from_vec(vec![-1000.0, 1000.0], &[2]));
        assert!(y.data()[0] >= 0.0 && y.data()[0] < 1e-6);
        assert!(y.data()[1] <= 1.0 && y.data()[1] > 1.0 - 1e-6);
        assert!(y.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn sigmoid_backward_peak_at_zero() {
        let mut s = Sigmoid::new();
        s.forward(&Tensor::from_vec(vec![0.0], &[1]));
        let g = s.backward(&Tensor::ones(&[1]));
        assert!((g.data()[0] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn activations_have_no_params() {
        let mut relu = Relu::new();
        let mut sig = Sigmoid::new();
        assert_eq!(relu.param_count(), 0);
        assert_eq!(sig.param_count(), 0);
        assert!(relu.params_mut().is_empty());
        assert!(sig.params_mut().is_empty());
    }
}
