//! Neural-network layers.
//!
//! Every layer implements the [`Layer`] trait: a mutable `forward` (layers
//! cache whatever they need for the backward pass), a `backward` that
//! consumes the gradient w.r.t. the layer output and returns the gradient
//! w.r.t. the layer input, and accessors over trainable parameters.

mod activation;
mod conv;
mod dense;
mod flatten;
mod pool;

pub(crate) use activation::sigmoid_scalar;
pub use activation::{Relu, Sigmoid};
pub use conv::{Conv2d, Padding};
pub use dense::Dense;
pub use flatten::Flatten;
pub use pool::MaxPool2d;

use crate::serialize::LayerExport;
use crate::tensor::Tensor;

/// A pair of references to a trainable parameter tensor and its accumulated
/// gradient, as exposed by [`Layer::params_mut`].
pub type ParamGrad<'a> = (&'a mut Tensor, &'a mut Tensor);

/// A differentiable network layer.
///
/// Layers are stateful: `forward` caches activations needed by `backward`,
/// and `backward` accumulates parameter gradients until [`Layer::zero_grad`]
/// is called.
pub trait Layer: Send {
    /// Human-readable layer name used in model summaries.
    fn name(&self) -> &'static str;

    /// Runs the layer on `input`, caching anything needed for `backward`.
    fn forward(&mut self, input: &Tensor) -> Tensor;

    /// Inference-only forward: produces exactly the same output as
    /// [`Layer::forward`] (bit-for-bit) but skips every gradient cache —
    /// no input clone, no argmax bookkeeping, no shape capture. This is the
    /// hot path behind [`crate::Sequential::predict`]; calling `backward`
    /// after `infer` panics (or uses a stale cache) just like calling it
    /// before `forward`.
    fn infer(&self, input: &Tensor) -> Tensor;

    /// Propagates `grad_output` (gradient of the loss w.r.t. this layer's
    /// output) backwards, accumulating parameter gradients and returning the
    /// gradient w.r.t. this layer's input.
    ///
    /// # Panics
    ///
    /// Implementations panic if called before `forward`.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Mutable access to `(parameter, gradient)` pairs for the optimizer.
    /// Parameter-free layers return an empty vector.
    fn params_mut(&mut self) -> Vec<ParamGrad<'_>> {
        Vec::new()
    }

    /// Number of trainable scalar parameters in this layer.
    fn param_count(&self) -> usize {
        0
    }

    /// Resets all accumulated gradients to zero.
    fn zero_grad(&mut self) {}

    /// Exports the layer (configuration + weights) for serialization.
    fn export(&self) -> LayerExport;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference gradient check helper shared by layer tests.
    ///
    /// Verifies that the analytic input gradient produced by `backward`
    /// matches a central-difference estimate of d(sum(output))/d(input).
    pub(crate) fn check_input_gradient<L: Layer>(layer: &mut L, input: &Tensor, tol: f32) {
        let out = layer.forward(input);
        let grad_out = Tensor::ones(out.shape());
        let analytic = layer.backward(&grad_out);

        let eps = 1e-3f32;
        for i in 0..input.len() {
            let mut plus = input.clone();
            plus.data_mut()[i] += eps;
            let mut minus = input.clone();
            minus.data_mut()[i] -= eps;
            let f_plus = layer.forward(&plus).sum();
            let f_minus = layer.forward(&minus).sum();
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            let a = analytic.data()[i];
            assert!(
                (a - numeric).abs() < tol,
                "gradient mismatch at {i}: analytic {a}, numeric {numeric}"
            );
        }
    }

    #[test]
    fn conv_layer_gradient_check() {
        let mut layer = Conv2d::new(1, 2, 3, Padding::Valid, 11);
        let input = crate::init::Init::XavierUniform.make(&[1, 1, 5, 5], 25, 25, 3);
        check_input_gradient(&mut layer, &input, 1e-2);
    }

    #[test]
    fn dense_layer_gradient_check() {
        let mut layer = Dense::new(6, 3, 5);
        let input = crate::init::Init::XavierUniform.make(&[2, 6], 6, 3, 8);
        check_input_gradient(&mut layer, &input, 1e-2);
    }

    #[test]
    fn sigmoid_gradient_check() {
        let mut layer = Sigmoid::new();
        let input = crate::init::Init::XavierUniform.make(&[2, 4], 4, 4, 2);
        check_input_gradient(&mut layer, &input, 1e-2);
    }

    #[test]
    fn relu_gradient_check_away_from_kink() {
        let mut layer = Relu::new();
        // Keep inputs away from 0 where ReLU is non-differentiable.
        let input = Tensor::from_vec(vec![1.0, -2.0, 3.0, -0.5, 2.2, -1.1], &[1, 6]);
        check_input_gradient(&mut layer, &input, 1e-2);
    }
}
