//! Training loop.

use crate::dataset::Dataset;
use crate::loss::Loss;
use crate::metrics::binary_accuracy;
use crate::model::Sequential;
use crate::optim::Optimizer;
use serde::{Deserialize, Serialize};

/// Hyper-parameters for a training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Seed controlling shuffling (one derived seed per epoch).
    pub shuffle_seed: u64,
    /// Threshold used when reporting training accuracy.
    pub accuracy_threshold: f32,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            epochs: 10,
            batch_size: 16,
            shuffle_seed: 0,
            accuracy_threshold: 0.5,
        }
    }
}

/// Per-epoch history of a completed training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingReport {
    /// Average training loss per epoch.
    pub loss_history: Vec<f32>,
    /// Training accuracy per epoch (thresholded at
    /// [`TrainingConfig::accuracy_threshold`]).
    pub accuracy_history: Vec<f64>,
    /// Total number of optimizer steps taken.
    pub steps: usize,
}

impl TrainingReport {
    /// The final epoch's training loss, or `None` if no epochs ran.
    pub fn final_loss(&self) -> Option<f32> {
        self.loss_history.last().copied()
    }

    /// The final epoch's training accuracy, or `None` if no epochs ran.
    pub fn final_accuracy(&self) -> Option<f64> {
        self.accuracy_history.last().copied()
    }
}

/// Drives mini-batch gradient descent over a [`Sequential`] model.
///
/// # Examples
///
/// ```
/// use tinycnn::prelude::*;
///
/// // Learn the OR function with a single dense layer.
/// let mut ds = Dataset::new();
/// for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
///     let label = if a + b > 0.0 { 1.0 } else { 0.0 };
///     ds.push(Tensor::from_vec(vec![a, b], &[2]), Tensor::from_vec(vec![label], &[1]));
/// }
/// let mut model = Sequential::new().push(Dense::new(2, 1, 3)).push(Sigmoid::new());
/// let mut trainer = Trainer::new(Adam::new(0.1), BinaryCrossEntropy::new(), TrainingConfig {
///     epochs: 200, batch_size: 4, ..Default::default()
/// });
/// let report = trainer.fit(&mut model, &ds);
/// assert!(report.final_accuracy().unwrap() > 0.9);
/// ```
pub struct Trainer<O: Optimizer, L: Loss> {
    optimizer: O,
    loss: L,
    config: TrainingConfig,
}

impl<O: Optimizer, L: Loss> Trainer<O, L> {
    /// Creates a trainer from an optimizer, a loss and a configuration.
    pub fn new(optimizer: O, loss: L, config: TrainingConfig) -> Self {
        Trainer {
            optimizer,
            loss,
            config,
        }
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainingConfig {
        &self.config
    }

    /// Trains `model` on `dataset` and returns the per-epoch history.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn fit(&mut self, model: &mut Sequential, dataset: &Dataset) -> TrainingReport {
        assert!(!dataset.is_empty(), "cannot train on an empty dataset");
        let mut report = TrainingReport {
            loss_history: Vec::with_capacity(self.config.epochs),
            accuracy_history: Vec::with_capacity(self.config.epochs),
            steps: 0,
        };
        for epoch in 0..self.config.epochs {
            let seed = self.config.shuffle_seed.wrapping_add(epoch as u64);
            let batches = dataset.batches(self.config.batch_size, Some(seed));
            let mut epoch_loss = 0.0f32;
            let mut epoch_acc = 0.0f64;
            for batch in &batches {
                model.zero_grad();
                let prediction = model.forward(&batch.inputs);
                let target = reshape_target(&batch.targets, prediction.shape());
                epoch_loss += self.loss.value(&prediction, &target);
                epoch_acc += binary_accuracy(&prediction, &target, self.config.accuracy_threshold);
                let grad = self.loss.gradient(&prediction, &target);
                model.backward(&grad);
                let mut params = model.params_mut();
                self.optimizer.step(&mut params);
                report.steps += 1;
            }
            report.loss_history.push(epoch_loss / batches.len() as f32);
            report
                .accuracy_history
                .push(epoch_acc / batches.len() as f64);
        }
        report
    }

    /// Evaluates the average loss of `model` over `dataset` without updating
    /// weights.
    pub fn evaluate(&self, model: &mut Sequential, dataset: &Dataset) -> f32 {
        assert!(!dataset.is_empty(), "cannot evaluate an empty dataset");
        let batches = dataset.batches(self.config.batch_size, None);
        let mut total = 0.0;
        for batch in &batches {
            let prediction = model.forward(&batch.inputs);
            let target = reshape_target(&batch.targets, prediction.shape());
            total += self.loss.value(&prediction, &target);
        }
        total / batches.len() as f32
    }
}

/// Reshapes a stacked target tensor to the model's output shape when the two
/// are element-compatible (e.g. `[N, 1, H, W]` targets vs `[N, 1, H, W]`
/// predictions, or `[N, 1]` vs `[N, 1]`).
fn reshape_target(target: &crate::Tensor, prediction_shape: &[usize]) -> crate::Tensor {
    if target.shape() == prediction_shape {
        target.clone()
    } else {
        target.reshape(prediction_shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    fn xor_like_dataset() -> Dataset {
        // Linearly separable variant (AND) so a single dense layer suffices.
        let mut ds = Dataset::new();
        for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
            let label = if a > 0.5 && b > 0.5 { 1.0 } else { 0.0 };
            ds.push(
                Tensor::from_vec(vec![a, b], &[2]),
                Tensor::from_vec(vec![label], &[1]),
            );
        }
        ds
    }

    #[test]
    fn training_reduces_loss() {
        let ds = xor_like_dataset();
        let mut model = Sequential::new()
            .push(Dense::new(2, 4, 0))
            .push(Relu::new())
            .push(Dense::new(4, 1, 1))
            .push(Sigmoid::new());
        let mut trainer = Trainer::new(
            Adam::new(0.05),
            BinaryCrossEntropy::new(),
            TrainingConfig {
                epochs: 100,
                batch_size: 4,
                ..Default::default()
            },
        );
        let report = trainer.fit(&mut model, &ds);
        assert!(report.loss_history[0] > *report.loss_history.last().unwrap());
        assert!(report.final_accuracy().unwrap() >= 0.75);
        assert_eq!(report.loss_history.len(), 100);
    }

    #[test]
    fn evaluate_does_not_change_weights() {
        let ds = xor_like_dataset();
        let mut model = Sequential::new()
            .push(Dense::new(2, 1, 5))
            .push(Sigmoid::new());
        let trainer = Trainer::new(
            Sgd::new(0.1),
            BinaryCrossEntropy::new(),
            TrainingConfig::default(),
        );
        let before = model.export().to_json().unwrap();
        let _ = trainer.evaluate(&mut model, &ds);
        let after = model.export().to_json().unwrap();
        assert_eq!(before, after);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn training_on_empty_dataset_panics() {
        let mut model = Sequential::new().push(Dense::new(2, 1, 0));
        let mut trainer = Trainer::new(Sgd::new(0.1), Mse::new(), TrainingConfig::default());
        trainer.fit(&mut model, &Dataset::new());
    }

    #[test]
    fn steps_counted_correctly() {
        let ds = xor_like_dataset();
        let mut model = Sequential::new()
            .push(Dense::new(2, 1, 0))
            .push(Sigmoid::new());
        let mut trainer = Trainer::new(
            Sgd::new(0.1),
            BinaryCrossEntropy::new(),
            TrainingConfig {
                epochs: 3,
                batch_size: 2,
                ..Default::default()
            },
        );
        let report = trainer.fit(&mut model, &ds);
        // 4 samples / batch 2 = 2 batches per epoch * 3 epochs.
        assert_eq!(report.steps, 6);
    }
}
