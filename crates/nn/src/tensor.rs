//! Dense, row-major `f32` tensors of arbitrary rank.
//!
//! [`Tensor`] is the single numeric container used throughout the crate.
//! Convolutional layers use the NCHW convention: `[batch, channels, height,
//! width]`. Dense layers use `[batch, features]`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A dense, row-major tensor of `f32` values.
///
/// Shapes are validated on construction; every element-wise operation panics
/// if the shapes of its operands differ, which turns silent broadcasting bugs
/// into loud test failures.
///
/// # Examples
///
/// ```
/// use tinycnn::Tensor;
///
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// assert_eq!(t.get(&[1, 0]), 3.0);
/// assert_eq!(t.sum(), 10.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of the given shape filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty or contains a zero dimension.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::filled(shape, 0.0)
    }

    /// Creates a tensor of the given shape filled with ones.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty or contains a zero dimension.
    pub fn ones(shape: &[usize]) -> Self {
        Self::filled(shape, 1.0)
    }

    /// Creates a tensor of the given shape with every element set to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty or contains a zero dimension.
    pub fn filled(shape: &[usize], value: f32) -> Self {
        assert!(!shape.is_empty(), "tensor shape must not be empty");
        assert!(
            shape.iter().all(|&d| d > 0),
            "tensor dimensions must be non-zero, got {shape:?}"
        );
        let len = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; len],
        }
    }

    /// Creates a tensor from a flat `Vec` in row-major order.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let expected: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            expected,
            "data length {} does not match shape {:?} (= {} elements)",
            data.len(),
            shape,
            expected
        );
        assert!(!shape.is_empty(), "tensor shape must not be empty");
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Creates a `[rows, cols]` tensor from a slice of rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "at least one row is required");
        let cols = rows[0].len();
        assert!(cols > 0, "rows must be non-empty");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        Tensor::from_vec(data, &[rows.len(), cols])
    }

    /// Stacks equally shaped tensors along a new leading batch dimension:
    /// `k` tensors of shape `[d0, d1, ...]` become one `[k, d0, d1, ...]`
    /// tensor. This is how multi-frame batches are assembled for
    /// [`crate::Sequential::predict`].
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or the shapes disagree.
    pub fn stack(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "stack requires at least one tensor");
        let inner = parts[0].shape();
        let mut data = Vec::with_capacity(parts.len() * parts[0].len());
        for p in parts {
            assert_eq!(
                p.shape(),
                inner,
                "stack requires equal shapes: {:?} vs {inner:?}",
                p.shape()
            );
            data.extend_from_slice(p.data());
        }
        let mut shape = Vec::with_capacity(inner.len() + 1);
        shape.push(parts.len());
        shape.extend_from_slice(inner);
        Tensor::from_vec(data, &shape)
    }

    /// Extracts batch element `index` of a tensor whose leading dimension is
    /// the batch, keeping a batch dimension of one (`[n, d...] → [1, d...]`).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is rank < 2 or `index` is out of bounds.
    pub fn batch_item(&self, index: usize) -> Tensor {
        assert!(self.rank() >= 2, "batch_item requires a batched tensor");
        let n = self.shape[0];
        assert!(index < n, "batch index {index} out of bounds for {n}");
        let stride = self.len() / n;
        let mut shape = self.shape.clone();
        shape[0] = 1;
        Tensor::from_vec(self.data[index * stride..][..stride].to_vec(), &shape)
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor holds no elements (never true for a
    /// validly constructed tensor, but provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The number of dimensions (rank) of the tensor.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// A read-only view of the underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// A mutable view of the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat data buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.shape.len(),
            "index rank {} does not match tensor rank {}",
            index.len(),
            self.shape.len()
        );
        let mut off = 0;
        for (i, (&idx, &dim)) in index.iter().zip(self.shape.iter()).enumerate() {
            assert!(
                idx < dim,
                "index {idx} out of bounds for dimension {i} of size {dim}"
            );
            off = off * dim + idx;
        }
        off
    }

    /// Returns the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank differs from the tensor rank or any component
    /// is out of bounds.
    pub fn get(&self, index: &[usize]) -> f32 {
        self.data[self.offset(index)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank differs from the tensor rank or any component
    /// is out of bounds.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.offset(index);
        self.data[off] = value;
    }

    /// Returns a tensor with the same data but a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        let expected: usize = shape.iter().product();
        assert_eq!(
            self.data.len(),
            expected,
            "cannot reshape {:?} ({} elems) into {:?} ({} elems)",
            self.shape,
            self.data.len(),
            shape,
            expected
        );
        Tensor::from_vec(self.data.clone(), shape)
    }

    /// Applies a function to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies a function to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise combination of two equally shaped tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {:?} vs {:?}",
            self.shape, other.shape
        );
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.data.len() as f32
    }

    /// Maximum element. Returns `f32::NEG_INFINITY` only for the impossible
    /// empty case.
    pub fn max(&self) -> f32 {
        self.data.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    pub fn min(&self) -> f32 {
        self.data.iter().cloned().fold(f32::INFINITY, f32::min)
    }

    /// Scales every element by a scalar, returning a new tensor.
    pub fn scale(&self, factor: f32) -> Tensor {
        self.map(|v| v * factor)
    }

    /// In-place `self += other * factor` (axpy). Used by optimizers.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_scaled(&mut self, other: &Tensor, factor: f32) {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {:?} vs {:?}",
            self.shape, other.shape
        );
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b * factor;
        }
    }

    /// Fills the tensor with zeros in place.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Min-max normalizes all elements into `[0, 1]`.
    ///
    /// A constant tensor maps to all zeros (avoids division by zero). This is
    /// the normalization DL2Fence applies to integer-valued BOC frames.
    pub fn normalized(&self) -> Tensor {
        let lo = self.min();
        let hi = self.max();
        if (hi - lo).abs() < f32::EPSILON {
            return Tensor::zeros(&self.shape);
        }
        self.map(|v| (v - lo) / (hi - lo))
    }

    /// Matrix multiplication of two rank-2 tensors `[m, k] × [k, n] → [m, n]`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul rhs must be rank 2");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dimensions differ: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let a = self.data[i * k + p];
                if a == 0.0 {
                    continue;
                }
                let row = &other.data[p * n..(p + 1) * n];
                let dst = &mut out[i * n..(i + 1) * n];
                for (d, &b) in dst.iter_mut().zip(row.iter()) {
                    *d += a * b;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose requires a rank-2 tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Returns the index of the maximum element in flat (row-major) order.
    pub fn argmax(&self) -> usize {
        self.data
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// The Frobenius (L2) norm of the tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor{:?} (min {:.3}, max {:.3}, mean {:.3})",
            self.shape,
            self.min(),
            self.max(),
            self.mean()
        )
    }
}

impl Add<&Tensor> for &Tensor {
    type Output = Tensor;
    fn add(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a + b)
    }
}

impl Sub<&Tensor> for &Tensor {
    type Output = Tensor;
    fn sub(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a - b)
    }
}

impl Mul<&Tensor> for &Tensor {
    type Output = Tensor;
    fn mul(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones_have_expected_values() {
        let z = Tensor::zeros(&[2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.data().iter().all(|&v| v == 0.0));
        let o = Tensor::ones(&[4]);
        assert!(o.data().iter().all(|&v| v == 1.0));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = Tensor::zeros(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_wrong_len_panics() {
        let _ = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[2, 2]);
    }

    #[test]
    fn indexing_is_row_major() {
        let t = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 4]);
        assert_eq!(t.get(&[0, 0, 0]), 0.0);
        assert_eq!(t.get(&[0, 0, 3]), 3.0);
        assert_eq!(t.get(&[0, 1, 0]), 4.0);
        assert_eq!(t.get(&[1, 0, 0]), 12.0);
        assert_eq!(t.get(&[1, 2, 3]), 23.0);
    }

    #[test]
    fn set_then_get_round_trips() {
        let mut t = Tensor::zeros(&[3, 3]);
        t.set(&[2, 1], 7.5);
        assert_eq!(t.get(&[2, 1]), 7.5);
        assert_eq!(t.sum(), 7.5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        let t = Tensor::zeros(&[2, 2]);
        let _ = t.get(&[2, 0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let r = t.reshape(&[3, 2]);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    fn matmul_matches_hand_computed() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let eye = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0], &[3, 3]);
        assert_eq!(a.matmul(&eye), a);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn normalized_maps_to_unit_range() {
        let t = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[3]);
        let n = t.normalized();
        assert_eq!(n.min(), 0.0);
        assert_eq!(n.max(), 1.0);
        assert!((n.get(&[1]) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn normalized_constant_tensor_is_zero() {
        let t = Tensor::filled(&[4], 3.3);
        assert!(t.normalized().data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn elementwise_ops_work() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]);
        assert_eq!((&a + &b).data(), &[4.0, 7.0]);
        assert_eq!((&b - &a).data(), &[2.0, 3.0]);
        assert_eq!((&a * &b).data(), &[3.0, 10.0]);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Tensor::zeros(&[3]);
        let g = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        a.add_scaled(&g, -0.5);
        assert_eq!(a.data(), &[-0.5, -1.0, -1.5]);
    }

    #[test]
    fn argmax_finds_largest() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.3, 0.7], &[4]);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn stats_are_consistent() {
        let t = Tensor::from_vec(vec![2.0, 4.0, 6.0, 8.0], &[2, 2]);
        assert_eq!(t.sum(), 20.0);
        assert_eq!(t.mean(), 5.0);
        assert_eq!(t.min(), 2.0);
        assert_eq!(t.max(), 8.0);
        assert!((t.norm() - (4.0f32 + 16.0 + 36.0 + 64.0).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn from_rows_builds_matrix() {
        let m = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.shape(), &[2, 2]);
        assert_eq!(m.get(&[1, 1]), 4.0);
    }

    #[test]
    fn stack_then_batch_item_round_trips() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let s = Tensor::stack(&[&a, &b]);
        assert_eq!(s.shape(), &[2, 2, 2]);
        assert_eq!(s.batch_item(0).data(), a.data());
        assert_eq!(s.batch_item(1).data(), b.data());
        assert_eq!(s.batch_item(1).shape(), &[1, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "equal shapes")]
    fn stack_shape_mismatch_panics() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[2, 3]);
        let _ = Tensor::stack(&[&a, &b]);
    }

    #[test]
    fn serde_round_trip() {
        let t = Tensor::from_vec(vec![1.0, 2.5, -3.0], &[3]);
        let json = serde_json::to_string(&t).unwrap();
        let back: Tensor = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
