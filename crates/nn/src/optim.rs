//! Optimizers: SGD (with momentum) and Adam.

use crate::layers::ParamGrad;
use crate::tensor::Tensor;

/// A gradient-descent optimizer that updates `(parameter, gradient)` pairs in
/// place.
///
/// The optimizer keeps any per-parameter state (momentum, Adam moments)
/// indexed by the order in which parameters are presented, so callers must
/// present parameters in a stable order — [`crate::Sequential`] guarantees
/// this.
pub trait Optimizer: Send {
    /// Applies one update step to the given parameters using their gradients.
    fn step(&mut self, params: &mut [ParamGrad<'_>]);

    /// The configured learning rate.
    fn learning_rate(&self) -> f32;

    /// Human-readable name.
    fn name(&self) -> &'static str;
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    learning_rate: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates a plain SGD optimizer.
    pub fn new(learning_rate: f32) -> Self {
        Sgd {
            learning_rate,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Creates an SGD optimizer with classical momentum.
    pub fn with_momentum(learning_rate: f32, momentum: f32) -> Self {
        Sgd {
            learning_rate,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [ParamGrad<'_>]) {
        if self.momentum == 0.0 {
            for (p, g) in params.iter_mut() {
                p.add_scaled(g, -self.learning_rate);
            }
            return;
        }
        if self.velocity.len() != params.len() {
            self.velocity = params
                .iter()
                .map(|(p, _)| Tensor::zeros(p.shape()))
                .collect();
        }
        for (i, (p, g)) in params.iter_mut().enumerate() {
            let v = &mut self.velocity[i];
            // v = momentum*v - lr*g ; p += v
            let mut new_v = v.scale(self.momentum);
            new_v.add_scaled(g, -self.learning_rate);
            p.add_scaled(&new_v, 1.0);
            *v = new_v;
        }
    }

    fn learning_rate(&self) -> f32 {
        self.learning_rate
    }

    fn name(&self) -> &'static str {
        "sgd"
    }
}

/// The Adam optimizer (Kingma & Ba, 2015) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    learning_rate: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with the standard hyper-parameters
    /// (`β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`).
    pub fn new(learning_rate: f32) -> Self {
        Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [ParamGrad<'_>]) {
        if self.m.len() != params.len() {
            self.m = params
                .iter()
                .map(|(p, _)| Tensor::zeros(p.shape()))
                .collect();
            self.v = params
                .iter()
                .map(|(p, _)| Tensor::zeros(p.shape()))
                .collect();
        }
        self.t += 1;
        let t = self.t as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        for (i, (p, g)) in params.iter_mut().enumerate() {
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for j in 0..p.len() {
                let gj = g.data()[j];
                let mj = self.beta1 * m.data()[j] + (1.0 - self.beta1) * gj;
                let vj = self.beta2 * v.data()[j] + (1.0 - self.beta2) * gj * gj;
                m.data_mut()[j] = mj;
                v.data_mut()[j] = vj;
                let m_hat = mj / bc1;
                let v_hat = vj / bc2;
                p.data_mut()[j] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.learning_rate
    }

    fn name(&self) -> &'static str {
        "adam"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_step(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        // Minimize f(x) = x^2 starting at x = 5.
        let mut x = Tensor::from_vec(vec![5.0], &[1]);
        let mut g = Tensor::zeros(&[1]);
        for _ in 0..steps {
            g.data_mut()[0] = 2.0 * x.data()[0];
            let mut params = vec![(&mut x, &mut g)];
            opt.step(&mut params);
        }
        x.data()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut sgd = Sgd::new(0.1);
        let x = quadratic_step(&mut sgd, 100);
        assert!(x.abs() < 1e-3, "did not converge: {x}");
    }

    #[test]
    fn sgd_momentum_converges_on_quadratic() {
        let mut sgd = Sgd::with_momentum(0.05, 0.9);
        let x = quadratic_step(&mut sgd, 200);
        assert!(x.abs() < 1e-2, "did not converge: {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(0.3);
        let x = quadratic_step(&mut adam, 200);
        assert!(x.abs() < 1e-2, "did not converge: {x}");
    }

    #[test]
    fn sgd_single_step_is_lr_times_grad() {
        let mut sgd = Sgd::new(0.5);
        let mut p = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let mut g = Tensor::from_vec(vec![0.2, -0.4], &[2]);
        let mut params = vec![(&mut p, &mut g)];
        sgd.step(&mut params);
        assert!((p.data()[0] - 0.9).abs() < 1e-6);
        assert!((p.data()[1] - 2.2).abs() < 1e-6);
    }

    #[test]
    fn optimizer_names_and_lr() {
        assert_eq!(Sgd::new(0.1).name(), "sgd");
        assert_eq!(Adam::new(0.1).name(), "adam");
        assert_eq!(Adam::new(0.01).learning_rate(), 0.01);
    }
}
