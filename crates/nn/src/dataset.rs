//! Minimal in-memory dataset and mini-batching support.

use crate::tensor::Tensor;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One mini-batch of inputs and targets.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Model inputs, batch-major.
    pub inputs: Tensor,
    /// Targets, batch-major, shape-compatible with the model output.
    pub targets: Tensor,
}

/// An in-memory supervised dataset of `(input, target)` tensor pairs.
///
/// Inputs and targets keep their individual (non-batched) shapes; batching
/// stacks them along a new leading batch dimension.
///
/// # Examples
///
/// ```
/// use tinycnn::{Dataset, Tensor};
///
/// let mut ds = Dataset::new();
/// ds.push(Tensor::zeros(&[1, 4, 4]), Tensor::zeros(&[1]));
/// ds.push(Tensor::ones(&[1, 4, 4]), Tensor::ones(&[1]));
/// assert_eq!(ds.len(), 2);
/// let batches = ds.batches(2, None);
/// assert_eq!(batches[0].inputs.shape(), &[2, 1, 4, 4]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    samples: Vec<(Tensor, Tensor)>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Dataset {
            samples: Vec::new(),
        }
    }

    /// Appends one `(input, target)` sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample shapes are inconsistent with already stored
    /// samples.
    pub fn push(&mut self, input: Tensor, target: Tensor) {
        if let Some((i0, t0)) = self.samples.first() {
            assert_eq!(
                i0.shape(),
                input.shape(),
                "input shape differs from existing samples"
            );
            assert_eq!(
                t0.shape(),
                target.shape(),
                "target shape differs from existing samples"
            );
        }
        self.samples.push((input, target));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Iterates over the raw `(input, target)` samples.
    pub fn iter(&self) -> impl Iterator<Item = &(Tensor, Tensor)> {
        self.samples.iter()
    }

    /// Splits the dataset into a training and a test partition.
    ///
    /// `train_fraction` is clamped to `[0, 1]`. Samples are shuffled
    /// deterministically with `seed` before splitting.
    pub fn split(&self, train_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        let mut order: Vec<usize> = (0..self.samples.len()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        let cut = ((self.samples.len() as f64) * train_fraction.clamp(0.0, 1.0)).round() as usize;
        let mut train = Dataset::new();
        let mut test = Dataset::new();
        for (i, &idx) in order.iter().enumerate() {
            let (x, y) = self.samples[idx].clone();
            if i < cut {
                train.push(x, y);
            } else {
                test.push(x, y);
            }
        }
        (train, test)
    }

    /// Produces mini-batches of size `batch_size` (the final batch may be
    /// smaller). If `shuffle_seed` is provided the sample order is shuffled
    /// deterministically first.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero or the dataset is empty.
    pub fn batches(&self, batch_size: usize, shuffle_seed: Option<u64>) -> Vec<Batch> {
        assert!(batch_size > 0, "batch size must be non-zero");
        assert!(!self.is_empty(), "cannot batch an empty dataset");
        let mut order: Vec<usize> = (0..self.samples.len()).collect();
        if let Some(seed) = shuffle_seed {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            order.shuffle(&mut rng);
        }
        order
            .chunks(batch_size)
            .map(|chunk| {
                let inputs = stack(chunk.iter().map(|&i| &self.samples[i].0));
                let targets = stack(chunk.iter().map(|&i| &self.samples[i].1));
                Batch { inputs, targets }
            })
            .collect()
    }
}

/// Stacks tensors of identical shape along a new leading batch dimension.
fn stack<'a>(tensors: impl Iterator<Item = &'a Tensor>) -> Tensor {
    let tensors: Vec<&Tensor> = tensors.collect();
    assert!(!tensors.is_empty());
    let shape = tensors[0].shape().to_vec();
    let mut out_shape = vec![tensors.len()];
    out_shape.extend_from_slice(&shape);
    let mut data = Vec::with_capacity(tensors.len() * tensors[0].len());
    for t in tensors {
        assert_eq!(
            t.shape(),
            shape.as_slice(),
            "cannot stack mismatched shapes"
        );
        data.extend_from_slice(t.data());
    }
    Tensor::from_vec(data, &out_shape)
}

impl FromIterator<(Tensor, Tensor)> for Dataset {
    fn from_iter<I: IntoIterator<Item = (Tensor, Tensor)>>(iter: I) -> Self {
        let mut ds = Dataset::new();
        for (x, y) in iter {
            ds.push(x, y);
        }
        ds
    }
}

impl Extend<(Tensor, Tensor)> for Dataset {
    fn extend<I: IntoIterator<Item = (Tensor, Tensor)>>(&mut self, iter: I) {
        for (x, y) in iter {
            self.push(x, y);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dataset(n: usize) -> Dataset {
        (0..n)
            .map(|i| {
                (
                    Tensor::filled(&[1, 2, 2], i as f32),
                    Tensor::filled(&[1], (i % 2) as f32),
                )
            })
            .collect()
    }

    #[test]
    fn push_and_len() {
        let ds = sample_dataset(5);
        assert_eq!(ds.len(), 5);
        assert!(!ds.is_empty());
    }

    #[test]
    #[should_panic(expected = "input shape differs")]
    fn mismatched_shapes_panic() {
        let mut ds = sample_dataset(1);
        ds.push(Tensor::zeros(&[1, 3, 3]), Tensor::zeros(&[1]));
    }

    #[test]
    fn batches_cover_all_samples() {
        let ds = sample_dataset(10);
        let batches = ds.batches(3, None);
        assert_eq!(batches.len(), 4);
        let total: usize = batches.iter().map(|b| b.inputs.shape()[0]).sum();
        assert_eq!(total, 10);
        assert_eq!(batches[0].inputs.shape(), &[3, 1, 2, 2]);
        assert_eq!(batches[3].inputs.shape(), &[1, 1, 2, 2]);
    }

    #[test]
    fn shuffled_batches_are_deterministic() {
        let ds = sample_dataset(16);
        let a = ds.batches(4, Some(42));
        let b = ds.batches(4, Some(42));
        assert_eq!(a[0].inputs.data(), b[0].inputs.data());
    }

    #[test]
    fn split_partitions_all_samples() {
        let ds = sample_dataset(20);
        let (train, test) = ds.split(0.75, 1);
        assert_eq!(train.len(), 15);
        assert_eq!(test.len(), 5);
    }

    #[test]
    fn split_extremes() {
        let ds = sample_dataset(4);
        let (train, test) = ds.split(1.0, 0);
        assert_eq!(train.len(), 4);
        assert_eq!(test.len(), 0);
        let (train, test) = ds.split(0.0, 0);
        assert_eq!(train.len(), 0);
        assert_eq!(test.len(), 4);
    }

    #[test]
    #[should_panic(expected = "batch size must be non-zero")]
    fn zero_batch_size_panics() {
        let ds = sample_dataset(2);
        ds.batches(0, None);
    }
}
