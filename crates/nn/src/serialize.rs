//! Model serialization.
//!
//! Trained models are exported to a JSON-friendly [`ModelExport`] so that the
//! detector and localizer weights produced by a training run can be stored as
//! experiment artifacts and reloaded later (e.g. by the benchmark harness).

use crate::layers::{Conv2d, Dense, Flatten, Layer, MaxPool2d, Padding, Relu, Sigmoid};
use crate::model::Sequential;
use crate::qmodel::{QuantLayer, QuantizedModel};
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Serializable description of one layer (configuration plus weights).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum LayerExport {
    /// A [`Conv2d`] layer.
    Conv2d {
        /// Number of input channels.
        in_channels: usize,
        /// Number of output channels (kernels).
        out_channels: usize,
        /// Square kernel size.
        kernel: usize,
        /// Padding mode.
        padding: Padding,
        /// Weight tensor `[out, in, k, k]`.
        weight: Tensor,
        /// Bias tensor `[out]`.
        bias: Tensor,
    },
    /// A [`Dense`] layer.
    Dense {
        /// Number of input features.
        in_features: usize,
        /// Number of output features.
        out_features: usize,
        /// Weight tensor `[in, out]`.
        weight: Tensor,
        /// Bias tensor `[out]`.
        bias: Tensor,
    },
    /// A [`MaxPool2d`] layer.
    MaxPool2d {
        /// Square pooling window.
        window: usize,
    },
    /// A [`Relu`] activation.
    Relu,
    /// A [`Sigmoid`] activation.
    Sigmoid,
    /// A [`Flatten`] layer.
    Flatten,
}

impl LayerExport {
    /// Rebuilds a boxed layer from this export.
    pub fn into_layer(self) -> Box<dyn Layer> {
        match self {
            LayerExport::Conv2d {
                in_channels,
                out_channels,
                kernel,
                padding,
                weight,
                bias,
            } => Box::new(Conv2d::from_weights(
                in_channels,
                out_channels,
                kernel,
                padding,
                weight,
                bias,
            )),
            LayerExport::Dense {
                in_features,
                out_features,
                weight,
                bias,
            } => Box::new(Dense::from_weights(in_features, out_features, weight, bias)),
            LayerExport::MaxPool2d { window } => Box::new(MaxPool2d::new(window)),
            LayerExport::Relu => Box::new(Relu::new()),
            LayerExport::Sigmoid => Box::new(Sigmoid::new()),
            LayerExport::Flatten => Box::new(Flatten::new()),
        }
    }
}

/// Serializable description of a whole [`Sequential`] model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelExport {
    /// The layers, in forward order.
    pub layers: Vec<LayerExport>,
}

impl ModelExport {
    /// Serializes the export to a JSON string.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` if serialization fails (it cannot for
    /// well-formed tensors, but the signature is fallible for forward
    /// compatibility).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Parses an export from a JSON string.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` if the JSON is malformed.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Rebuilds a runnable [`Sequential`] model from this export.
    pub fn into_model(self) -> Sequential {
        let mut model = Sequential::new();
        for layer in self.layers {
            model = model.push_boxed(layer.into_layer());
        }
        model
    }

    /// A stable 64-bit fingerprint of the exported weights (FNV-1a over the
    /// canonical JSON form). Two exports fingerprint equal iff they
    /// serialize identically, so a serving layer can tag model versions and
    /// detect whether a hot-swap actually changed the model.
    pub fn fingerprint(&self) -> u64 {
        fingerprint_json(&self.to_json().expect("model export serializes"))
    }
}

/// FNV-1a over a canonical JSON serialization.
fn fingerprint_json(json: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in json.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Serializable description of a fused int8 [`QuantizedModel`] — the
/// deployment artifact for accelerator-precision inference. Unlike
/// [`ModelExport`] it stores int8 weight grids plus their symmetric scales,
/// so the artifact is about a quarter the size of the f32 export.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantizedModelExport {
    /// The fused layers, in forward order.
    pub layers: Vec<QuantLayer>,
}

impl QuantizedModelExport {
    /// Serializes the export to a JSON string.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` if serialization fails.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Parses an export from a JSON string.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` if the JSON is malformed.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Rebuilds a runnable [`QuantizedModel`] from this export.
    pub fn into_model(self) -> QuantizedModel {
        QuantizedModel::from_layers(self.layers)
    }

    /// A stable 64-bit fingerprint of the int8 artifact (FNV-1a over the
    /// canonical JSON form); see [`ModelExport::fingerprint`].
    pub fn fingerprint(&self) -> u64 {
        fingerprint_json(&self.to_json().expect("quantized export serializes"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> Sequential {
        Sequential::new()
            .push(Conv2d::new(1, 2, 3, Padding::Valid, 7))
            .push(Relu::new())
            .push(MaxPool2d::new(2))
            .push(Flatten::new())
            .push(Dense::new(2 * 3 * 3, 1, 8))
            .push(Sigmoid::new())
    }

    #[test]
    fn export_import_preserves_predictions() {
        let mut model = tiny_model();
        let x = crate::init::Init::XavierUniform.make(&[2, 1, 8, 8], 64, 64, 1);
        let y_before = model.forward(&x);

        let json = model.export().to_json().unwrap();
        let mut restored = ModelExport::from_json(&json).unwrap().into_model();
        let y_after = restored.forward(&x);

        for (a, b) in y_before.data().iter().zip(y_after.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn export_layer_count_matches() {
        let model = tiny_model();
        assert_eq!(model.export().layers.len(), 6);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(ModelExport::from_json("{not json").is_err());
    }

    #[test]
    fn quantized_export_round_trips_predictions() {
        let model = tiny_model();
        let mut q = QuantizedModel::from_model(&model);
        let x = crate::init::Init::XavierUniform.make(&[2, 1, 8, 8], 64, 64, 1);
        let y_before = q.predict(&x);

        let json = q.export().to_json().unwrap();
        let mut restored = QuantizedModelExport::from_json(&json).unwrap().into_model();
        let y_after = restored.predict(&x);

        for (a, b) in y_before.data().iter().zip(y_after.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "round trip must be lossless");
        }
    }

    #[test]
    fn fingerprints_distinguish_models_and_survive_round_trips() {
        let a = tiny_model().export();
        let b = Sequential::new()
            .push(Conv2d::new(1, 2, 3, Padding::Valid, 99))
            .push(Relu::new())
            .push(MaxPool2d::new(2))
            .push(Flatten::new())
            .push(Dense::new(2 * 3 * 3, 1, 100))
            .push(Sigmoid::new())
            .export();
        assert_ne!(a.fingerprint(), b.fingerprint(), "distinct weights");
        let round = ModelExport::from_json(&a.to_json().unwrap()).unwrap();
        assert_eq!(a.fingerprint(), round.fingerprint(), "round trip stable");

        let qa = QuantizedModel::from_model(&tiny_model()).export();
        let qround = QuantizedModelExport::from_json(&qa.to_json().unwrap()).unwrap();
        assert_eq!(qa.fingerprint(), qround.fingerprint());
        assert_ne!(qa.fingerprint(), a.fingerprint());
    }

    #[test]
    fn quantized_export_is_smaller_than_f32_export() {
        let model = tiny_model();
        let f32_json = model.export().to_json().unwrap();
        let q_json = QuantizedModel::from_model(&model)
            .export()
            .to_json()
            .unwrap();
        assert!(
            q_json.len() < f32_json.len(),
            "int8 artifact ({}) should undercut f32 artifact ({})",
            q_json.len(),
            f32_json.len()
        );
    }
}
