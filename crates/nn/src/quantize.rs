//! Fixed-point weight quantization.
//!
//! The DL2Fence accelerators store weights at 16-bit fixed-point precision
//! (see the hardware model). This module provides symmetric per-tensor
//! quantization so the accuracy impact of deploying the trained `f32` models
//! at accelerator precision can be measured (the quantization ablation).

use crate::serialize::{LayerExport, ModelExport};
use crate::tensor::Tensor;

/// Symmetrically quantizes a tensor to `bits`-bit signed fixed point and
/// returns the de-quantized result (the values an accelerator holding
/// integer weights would effectively compute with).
///
/// An all-zero tensor is returned unchanged.
///
/// # Panics
///
/// Panics if `bits` is not in `2..=16`.
pub fn quantize_tensor(tensor: &Tensor, bits: u32) -> Tensor {
    assert!((2..=16).contains(&bits), "bits must be in 2..=16");
    let max_abs = tensor.data().iter().map(|v| v.abs()).fold(0.0f32, f32::max);
    if max_abs == 0.0 {
        return tensor.clone();
    }
    let levels = (1i64 << (bits - 1)) - 1;
    let scale = max_abs / levels as f32;
    tensor.map(|v| {
        let q = (v / scale).round().clamp(-(levels as f32), levels as f32);
        q * scale
    })
}

/// The largest absolute element-wise error introduced by quantizing `tensor`
/// to `bits` bits.
pub fn quantization_error(tensor: &Tensor, bits: u32) -> f32 {
    let q = quantize_tensor(tensor, bits);
    tensor
        .data()
        .iter()
        .zip(q.data())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max)
}

/// Quantizes every weight and bias of an exported model to `bits`-bit fixed
/// point, returning a new export that can be turned back into a runnable
/// model with [`ModelExport::into_model`].
pub fn quantize_model(export: &ModelExport, bits: u32) -> ModelExport {
    let layers = export
        .layers
        .iter()
        .map(|layer| match layer {
            LayerExport::Conv2d {
                in_channels,
                out_channels,
                kernel,
                padding,
                weight,
                bias,
            } => LayerExport::Conv2d {
                in_channels: *in_channels,
                out_channels: *out_channels,
                kernel: *kernel,
                padding: *padding,
                weight: quantize_tensor(weight, bits),
                bias: quantize_tensor(bias, bits),
            },
            LayerExport::Dense {
                in_features,
                out_features,
                weight,
                bias,
            } => LayerExport::Dense {
                in_features: *in_features,
                out_features: *out_features,
                weight: quantize_tensor(weight, bits),
                bias: quantize_tensor(bias, bits),
            },
            other => other.clone(),
        })
        .collect();
    ModelExport { layers }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn quantization_preserves_zero_tensor() {
        let t = Tensor::zeros(&[4, 4]);
        assert_eq!(quantize_tensor(&t, 8), t);
    }

    #[test]
    fn sixteen_bit_quantization_is_nearly_lossless() {
        let t = Tensor::from_vec(vec![0.5, -0.25, 0.125, 1.0, -1.0, 0.33], &[6]);
        let err = quantization_error(&t, 16);
        assert!(err < 1e-4, "16-bit error too large: {err}");
    }

    #[test]
    fn fewer_bits_mean_more_error() {
        let t = Tensor::from_vec((0..64).map(|i| (i as f32 * 0.137).sin()).collect(), &[64]);
        let e4 = quantization_error(&t, 4);
        let e8 = quantization_error(&t, 8);
        let e16 = quantization_error(&t, 16);
        assert!(e4 > e8);
        assert!(e8 > e16);
    }

    #[test]
    fn quantized_values_lie_on_the_grid() {
        let t = Tensor::from_vec(vec![0.9, -0.7, 0.3, 0.1], &[4]);
        let bits = 4;
        let q = quantize_tensor(&t, bits);
        let levels = (1i64 << (bits - 1)) - 1;
        let scale = 0.9 / levels as f32;
        for v in q.data() {
            let steps = v / scale;
            assert!((steps - steps.round()).abs() < 1e-4);
        }
    }

    #[test]
    fn quantized_model_predictions_stay_close_at_16_bits() {
        let mut model = Sequential::new()
            .push(Conv2d::new(1, 4, 3, Padding::Same, 3))
            .push(Relu::new())
            .push(Flatten::new())
            .push(Dense::new(4 * 6 * 6, 1, 4))
            .push(Sigmoid::new());
        let x = crate::init::Init::XavierUniform.make(&[2, 1, 6, 6], 36, 36, 9);
        let y = model.forward(&x);
        let mut quantized = quantize_model(&model.export(), 16).into_model();
        let yq = quantized.forward(&x);
        for (a, b) in y.data().iter().zip(yq.data()) {
            assert!((a - b).abs() < 1e-3, "prediction drifted: {a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "bits")]
    fn invalid_bit_width_panics() {
        quantize_tensor(&Tensor::ones(&[2]), 1);
    }
}
