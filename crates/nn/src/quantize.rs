//! Fixed-point weight quantization.
//!
//! The DL2Fence accelerators store weights at 16-bit fixed-point precision
//! (see the hardware model). This module provides symmetric per-tensor
//! quantization so the accuracy impact of deploying the trained `f32` models
//! at accelerator precision can be measured (the quantization ablation).

use crate::serialize::{LayerExport, ModelExport};
use crate::tensor::Tensor;

/// Symmetrically quantizes a tensor to `bits`-bit signed fixed point and
/// returns the de-quantized result (the values an accelerator holding
/// integer weights would effectively compute with).
///
/// An all-zero tensor is returned unchanged. Non-finite inputs saturate: the
/// scale is computed over the finite values only, `±inf` clamps to the
/// extreme representable level and `NaN` maps to zero — a hardware
/// fixed-point grid has no representation for either, and letting them
/// poison `scale` used to silently turn the whole grid into NaN.
///
/// # Panics
///
/// Panics if `bits` is not in `2..=16`.
pub fn quantize_tensor(tensor: &Tensor, bits: u32) -> Tensor {
    assert!((2..=16).contains(&bits), "bits must be in 2..=16");
    let max_abs = tensor
        .data()
        .iter()
        .map(|v| v.abs())
        .filter(|v| v.is_finite())
        .fold(0.0f32, f32::max);
    let levels = (1i64 << (bits - 1)) - 1;
    if max_abs == 0.0 {
        // All zero (or no finite values at all): the grid collapses to zero.
        return tensor.map(|v| if v == 0.0 { v } else { 0.0 });
    }
    let scale = max_abs / levels as f32;
    tensor.map(|v| {
        if v.is_nan() {
            return 0.0;
        }
        // `±inf / scale` stays infinite and saturates on the clamp below.
        let q = (v / scale).round().clamp(-(levels as f32), levels as f32);
        q * scale
    })
}

/// The symmetric int8 scale for a value slice: `max|x| / 127`, computed over
/// the finite values only (an empty or all-non-finite slice yields `0.0`,
/// which [`quantize_value_i8`] treats as "everything quantizes to zero").
///
/// This is the scale contract shared by the fused int8 kernels in
/// [`crate::gemm`] and the quantized model in [`crate::qmodel`]: weights are
/// quantized once at build time, activations dynamically per invocation.
pub fn symmetric_scale_i8(values: &[f32]) -> f32 {
    let max_abs = values
        .iter()
        .map(|v| v.abs())
        .filter(|v| v.is_finite())
        .fold(0.0f32, f32::max);
    max_abs / 127.0
}

/// Quantizes one value to i8 under a [`symmetric_scale_i8`] scale, saturating
/// at `±127` and mapping `NaN` (and a zero scale) to `0`.
pub fn quantize_value_i8(value: f32, scale: f32) -> i8 {
    if scale == 0.0 || value.is_nan() {
        return 0;
    }
    (value / scale).round().clamp(-127.0, 127.0) as i8
}

/// Quantizes a slice to i8 with its own symmetric scale, returning both.
pub fn quantize_slice_i8(values: &[f32]) -> (Vec<i8>, f32) {
    let scale = symmetric_scale_i8(values);
    let q = values
        .iter()
        .map(|&v| quantize_value_i8(v, scale))
        .collect();
    (q, scale)
}

/// The largest absolute element-wise error introduced by quantizing `tensor`
/// to `bits` bits.
pub fn quantization_error(tensor: &Tensor, bits: u32) -> f32 {
    let q = quantize_tensor(tensor, bits);
    tensor
        .data()
        .iter()
        .zip(q.data())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max)
}

/// Quantizes every weight and bias of an exported model to `bits`-bit fixed
/// point, returning a new export that can be turned back into a runnable
/// model with [`ModelExport::into_model`].
pub fn quantize_model(export: &ModelExport, bits: u32) -> ModelExport {
    let layers = export
        .layers
        .iter()
        .map(|layer| match layer {
            LayerExport::Conv2d {
                in_channels,
                out_channels,
                kernel,
                padding,
                weight,
                bias,
            } => LayerExport::Conv2d {
                in_channels: *in_channels,
                out_channels: *out_channels,
                kernel: *kernel,
                padding: *padding,
                weight: quantize_tensor(weight, bits),
                bias: quantize_tensor(bias, bits),
            },
            LayerExport::Dense {
                in_features,
                out_features,
                weight,
                bias,
            } => LayerExport::Dense {
                in_features: *in_features,
                out_features: *out_features,
                weight: quantize_tensor(weight, bits),
                bias: quantize_tensor(bias, bits),
            },
            other => other.clone(),
        })
        .collect();
    ModelExport { layers }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn quantization_preserves_zero_tensor() {
        let t = Tensor::zeros(&[4, 4]);
        assert_eq!(quantize_tensor(&t, 8), t);
    }

    #[test]
    fn sixteen_bit_quantization_is_nearly_lossless() {
        let t = Tensor::from_vec(vec![0.5, -0.25, 0.125, 1.0, -1.0, 0.33], &[6]);
        let err = quantization_error(&t, 16);
        assert!(err < 1e-4, "16-bit error too large: {err}");
    }

    #[test]
    fn fewer_bits_mean_more_error() {
        let t = Tensor::from_vec((0..64).map(|i| (i as f32 * 0.137).sin()).collect(), &[64]);
        let e4 = quantization_error(&t, 4);
        let e8 = quantization_error(&t, 8);
        let e16 = quantization_error(&t, 16);
        assert!(e4 > e8);
        assert!(e8 > e16);
    }

    #[test]
    fn quantized_values_lie_on_the_grid() {
        let t = Tensor::from_vec(vec![0.9, -0.7, 0.3, 0.1], &[4]);
        let bits = 4;
        let q = quantize_tensor(&t, bits);
        let levels = (1i64 << (bits - 1)) - 1;
        let scale = 0.9 / levels as f32;
        for v in q.data() {
            let steps = v / scale;
            assert!((steps - steps.round()).abs() < 1e-4);
        }
    }

    #[test]
    fn quantized_model_predictions_stay_close_at_16_bits() {
        let mut model = Sequential::new()
            .push(Conv2d::new(1, 4, 3, Padding::Same, 3))
            .push(Relu::new())
            .push(Flatten::new())
            .push(Dense::new(4 * 6 * 6, 1, 4))
            .push(Sigmoid::new());
        let x = crate::init::Init::XavierUniform.make(&[2, 1, 6, 6], 36, 36, 9);
        let y = model.forward(&x);
        let mut quantized = quantize_model(&model.export(), 16).into_model();
        let yq = quantized.forward(&x);
        for (a, b) in y.data().iter().zip(yq.data()) {
            assert!((a - b).abs() < 1e-3, "prediction drifted: {a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "bits")]
    fn invalid_bit_width_panics() {
        quantize_tensor(&Tensor::ones(&[2]), 1);
    }

    #[test]
    fn non_finite_values_saturate_instead_of_poisoning_the_grid() {
        // Regression: a single inf used to make `scale` infinite and turn
        // every finite value into NaN; a NaN survived quantization as NaN.
        let t = Tensor::from_vec(
            vec![f32::INFINITY, f32::NEG_INFINITY, f32::NAN, 0.5, -1.0],
            &[5],
        );
        let q = quantize_tensor(&t, 8);
        assert!(
            q.data().iter().all(|v| v.is_finite()),
            "quantized grid must be finite, got {:?}",
            q.data()
        );
        // Scale comes from the finite values only (max_abs = 1.0), so ±inf
        // saturate at the extremes and NaN collapses to zero.
        assert!((q.data()[0] - 1.0).abs() < 1e-5);
        assert!((q.data()[1] + 1.0).abs() < 1e-5);
        assert_eq!(q.data()[2], 0.0);
        assert!((q.data()[3] - 0.5).abs() < 0.01);
        assert!((q.data()[4] + 1.0).abs() < 1e-5);
    }

    #[test]
    fn all_non_finite_tensor_collapses_to_zero() {
        let t = Tensor::from_vec(vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY], &[3]);
        let q = quantize_tensor(&t, 8);
        assert_eq!(q.data(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn i8_helpers_round_trip_representable_values() {
        let values = [1.0f32, -0.5, 0.25, 127.0 / 127.0];
        let (q, scale) = quantize_slice_i8(&values);
        for (&orig, &qi) in values.iter().zip(&q) {
            let back = qi as f32 * scale;
            assert!((back - orig).abs() <= scale / 2.0 + 1e-6);
        }
        assert_eq!(quantize_value_i8(f32::NAN, scale), 0);
        assert_eq!(quantize_value_i8(f32::INFINITY, scale), 127);
        assert_eq!(quantize_value_i8(f32::NEG_INFINITY, scale), -127);
        assert_eq!(quantize_value_i8(1.0, 0.0), 0);
    }
}
