//! im2col + cache-blocked GEMM convolution kernels.
//!
//! The scalar seed kernels walked the convolution with per-element
//! [`crate::Tensor::get`] calls — every access paying index arithmetic and a
//! bounds assert. This module lowers the convolution to the classic
//! im2col/GEMM form instead: the input window around every output pixel is
//! copied once into a row of a *column matrix* whose rows are contiguous in
//! the reduction dimension, and the convolution becomes a dense matrix
//! product between the `[out_channels, K]` weight matrix and the
//! `[spatial, K]` column matrix, blocked so a tile of column rows stays
//! resident in L1 while every output channel streams over it.
//!
//! **Bit-exactness contract:** the f32 kernel accumulates each output element
//! in exactly the seed kernel's order — starting from the bias and adding
//! `weight × input` products with the reduction index ascending in
//! `(in_channel, ky, kx)` order, one accumulator, no FMA, no reassociation —
//! so [`conv_forward_f32`] is bit-identical to the naive nested loops for
//! every input. The blocked loop structure only reorders *independent*
//! output elements, never the summation within one. This is what keeps the
//! golden report corpus byte-identical while the hot path gets fast.
//!
//! The int8 kernel ([`conv_forward_i8`], [`dense_forward_i8`]) is the
//! accelerator-precision variant: symmetric per-tensor quantization (scales
//! defined by [`crate::quantize`]), `i32` accumulation, and a fused epilogue
//! applying the dequantization scale, bias and an optional folded ReLU in one
//! pass. It trades bit-exactness for integer arithmetic the compiler can
//! vectorize, and is held to the quantization ablation's accuracy budget by
//! the parity tests.

/// Geometry of one convolution call, shared by the f32 and int8 kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvShape {
    /// Batch size.
    pub batch: usize,
    /// Input channels.
    pub in_channels: usize,
    /// Input height (unpadded).
    pub height: usize,
    /// Input width (unpadded).
    pub width: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Symmetric zero padding applied to both spatial dimensions.
    pub pad: usize,
}

impl ConvShape {
    /// Output height.
    pub fn out_height(&self) -> usize {
        self.height + 2 * self.pad - self.kernel + 1
    }

    /// Output width.
    pub fn out_width(&self) -> usize {
        self.width + 2 * self.pad - self.kernel + 1
    }

    /// The GEMM reduction length: `in_channels * kernel * kernel`.
    pub fn k_dim(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    /// Output pixels per batch element.
    pub fn spatial(&self) -> usize {
        self.out_height() * self.out_width()
    }
}

/// Column-rows per cache tile. 64 rows × a 3×3×8-channel reduction is ~18 KiB
/// of f32 — comfortably inside L1/L2 while every output channel streams over
/// the tile.
const SPATIAL_TILE: usize = 64;

/// Lowers one NCHW input into its column matrix: row `(b, y, x)` holds the
/// padded `in_channels × kernel × kernel` window feeding output pixel
/// `(y, x)` of batch element `b`, flattened in `(ic, ky, kx)` order — the
/// seed kernel's accumulation order. Out-of-bounds (padding) taps are
/// `T::default()` (zero).
pub fn im2col<T: Copy + Default>(input: &[T], s: &ConvShape) -> Vec<T> {
    let (oh, ow, k_dim) = (s.out_height(), s.out_width(), s.k_dim());
    let mut col = vec![T::default(); s.batch * oh * ow * k_dim];
    let plane = s.height * s.width;
    for b in 0..s.batch {
        let in_b = &input[b * s.in_channels * plane..][..s.in_channels * plane];
        let col_b = &mut col[b * oh * ow * k_dim..][..oh * ow * k_dim];
        for y in 0..oh {
            for x in 0..ow {
                let row = &mut col_b[(y * ow + x) * k_dim..][..k_dim];
                let mut j = 0;
                for ic in 0..s.in_channels {
                    let in_plane = &in_b[ic * plane..][..plane];
                    for ky in 0..s.kernel {
                        let iy = y + ky;
                        // With padding, input row `iy - pad`; taps landing in
                        // the pad border stay zero.
                        if iy < s.pad || iy >= s.height + s.pad {
                            j += s.kernel;
                            continue;
                        }
                        let in_row = &in_plane[(iy - s.pad) * s.width..][..s.width];
                        for kx in 0..s.kernel {
                            let ix = x + kx;
                            if ix >= s.pad && ix < s.width + s.pad {
                                row[j] = in_row[ix - s.pad];
                            }
                            j += 1;
                        }
                    }
                }
            }
        }
    }
    col
}

/// The cache-blocked f32 convolution: `weight` is the flat
/// `[out_channels, in_channels, kernel, kernel]` tensor (row-major — already
/// the `[out_channels, K]` GEMM operand), `bias` is `[out_channels]`, and the
/// result is the flat `[batch, out_channels, oh, ow]` output.
///
/// Bit-identical to the scalar seed kernel (see the module docs).
pub fn conv_forward_f32(input: &[f32], weight: &[f32], bias: &[f32], s: &ConvShape) -> Vec<f32> {
    let col = im2col(input, s);
    let (spatial, k_dim) = (s.spatial(), s.k_dim());
    let mut out = vec![0.0f32; s.batch * s.out_channels * spatial];
    for b in 0..s.batch {
        let col_b = &col[b * spatial * k_dim..][..spatial * k_dim];
        let out_b = &mut out[b * s.out_channels * spatial..][..s.out_channels * spatial];
        for tile_start in (0..spatial).step_by(SPATIAL_TILE) {
            let tile_end = (tile_start + SPATIAL_TILE).min(spatial);
            for oc in 0..s.out_channels {
                let w_row = &weight[oc * k_dim..][..k_dim];
                let bias_oc = bias[oc];
                let out_row = &mut out_b[oc * spatial..][..spatial];
                for si in tile_start..tile_end {
                    let col_row = &col_b[si * k_dim..][..k_dim];
                    // Single accumulator, reduction index ascending: the
                    // seed kernel's exact f32 operation sequence.
                    let mut acc = bias_oc;
                    for (&w, &v) in w_row.iter().zip(col_row) {
                        acc += w * v;
                    }
                    out_row[si] = acc;
                }
            }
        }
    }
    out
}

/// The fused int8 convolution: `col`-side input is quantized by the caller
/// (symmetric, scale `input_scale`), weights are pre-quantized i8 with scale
/// `weight_scale`. Accumulates in `i32` and applies the dequantization
/// (`input_scale * weight_scale`), the f32 bias and — when `fuse_relu` — the
/// folded ReLU in a single epilogue pass.
pub fn conv_forward_i8(
    input_q: &[i8],
    input_scale: f32,
    weight_q: &[i8],
    weight_scale: f32,
    bias: &[f32],
    fuse_relu: bool,
    s: &ConvShape,
) -> Vec<f32> {
    let col = im2col(input_q, s);
    let (spatial, k_dim) = (s.spatial(), s.k_dim());
    let dequant = input_scale * weight_scale;
    let mut out = vec![0.0f32; s.batch * s.out_channels * spatial];
    for b in 0..s.batch {
        let col_b = &col[b * spatial * k_dim..][..spatial * k_dim];
        let out_b = &mut out[b * s.out_channels * spatial..][..s.out_channels * spatial];
        for tile_start in (0..spatial).step_by(SPATIAL_TILE) {
            let tile_end = (tile_start + SPATIAL_TILE).min(spatial);
            for oc in 0..s.out_channels {
                let w_row = &weight_q[oc * k_dim..][..k_dim];
                let bias_oc = bias[oc];
                let out_row = &mut out_b[oc * spatial..][..spatial];
                for si in tile_start..tile_end {
                    let col_row = &col_b[si * k_dim..][..k_dim];
                    let mut acc = 0i32;
                    for (&w, &v) in w_row.iter().zip(col_row) {
                        acc += w as i32 * v as i32;
                    }
                    let mut y = acc as f32 * dequant + bias_oc;
                    if fuse_relu {
                        y = y.max(0.0);
                    }
                    out_row[si] = y;
                }
            }
        }
    }
    out
}

/// The fused int8 dense layer: `input_q` is the quantized `[batch, in]`
/// activation matrix, `weight_q` the pre-transposed `[out, in]` quantized
/// weights (transposed once at build time so every dot product runs over two
/// contiguous rows). Same fused dequant + bias + optional-ReLU epilogue as
/// the convolution.
// A flat argument list keeps the kernel signature free of any struct the
// conv path doesn't also need; the three trailing dims mirror ConvShape.
#[allow(clippy::too_many_arguments)]
pub fn dense_forward_i8(
    input_q: &[i8],
    input_scale: f32,
    weight_q: &[i8],
    weight_scale: f32,
    bias: &[f32],
    fuse_relu: bool,
    batch: usize,
    in_features: usize,
    out_features: usize,
) -> Vec<f32> {
    let dequant = input_scale * weight_scale;
    let mut out = vec![0.0f32; batch * out_features];
    for b in 0..batch {
        let x_row = &input_q[b * in_features..][..in_features];
        let out_row = &mut out[b * out_features..][..out_features];
        for (o, slot) in out_row.iter_mut().enumerate() {
            let w_row = &weight_q[o * in_features..][..in_features];
            let mut acc = 0i32;
            for (&w, &v) in w_row.iter().zip(x_row) {
                acc += w as i32 * v as i32;
            }
            let mut y = acc as f32 * dequant + bias[o];
            if fuse_relu {
                y = y.max(0.0);
            }
            *slot = y;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The scalar seed kernel, re-implemented here as the test oracle.
    fn naive_conv(input: &[f32], weight: &[f32], bias: &[f32], s: &ConvShape) -> Vec<f32> {
        let (oh, ow) = (s.out_height(), s.out_width());
        let mut out = vec![0.0f32; s.batch * s.out_channels * oh * ow];
        let get = |b: usize, ic: usize, y: isize, x: isize| -> f32 {
            if y < 0 || x < 0 || y as usize >= s.height || x as usize >= s.width {
                0.0
            } else {
                input[((b * s.in_channels + ic) * s.height + y as usize) * s.width + x as usize]
            }
        };
        let mut i = 0;
        for b in 0..s.batch {
            for oc in 0..s.out_channels {
                for y in 0..oh {
                    for x in 0..ow {
                        let mut acc = bias[oc];
                        for ic in 0..s.in_channels {
                            for ky in 0..s.kernel {
                                for kx in 0..s.kernel {
                                    let w = weight[((oc * s.in_channels + ic) * s.kernel + ky)
                                        * s.kernel
                                        + kx];
                                    acc += w * get(
                                        b,
                                        ic,
                                        (y + ky) as isize - s.pad as isize,
                                        (x + kx) as isize - s.pad as isize,
                                    );
                                }
                            }
                        }
                        out[i] = acc;
                        i += 1;
                    }
                }
            }
        }
        out
    }

    fn pseudo(seed: u64, len: usize) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn blocked_gemm_is_bit_identical_to_naive_valid_padding() {
        let s = ConvShape {
            batch: 3,
            in_channels: 2,
            height: 7,
            width: 9,
            out_channels: 5,
            kernel: 3,
            pad: 0,
        };
        let input = pseudo(1, s.batch * s.in_channels * s.height * s.width);
        let weight = pseudo(2, s.out_channels * s.k_dim());
        let bias = pseudo(3, s.out_channels);
        let fast = conv_forward_f32(&input, &weight, &bias, &s);
        let slow = naive_conv(&input, &weight, &bias, &s);
        assert_eq!(fast.len(), slow.len());
        for (a, b) in fast.iter().zip(&slow) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn blocked_gemm_is_bit_identical_to_naive_same_padding() {
        let s = ConvShape {
            batch: 2,
            in_channels: 3,
            height: 5,
            width: 6,
            out_channels: 4,
            kernel: 3,
            pad: 1,
        };
        let input = pseudo(7, s.batch * s.in_channels * s.height * s.width);
        let weight = pseudo(8, s.out_channels * s.k_dim());
        let bias = pseudo(9, s.out_channels);
        let fast = conv_forward_f32(&input, &weight, &bias, &s);
        let slow = naive_conv(&input, &weight, &bias, &s);
        for (a, b) in fast.iter().zip(&slow) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn spatial_sizes_beyond_one_tile_still_match() {
        // spatial = 14*13 = 182 > SPATIAL_TILE: exercises the tile seams.
        let s = ConvShape {
            batch: 1,
            in_channels: 1,
            height: 16,
            width: 15,
            out_channels: 2,
            kernel: 3,
            pad: 0,
        };
        let input = pseudo(11, s.height * s.width);
        let weight = pseudo(12, s.out_channels * s.k_dim());
        let bias = pseudo(13, s.out_channels);
        let fast = conv_forward_f32(&input, &weight, &bias, &s);
        let slow = naive_conv(&input, &weight, &bias, &s);
        for (a, b) in fast.iter().zip(&slow) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn int8_conv_tracks_f32_within_quantization_error() {
        let s = ConvShape {
            batch: 2,
            in_channels: 2,
            height: 8,
            width: 8,
            out_channels: 3,
            kernel: 3,
            pad: 1,
        };
        let input = pseudo(21, s.batch * s.in_channels * s.height * s.width);
        let weight = pseudo(22, s.out_channels * s.k_dim());
        let bias = pseudo(23, s.out_channels);
        let f32_out = conv_forward_f32(&input, &weight, &bias, &s);

        let in_scale = crate::quantize::symmetric_scale_i8(&input);
        let w_scale = crate::quantize::symmetric_scale_i8(&weight);
        let input_q: Vec<i8> = input
            .iter()
            .map(|&v| crate::quantize::quantize_value_i8(v, in_scale))
            .collect();
        let weight_q: Vec<i8> = weight
            .iter()
            .map(|&v| crate::quantize::quantize_value_i8(v, w_scale))
            .collect();
        let i8_out = conv_forward_i8(&input_q, in_scale, &weight_q, w_scale, &bias, false, &s);
        // Error bound: K products, each off by at most one half-step per side.
        let bound = s.k_dim() as f32 * (in_scale + w_scale);
        for (a, b) in f32_out.iter().zip(&i8_out) {
            assert!((a - b).abs() < bound, "int8 drifted: {a} vs {b}");
        }
    }

    #[test]
    fn fused_relu_clamps_negative_outputs() {
        let s = ConvShape {
            batch: 1,
            in_channels: 1,
            height: 3,
            width: 3,
            out_channels: 1,
            kernel: 3,
            pad: 0,
        };
        // All-negative product with a negative bias: fused ReLU must clamp.
        let input = vec![1.0f32; 9];
        let weight = vec![-1.0f32; 9];
        let bias = vec![-0.5f32];
        let in_scale = crate::quantize::symmetric_scale_i8(&input);
        let w_scale = crate::quantize::symmetric_scale_i8(&weight);
        let iq: Vec<i8> = input
            .iter()
            .map(|&v| crate::quantize::quantize_value_i8(v, in_scale))
            .collect();
        let wq: Vec<i8> = weight
            .iter()
            .map(|&v| crate::quantize::quantize_value_i8(v, w_scale))
            .collect();
        let out = conv_forward_i8(&iq, in_scale, &wq, w_scale, &bias, true, &s);
        assert_eq!(out, vec![0.0]);
    }

    #[test]
    fn int8_dense_matches_exact_small_integers() {
        // Weights/inputs exactly representable: int8 path is exact.
        let input = [1.0f32, 2.0, -3.0, 4.0];
        let weight_t = [1.0f32, 0.0, 2.0, -1.0, 0.5, 0.5, 0.5, 0.5]; // [out=2, in=4]
        let in_scale = crate::quantize::symmetric_scale_i8(&input);
        let w_scale = crate::quantize::symmetric_scale_i8(&weight_t);
        let iq: Vec<i8> = input
            .iter()
            .map(|&v| crate::quantize::quantize_value_i8(v, in_scale))
            .collect();
        let wq: Vec<i8> = weight_t
            .iter()
            .map(|&v| crate::quantize::quantize_value_i8(v, w_scale))
            .collect();
        let out = dense_forward_i8(&iq, in_scale, &wq, w_scale, &[0.0, 1.0], false, 1, 4, 2);
        assert!((out[0] - (1.0 - 6.0 - 4.0)).abs() < 0.1, "got {}", out[0]);
        assert!((out[1] - (0.5 * (1.0 + 2.0 - 3.0 + 4.0) + 1.0)).abs() < 0.1);
    }
}
