//! The [`Sequential`] model container.

use crate::layers::Layer;
use crate::serialize::ModelExport;
use crate::tensor::Tensor;
use dl2fence_telemetry::Recorder;
use std::fmt;

/// An ordered stack of layers executed front to back.
///
/// Both DL2Fence models are `Sequential` stacks; the container also supports
/// the deeper ablation variants (extra conv layers, more kernels).
///
/// # Examples
///
/// ```
/// use tinycnn::prelude::*;
///
/// let mut model = Sequential::new()
///     .push(Dense::new(4, 2, 0))
///     .push(Sigmoid::new());
/// let y = model.forward(&Tensor::zeros(&[1, 4]));
/// assert_eq!(y.shape(), &[1, 2]);
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    /// Per-layer timing recorder; disabled (free) by default.
    telemetry: Recorder,
    /// Prefix of the per-layer histogram names, e.g. `"nn.detector"`.
    telemetry_prefix: String,
    /// Precomputed histogram names (`<prefix>.fwd.<i>.<layer>`), rebuilt
    /// lazily whenever the layer count changes — `forward`/`backward` must
    /// not allocate name strings per call.
    fwd_names: Vec<String>,
    bwd_names: Vec<String>,
}

impl Sequential {
    /// Creates an empty model.
    pub fn new() -> Self {
        Sequential::default()
    }

    /// Attaches a telemetry recorder: every layer's `forward` and `backward`
    /// is timed into histograms named `<prefix>.fwd.<i>.<layer>` and
    /// `<prefix>.bwd.<i>.<layer>`. A disabled recorder (the default) keeps
    /// both passes on the untimed fast path.
    pub fn set_telemetry(&mut self, recorder: Recorder, prefix: &str) {
        self.telemetry = recorder;
        self.telemetry_prefix = prefix.to_string();
        self.fwd_names.clear();
        self.bwd_names.clear();
    }

    fn refresh_layer_names(&mut self) {
        if self.fwd_names.len() == self.layers.len() {
            return;
        }
        let prefix = if self.telemetry_prefix.is_empty() {
            "nn"
        } else {
            &self.telemetry_prefix
        };
        self.fwd_names = self
            .layers
            .iter()
            .enumerate()
            .map(|(i, l)| format!("{prefix}.fwd.{i}.{}", l.name()))
            .collect();
        self.bwd_names = self
            .layers
            .iter()
            .enumerate()
            .map(|(i, l)| format!("{prefix}.bwd.{i}.{}", l.name()))
            .collect();
    }

    /// Appends a layer, builder-style.
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends an already boxed layer, builder-style.
    pub fn push_boxed(mut self, layer: Box<dyn Layer>) -> Self {
        self.layers.push(layer);
        self
    }

    /// The number of layers in the model.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` if the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Total number of trainable scalar parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Runs the model forward, caching intermediate state for `backward`.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        if !self.telemetry.is_enabled() {
            let mut x = input.clone();
            for layer in &mut self.layers {
                x = layer.forward(&x);
            }
            return x;
        }
        self.refresh_layer_names();
        let rec = self.telemetry.clone();
        let mut x = input.clone();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            x = rec.time(&self.fwd_names[i], || layer.forward(&x));
        }
        x
    }

    /// Inference-only forward: bit-identical output to
    /// [`Sequential::forward`] but routed through [`Layer::infer`], so no
    /// layer clones its input or keeps backward bookkeeping. This is the hot
    /// path for deployed models serving whole frame batches; per-layer
    /// telemetry uses the same `<prefix>.fwd.<i>.<layer>` histogram names as
    /// the training forward.
    pub fn predict(&mut self, input: &Tensor) -> Tensor {
        if !self.telemetry.is_enabled() {
            let mut x = input.clone();
            for layer in &self.layers {
                x = layer.infer(&x);
            }
            return x;
        }
        self.refresh_layer_names();
        let rec = self.telemetry.clone();
        let mut x = input.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            x = rec.time(&self.fwd_names[i], || layer.infer(&x));
        }
        x
    }

    /// Back-propagates the gradient of the loss w.r.t. the model output,
    /// accumulating parameter gradients in every layer.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Sequential::forward`].
    pub fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        if !self.telemetry.is_enabled() {
            let mut g = grad_output.clone();
            for layer in self.layers.iter_mut().rev() {
                g = layer.backward(&g);
            }
            return g;
        }
        self.refresh_layer_names();
        let rec = self.telemetry.clone();
        let mut g = grad_output.clone();
        let last = self.layers.len().saturating_sub(1);
        for (back, layer) in self.layers.iter_mut().rev().enumerate() {
            g = rec.time(&self.bwd_names[last - back], || layer.backward(&g));
        }
        g
    }

    /// Resets all accumulated gradients to zero.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Collects mutable `(parameter, gradient)` pairs from every layer in a
    /// stable order, for use by an [`crate::Optimizer`].
    pub fn params_mut(&mut self) -> Vec<crate::layers::ParamGrad<'_>> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// A short textual summary (layer names and parameter counts).
    pub fn summary(&self) -> String {
        let mut s = String::new();
        for (i, layer) in self.layers.iter().enumerate() {
            s.push_str(&format!(
                "{:2}: {:<10} params={}\n",
                i,
                layer.name(),
                layer.param_count()
            ));
        }
        s.push_str(&format!("total params: {}", self.param_count()));
        s
    }

    /// Exports the model (architecture plus weights) for serialization.
    pub fn export(&self) -> ModelExport {
        ModelExport {
            layers: self.layers.iter().map(|l| l.export()).collect(),
        }
    }
}

impl fmt::Debug for Sequential {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Sequential({} layers, {} params)",
            self.len(),
            self.param_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn empty_model_is_identity() {
        let mut m = Sequential::new();
        let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]);
        assert_eq!(m.forward(&x), x);
        assert!(m.is_empty());
    }

    #[test]
    fn detector_architecture_shapes() {
        // The paper's detector on a 16x16 mesh: input (R-1) x R = 15 x 16,
        // 4 directional frames as channels.
        let r = 16usize;
        let mut m = Sequential::new()
            .push(Conv2d::new(4, 8, 3, Padding::Valid, 0))
            .push(Relu::new())
            .push(MaxPool2d::new(2))
            .push(Flatten::new())
            .push(Dense::new(8 * 6 * 7, 1, 1))
            .push(Sigmoid::new());
        let x = Tensor::zeros(&[1, 4, r - 1, r]);
        let y = m.forward(&x);
        assert_eq!(y.shape(), &[1, 1]);
        assert!(y.data()[0] > 0.0 && y.data()[0] < 1.0);
    }

    #[test]
    fn segmenter_architecture_preserves_spatial_size() {
        // The paper's localizer: conv layers keeping (R-1) x R via Same padding,
        // collapsing to a single-channel segmentation map.
        let r = 16usize;
        let mut m = Sequential::new()
            .push(Conv2d::new(1, 8, 3, Padding::Same, 0))
            .push(Relu::new())
            .push(Conv2d::new(8, 8, 3, Padding::Same, 1))
            .push(Relu::new())
            .push(Conv2d::new(8, 1, 3, Padding::Same, 2))
            .push(Sigmoid::new());
        let x = Tensor::zeros(&[1, 1, r - 1, r]);
        let y = m.forward(&x);
        assert_eq!(y.shape(), &[1, 1, r - 1, r]);
    }

    #[test]
    fn param_count_sums_layers() {
        let m = Sequential::new()
            .push(Dense::new(4, 3, 0))
            .push(Dense::new(3, 2, 1));
        assert_eq!(m.param_count(), (4 * 3 + 3) + (3 * 2 + 2));
    }

    #[test]
    fn summary_mentions_every_layer() {
        let m = Sequential::new()
            .push(Conv2d::new(1, 2, 3, Padding::Valid, 0))
            .push(Relu::new());
        let s = m.summary();
        assert!(s.contains("Conv2d"));
        assert!(s.contains("ReLU"));
        assert!(s.contains("total params"));
    }

    #[test]
    fn telemetry_times_every_layer_pass() {
        use dl2fence_telemetry::{MemorySink, Telemetry};
        use std::sync::Arc;
        let sink = Arc::new(MemorySink::new());
        let tel = Telemetry::with_sink(sink.clone());
        let rec = tel.recorder();
        let mut m = Sequential::new()
            .push(Dense::new(3, 2, 0))
            .push(Sigmoid::new());
        m.set_telemetry(rec.clone(), "nn.test");
        let y = m.forward(&Tensor::ones(&[1, 3]));
        m.backward(&Tensor::ones(y.shape()));
        rec.flush();
        let names: Vec<String> = sink.take().iter().map(|e| e.name().to_string()).collect();
        for expected in [
            "nn.test.fwd.0.Dense",
            "nn.test.fwd.1.Sigmoid",
            "nn.test.bwd.0.Dense",
            "nn.test.bwd.1.Sigmoid",
        ] {
            assert!(names.contains(&expected.to_string()), "missing {expected}");
        }
    }

    #[test]
    fn predict_is_bit_identical_to_forward() {
        let r = 16usize;
        let mut m = Sequential::new()
            .push(Conv2d::new(4, 8, 3, Padding::Valid, 0))
            .push(Relu::new())
            .push(MaxPool2d::new(2))
            .push(Flatten::new())
            .push(Dense::new(8 * 6 * 7, 1, 1))
            .push(Sigmoid::new());
        let x = crate::init::Init::XavierUniform.make(&[3, 4, r - 1, r], 16, 16, 77);
        let trained = m.forward(&x);
        let inferred = m.predict(&x);
        for (a, b) in trained.data().iter().zip(inferred.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn predict_times_layers_under_telemetry() {
        use dl2fence_telemetry::{MemorySink, Telemetry};
        use std::sync::Arc;
        let sink = Arc::new(MemorySink::new());
        let tel = Telemetry::with_sink(sink.clone());
        let rec = tel.recorder();
        let mut m = Sequential::new()
            .push(Dense::new(3, 2, 0))
            .push(Sigmoid::new());
        m.set_telemetry(rec.clone(), "nn.test");
        m.predict(&Tensor::ones(&[1, 3]));
        rec.flush();
        let names: Vec<String> = sink.take().iter().map(|e| e.name().to_string()).collect();
        for expected in ["nn.test.fwd.0.Dense", "nn.test.fwd.1.Sigmoid"] {
            assert!(names.contains(&expected.to_string()), "missing {expected}");
        }
    }

    #[test]
    fn backward_then_params_have_gradients() {
        let mut m = Sequential::new()
            .push(Dense::new(3, 2, 0))
            .push(Sigmoid::new());
        let x = Tensor::ones(&[2, 3]);
        let y = m.forward(&x);
        m.backward(&Tensor::ones(y.shape()));
        let has_nonzero_grad = m
            .params_mut()
            .iter()
            .any(|(_, g)| g.data().iter().any(|&v| v != 0.0));
        assert!(has_nonzero_grad);
        m.zero_grad();
        let all_zero = m
            .params_mut()
            .iter()
            .all(|(_, g)| g.data().iter().all(|&v| v == 0.0));
        assert!(all_zero);
    }
}
