//! Loss functions.
//!
//! The DoS *detector* trains with [`BinaryCrossEntropy`]; the DoS *profile
//! localizer* (a segmentation model) trains with [`DiceLoss`], mirroring the
//! "feedback from dice accuracy" the paper describes. [`Mse`] is provided for
//! ablation experiments.

use crate::tensor::Tensor;

/// A differentiable loss over a prediction/target pair of equal shape.
pub trait Loss: Send {
    /// The scalar loss value (averaged over all elements).
    fn value(&self, prediction: &Tensor, target: &Tensor) -> f32;

    /// The gradient of the loss w.r.t. the prediction.
    fn gradient(&self, prediction: &Tensor, target: &Tensor) -> Tensor;

    /// Human-readable name.
    fn name(&self) -> &'static str;
}

/// Binary cross-entropy over probabilities in `(0, 1)`.
///
/// Predictions are clamped to `[eps, 1-eps]` for numerical stability.
#[derive(Debug, Clone, Copy)]
pub struct BinaryCrossEntropy {
    eps: f32,
}

impl BinaryCrossEntropy {
    /// Creates a BCE loss with the default clamping epsilon (`1e-7`).
    pub fn new() -> Self {
        BinaryCrossEntropy { eps: 1e-7 }
    }
}

impl Default for BinaryCrossEntropy {
    fn default() -> Self {
        Self::new()
    }
}

impl Loss for BinaryCrossEntropy {
    fn value(&self, prediction: &Tensor, target: &Tensor) -> f32 {
        let n = prediction.len() as f32;
        prediction
            .zip(target, |p, t| {
                let p = p.clamp(self.eps, 1.0 - self.eps);
                -(t * p.ln() + (1.0 - t) * (1.0 - p).ln())
            })
            .sum()
            / n
    }

    fn gradient(&self, prediction: &Tensor, target: &Tensor) -> Tensor {
        let n = prediction.len() as f32;
        prediction.zip(target, |p, t| {
            let p = p.clamp(self.eps, 1.0 - self.eps);
            ((p - t) / (p * (1.0 - p))) / n
        })
    }

    fn name(&self) -> &'static str {
        "binary_cross_entropy"
    }
}

/// Soft Dice loss: `1 − (2·|P∩T| + s) / (|P| + |T| + s)`.
///
/// The smoothing term `s` keeps the loss defined when both prediction and
/// target are all-zero (a frame with no attack pixels).
#[derive(Debug, Clone, Copy)]
pub struct DiceLoss {
    smooth: f32,
}

impl DiceLoss {
    /// Creates a Dice loss with the default smoothing factor (`1.0`).
    pub fn new() -> Self {
        DiceLoss { smooth: 1.0 }
    }

    /// Creates a Dice loss with a custom smoothing factor.
    pub fn with_smoothing(smooth: f32) -> Self {
        DiceLoss { smooth }
    }

    /// The soft Dice coefficient (1 − loss).
    pub fn coefficient(&self, prediction: &Tensor, target: &Tensor) -> f32 {
        let intersection = prediction.zip(target, |p, t| p * t).sum();
        let denom = prediction.sum() + target.sum();
        (2.0 * intersection + self.smooth) / (denom + self.smooth)
    }
}

impl Default for DiceLoss {
    fn default() -> Self {
        Self::new()
    }
}

impl Loss for DiceLoss {
    fn value(&self, prediction: &Tensor, target: &Tensor) -> f32 {
        1.0 - self.coefficient(prediction, target)
    }

    fn gradient(&self, prediction: &Tensor, target: &Tensor) -> Tensor {
        // d/dp_i [ -(2*sum(p*t)+s)/(sum(p)+sum(t)+s) ]
        //   = -(2*t_i*(denom) - (2*inter+s)) / denom^2
        let intersection = prediction.zip(target, |p, t| p * t).sum();
        let denom = prediction.sum() + target.sum() + self.smooth;
        let numer = 2.0 * intersection + self.smooth;
        target.map(|t| -(2.0 * t * denom - numer) / (denom * denom))
    }

    fn name(&self) -> &'static str {
        "dice"
    }
}

/// Mean squared error, provided for ablation experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mse;

impl Mse {
    /// Creates an MSE loss.
    pub fn new() -> Self {
        Mse
    }
}

impl Loss for Mse {
    fn value(&self, prediction: &Tensor, target: &Tensor) -> f32 {
        prediction.zip(target, |p, t| (p - t) * (p - t)).mean()
    }

    fn gradient(&self, prediction: &Tensor, target: &Tensor) -> Tensor {
        let n = prediction.len() as f32;
        prediction.zip(target, |p, t| 2.0 * (p - t) / n)
    }

    fn name(&self) -> &'static str {
        "mse"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_gradient(loss: &dyn Loss, pred: &Tensor, target: &Tensor, i: usize) -> f32 {
        let eps = 1e-3;
        let mut plus = pred.clone();
        plus.data_mut()[i] += eps;
        let mut minus = pred.clone();
        minus.data_mut()[i] -= eps;
        (loss.value(&plus, target) - loss.value(&minus, target)) / (2.0 * eps)
    }

    #[test]
    fn bce_perfect_prediction_is_near_zero() {
        let bce = BinaryCrossEntropy::new();
        let p = Tensor::from_vec(vec![0.9999, 0.0001], &[2]);
        let t = Tensor::from_vec(vec![1.0, 0.0], &[2]);
        assert!(bce.value(&p, &t) < 1e-3);
    }

    #[test]
    fn bce_wrong_prediction_is_large() {
        let bce = BinaryCrossEntropy::new();
        let p = Tensor::from_vec(vec![0.01], &[1]);
        let t = Tensor::from_vec(vec![1.0], &[1]);
        assert!(bce.value(&p, &t) > 4.0);
    }

    #[test]
    fn bce_gradient_matches_numeric() {
        let bce = BinaryCrossEntropy::new();
        let p = Tensor::from_vec(vec![0.3, 0.7, 0.5], &[3]);
        let t = Tensor::from_vec(vec![1.0, 0.0, 1.0], &[3]);
        let g = bce.gradient(&p, &t);
        for i in 0..3 {
            let n = numeric_gradient(&bce, &p, &t, i);
            assert!((g.data()[i] - n).abs() < 1e-2, "{} vs {}", g.data()[i], n);
        }
    }

    #[test]
    fn dice_perfect_overlap_gives_zero_loss() {
        let dice = DiceLoss::new();
        let p = Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0], &[4]);
        let t = p.clone();
        assert!(dice.value(&p, &t) < 0.2); // smoothing keeps it slightly above 0
        assert!(dice.coefficient(&p, &t) > 0.8);
    }

    #[test]
    fn dice_no_overlap_gives_high_loss() {
        let dice = DiceLoss::new();
        let p = Tensor::from_vec(vec![1.0, 0.0], &[2]);
        let t = Tensor::from_vec(vec![0.0, 1.0], &[2]);
        assert!(dice.value(&p, &t) > 0.5);
    }

    #[test]
    fn dice_all_zero_frames_are_well_defined() {
        let dice = DiceLoss::new();
        let p = Tensor::zeros(&[8]);
        let t = Tensor::zeros(&[8]);
        let v = dice.value(&p, &t);
        assert!(v.is_finite());
        assert!(v.abs() < 1e-6);
    }

    #[test]
    fn dice_gradient_matches_numeric() {
        let dice = DiceLoss::new();
        let p = Tensor::from_vec(vec![0.2, 0.8, 0.4, 0.6], &[4]);
        let t = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[4]);
        let g = dice.gradient(&p, &t);
        for i in 0..4 {
            let n = numeric_gradient(&dice, &p, &t, i);
            assert!((g.data()[i] - n).abs() < 1e-2, "{} vs {}", g.data()[i], n);
        }
    }

    #[test]
    fn mse_gradient_matches_numeric() {
        let mse = Mse::new();
        let p = Tensor::from_vec(vec![0.5, -1.0], &[2]);
        let t = Tensor::from_vec(vec![1.0, 1.0], &[2]);
        let g = mse.gradient(&p, &t);
        for i in 0..2 {
            let n = numeric_gradient(&mse, &p, &t, i);
            assert!((g.data()[i] - n).abs() < 1e-2);
        }
    }
}
