//! # tinycnn — a from-scratch convolutional neural network library
//!
//! `tinycnn` implements the small set of deep-learning primitives required to
//! train and run the two CNN models used by the DL2Fence framework:
//!
//! * a **classification** model (`Conv2d → ReLU → MaxPool2d → Flatten → Dense → Sigmoid`)
//!   used as the DoS *detector*, and
//! * a **segmentation** model (`Conv2d → ReLU → Conv2d → ReLU → Conv2d → Sigmoid`)
//!   used as the DoS *profile localizer*.
//!
//! The library is deliberately dependency-light (only `rand` for weight
//! initialization and `serde` for model serialization) because the Rust deep
//! learning ecosystem is thin and this reproduction must be fully
//! self-contained. It is **not** a general-purpose DL framework: it supports
//! dense `f32` tensors, a handful of layers, two losses and two optimizers —
//! exactly what the paper's models need, plus enough headroom for the
//! ablations (extra conv layers, different kernel counts).
//!
//! ## Quick example
//!
//! ```
//! use tinycnn::prelude::*;
//!
//! // A tiny classifier for 1×8×8 inputs.
//! let mut model = Sequential::new()
//!     .push(Conv2d::new(1, 4, 3, Padding::Valid, 42))
//!     .push(Relu::new())
//!     .push(MaxPool2d::new(2))
//!     .push(Flatten::new())
//!     .push(Dense::new(4 * 3 * 3, 1, 43))
//!     .push(Sigmoid::new());
//!
//! let x = Tensor::zeros(&[1, 1, 8, 8]);
//! let y = model.forward(&x);
//! assert_eq!(y.shape(), &[1, 1]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod gemm;
pub mod init;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod model;
pub mod optim;
pub mod qmodel;
pub mod quantize;
pub mod serialize;
pub mod tensor;
pub mod trainer;

pub use dataset::{Batch, Dataset};
pub use layers::{Conv2d, Dense, Flatten, Layer, MaxPool2d, Padding, Relu, Sigmoid};
pub use loss::{BinaryCrossEntropy, DiceLoss, Loss, Mse};
pub use metrics::{binary_accuracy, confusion, dice_coefficient, BinaryConfusion};
pub use model::Sequential;
pub use optim::{Adam, Optimizer, Sgd};
pub use qmodel::{QuantLayer, QuantizedModel};
pub use tensor::Tensor;
pub use trainer::{Trainer, TrainingConfig, TrainingReport};

/// Convenient glob import of the most commonly used items.
pub mod prelude {
    pub use crate::dataset::{Batch, Dataset};
    pub use crate::layers::{Conv2d, Dense, Flatten, Layer, MaxPool2d, Padding, Relu, Sigmoid};
    pub use crate::loss::{BinaryCrossEntropy, DiceLoss, Loss, Mse};
    pub use crate::metrics::{binary_accuracy, confusion, dice_coefficient, BinaryConfusion};
    pub use crate::model::Sequential;
    pub use crate::optim::{Adam, Optimizer, Sgd};
    pub use crate::qmodel::{QuantLayer, QuantizedModel};
    pub use crate::tensor::Tensor;
    pub use crate::trainer::{Trainer, TrainingConfig, TrainingReport};
}
