//! Fused int8 inference models.
//!
//! A [`QuantizedModel`] is the deployment form of a trained [`Sequential`]
//! stack: Conv2d/Dense weights are quantized once to symmetric int8 (the
//! scale contract lives in [`crate::quantize`]), an immediately following
//! ReLU is folded into the producing layer's epilogue, and activations are
//! quantized dynamically per invocation. The heavy layers then run on the
//! integer GEMM kernels in [`crate::gemm`] with `i32` accumulation and a
//! single fused dequantize + bias + ReLU pass over the output.
//!
//! This is the "accelerator precision" execution model whose accuracy budget
//! the `specs/ablation_quantization.toml` ablation fixes: int8 outputs are
//! *not* bit-identical to f32 (use [`Sequential::predict`] where the golden
//! corpus matters) but must stay within the ablation's error envelope, which
//! the parity suite in `crates/nn/tests/parity.rs` enforces.

use crate::layers::{sigmoid_scalar, Layer, MaxPool2d};
use crate::model::Sequential;
use crate::quantize::quantize_slice_i8;
use crate::serialize::{LayerExport, ModelExport};
use crate::tensor::Tensor;
use dl2fence_telemetry::Recorder;
use serde::{Deserialize, Serialize};

/// One layer of a fused int8 model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum QuantLayer {
    /// Int8 convolution with fused dequant + bias (+ folded ReLU) epilogue.
    Conv2d {
        /// Number of input channels.
        in_channels: usize,
        /// Number of output channels.
        out_channels: usize,
        /// Square kernel size.
        kernel: usize,
        /// Symmetric zero padding (0 for Valid, `kernel / 2` for Same).
        pad: usize,
        /// Quantized weights, `[out, in, k, k]` row-major.
        weight_q: Vec<i8>,
        /// Symmetric weight scale (`max|w| / 127`).
        weight_scale: f32,
        /// Bias, kept in f32 and applied in the epilogue.
        bias: Vec<f32>,
        /// Whether an immediately following ReLU was folded in.
        fused_relu: bool,
    },
    /// Int8 dense layer with the same fused epilogue.
    Dense {
        /// Number of input features.
        in_features: usize,
        /// Number of output features.
        out_features: usize,
        /// Quantized weights, **pre-transposed** to `[out, in]` so every
        /// output's dot product runs over two contiguous rows.
        weight_q: Vec<i8>,
        /// Symmetric weight scale.
        weight_scale: f32,
        /// Bias in f32.
        bias: Vec<f32>,
        /// Whether an immediately following ReLU was folded in.
        fused_relu: bool,
    },
    /// Max pooling (runs in f32; it is a pure comparison network).
    MaxPool2d {
        /// Square pooling window.
        window: usize,
    },
    /// Flatten to `[batch, features]`.
    Flatten,
    /// A ReLU that could not be fused (not directly after Conv2d/Dense).
    Relu,
    /// Output sigmoid, evaluated in f32 for a calibrated probability.
    Sigmoid,
}

/// A fused int8 model built from a trained f32 export.
///
/// # Examples
///
/// ```
/// use tinycnn::prelude::*;
/// use tinycnn::qmodel::QuantizedModel;
///
/// let mut model = Sequential::new()
///     .push(Conv2d::new(1, 4, 3, Padding::Valid, 1))
///     .push(Relu::new())
///     .push(Flatten::new())
///     .push(Dense::new(4 * 6 * 6, 1, 2))
///     .push(Sigmoid::new());
/// let mut q = QuantizedModel::from_export(&model.export());
/// let x = Tensor::ones(&[2, 1, 8, 8]);
/// let yf = model.predict(&x);
/// let yq = q.predict(&x);
/// assert_eq!(yq.shape(), yf.shape());
/// ```
#[derive(Clone, Default)]
pub struct QuantizedModel {
    /// The fused layers, in forward order.
    pub layers: Vec<QuantLayer>,
    /// Per-layer timing recorder; disabled (free) by default.
    telemetry: Recorder,
    telemetry_prefix: String,
    fwd_names: Vec<String>,
}

impl QuantizedModel {
    /// Rebuilds a runnable model from already-fused layers (deserialization;
    /// see [`crate::serialize::QuantizedModelExport`]).
    pub fn from_layers(layers: Vec<QuantLayer>) -> Self {
        QuantizedModel {
            layers,
            ..QuantizedModel::default()
        }
    }

    /// Exports the fused layers for serialization.
    pub fn export(&self) -> crate::serialize::QuantizedModelExport {
        crate::serialize::QuantizedModelExport {
            layers: self.layers.clone(),
        }
    }
    /// Builds the fused int8 model from an f32 export, quantizing weights
    /// symmetrically and folding every ReLU that immediately follows a
    /// Conv2d or Dense layer into that layer's epilogue.
    pub fn from_export(export: &ModelExport) -> Self {
        let mut layers = Vec::with_capacity(export.layers.len());
        let mut i = 0;
        while i < export.layers.len() {
            let fused_relu = matches!(
                (&export.layers[i], export.layers.get(i + 1)),
                (
                    LayerExport::Conv2d { .. } | LayerExport::Dense { .. },
                    Some(LayerExport::Relu)
                )
            );
            match &export.layers[i] {
                LayerExport::Conv2d {
                    in_channels,
                    out_channels,
                    kernel,
                    padding,
                    weight,
                    bias,
                } => {
                    let (weight_q, weight_scale) = quantize_slice_i8(weight.data());
                    layers.push(QuantLayer::Conv2d {
                        in_channels: *in_channels,
                        out_channels: *out_channels,
                        kernel: *kernel,
                        pad: match padding {
                            crate::layers::Padding::Valid => 0,
                            crate::layers::Padding::Same => kernel / 2,
                        },
                        weight_q,
                        weight_scale,
                        bias: bias.data().to_vec(),
                        fused_relu,
                    });
                }
                LayerExport::Dense {
                    in_features,
                    out_features,
                    weight,
                    bias,
                } => {
                    // Transpose [in, out] → [out, in] once, at build time.
                    let (weight_q, weight_scale) = quantize_slice_i8(weight.transpose().data());
                    layers.push(QuantLayer::Dense {
                        in_features: *in_features,
                        out_features: *out_features,
                        weight_q,
                        weight_scale,
                        bias: bias.data().to_vec(),
                        fused_relu,
                    });
                }
                LayerExport::MaxPool2d { window } => {
                    layers.push(QuantLayer::MaxPool2d { window: *window })
                }
                LayerExport::Flatten => layers.push(QuantLayer::Flatten),
                LayerExport::Relu => layers.push(QuantLayer::Relu),
                LayerExport::Sigmoid => layers.push(QuantLayer::Sigmoid),
            }
            i += if fused_relu { 2 } else { 1 };
        }
        QuantizedModel {
            layers,
            ..QuantizedModel::default()
        }
    }

    /// Convenience: builds directly from a trained model.
    pub fn from_model(model: &Sequential) -> Self {
        Self::from_export(&model.export())
    }

    /// Attaches a telemetry recorder; per-layer timings are emitted as
    /// `<prefix>.fwd.<i>.<layer>` histograms, mirroring [`Sequential`].
    pub fn set_telemetry(&mut self, recorder: Recorder, prefix: &str) {
        self.telemetry = recorder;
        self.telemetry_prefix = prefix.to_string();
        self.fwd_names.clear();
    }

    fn layer_name(layer: &QuantLayer) -> &'static str {
        match layer {
            QuantLayer::Conv2d { .. } => "QConv2d",
            QuantLayer::Dense { .. } => "QDense",
            QuantLayer::MaxPool2d { .. } => "MaxPool2d",
            QuantLayer::Flatten => "Flatten",
            QuantLayer::Relu => "ReLU",
            QuantLayer::Sigmoid => "Sigmoid",
        }
    }

    fn refresh_layer_names(&mut self) {
        if self.fwd_names.len() == self.layers.len() {
            return;
        }
        let prefix = if self.telemetry_prefix.is_empty() {
            "nn"
        } else {
            &self.telemetry_prefix
        };
        self.fwd_names = self
            .layers
            .iter()
            .enumerate()
            .map(|(i, l)| format!("{prefix}.fwd.{i}.{}", Self::layer_name(l)))
            .collect();
    }

    /// The number of fused layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` if the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    fn run_layer(layer: &QuantLayer, x: &Tensor) -> Tensor {
        match layer {
            QuantLayer::Conv2d {
                in_channels,
                out_channels,
                kernel,
                pad,
                weight_q,
                weight_scale,
                bias,
                fused_relu,
            } => {
                assert_eq!(x.rank(), 4, "QConv2d expects an NCHW tensor");
                assert_eq!(
                    x.shape()[1],
                    *in_channels,
                    "input channel count {} does not match layer in_channels {in_channels}",
                    x.shape()[1]
                );
                let s = crate::gemm::ConvShape {
                    batch: x.shape()[0],
                    in_channels: *in_channels,
                    height: x.shape()[2],
                    width: x.shape()[3],
                    out_channels: *out_channels,
                    kernel: *kernel,
                    pad: *pad,
                };
                let (xq, x_scale) = quantize_slice_i8(x.data());
                let out = crate::gemm::conv_forward_i8(
                    &xq,
                    x_scale,
                    weight_q,
                    *weight_scale,
                    bias,
                    *fused_relu,
                    &s,
                );
                Tensor::from_vec(
                    out,
                    &[s.batch, *out_channels, s.out_height(), s.out_width()],
                )
            }
            QuantLayer::Dense {
                in_features,
                out_features,
                weight_q,
                weight_scale,
                bias,
                fused_relu,
            } => {
                assert_eq!(x.rank(), 2, "QDense expects a [batch, features] tensor");
                assert_eq!(
                    x.shape()[1],
                    *in_features,
                    "input feature count {} does not match layer in_features {in_features}",
                    x.shape()[1]
                );
                let (xq, x_scale) = quantize_slice_i8(x.data());
                let out = crate::gemm::dense_forward_i8(
                    &xq,
                    x_scale,
                    weight_q,
                    *weight_scale,
                    bias,
                    *fused_relu,
                    x.shape()[0],
                    *in_features,
                    *out_features,
                );
                Tensor::from_vec(out, &[x.shape()[0], *out_features])
            }
            QuantLayer::MaxPool2d { window } => MaxPool2d::new(*window).infer(x),
            QuantLayer::Flatten => {
                let batch = x.shape()[0];
                let features: usize = x.shape()[1..].iter().product();
                x.reshape(&[batch, features])
            }
            QuantLayer::Relu => x.map(|v| v.max(0.0)),
            QuantLayer::Sigmoid => x.map(sigmoid_scalar),
        }
    }

    /// Runs the fused int8 model over a (possibly batched) input.
    pub fn predict(&mut self, input: &Tensor) -> Tensor {
        if !self.telemetry.is_enabled() {
            let mut x = input.clone();
            for layer in &self.layers {
                x = Self::run_layer(layer, &x);
            }
            return x;
        }
        self.refresh_layer_names();
        let rec = self.telemetry.clone();
        let mut x = input.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            x = rec.time(&self.fwd_names[i], || Self::run_layer(layer, &x));
        }
        x
    }
}

impl std::fmt::Debug for QuantizedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "QuantizedModel({} fused layers)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    fn detector_like() -> Sequential {
        Sequential::new()
            .push(Conv2d::new(4, 8, 3, Padding::Valid, 3))
            .push(Relu::new())
            .push(MaxPool2d::new(2))
            .push(Flatten::new())
            .push(Dense::new(8 * 2 * 3, 1, 4))
            .push(Sigmoid::new())
    }

    #[test]
    fn relu_is_fused_into_conv_and_dense() {
        let model = Sequential::new()
            .push(Conv2d::new(1, 2, 3, Padding::Same, 0))
            .push(Relu::new())
            .push(Flatten::new())
            .push(Dense::new(2 * 4 * 4, 3, 1))
            .push(Relu::new())
            .push(Dense::new(3, 1, 2))
            .push(Sigmoid::new());
        let q = QuantizedModel::from_model(&model);
        // 7 f32 layers fuse down to 5: conv+relu, flatten, dense+relu,
        // dense, sigmoid.
        assert_eq!(q.len(), 5);
        assert!(matches!(
            q.layers[0],
            QuantLayer::Conv2d {
                fused_relu: true,
                ..
            }
        ));
        assert!(matches!(
            q.layers[2],
            QuantLayer::Dense {
                fused_relu: true,
                ..
            }
        ));
        assert!(matches!(
            q.layers[3],
            QuantLayer::Dense {
                fused_relu: false,
                ..
            }
        ));
    }

    #[test]
    fn quantized_predictions_track_f32_predictions() {
        let mut model = detector_like();
        let mut q = QuantizedModel::from_model(&model);
        let x = crate::init::Init::XavierUniform.make(&[4, 4, 7, 8], 36, 36, 11);
        let yf = model.predict(&x);
        let yq = q.predict(&x);
        assert_eq!(yf.shape(), yq.shape());
        for (a, b) in yf.data().iter().zip(yq.data()) {
            // Sigmoid outputs: int8 noise stays well inside the decision
            // band for a freshly initialized model.
            assert!((a - b).abs() < 0.1, "int8 output drifted: {a} vs {b}");
        }
    }

    #[test]
    fn batched_quantized_inference_equals_per_sample() {
        let model = detector_like();
        let mut q = QuantizedModel::from_model(&model);
        let xs: Vec<Tensor> = (0..3)
            .map(|i| crate::init::Init::XavierUniform.make(&[1, 4, 7, 8], 36, 36, 20 + i))
            .collect();
        let refs: Vec<&Tensor> = xs.iter().collect();
        let batched = q.predict(&Tensor::stack(&refs).reshape(&[3, 4, 7, 8]));
        for (i, x) in xs.iter().enumerate() {
            let single = q.predict(x);
            // Per-sample dynamic input scales differ between the batched and
            // single-sample calls, so this is a closeness check, not bitwise.
            assert!(
                (batched.data()[i] - single.data()[0]).abs() < 0.05,
                "batch element {i} drifted"
            );
        }
    }

    #[test]
    fn quantized_model_telemetry_names_layers() {
        use dl2fence_telemetry::{MemorySink, Telemetry};
        use std::sync::Arc;
        let sink = Arc::new(MemorySink::new());
        let tel = Telemetry::with_sink(sink.clone());
        let rec = tel.recorder();
        let mut q = QuantizedModel::from_model(&detector_like());
        q.set_telemetry(rec.clone(), "nn.q");
        q.predict(&Tensor::ones(&[1, 4, 7, 8]));
        rec.flush();
        let names: Vec<String> = sink.take().iter().map(|e| e.name().to_string()).collect();
        assert!(
            names.contains(&"nn.q.fwd.0.QConv2d".to_string()),
            "{names:?}"
        );
        assert!(names.iter().any(|n| n.ends_with("QDense")), "{names:?}");
    }
}
