//! Weight initialization schemes.
//!
//! All initializers are seeded explicitly so that every experiment in the
//! reproduction is deterministic.

use crate::tensor::Tensor;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Supported weight initialization schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Init {
    /// Glorot/Xavier uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
    /// Suitable for sigmoid/linear outputs.
    XavierUniform,
    /// He/Kaiming uniform: `U(-a, a)` with `a = sqrt(6 / fan_in)`.
    /// Suitable for ReLU activations.
    HeUniform,
    /// All zeros (used for biases).
    Zeros,
}

impl Init {
    /// Creates a tensor of the requested shape initialized with this scheme.
    ///
    /// `fan_in`/`fan_out` are the effective fan values of the layer (for a
    /// conv layer they include the kernel area).
    pub fn make(self, shape: &[usize], fan_in: usize, fan_out: usize, seed: u64) -> Tensor {
        match self {
            Init::Zeros => Tensor::zeros(shape),
            Init::XavierUniform => {
                let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
                uniform(shape, -a, a, seed)
            }
            Init::HeUniform => {
                let a = (6.0 / fan_in as f32).sqrt();
                uniform(shape, -a, a, seed)
            }
        }
    }
}

fn uniform(shape: &[usize], lo: f32, hi: f32, seed: u64) -> Tensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let len: usize = shape.iter().product();
    let data = (0..len).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(data, shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_init_is_all_zero() {
        let t = Init::Zeros.make(&[4, 4], 4, 4, 0);
        assert!(t.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn xavier_bounds_respected() {
        let t = Init::XavierUniform.make(&[100], 50, 50, 7);
        let a = (6.0f32 / 100.0).sqrt();
        assert!(t.data().iter().all(|&v| v > -a && v < a));
    }

    #[test]
    fn he_bounds_respected() {
        let t = Init::HeUniform.make(&[100], 25, 10, 7);
        let a = (6.0f32 / 25.0).sqrt();
        assert!(t.data().iter().all(|&v| v > -a && v < a));
    }

    #[test]
    fn same_seed_same_weights() {
        let a = Init::HeUniform.make(&[32], 8, 8, 99);
        let b = Init::HeUniform.make(&[32], 8, 8, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_weights() {
        let a = Init::HeUniform.make(&[32], 8, 8, 1);
        let b = Init::HeUniform.make(&[32], 8, 8, 2);
        assert_ne!(a, b);
    }
}
