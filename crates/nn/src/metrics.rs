//! Classification and segmentation metrics: accuracy, precision, recall, F1
//! and the Dice coefficient — the metrics reported in Tables 1–3 of the
//! paper.

use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A binary confusion matrix and the derived metrics.
///
/// # Examples
///
/// ```
/// use tinycnn::{confusion, Tensor};
///
/// let pred = Tensor::from_vec(vec![0.9, 0.2, 0.8, 0.4], &[4]);
/// let truth = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[4]);
/// let c = confusion(&pred, &truth, 0.5);
/// assert_eq!(c.true_positives, 1);
/// assert_eq!(c.false_positives, 1);
/// assert_eq!(c.false_negatives, 1);
/// assert_eq!(c.true_negatives, 1);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinaryConfusion {
    /// Predicted positive, actually positive.
    pub true_positives: u64,
    /// Predicted positive, actually negative.
    pub false_positives: u64,
    /// Predicted negative, actually negative.
    pub true_negatives: u64,
    /// Predicted negative, actually positive.
    pub false_negatives: u64,
}

impl BinaryConfusion {
    /// Creates an empty confusion matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a single observation.
    pub fn record(&mut self, predicted_positive: bool, actually_positive: bool) {
        match (predicted_positive, actually_positive) {
            (true, true) => self.true_positives += 1,
            (true, false) => self.false_positives += 1,
            (false, false) => self.true_negatives += 1,
            (false, true) => self.false_negatives += 1,
        }
    }

    /// Merges another confusion matrix into this one.
    pub fn merge(&mut self, other: &BinaryConfusion) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.true_negatives += other.true_negatives;
        self.false_negatives += other.false_negatives;
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    /// `(TP + TN) / total`. Returns 1.0 for an empty matrix.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 1.0;
        }
        (self.true_positives + self.true_negatives) as f64 / self.total() as f64
    }

    /// `TP / (TP + FP)`. Returns 1.0 when no positives were predicted (the
    /// convention used when comparing against the paper, which reports a
    /// precision of 1 for attack-free windows).
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            return 1.0;
        }
        self.true_positives as f64 / denom as f64
    }

    /// `TP / (TP + FN)`. Returns 1.0 when there are no actual positives.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            return 1.0;
        }
        self.true_positives as f64 / denom as f64
    }

    /// Harmonic mean of precision and recall. Returns 0.0 when both are 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }
}

/// Builds a [`BinaryConfusion`] by thresholding `prediction` at `threshold`
/// and comparing element-wise against `target` (where any value `> 0.5`
/// counts as a positive label).
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn confusion(prediction: &Tensor, target: &Tensor, threshold: f32) -> BinaryConfusion {
    assert_eq!(
        prediction.shape(),
        target.shape(),
        "prediction and target shapes differ"
    );
    let mut c = BinaryConfusion::new();
    for (&p, &t) in prediction.data().iter().zip(target.data()) {
        c.record(p > threshold, t > 0.5);
    }
    c
}

/// Fraction of elements whose thresholded prediction matches the label.
pub fn binary_accuracy(prediction: &Tensor, target: &Tensor, threshold: f32) -> f64 {
    confusion(prediction, target, threshold).accuracy()
}

/// Hard Dice coefficient between a thresholded prediction and a binary
/// target: `2·|P∩T| / (|P| + |T|)`, defined as 1.0 when both are empty.
pub fn dice_coefficient(prediction: &Tensor, target: &Tensor, threshold: f32) -> f64 {
    assert_eq!(prediction.shape(), target.shape());
    let mut intersection = 0u64;
    let mut p_count = 0u64;
    let mut t_count = 0u64;
    for (&p, &t) in prediction.data().iter().zip(target.data()) {
        let pp = p > threshold;
        let tt = t > 0.5;
        if pp {
            p_count += 1;
        }
        if tt {
            t_count += 1;
        }
        if pp && tt {
            intersection += 1;
        }
    }
    if p_count + t_count == 0 {
        return 1.0;
    }
    2.0 * intersection as f64 / (p_count + t_count) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_metrics_are_one() {
        let p = Tensor::from_vec(vec![0.9, 0.1, 0.8, 0.2], &[4]);
        let t = Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0], &[4]);
        let c = confusion(&p, &t, 0.5);
        assert_eq!(c.accuracy(), 1.0);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.f1(), 1.0);
    }

    #[test]
    fn all_wrong_prediction_metrics_are_zero() {
        let p = Tensor::from_vec(vec![0.9, 0.1], &[2]);
        let t = Tensor::from_vec(vec![0.0, 1.0], &[2]);
        let c = confusion(&p, &t, 0.5);
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn empty_confusion_conventions() {
        let c = BinaryConfusion::new();
        assert_eq!(c.accuracy(), 1.0);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
    }

    #[test]
    fn no_predicted_positives_precision_is_one() {
        let p = Tensor::from_vec(vec![0.1, 0.2], &[2]);
        let t = Tensor::from_vec(vec![1.0, 0.0], &[2]);
        let c = confusion(&p, &t, 0.5);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = BinaryConfusion {
            true_positives: 1,
            false_positives: 2,
            true_negatives: 3,
            false_negatives: 4,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.true_positives, 2);
        assert_eq!(a.total(), 20);
    }

    #[test]
    fn dice_of_identical_masks_is_one() {
        let m = Tensor::from_vec(vec![1.0, 0.0, 1.0, 1.0], &[4]);
        assert_eq!(dice_coefficient(&m, &m, 0.5), 1.0);
    }

    #[test]
    fn dice_of_disjoint_masks_is_zero() {
        let a = Tensor::from_vec(vec![1.0, 0.0], &[2]);
        let b = Tensor::from_vec(vec![0.0, 1.0], &[2]);
        assert_eq!(dice_coefficient(&a, &b, 0.5), 0.0);
    }

    #[test]
    fn dice_of_empty_masks_is_one() {
        let z = Tensor::zeros(&[4]);
        assert_eq!(dice_coefficient(&z, &z, 0.5), 1.0);
    }

    #[test]
    fn f1_matches_manual_formula() {
        let c = BinaryConfusion {
            true_positives: 8,
            false_positives: 2,
            true_negatives: 5,
            false_negatives: 1,
        };
        let p = 8.0 / 10.0;
        let r = 8.0 / 9.0;
        assert!((c.f1() - 2.0 * p * r / (p + r)).abs() < 1e-12);
    }
}
