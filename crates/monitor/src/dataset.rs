//! Dataset generation: run attack scenarios, sample labeled feature frames.
//!
//! The paper collects 162 runs (18 attack placements × 9 benchmarks) at
//! FIR 0.8, sampling VCO every 1 000 cycles for the synthetic patterns. This
//! module reproduces that collection procedure at a configurable scale so the
//! benchmark harness can trade run time against dataset size.

use crate::frame::DirectionalFrames;
use crate::label::GroundTruth;
use crate::sampler::FrameSampler;
use noc_sim::{NocConfig, NodeId};
use noc_traffic::{
    AttackKind, AttackScenario, BenignWorkload, DistributedAttack, FloodingAttack, StealthAttack,
};
use serde::{Deserialize, Serialize};

/// One simulation run to collect samples from: a benign workload plus an
/// optional DoS attack of any family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// The benign workload.
    pub workload: BenignWorkload,
    /// Attacker nodes; empty means an attack-free run.
    pub attackers: Vec<NodeId>,
    /// The target victim (ignored when `attackers` is empty).
    pub victim: NodeId,
    /// The flooding injection rate (peak/aggregate, depending on `attack`).
    pub fir: f64,
    /// Which attack family the attackers mount (ignored when benign).
    pub attack: AttackKind,
}

impl ScenarioSpec {
    /// An attack-free run of `workload`.
    pub fn benign(workload: BenignWorkload) -> Self {
        ScenarioSpec {
            workload,
            attackers: Vec::new(),
            victim: NodeId(0),
            fir: 0.0,
            attack: AttackKind::Fdos,
        }
    }

    /// A run of `workload` with a flooding attack overlaid.
    pub fn attacked(
        workload: BenignWorkload,
        attackers: Vec<NodeId>,
        victim: NodeId,
        fir: f64,
    ) -> Self {
        ScenarioSpec {
            workload,
            attackers,
            victim,
            fir,
            attack: AttackKind::Fdos,
        }
    }

    /// Switches the attack family mounted by the attackers.
    pub fn with_attack(mut self, attack: AttackKind) -> Self {
        self.attack = attack;
        self
    }

    /// Whether this run contains an attack.
    pub fn is_attack(&self) -> bool {
        !self.attackers.is_empty() && self.fir > 0.0
    }

    /// Builds the runnable scenario on `config`, seeded with `seed`.
    pub fn build(&self, config: NocConfig, seed: u64) -> AttackScenario {
        let mut builder = AttackScenario::builder(config)
            .workload(self.workload)
            .seed(seed);
        if self.is_attack() {
            builder = match self.attack {
                AttackKind::Fdos => builder.attack(FloodingAttack::new(
                    self.attackers.clone(),
                    self.victim,
                    self.fir,
                )),
                AttackKind::Ddos => builder.attack(DistributedAttack::new(
                    self.attackers.clone(),
                    self.victim,
                    self.fir,
                )),
                AttackKind::Stealth => builder.attack(StealthAttack::new(
                    self.attackers.clone(),
                    self.victim,
                    self.fir,
                )),
            };
        }
        builder.build()
    }
}

/// One labeled observation: the VCO and BOC frame bundles sampled at the end
/// of a monitoring window, plus the ground truth of the run they came from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledSample {
    /// VCO frames at the sampling instant.
    pub vco: DirectionalFrames,
    /// BOC frames accumulated over the sampling window.
    pub boc: DirectionalFrames,
    /// Ground-truth labels.
    pub truth: GroundTruth,
    /// Name of the benign benchmark this sample came from.
    pub benchmark: String,
}

/// How to run and sample the collection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectionConfig {
    /// NoC configuration for every run.
    pub noc: NocConfig,
    /// Cycles simulated before the first sample (lets congestion develop).
    pub warmup_cycles: u64,
    /// Length of each sampling window in cycles (the paper uses 1 000 for
    /// STP and 100 000 for PARSEC; smaller windows keep run times short).
    pub sample_period: u64,
    /// Number of windows (and therefore samples) per run.
    pub samples_per_run: usize,
    /// Master seed for all scenario RNGs.
    pub seed: u64,
}

impl CollectionConfig {
    /// A small default collection on the given NoC configuration: 200-cycle
    /// warm-up, 500-cycle windows, 4 samples per run.
    pub fn quick(noc: NocConfig) -> Self {
        CollectionConfig {
            noc,
            warmup_cycles: 200,
            sample_period: 500,
            samples_per_run: 4,
            seed: 0x5EED,
        }
    }
}

/// Generates labeled datasets by running scenario specifications.
#[derive(Debug, Clone)]
pub struct DatasetGenerator {
    config: CollectionConfig,
}

impl DatasetGenerator {
    /// Creates a generator with the given collection configuration.
    pub fn new(config: CollectionConfig) -> Self {
        DatasetGenerator { config }
    }

    /// The collection configuration.
    pub fn config(&self) -> &CollectionConfig {
        &self.config
    }

    /// Runs one scenario spec and returns its labeled samples.
    pub fn collect_run(&self, spec: &ScenarioSpec, run_seed: u64) -> Vec<LabeledSample> {
        let mut scenario = spec.build(self.config.noc.clone(), run_seed);
        let truth = GroundTruth::of_scenario(&scenario);
        let benchmark = spec.workload.name();
        scenario.run(self.config.warmup_cycles);
        scenario.network_mut().reset_boc();
        let mut samples = Vec::with_capacity(self.config.samples_per_run);
        for _ in 0..self.config.samples_per_run {
            scenario.run(self.config.sample_period);
            let (vco, boc) = FrameSampler::sample_both(scenario.network());
            scenario.network_mut().reset_boc();
            samples.push(LabeledSample {
                vco,
                boc,
                truth: truth.clone(),
                benchmark: benchmark.clone(),
            });
        }
        samples
    }

    /// Runs every spec (deriving one sub-seed per run) and concatenates the
    /// samples.
    pub fn collect(&self, specs: &[ScenarioSpec]) -> Vec<LabeledSample> {
        specs
            .iter()
            .enumerate()
            .flat_map(|(i, spec)| self.collect_run(spec, self.config.seed.wrapping_add(i as u64)))
            .collect()
    }
}

/// Deterministically generates `count` attack placements (alternating one-
/// and two-attacker configurations spread across the mesh) at the given FIR
/// — the reproduction of the paper's "18 attack scenarios".
///
/// Placements keep attackers distinct from the victim and inside the mesh.
pub fn attack_catalog(
    rows: usize,
    cols: usize,
    count: usize,
    fir: f64,
) -> Vec<(Vec<NodeId>, NodeId, f64)> {
    let n = rows * cols;
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        // Spread victims over the mesh with a fixed stride.
        let victim = NodeId((i * 37 + 5) % n);
        let a1 = NodeId((victim.0 + (i + 1) * (cols + 1) + 1) % n);
        if i % 2 == 0 {
            // Single attacker.
            let attacker = if a1 == victim {
                NodeId((a1.0 + 1) % n)
            } else {
                a1
            };
            out.push((vec![attacker], victim, fir));
        } else {
            // Two attackers.
            let mut a2 = NodeId((victim.0 + n / 2 + i) % n);
            if a2 == victim || a2 == a1 {
                a2 = NodeId((a2.0 + 3) % n);
            }
            let a1 = if a1 == victim {
                NodeId((a1.0 + 2) % n)
            } else {
                a1
            };
            if a1 == a2 || a1 == victim || a2 == victim {
                // Extremely small meshes: fall back to a fixed safe pattern.
                let attacker = NodeId((victim.0 + 1) % n);
                out.push((vec![attacker], victim, fir));
            } else {
                out.push((vec![a1, a2], victim, fir));
            }
        }
    }
    out
}

/// Deterministically generates `count` coordinated multi-source placements
/// for a distributed DoS campaign: each placement spreads `sources`
/// attackers across the topology around a strided victim (per the
/// topology-aware distributed-DoS threat model of Weerasena et al. 2025).
///
/// Placements keep attackers distinct from each other and from the victim;
/// on topologies with fewer than `sources + 1` nodes the source count is
/// clamped.
///
/// # Panics
///
/// Panics if `sources` is zero or the topology has fewer than two nodes.
pub fn distributed_catalog(
    rows: usize,
    cols: usize,
    count: usize,
    sources: usize,
    fir: f64,
) -> Vec<(Vec<NodeId>, NodeId, f64)> {
    let n = rows * cols;
    assert!(
        sources > 0,
        "a distributed attack needs at least one source"
    );
    assert!(
        n >= 2,
        "need at least two nodes for an attacker and a victim"
    );
    let k = sources.min(n - 1);
    let stride = (n / (k + 1)).max(1);
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let victim = NodeId((i * 37 + 5) % n);
        let mut attackers: Vec<NodeId> = Vec::with_capacity(k);
        let mut cursor = victim.0;
        for j in 0..k {
            cursor = (cursor + stride + i + j) % n;
            // Probe past the victim and already-chosen sources.
            while cursor == victim.0 || attackers.contains(&NodeId(cursor)) {
                cursor = (cursor + 1) % n;
            }
            attackers.push(NodeId(cursor));
        }
        out.push((attackers, victim, fir));
    }
    out
}

/// Builds the full list of scenario specs for one benchmark: `attacks`
/// attack placements plus `benign_runs` attack-free runs (needed so the
/// detector sees both classes).
pub fn specs_for_benchmark(
    workload: BenignWorkload,
    rows: usize,
    cols: usize,
    attacks: usize,
    benign_runs: usize,
    fir: f64,
) -> Vec<ScenarioSpec> {
    let mut specs: Vec<ScenarioSpec> = attack_catalog(rows, cols, attacks, fir)
        .into_iter()
        .map(|(attackers, victim, fir)| ScenarioSpec::attacked(workload, attackers, victim, fir))
        .collect();
    for _ in 0..benign_runs {
        specs.push(ScenarioSpec::benign(workload));
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_traffic::SyntheticPattern;

    fn quick_config() -> CollectionConfig {
        CollectionConfig {
            noc: NocConfig::mesh(4, 4),
            warmup_cycles: 100,
            sample_period: 200,
            samples_per_run: 2,
            seed: 1,
        }
    }

    #[test]
    fn benign_spec_is_not_attack() {
        let spec = ScenarioSpec::benign(BenignWorkload::Synthetic(
            SyntheticPattern::UniformRandom,
            0.02,
        ));
        assert!(!spec.is_attack());
    }

    #[test]
    fn collect_run_yields_requested_sample_count() {
        let gen = DatasetGenerator::new(quick_config());
        let spec = ScenarioSpec::attacked(
            BenignWorkload::Synthetic(SyntheticPattern::UniformRandom, 0.02),
            vec![NodeId(15)],
            NodeId(0),
            0.8,
        );
        let samples = gen.collect_run(&spec, 7);
        assert_eq!(samples.len(), 2);
        for s in &samples {
            assert!(s.truth.under_attack);
            assert_eq!(s.vco.rows(), 4);
            assert_eq!(s.benchmark, "Uniform Random");
            assert!(s.boc.max_value() > 0.0, "attack run must produce traffic");
        }
    }

    #[test]
    fn benign_and_attack_samples_are_labeled_differently() {
        let gen = DatasetGenerator::new(quick_config());
        let workload = BenignWorkload::Synthetic(SyntheticPattern::Tornado, 0.03);
        let specs = vec![
            ScenarioSpec::benign(workload),
            ScenarioSpec::attacked(workload, vec![NodeId(3)], NodeId(0), 0.9),
        ];
        let samples = gen.collect(&specs);
        assert_eq!(samples.len(), 4);
        assert!(samples[..2].iter().all(|s| !s.truth.under_attack));
        assert!(samples[2..].iter().all(|s| s.truth.under_attack));
    }

    #[test]
    fn attack_catalog_produces_valid_placements() {
        for (attackers, victim, fir) in attack_catalog(8, 8, 18, 0.8) {
            assert!(!attackers.is_empty() && attackers.len() <= 2);
            assert!(!attackers.contains(&victim));
            assert!(victim.0 < 64);
            assert!(attackers.iter().all(|a| a.0 < 64));
            assert_eq!(fir, 0.8);
            if attackers.len() == 2 {
                assert_ne!(attackers[0], attackers[1]);
            }
        }
    }

    #[test]
    fn attack_catalog_has_both_single_and_double_attackers() {
        let catalog = attack_catalog(16, 16, 18, 0.8);
        assert_eq!(catalog.len(), 18);
        assert!(catalog.iter().any(|(a, _, _)| a.len() == 1));
        assert!(catalog.iter().any(|(a, _, _)| a.len() == 2));
    }

    #[test]
    fn specs_for_benchmark_mixes_classes() {
        let specs = specs_for_benchmark(
            BenignWorkload::Synthetic(SyntheticPattern::Shuffle, 0.02),
            8,
            8,
            6,
            2,
            0.8,
        );
        assert_eq!(specs.len(), 8);
        assert_eq!(specs.iter().filter(|s| s.is_attack()).count(), 6);
        assert_eq!(specs.iter().filter(|s| !s.is_attack()).count(), 2);
    }

    #[test]
    fn catalog_works_on_tiny_meshes() {
        for (attackers, victim, _) in attack_catalog(2, 2, 6, 0.5) {
            assert!(!attackers.contains(&victim));
            assert!(attackers.iter().all(|a| a.0 < 4));
        }
    }

    #[test]
    fn distributed_catalog_produces_valid_placements() {
        let catalog = distributed_catalog(8, 8, 12, 4, 0.8);
        assert_eq!(catalog.len(), 12);
        for (attackers, victim, fir) in catalog {
            assert_eq!(attackers.len(), 4);
            assert!(!attackers.contains(&victim));
            assert!(victim.0 < 64);
            assert!(attackers.iter().all(|a| a.0 < 64));
            let mut unique = attackers.clone();
            unique.sort();
            unique.dedup();
            assert_eq!(unique.len(), attackers.len(), "sources must be distinct");
            assert_eq!(fir, 0.8);
        }
    }

    #[test]
    fn distributed_catalog_clamps_sources_on_tiny_meshes() {
        for (attackers, victim, _) in distributed_catalog(2, 2, 6, 8, 0.5) {
            assert_eq!(attackers.len(), 3, "2x2 holds at most 3 sources");
            assert!(!attackers.contains(&victim));
            assert!(attackers.iter().all(|a| a.0 < 4));
        }
    }

    #[test]
    fn scenario_spec_dispatches_attack_families() {
        let workload = BenignWorkload::Synthetic(SyntheticPattern::UniformRandom, 0.01);
        let attackers = vec![NodeId(3), NodeId(12)];
        for kind in [AttackKind::Fdos, AttackKind::Ddos, AttackKind::Stealth] {
            let spec = ScenarioSpec::attacked(workload, attackers.clone(), NodeId(0), 0.8)
                .with_attack(kind);
            assert!(spec.is_attack());
            let scenario = spec.build(NocConfig::mesh(4, 4), 7);
            assert_eq!(scenario.attacks().len(), 1);
            assert_eq!(scenario.attacks()[0].kind(), kind);
            assert_eq!(scenario.attacker_nodes(), vec![NodeId(3), NodeId(12)]);
        }
    }
}
