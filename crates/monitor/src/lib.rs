//! # noc-monitor — the global performance monitor of the DL2Fence framework
//!
//! The paper attaches a *global performance monitor* to the NoC that
//! periodically samples two features from every router input port:
//!
//! * **VCO** (Virtual Channel Occupancy) — an instantaneous value in
//!   `[0, 1]`, used by the DoS *detector*;
//! * **BOC** (Buffer Operation Counts) — the number of buffer reads/writes
//!   accumulated over the sampling window, used by the DoS *localizer* after
//!   min–max normalization.
//!
//! Samples are arranged as **directional feature frames**: one matrix per
//! input-port direction (E, N, W, S) whose pixel `(y, x)` is the feature of
//! the router at node `y·cols + x`. Routers that lack a port in a direction
//! (mesh edges) contribute a zero pixel, so every frame has the full
//! `rows × cols` shape — a superset of the paper's `R × (R−1)` frames that
//! keeps the pixel→node mapping trivial for the localization stage (the extra
//! column/row is identically zero and carries no information).
//!
//! The crate also contains the dataset generator used to train and evaluate
//! the two CNN models (it re-creates the paper's "162 simulations, 12 960
//! frames" collection procedure at configurable scale) and the FIR latency
//! sweep behind Figure 1.
//!
//! ## Quick example
//!
//! ```
//! use noc_sim::{NocConfig, NodeId};
//! use noc_traffic::{AttackScenario, FloodingAttack, SyntheticPattern};
//! use noc_monitor::{FeatureKind, FrameSampler};
//!
//! let mut scenario = AttackScenario::builder(NocConfig::mesh(8, 8))
//!     .benign(SyntheticPattern::UniformRandom, 0.02)
//!     .attack(FloodingAttack::new(vec![NodeId(63)], NodeId(0), 0.8))
//!     .build();
//! scenario.run(1_000);
//! let frames = FrameSampler::sample(scenario.network(), FeatureKind::Vco);
//! assert_eq!(frames.rows(), 8);
//! assert!(frames.max_value() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod frame;
pub mod label;
pub mod latency;
pub mod sampler;

pub use dataset::{CollectionConfig, DatasetGenerator, LabeledSample, ScenarioSpec};
pub use frame::{DirectionalFrames, FeatureFrame, FeatureKind};
pub use label::GroundTruth;
pub use latency::{sweep_fir, FirSweepConfig, FirSweepPoint};
pub use sampler::FrameSampler;
