//! Extraction of directional feature frames from a live simulation.

use crate::frame::{DirectionalFrames, FeatureFrame, FeatureKind};
use noc_sim::{Direction, Network};

/// Samples VCO or BOC feature frames from a [`Network`].
///
/// Sampling never perturbs the simulation; resetting the BOC window between
/// samples is an explicit, separate call
/// ([`noc_sim::Network::reset_boc`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct FrameSampler;

impl FrameSampler {
    /// Samples the four cardinal-direction frames of the requested feature.
    pub fn sample(network: &Network, kind: FeatureKind) -> DirectionalFrames {
        let rows = network.config().rows;
        let cols = network.config().cols;
        let frames = Direction::CARDINAL
            .into_iter()
            .map(|dir| {
                let mut frame = FeatureFrame::zeros(dir, kind, rows, cols);
                for router in network.routers() {
                    let id = router.id();
                    let (x, y) = (id.0 % cols, id.0 / cols);
                    let value = match kind {
                        FeatureKind::Vco => router.vco(dir).unwrap_or(0.0),
                        FeatureKind::Boc => router.boc(dir).unwrap_or(0) as f32,
                    };
                    frame.set(x, y, value);
                }
                frame
            })
            .collect();
        DirectionalFrames::new(frames)
    }

    /// Samples both features at once (VCO first, BOC second).
    pub fn sample_both(network: &Network) -> (DirectionalFrames, DirectionalFrames) {
        (
            Self::sample(network, FeatureKind::Vco),
            Self::sample(network, FeatureKind::Boc),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::{NocConfig, NodeId};
    use noc_traffic::{AttackScenario, FloodingAttack, SyntheticPattern};

    fn attacked_scenario() -> AttackScenario {
        AttackScenario::builder(NocConfig::mesh(8, 8))
            .benign(SyntheticPattern::UniformRandom, 0.01)
            .attack(FloodingAttack::new(vec![NodeId(7)], NodeId(0), 0.9))
            .seed(21)
            .build()
    }

    #[test]
    fn idle_network_frames_are_zero() {
        let net = noc_sim::Network::new(NocConfig::mesh(4, 4));
        let vco = FrameSampler::sample(&net, FeatureKind::Vco);
        assert_eq!(vco.max_value(), 0.0);
        let boc = FrameSampler::sample(&net, FeatureKind::Boc);
        assert_eq!(boc.max_value(), 0.0);
    }

    #[test]
    fn frames_have_mesh_shape() {
        let net = noc_sim::Network::new(NocConfig::mesh(6, 9));
        let vco = FrameSampler::sample(&net, FeatureKind::Vco);
        assert_eq!(vco.rows(), 6);
        assert_eq!(vco.cols(), 9);
    }

    #[test]
    fn edge_ports_without_neighbor_stay_zero() {
        let mut scenario = attacked_scenario();
        scenario.run(2_000);
        let boc = FrameSampler::sample(scenario.network(), FeatureKind::Boc);
        // The East input port of the east-most column (x = 7) does not exist,
        // so its pixels must remain zero regardless of traffic.
        let east = boc.frame(Direction::East);
        for y in 0..8 {
            assert_eq!(east.get(7, y), 0.0);
        }
        // Same for the West input ports of column 0.
        let west = boc.frame(Direction::West);
        for y in 0..8 {
            assert_eq!(west.get(0, y), 0.0);
        }
    }

    #[test]
    fn flooding_shows_up_on_the_attack_route() {
        // Attacker node 7 (east end of row 0) floods node 0 (west end):
        // traffic flows westwards, arriving on East input ports of row 0.
        let mut scenario = attacked_scenario();
        scenario.run(2_000);
        let boc = FrameSampler::sample(scenario.network(), FeatureKind::Boc);
        let east = boc.frame(Direction::East);
        let on_route_mean: f32 = (0..7).map(|x| east.get(x, 0)).sum::<f32>() / 7.0;
        let off_route_mean: f32 = (0..7).map(|x| east.get(x, 5)).sum::<f32>() / 7.0;
        assert!(
            on_route_mean > 3.0 * (off_route_mean + 1.0),
            "attack route BOC {on_route_mean} should dominate off-route {off_route_mean}"
        );
    }

    #[test]
    fn vco_values_stay_in_unit_range() {
        let mut scenario = attacked_scenario();
        scenario.run(1_500);
        let vco = FrameSampler::sample(scenario.network(), FeatureKind::Vco);
        for f in vco.iter() {
            assert!(f.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn boc_reset_empties_next_sample() {
        let mut scenario = attacked_scenario();
        scenario.run(500);
        let before = FrameSampler::sample(scenario.network(), FeatureKind::Boc);
        assert!(before.max_value() > 0.0);
        scenario.network_mut().reset_boc();
        let after = FrameSampler::sample(scenario.network(), FeatureKind::Boc);
        assert_eq!(after.max_value(), 0.0);
    }

    #[test]
    fn sample_both_returns_matching_shapes() {
        let net = noc_sim::Network::new(NocConfig::mesh(4, 4));
        let (vco, boc) = FrameSampler::sample_both(&net);
        assert_eq!(vco.kind(), FeatureKind::Vco);
        assert_eq!(boc.kind(), FeatureKind::Boc);
        assert_eq!(vco.rows(), boc.rows());
    }
}
