//! Ground-truth labels for training and evaluating the detector and
//! localizer.

use noc_sim::{Mesh, NodeId};
use noc_traffic::AttackScenario;
use serde::{Deserialize, Serialize};

/// The ground truth of one sampled frame bundle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Whether a flooding attack with non-zero FIR was active.
    pub under_attack: bool,
    /// The attacker nodes (empty when not under attack).
    pub attackers: Vec<NodeId>,
    /// Every `(attacker, target victim)` pair of the active attacks.
    pub attack_pairs: Vec<(NodeId, NodeId)>,
    /// All victims: the target victims plus every routing-path victim.
    pub victims: Vec<NodeId>,
    /// Mesh rows (needed to interpret the victim mask).
    pub rows: usize,
    /// Mesh columns.
    pub cols: usize,
}

impl GroundTruth {
    /// Builds the ground truth of a scenario.
    pub fn of_scenario(scenario: &AttackScenario) -> Self {
        let topology = scenario.network().topology();
        GroundTruth {
            under_attack: scenario.is_under_attack(),
            attackers: scenario.attacker_nodes(),
            attack_pairs: scenario.attack_pairs(),
            victims: scenario.victim_nodes(),
            rows: topology.rows(),
            cols: topology.cols(),
        }
    }

    /// Builds an attack-free ground truth for a `rows × cols` mesh.
    pub fn benign(rows: usize, cols: usize) -> Self {
        GroundTruth {
            under_attack: false,
            attackers: Vec::new(),
            attack_pairs: Vec::new(),
            victims: Vec::new(),
            rows,
            cols,
        }
    }

    /// The binary victim mask as a row-major `rows × cols` buffer
    /// (1.0 at victim nodes) — the segmentation target.
    pub fn victim_mask(&self) -> Vec<f32> {
        let mut mask = vec![0.0f32; self.rows * self.cols];
        for v in &self.victims {
            if v.0 < mask.len() {
                mask[v.0] = 1.0;
            }
        }
        mask
    }

    /// The detector label: 1.0 under attack, 0.0 otherwise.
    pub fn detection_label(&self) -> f32 {
        if self.under_attack {
            1.0
        } else {
            0.0
        }
    }

    /// Converts a pixel coordinate of the victim mask back into a node id.
    pub fn node_at(&self, x: usize, y: usize) -> NodeId {
        NodeId(y * self.cols + x)
    }

    /// The mesh this ground truth refers to.
    pub fn mesh(&self) -> Mesh {
        Mesh::new(self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::NocConfig;
    use noc_traffic::{FloodingAttack, SyntheticPattern};

    #[test]
    fn benign_ground_truth_is_all_zero() {
        let gt = GroundTruth::benign(4, 4);
        assert!(!gt.under_attack);
        assert_eq!(gt.detection_label(), 0.0);
        assert!(gt.victim_mask().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn scenario_ground_truth_marks_route() {
        let scenario = AttackScenario::builder(NocConfig::mesh(4, 4))
            .benign(SyntheticPattern::UniformRandom, 0.01)
            .attack(FloodingAttack::new(vec![NodeId(3)], NodeId(0), 0.8))
            .build();
        let gt = GroundTruth::of_scenario(&scenario);
        assert!(gt.under_attack);
        assert_eq!(gt.detection_label(), 1.0);
        let mask = gt.victim_mask();
        // Route 3 -> 0 passes nodes 2, 1, 0 (attacker 3 excluded).
        assert_eq!(mask[0], 1.0);
        assert_eq!(mask[1], 1.0);
        assert_eq!(mask[2], 1.0);
        assert_eq!(mask[3], 0.0);
        assert_eq!(mask.iter().filter(|&&v| v == 1.0).count(), 3);
    }

    #[test]
    fn node_at_matches_row_major_layout() {
        let gt = GroundTruth::benign(4, 4);
        assert_eq!(gt.node_at(0, 0), NodeId(0));
        assert_eq!(gt.node_at(3, 0), NodeId(3));
        assert_eq!(gt.node_at(0, 1), NodeId(4));
        assert_eq!(gt.node_at(3, 3), NodeId(15));
    }

    #[test]
    fn attack_pairs_recorded() {
        let scenario = AttackScenario::builder(NocConfig::mesh(4, 4))
            .attack(FloodingAttack::new(
                vec![NodeId(3), NodeId(12)],
                NodeId(5),
                0.8,
            ))
            .build();
        let gt = GroundTruth::of_scenario(&scenario);
        assert_eq!(
            gt.attack_pairs,
            vec![(NodeId(3), NodeId(5)), (NodeId(12), NodeId(5))]
        );
    }

    #[test]
    fn mesh_round_trip() {
        let gt = GroundTruth::benign(8, 8);
        assert_eq!(gt.mesh().node_count(), 64);
    }
}
