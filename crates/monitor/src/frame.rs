//! Directional feature frames.

use noc_sim::Direction;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which feature a frame holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureKind {
    /// Virtual Channel Occupancy (instantaneous, already in `[0, 1]`).
    Vco,
    /// Buffer Operation Counts (accumulated over the sampling window,
    /// requires min–max normalization before model inference).
    Boc,
}

impl FeatureKind {
    /// The feature name used in table headers.
    pub fn name(&self) -> &'static str {
        match self {
            FeatureKind::Vco => "VCO",
            FeatureKind::Boc => "BOC",
        }
    }

    /// Whether this feature needs normalization before being fed to a model.
    pub fn needs_normalization(&self) -> bool {
        matches!(self, FeatureKind::Boc)
    }
}

impl fmt::Display for FeatureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One directional feature frame: a `rows × cols` matrix whose pixel
/// `(y, x)` is the feature value of the input port facing `direction` at
/// node `y·cols + x` (0 where that port does not exist).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureFrame {
    direction: Direction,
    kind: FeatureKind,
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl FeatureFrame {
    /// Creates a frame from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn new(
        direction: Direction,
        kind: FeatureKind,
        rows: usize,
        cols: usize,
        data: Vec<f32>,
    ) -> Self {
        assert_eq!(data.len(), rows * cols, "frame data length mismatch");
        FeatureFrame {
            direction,
            kind,
            rows,
            cols,
            data,
        }
    }

    /// Creates an all-zero frame.
    pub fn zeros(direction: Direction, kind: FeatureKind, rows: usize, cols: usize) -> Self {
        Self::new(direction, kind, rows, cols, vec![0.0; rows * cols])
    }

    /// The port direction this frame describes.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// The feature kind.
    pub fn kind(&self) -> FeatureKind {
        self.kind
    }

    /// Number of rows (mesh rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (mesh columns).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row-major pixel data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// The value at mesh coordinate `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of range.
    pub fn get(&self, x: usize, y: usize) -> f32 {
        assert!(x < self.cols && y < self.rows, "({x}, {y}) out of range");
        self.data[y * self.cols + x]
    }

    /// Sets the value at mesh coordinate `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of range.
    pub fn set(&mut self, x: usize, y: usize, value: f32) {
        assert!(x < self.cols && y < self.rows, "({x}, {y}) out of range");
        self.data[y * self.cols + x] = value;
    }

    /// The largest pixel value.
    pub fn max_value(&self) -> f32 {
        self.data.iter().cloned().fold(0.0f32, f32::max)
    }

    /// The mean pixel value.
    pub fn mean_value(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Min–max normalizes the frame into `[0, 1]` (a constant frame becomes
    /// all zeros). BOC frames must be normalized before inference; VCO
    /// frames are already in range.
    pub fn normalized(&self) -> FeatureFrame {
        let lo = self.data.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = self.data.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let data = if (hi - lo).abs() < f32::EPSILON {
            vec![0.0; self.data.len()]
        } else {
            self.data.iter().map(|v| (v - lo) / (hi - lo)).collect()
        };
        FeatureFrame {
            data,
            ..self.clone()
        }
    }

    /// Binarizes the frame with the given threshold (pixels strictly above
    /// the threshold become 1.0).
    pub fn binarized(&self, threshold: f32) -> FeatureFrame {
        FeatureFrame {
            data: self
                .data
                .iter()
                .map(|&v| if v > threshold { 1.0 } else { 0.0 })
                .collect(),
            ..self.clone()
        }
    }

    /// Zero-pads (or crops) the frame to `target_rows × target_cols`,
    /// keeping the origin at pixel `(0, 0)`. This is the "binarization &
    /// zero padding to 16 × 16" step that precedes Multi-Frame Fusion.
    pub fn padded_to(&self, target_rows: usize, target_cols: usize) -> FeatureFrame {
        let mut out = FeatureFrame::zeros(self.direction, self.kind, target_rows, target_cols);
        for y in 0..self.rows.min(target_rows) {
            for x in 0..self.cols.min(target_cols) {
                out.set(x, y, self.get(x, y));
            }
        }
        out
    }
}

/// The bundle of four cardinal-direction frames sampled at one instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DirectionalFrames {
    kind: FeatureKind,
    rows: usize,
    cols: usize,
    frames: Vec<FeatureFrame>,
}

impl DirectionalFrames {
    /// Assembles the bundle from exactly four frames in E, N, W, S order.
    ///
    /// # Panics
    ///
    /// Panics if the frames are not in E, N, W, S order or have mismatched
    /// shapes or kinds.
    pub fn new(frames: Vec<FeatureFrame>) -> Self {
        assert_eq!(frames.len(), 4, "exactly four directional frames expected");
        for (frame, dir) in frames.iter().zip(Direction::CARDINAL) {
            assert_eq!(frame.direction(), dir, "frames must be in E, N, W, S order");
            assert_eq!(frame.rows(), frames[0].rows());
            assert_eq!(frame.cols(), frames[0].cols());
            assert_eq!(frame.kind(), frames[0].kind());
        }
        DirectionalFrames {
            kind: frames[0].kind(),
            rows: frames[0].rows(),
            cols: frames[0].cols(),
            frames,
        }
    }

    /// The feature kind of all four frames.
    pub fn kind(&self) -> FeatureKind {
        self.kind
    }

    /// Mesh rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Mesh columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The frame for one cardinal direction.
    ///
    /// # Panics
    ///
    /// Panics if `dir` is [`Direction::Local`].
    pub fn frame(&self, dir: Direction) -> &FeatureFrame {
        assert_ne!(dir, Direction::Local, "no frame exists for the local port");
        &self.frames[dir.index()]
    }

    /// Iterates over the four frames in E, N, W, S order.
    pub fn iter(&self) -> impl Iterator<Item = &FeatureFrame> {
        self.frames.iter()
    }

    /// The largest pixel value across all four frames.
    pub fn max_value(&self) -> f32 {
        self.frames
            .iter()
            .map(|f| f.max_value())
            .fold(0.0, f32::max)
    }

    /// Flattens the four frames into a single channel-major buffer
    /// `[4 · rows · cols]` in E, N, W, S order — the layout the detector CNN
    /// consumes as a 4-channel image.
    pub fn to_channels(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(4 * self.rows * self.cols);
        for f in &self.frames {
            out.extend_from_slice(f.data());
        }
        out
    }

    /// Decomposes the bundle back into its four frames in E, N, W, S order —
    /// the wire shape a frame stream delivers one direction at a time, which
    /// a receiving assembler reassembles via [`DirectionalFrames::new`].
    pub fn into_frames(self) -> Vec<FeatureFrame> {
        self.frames
    }

    /// Applies min–max normalization to every frame.
    pub fn normalized(&self) -> DirectionalFrames {
        DirectionalFrames {
            kind: self.kind,
            rows: self.rows,
            cols: self.cols,
            frames: self.frames.iter().map(|f| f.normalized()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(dir: Direction, data: Vec<f32>) -> FeatureFrame {
        FeatureFrame::new(dir, FeatureKind::Vco, 2, 2, data)
    }

    #[test]
    fn get_set_round_trip() {
        let mut f = FeatureFrame::zeros(Direction::East, FeatureKind::Boc, 3, 4);
        f.set(2, 1, 7.0);
        assert_eq!(f.get(2, 1), 7.0);
        assert_eq!(f.data()[4 + 2], 7.0);
    }

    #[test]
    fn normalization_maps_to_unit_interval() {
        let f = frame(Direction::East, vec![2.0, 4.0, 6.0, 10.0]);
        let n = f.normalized();
        assert_eq!(n.data()[0], 0.0);
        assert_eq!(n.data()[3], 1.0);
        assert!((n.data()[1] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn constant_frame_normalizes_to_zero() {
        let f = frame(Direction::East, vec![3.0; 4]);
        assert!(f.normalized().data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn binarization_thresholds_strictly() {
        let f = frame(Direction::West, vec![0.1, 0.5, 0.6, 0.9]);
        let b = f.binarized(0.5);
        assert_eq!(b.data(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn padding_extends_with_zeros() {
        let f = frame(Direction::North, vec![1.0, 2.0, 3.0, 4.0]);
        let p = f.padded_to(3, 3);
        assert_eq!(p.rows(), 3);
        assert_eq!(p.cols(), 3);
        assert_eq!(p.get(0, 0), 1.0);
        assert_eq!(p.get(1, 1), 4.0);
        assert_eq!(p.get(2, 2), 0.0);
    }

    #[test]
    fn padding_can_crop() {
        let f = frame(Direction::North, vec![1.0, 2.0, 3.0, 4.0]);
        let p = f.padded_to(1, 1);
        assert_eq!(p.data(), &[1.0]);
    }

    #[test]
    fn directional_bundle_enforces_order() {
        let frames = vec![
            frame(Direction::East, vec![0.0; 4]),
            frame(Direction::North, vec![0.0; 4]),
            frame(Direction::West, vec![0.0; 4]),
            frame(Direction::South, vec![0.0; 4]),
        ];
        let bundle = DirectionalFrames::new(frames);
        assert_eq!(bundle.frame(Direction::West).direction(), Direction::West);
        assert_eq!(bundle.to_channels().len(), 16);
    }

    #[test]
    #[should_panic(expected = "E, N, W, S order")]
    fn wrong_order_panics() {
        let frames = vec![
            frame(Direction::North, vec![0.0; 4]),
            frame(Direction::East, vec![0.0; 4]),
            frame(Direction::West, vec![0.0; 4]),
            frame(Direction::South, vec![0.0; 4]),
        ];
        DirectionalFrames::new(frames);
    }

    #[test]
    #[should_panic(expected = "local port")]
    fn local_frame_access_panics() {
        let frames = vec![
            frame(Direction::East, vec![0.0; 4]),
            frame(Direction::North, vec![0.0; 4]),
            frame(Direction::West, vec![0.0; 4]),
            frame(Direction::South, vec![0.0; 4]),
        ];
        let bundle = DirectionalFrames::new(frames);
        bundle.frame(Direction::Local);
    }

    #[test]
    fn into_frames_round_trips_through_new() {
        let frames = vec![
            frame(Direction::East, vec![0.5; 4]),
            frame(Direction::North, vec![0.25; 4]),
            frame(Direction::West, vec![0.75; 4]),
            frame(Direction::South, vec![1.0; 4]),
        ];
        let bundle = DirectionalFrames::new(frames.clone());
        let parts = bundle.clone().into_frames();
        assert_eq!(parts, frames);
        assert_eq!(DirectionalFrames::new(parts), bundle);
    }

    #[test]
    fn feature_kind_properties() {
        assert!(FeatureKind::Boc.needs_normalization());
        assert!(!FeatureKind::Vco.needs_normalization());
        assert_eq!(FeatureKind::Vco.name(), "VCO");
    }
}
