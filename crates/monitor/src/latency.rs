//! FIR latency sweep — the measurement behind the paper's Figure 1 (right):
//! packet/flit queue and end-to-end latencies as the Flooding Injection Rate
//! rises from 0 to 1, including the saturation ("system crashed") point.

use noc_sim::{NocConfig, NodeId};
use noc_traffic::{AttackScenario, BenignWorkload, FloodingAttack};
use serde::{Deserialize, Serialize};

/// Configuration of a FIR sweep experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FirSweepConfig {
    /// The NoC to simulate.
    pub noc: NocConfig,
    /// The benign workload overlaid by the attack.
    pub workload: BenignWorkload,
    /// Attacker node(s).
    pub attackers: Vec<NodeId>,
    /// Target victim node.
    pub victim: NodeId,
    /// The FIR values to sweep (typically `0.0, 0.1, …, 1.0`).
    pub firs: Vec<f64>,
    /// Cycles to simulate per FIR point.
    pub cycles: u64,
    /// Master seed.
    pub seed: u64,
}

impl FirSweepConfig {
    /// The sweep used for Figure 1: FIR 0.0–1.0 in steps of 0.1.
    pub fn figure1(
        noc: NocConfig,
        workload: BenignWorkload,
        attacker: NodeId,
        victim: NodeId,
    ) -> Self {
        FirSweepConfig {
            noc,
            workload,
            attackers: vec![attacker],
            victim,
            firs: (0..=10).map(|i| i as f64 / 10.0).collect(),
            cycles: 5_000,
            seed: 0xF1,
        }
    }
}

/// One point of the sweep: the four latency curves of Figure 1 plus the
/// saturation flag.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FirSweepPoint {
    /// The flooding injection rate of this run.
    pub fir: f64,
    /// Mean packet queueing latency (creation → head injection), cycles.
    pub packet_queue_latency: f64,
    /// Mean end-to-end packet latency, cycles.
    pub packet_latency: f64,
    /// Mean flit queueing latency, cycles.
    pub flit_queue_latency: f64,
    /// Mean end-to-end flit latency, cycles.
    pub flit_latency: f64,
    /// Whether an injection queue saturated (the "system crashed" condition).
    pub saturated: bool,
    /// Packets delivered during the run.
    pub packets_received: u64,
    /// Packets created during the run.
    pub packets_created: u64,
}

/// Runs the sweep and returns one point per FIR value, in the order given by
/// the configuration.
pub fn sweep_fir(config: &FirSweepConfig) -> Vec<FirSweepPoint> {
    config
        .firs
        .iter()
        .map(|&fir| {
            let mut builder = AttackScenario::builder(config.noc.clone())
                .workload(config.workload)
                .seed(config.seed);
            if fir > 0.0 {
                builder = builder.attack(FloodingAttack::new(
                    config.attackers.clone(),
                    config.victim,
                    fir,
                ));
            }
            let mut scenario = builder.build();
            scenario.run(config.cycles);
            let stats = scenario.network().stats();
            FirSweepPoint {
                fir,
                packet_queue_latency: stats.packet_queue_latency.mean(),
                packet_latency: stats.packet_latency.mean(),
                flit_queue_latency: stats.flit_queue_latency.mean(),
                flit_latency: stats.flit_latency.mean(),
                saturated: scenario.network().is_saturated(),
                packets_received: stats.packets_received,
                packets_created: stats.packets_created,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_traffic::SyntheticPattern;

    fn small_sweep(firs: Vec<f64>, cycles: u64) -> Vec<FirSweepPoint> {
        let config = FirSweepConfig {
            noc: NocConfig::mesh(4, 4).with_injection_queue_capacity(64),
            workload: BenignWorkload::Synthetic(SyntheticPattern::UniformRandom, 0.02),
            attackers: vec![NodeId(15)],
            victim: NodeId(0),
            firs,
            cycles,
            seed: 3,
        };
        sweep_fir(&config)
    }

    #[test]
    fn latency_rises_with_fir() {
        let points = small_sweep(vec![0.0, 0.4, 0.9], 3_000);
        assert_eq!(points.len(), 3);
        assert!(
            points[2].packet_latency > points[0].packet_latency,
            "FIR 0.9 latency {} should exceed FIR 0 latency {}",
            points[2].packet_latency,
            points[0].packet_latency
        );
        assert!(points[2].flit_latency >= points[2].flit_queue_latency * 0.0);
    }

    #[test]
    fn fir_one_saturates_the_source() {
        // FIR 1.0 creates one packet (5 flits) per cycle at a single NI that
        // can inject at most 1 flit per cycle — the queue must blow up.
        let points = small_sweep(vec![1.0], 2_000);
        assert!(
            points[0].saturated,
            "FIR 1.0 should saturate the attacker's queue"
        );
        assert!(points[0].packets_created > points[0].packets_received);
    }

    #[test]
    fn fir_zero_is_not_saturated() {
        let points = small_sweep(vec![0.0], 2_000);
        assert!(!points[0].saturated);
    }

    #[test]
    fn figure1_config_covers_eleven_points() {
        let cfg = FirSweepConfig::figure1(
            NocConfig::mesh(8, 8),
            BenignWorkload::Parsec(noc_traffic::ParsecWorkload::Blackscholes),
            NodeId(63),
            NodeId(0),
        );
        assert_eq!(cfg.firs.len(), 11);
        assert_eq!(cfg.firs[0], 0.0);
        assert_eq!(cfg.firs[10], 1.0);
    }
}
