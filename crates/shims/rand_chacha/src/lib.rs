//! # rand_chacha (workspace shim)
//!
//! A real ChaCha stream cipher core (8 double-rounds) behind the
//! [`ChaCha8Rng`] type, implementing the workspace `rand` shim's traits.
//! Seeding expands a `u64` with splitmix64 into the 256-bit ChaCha key, so
//! streams are fully determined by the seed. The stream is deterministic and
//! high-quality but is **not** bit-compatible with the upstream
//! `rand_chacha` crate; nothing in this workspace depends on the reference
//! stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;
const BLOCK_WORDS: usize = 16;

/// A deterministic random number generator built on the ChaCha8 block
/// function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    state: [u32; BLOCK_WORDS],
    buffer: [u32; BLOCK_WORDS],
    /// Next unread word in `buffer`; `BLOCK_WORDS` means "refill needed".
    cursor: usize,
}

impl ChaCha8Rng {
    fn quarter_round(s: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            Self::quarter_round(&mut working, 0, 4, 8, 12);
            Self::quarter_round(&mut working, 1, 5, 9, 13);
            Self::quarter_round(&mut working, 2, 6, 10, 14);
            Self::quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            Self::quarter_round(&mut working, 0, 5, 10, 15);
            Self::quarter_round(&mut working, 1, 6, 11, 12);
            Self::quarter_round(&mut working, 2, 7, 8, 13);
            Self::quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12–13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        // splitmix64 expansion of the seed into the 8 key words.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = next();
            pair[0] = w as u32;
            pair[1] = (w >> 32) as u32;
        }
        let mut s = [0u32; BLOCK_WORDS];
        // "expand 32-byte k" constants.
        s[0] = 0x6170_7865;
        s[1] = 0x3320_646E;
        s[2] = 0x7962_2D32;
        s[3] = 0x6B20_6574;
        s[4..12].copy_from_slice(&key);
        // Counter (12–13) and nonce (14–15) start at zero.
        ChaCha8Rng {
            state: s,
            buffer: [0; BLOCK_WORDS],
            cursor: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.buffer[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn stream_is_deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(0xDAC);
        let mut b = ChaCha8Rng::seed_from_u64(0xDAC);
        for _ in 0..200 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
        let mut c = ChaCha8Rng::seed_from_u64(0xDAD);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| c.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn output_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mean = (0..20_000).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / 20_000.0;
        assert!((0.49..0.51).contains(&mean), "mean {mean} too far from 0.5");
    }

    #[test]
    fn clone_continues_the_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
