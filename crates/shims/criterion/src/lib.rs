//! # criterion (workspace shim)
//!
//! The build environment has no crates.io access, so this crate stands in
//! for Criterion with a small wall-clock benchmark harness exposing the API
//! surface the workspace benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Each benchmark runs a short warm-up, then `sample_size` timed samples,
//! and prints mean / min / max per-iteration times. There is no statistical
//! analysis or HTML report — the goal is a usable `cargo bench` in a fully
//! offline workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as the first free
        // argument; harness flags we don't implement are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 20,
            filter,
        }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function(&mut self, name: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let name = name.into();
        let sample_size = self.sample_size;
        self.run_one(&name, sample_size, &mut f);
    }

    fn run_one(&mut self, name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::with_capacity(sample_size),
            sample_size,
        };
        f(&mut bencher);
        report(name, &bencher.samples);
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs one benchmark of the group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id.into());
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&full, sample_size, &mut f);
    }

    /// Runs one benchmark of the group with an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let full = format!("{}/{}", self.name, id.into());
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion
            .run_one(&full, sample_size, &mut |b| f(b, input));
    }

    /// Finishes the group (a no-op in this shim; kept for API parity).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id made of a parameter rendering only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            text: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(text: String) -> Self {
        BenchmarkId { text }
    }
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly: a warm-up pass, then `sample_size` timed
    /// samples whose per-iteration durations are recorded.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: run until ~50 ms have passed (at least once) to stabilise
        // caches and frequency scaling.
        let warmup_start = Instant::now();
        loop {
            black_box(routine());
            if warmup_start.elapsed() > Duration::from_millis(50) {
                break;
            }
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<60} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = *samples.iter().min().expect("non-empty");
    let max = *samples.iter().max().expect("non-empty");
    println!(
        "{name:<60} time: [{} {} {}]  ({} samples)",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    let mut out = String::new();
    if nanos >= 1_000_000_000 {
        let _ = write!(out, "{:.4} s", nanos as f64 / 1e9);
    } else if nanos >= 1_000_000 {
        let _ = write!(out, "{:.4} ms", nanos as f64 / 1e6);
    } else if nanos >= 1_000 {
        let _ = write!(out, "{:.4} µs", nanos as f64 / 1e3);
    } else {
        let _ = write!(out, "{nanos} ns");
    }
    out
}

/// Declares a benchmark group function, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut c = Criterion::default().sample_size(5);
        // Criterion::default() may pick up a test-harness filter argument;
        // clear it so the benchmark always runs.
        c.filter = None;
        let mut ran = 0usize;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                black_box(2u64.pow(10))
            })
        });
        assert!(ran >= 5, "expected at least 5 iterations, got {ran}");
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
