//! # proptest (workspace shim)
//!
//! The build environment has no crates.io access, so this crate stands in
//! for `proptest` with the exact surface the workspace's property tests
//! use: the [`proptest!`] macro with `arg in <integer range>` strategies,
//! plus [`prop_assert!`] and [`prop_assert_eq!`].
//!
//! Each property runs a fixed number of deterministic cases (256) drawn
//! from a splitmix64 stream seeded per test function — no shrinking, no
//! persistence, just fast deterministic coverage of the input space.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// The error type property bodies return through the `prop_assert*` macros.
pub type TestCaseError = String;

/// A deterministic splitmix64 stream used to draw strategy samples.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a stream from a seed (derived from the test name).
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A source of values for one property argument.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Number of cases each property runs.
pub const CASES: usize = 256;

/// Declares deterministic property tests, mirroring proptest's macro.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                // Seed from the test name so streams differ per property
                // but stay deterministic across runs.
                let mut __seed: u64 = 0xcbf2_9ce4_8422_2325;
                for b in stringify!($name).bytes() {
                    __seed = (__seed ^ b as u64).wrapping_mul(0x100_0000_01b3);
                }
                let mut __rng = $crate::TestRng::new(__seed);
                for __case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);)+
                    let __result: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let ::core::result::Result::Err(message) = __result {
                        panic!(
                            "property {} failed on case {}/{}: {}",
                            stringify!($name), __case + 1, $crate::CASES, message
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the surrounding property when the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the surrounding property when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{}` == `{}` (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, Strategy, TestCaseError, TestRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn samples_stay_in_range(x in 5usize..17, y in -3i64..3) {
            prop_assert!((5..17).contains(&x));
            prop_assert!((-3..3).contains(&y));
        }

        #[test]
        fn arithmetic_property_holds(a in 0u64..1000, b in 0u64..1000) {
            prop_assert_eq!(a + b, b + a);
        }
    }

    #[test]
    fn failing_property_panics_with_context() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #[allow(unused)]
                fn always_fails(x in 0usize..4) {
                    prop_assert!(x > 100, "x was {x}");
                }
            }
            always_fails();
        });
        let payload = result.unwrap_err();
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("panic message is a formatted string");
        assert!(message.contains("always_fails"), "got: {message}");
        assert!(message.contains("x was 0"), "got: {message}");
    }

    #[test]
    fn streams_are_deterministic() {
        let mut a = TestRng::new(9);
        let mut b = TestRng::new(9);
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
